// Cross-engine property tests: the IPET (shared-simplex LP) and the
// structural tree engine must agree on collapsible (structured) CFGs —
// which every generated program and every shipped workload is — across
// the full campaign axis set: data-cache on/off, mechanism pairings,
// distribution mode, at 1 and N worker threads, store on or off.
//
// "Agree" is tight: both engines ceil an integral time model, so their
// pWCET quantiles may differ by at most one cycle of LP round-off guard,
// never by a whole miss.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/icache_domain.hpp"
#include "analysis/l2_domain.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/tlb_domain.hpp"
#include "analysis/writeback_dcache_domain.hpp"
#include "core/pwcet_analyzer.hpp"
#include "dcache/dcache_analysis.hpp"
#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "support/rng.hpp"
#include "workloads/malardalen.hpp"
#include "workloads/random_program.hpp"

namespace pwcet {
namespace {

/// One cycle of slack: both engines ceil the same integral model, and the
/// ceil's 1e-6 guard absorbs LP round-off, so anything beyond a single
/// cycle is a real disagreement.
void expect_cycle_equal(double a, double b, const std::string& what) {
  EXPECT_LE(std::abs(a - b), 1.0 + 1e-9 * std::max(std::abs(a), std::abs(b)))
      << what << ": ilp=" << a << " tree=" << b;
}

class CrossEngineRandomTest : public ::testing::TestWithParam<int> {
 protected:
  Program make_program(bool with_data_loads) {
    workloads::RandomProgramParams params;
    params.max_heavy_fetches = 50000;
    if (with_data_loads) params.max_data_loads = 4;
    Rng rng(0xe7612e00 + static_cast<std::uint64_t>(GetParam()));
    return workloads::random_program(rng, params);
  }
};

TEST_P(CrossEngineRandomTest, SingleCachePwcetAgrees) {
  const Program p = make_program(false);
  const CacheConfig c = CacheConfig::paper_default();
  PwcetOptions ilp_options, tree_options;
  ilp_options.engine = WcetEngine::kIlp;
  tree_options.engine = WcetEngine::kTree;
  const PwcetAnalyzer via_ilp(p, c, ilp_options);
  const PwcetAnalyzer via_tree(p, c, tree_options);
  expect_cycle_equal(static_cast<double>(via_ilp.fault_free_wcet()),
                     static_cast<double>(via_tree.fault_free_wcet()),
                     "fault-free WCET");
  const FaultModel faults(1e-4);
  for (const Mechanism mech :
       {Mechanism::kNone, Mechanism::kReliableWay,
        Mechanism::kSharedReliableBuffer}) {
    const auto ilp = via_ilp.analyze(faults, mech);
    const auto tree = via_tree.analyze(faults, mech);
    for (const Probability target : {1e-6, 1e-12, 1e-15})
      expect_cycle_equal(static_cast<double>(ilp.pwcet(target)),
                         static_cast<double>(tree.pwcet(target)),
                         "pwcet " + mechanism_name(mech));
  }
}

TEST_P(CrossEngineRandomTest, CombinedDcachePwcetAgrees) {
  const Program p = make_program(true);
  const CacheConfig ic = CacheConfig::paper_default();
  CacheConfig dc;
  dc.sets = 8;  // 512 B D-cache (the E8 split)
  PwcetOptions ilp_options, tree_options;
  ilp_options.engine = WcetEngine::kIlp;
  tree_options.engine = WcetEngine::kTree;
  const CombinedPwcetAnalyzer via_ilp(p, ic, dc, ilp_options);
  const CombinedPwcetAnalyzer via_tree(p, ic, dc, tree_options);
  expect_cycle_equal(static_cast<double>(via_ilp.fault_free_wcet()),
                     static_cast<double>(via_tree.fault_free_wcet()),
                     "combined fault-free WCET");
  const FaultModel faults(1e-4);
  // The E8 deployments, mixed one included.
  const std::pair<Mechanism, Mechanism> deployments[] = {
      {Mechanism::kNone, Mechanism::kNone},
      {Mechanism::kSharedReliableBuffer, Mechanism::kSharedReliableBuffer},
      {Mechanism::kReliableWay, Mechanism::kSharedReliableBuffer},
      {Mechanism::kReliableWay, Mechanism::kReliableWay},
  };
  for (const auto& [imech, dmech] : deployments) {
    const auto ilp = via_ilp.analyze_mixed(faults, imech, dmech);
    const auto tree = via_tree.analyze_mixed(faults, imech, dmech);
    expect_cycle_equal(static_cast<double>(ilp.pwcet(1e-15)),
                       static_cast<double>(tree.pwcet(1e-15)),
                       mechanism_name(imech) + "/" + mechanism_name(dmech));
  }
}

TEST_P(CrossEngineRandomTest, TripleDomainPipelinePwcetAgrees) {
  // The new production domains (write-back dcache, TLB, shared L2)
  // composed through the generic pipeline must agree across engines just
  // like the legacy analyzers do.
  workloads::RandomProgramParams params;
  params.max_heavy_fetches = 50000;
  params.max_data_loads = 4;
  params.max_data_stores = 3;
  Rng rng(0x3d0a1000 + static_cast<std::uint64_t>(GetParam()));
  const Program p = workloads::random_program(rng, params);

  const CacheConfig ic = CacheConfig::paper_default();
  CacheConfig dc;
  dc.sets = 8;
  CacheConfig tlb;
  tlb.sets = 8;
  tlb.ways = 2;
  tlb.line_bytes = 64;  // page size
  tlb.hit_latency = 0;
  tlb.miss_penalty = 30;
  CacheConfig l2;
  l2.sets = 32;
  l2.ways = 4;
  l2.line_bytes = 32;
  l2.hit_latency = 0;
  l2.miss_penalty = 60;

  const auto domains = [&] {
    return std::vector<std::shared_ptr<const CacheDomain>>{
        std::make_shared<IcacheDomain>(ic),
        std::make_shared<WritebackDcacheDomain>(dc, 25),
        std::make_shared<TlbDomain>(tlb), std::make_shared<L2Domain>(l2)};
  };
  PwcetOptions ilp_options, tree_options;
  ilp_options.engine = WcetEngine::kIlp;
  tree_options.engine = WcetEngine::kTree;
  const PwcetPipeline via_ilp(p, domains(), ilp_options);
  const PwcetPipeline via_tree(p, domains(), tree_options);
  expect_cycle_equal(static_cast<double>(via_ilp.fault_free_wcet()),
                     static_cast<double>(via_tree.fault_free_wcet()),
                     "pipeline fault-free WCET");
  const FaultModel faults(1e-4);
  for (const Mechanism mech :
       {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
        Mechanism::kReliableWay}) {
    const std::vector<Mechanism> mechanisms(4, mech);
    const auto ilp = via_ilp.analyze(faults, mechanisms);
    const auto tree = via_tree.analyze(faults, mechanisms);
    for (const Probability target : {1e-6, 1e-15})
      expect_cycle_equal(static_cast<double>(ilp.pwcet(target)),
                         static_cast<double>(tree.pwcet(target)),
                         "pipeline pwcet " + mechanism_name(mech));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineRandomTest,
                         ::testing::Range(0, 10));

/// Campaign-level agreement across every new axis (dcache on/off,
/// mechanism pairing, distribution mode), plus the determinism contract:
/// the whole report — scalar and distribution sink — is byte-identical at
/// 1 and N threads, store on or off.
TEST(CrossEngineCampaign, EnginesAgreeAcrossAllAxesAtAnyThreadCount) {
  CampaignSpec spec;
  spec.tasks = {"fibcall", "interp"};
  spec.geometries = {CacheConfig::paper_default()};
  DcacheAxis dcache_on;
  dcache_on.enabled = true;
  dcache_on.geometry.sets = 8;
  spec.dcaches = {DcacheAxis{}, dcache_on};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.dcache_mechanisms = {DcacheMechanism::kSame,
                            DcacheMechanism::kSharedReliableBuffer};
  spec.engines = {WcetEngine::kIlp, WcetEngine::kTree};
  spec.ccdf_exceedances = {1e-6, 1e-15};

  RunnerOptions one_thread;
  one_thread.threads = 1;
  const CampaignResult reference = run_campaign(spec, one_thread);
  const std::string csv = report_csv(reference);
  const std::string dist_csv = report_dist_csv(reference);

  RunnerOptions many_threads;
  many_threads.threads = 4;
  const CampaignResult parallel = run_campaign(spec, many_threads);
  EXPECT_EQ(report_csv(parallel), csv);
  EXPECT_EQ(report_dist_csv(parallel), dist_csv);

  RunnerOptions no_store;
  no_store.threads = 4;
  no_store.store.enabled = false;
  const CampaignResult cold = run_campaign(spec, no_store);
  EXPECT_EQ(report_csv(cold), csv);
  EXPECT_EQ(report_dist_csv(cold), dist_csv);

  // Engine-pair agreement on every cell (engines axis: ilp = 0, tree = 1).
  for (std::size_t t = 0; t < spec.tasks.size(); ++t)
    for (std::size_t m = 0; m < spec.mechanisms.size(); ++m)
      for (std::size_t d = 0; d < spec.dcaches.size(); ++d)
        for (std::size_t dm = 0; dm < spec.dcache_mechanisms.size(); ++dm) {
          const JobResult& ilp = reference.at(t, 0, 0, m, 0, 0, d, dm);
          const JobResult& tree = reference.at(t, 0, 0, m, 1, 0, d, dm);
          expect_cycle_equal(ilp.pwcet, tree.pwcet, ilp.job.id());
          expect_cycle_equal(static_cast<double>(ilp.fault_free_wcet),
                             static_cast<double>(tree.fault_free_wcet),
                             ilp.job.id());
          ASSERT_EQ(ilp.curve.size(), tree.curve.size());
          for (std::size_t i = 0; i < ilp.curve.size(); ++i)
            expect_cycle_equal(ilp.curve[i], tree.curve[i],
                               ilp.job.id() + " curve");
        }
}

/// The same campaign-level contract over the NEW axes: write-back data
/// cache, TLB and shared L2 cells (all routed through the generic
/// pipeline path in the runner), byte-identical across thread counts and
/// with the store off, with ilp/tree agreement on every cell.
TEST(CrossEngineCampaign, NewDomainAxesAgreeAndStayDeterministic) {
  CampaignSpec spec;
  spec.tasks = {"fibcall", "ringbuf"};
  spec.geometries = {CacheConfig::paper_default()};
  DcacheAxis wb_dcache;
  wb_dcache.enabled = true;
  wb_dcache.geometry.sets = 8;
  wb_dcache.policy = WritePolicy::kWriteBack;
  wb_dcache.writeback_penalty = 25;
  spec.dcaches = {DcacheAxis{}, wb_dcache};
  TlbAxis tlb_on;
  tlb_on.enabled = true;
  tlb_on.entries = 16;
  tlb_on.ways = 2;
  tlb_on.page_bytes = 64;
  spec.tlbs = {TlbAxis{}, tlb_on};
  L2Axis l2_on;
  l2_on.enabled = true;
  l2_on.geometry.sets = 32;
  l2_on.geometry.line_bytes = 32;
  l2_on.geometry.hit_latency = 0;
  l2_on.geometry.miss_penalty = 60;
  spec.l2s = {L2Axis{}, l2_on};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer};
  spec.engines = {WcetEngine::kIlp, WcetEngine::kTree};
  spec.ccdf_exceedances = {1e-6, 1e-15};

  RunnerOptions one_thread;
  one_thread.threads = 1;
  const CampaignResult reference = run_campaign(spec, one_thread);
  const std::string csv = report_csv(reference);
  const std::string dist_csv = report_dist_csv(reference);

  RunnerOptions many_threads;
  many_threads.threads = 4;
  const CampaignResult parallel = run_campaign(spec, many_threads);
  EXPECT_EQ(report_csv(parallel), csv);
  EXPECT_EQ(report_dist_csv(parallel), dist_csv);

  RunnerOptions no_store;
  no_store.threads = 4;
  no_store.store.enabled = false;
  const CampaignResult cold = run_campaign(spec, no_store);
  EXPECT_EQ(report_csv(cold), csv);
  EXPECT_EQ(report_dist_csv(cold), dist_csv);

  for (std::size_t t = 0; t < spec.tasks.size(); ++t)
    for (std::size_t m = 0; m < spec.mechanisms.size(); ++m)
      for (std::size_t d = 0; d < spec.dcaches.size(); ++d)
        for (std::size_t tl = 0; tl < spec.tlbs.size(); ++tl)
          for (std::size_t l2 = 0; l2 < spec.l2s.size(); ++l2) {
            const JobResult& ilp =
                reference.at(t, 0, 0, m, 0, 0, d, 0, 0, tl, l2);
            const JobResult& tree =
                reference.at(t, 0, 0, m, 1, 0, d, 0, 0, tl, l2);
            expect_cycle_equal(ilp.pwcet, tree.pwcet, ilp.job.id());
            expect_cycle_equal(static_cast<double>(ilp.fault_free_wcet),
                               static_cast<double>(tree.fault_free_wcet),
                               ilp.job.id());
            // Faulty hardware can only add time: enabling a TLB or L2
            // axis must never lower the bound of the same cell.
            ASSERT_EQ(ilp.curve.size(), tree.curve.size());
            for (std::size_t i = 0; i < ilp.curve.size(); ++i)
              expect_cycle_equal(ilp.curve[i], tree.curve[i],
                                 ilp.job.id() + " curve");
            if (tl > 0 || l2 > 0) {
              const JobResult& base =
                  reference.at(t, 0, 0, m, 0, 0, d, 0, 0, 0, 0);
              EXPECT_GE(ilp.pwcet, base.pwcet) << ilp.job.id();
            }
          }
}

}  // namespace
}  // namespace pwcet
