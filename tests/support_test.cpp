// Unit tests for src/support: RNG, statistics, table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pwcet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleRoughlyUniform) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits += rng.next_bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const SampleSummary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
}

TEST(Stats, SummarizeEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{5.0};
  const SampleSummary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Stats, EmpiricalQuantileEndpointsAndMiddle) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.25), 20.0);
}

TEST(Stats, EmpiricalQuantileUnsortedInput) {
  const std::vector<double> v{50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.5), 30.0);
}

TEST(Stats, QuantileMonotoneInQ) {
  Rng rng(17);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.next_double() * 1000);
  double prev = empirical_quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = empirical_quantile(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Stats, EmpiricalExceedance) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empirical_exceedance(v, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(empirical_exceedance(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(empirical_exceedance(v, 4.0), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_NEAR(geometric_mean(v), 2.0, 1e-12);
  const std::vector<double> same{3.0, 3.0, 3.0};
  EXPECT_NEAR(geometric_mean(same), 3.0, 1e-12);
}

TEST(Table, AlignsColumnsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  // Header + separator + 2 rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("long-name"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 3), "2.000");
  EXPECT_EQ(fmt_prob(1e-15), "1.0e-15");
}

}  // namespace
}  // namespace pwcet
