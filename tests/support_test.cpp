// Unit tests for src/support: RNG, statistics (including the robust
// median/MAD pair benchlib builds on), table formatting, and the JSON
// parser's hostile-input edge cases (nesting depth, lone surrogates,
// overflowing numbers, trailing bytes).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "support/json_doc.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pwcet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleRoughlyUniform) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits += rng.next_bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const SampleSummary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
}

TEST(Stats, SummarizeEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{5.0};
  const SampleSummary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Stats, EmpiricalQuantileEndpointsAndMiddle) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.25), 20.0);
}

TEST(Stats, EmpiricalQuantileUnsortedInput) {
  const std::vector<double> v{50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.5), 30.0);
}

TEST(Stats, QuantileMonotoneInQ) {
  Rng rng(17);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.next_double() * 1000);
  double prev = empirical_quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = empirical_quantile(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Stats, EmpiricalExceedance) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empirical_exceedance(v, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(empirical_exceedance(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(empirical_exceedance(v, 4.0), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_NEAR(geometric_mean(v), 2.0, 1e-12);
  const std::vector<double> same{3.0, 3.0, 3.0};
  EXPECT_NEAR(geometric_mean(same), 3.0, 1e-12);
}

TEST(Stats, MedianOddEvenAndUnsorted) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7.0}), 7.0);
}

TEST(Stats, MedianAbsDeviationIsRobustToOneOutlier) {
  // {1,2,3,4,5}: median 3, |x-3| = {2,1,0,1,2}, MAD = 1.
  EXPECT_DOUBLE_EQ(
      median_abs_deviation(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}),
      1.0);
  // Replacing the max with a huge outlier leaves the MAD unchanged —
  // the property the bench noise band depends on (stddev would explode).
  EXPECT_DOUBLE_EQ(
      median_abs_deviation(std::vector<double>{1.0, 2.0, 3.0, 4.0, 1e9}),
      1.0);
  EXPECT_DOUBLE_EQ(median_abs_deviation(std::vector<double>{5.0, 5.0}), 0.0);
}

// ---- json_doc hostile inputs ----------------------------------------------

std::string nested_arrays(int depth) {
  return std::string(depth, '[') + "1" + std::string(depth, ']');
}

TEST(JsonDoc, RejectsNestingBeyondTheDepthLimit) {
  try {
    parse_json(nested_arrays(300), "<deep>");
    FAIL() << "300-deep nesting unexpectedly parsed";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }
}

TEST(JsonDoc, AcceptsDeepButBoundedNesting) {
  const Json doc = parse_json(nested_arrays(200), "<deep-ok>");
  const Json* cursor = &doc;
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(cursor->type, Json::Type::kArray);
    ASSERT_EQ(cursor->array.size(), 1u);
    cursor = &cursor->array[0];
  }
  EXPECT_EQ(cursor->integer, 1u);
}

TEST(JsonDoc, RejectsLoneSurrogates) {
  // A high surrogate with no low half, and a bare low surrogate: both are
  // ill-formed UTF-16 escapes, not encodable code points.
  EXPECT_THROW(parse_json("\"\\ud800\"", "<surrogate>"), JsonParseError);
  EXPECT_THROW(parse_json("\"\\udc00\"", "<surrogate>"), JsonParseError);
  // A proper pair still decodes.
  const Json ok = parse_json("\"\\ud83d\\ude00\"", "<pair>");
  EXPECT_EQ(ok.string, "\xF0\x9F\x98\x80");
}

TEST(JsonDoc, RejectsNumbersOverflowingADouble) {
  try {
    parse_json("1e999", "<overflow>");
    FAIL() << "1e999 unexpectedly parsed";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
  }
  // Underflow-to-zero is representable, not an error.
  EXPECT_DOUBLE_EQ(parse_json("1e-999", "<underflow>").number, 0.0);
}

TEST(JsonDoc, RejectsTrailingBytesAfterTheDocument) {
  EXPECT_THROW(parse_json("{} x", "<trailing>"), JsonParseError);
  EXPECT_THROW(parse_json("1 2", "<trailing>"), JsonParseError);
}

TEST(Table, AlignsColumnsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  // Header + separator + 2 rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("long-name"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 3), "2.000");
  EXPECT_EQ(fmt_prob(1e-15), "1.0e-15");
}

}  // namespace
}  // namespace pwcet
