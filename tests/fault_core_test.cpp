// Tests for the fault model (paper Eq. 1-3) and the top-level pWCET
// analyzer (§III-B, Fig. 3/4 machinery), including a Monte-Carlo
// domination check of the convolved penalty distribution.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pwcet_analyzer.hpp"
#include "fault/fault_map.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

TEST(FaultModel, Equation1BlockFailure) {
  const CacheConfig c = CacheConfig::paper_default();  // 16 B = 128 bits
  const FaultModel m(1e-4);
  const double expected = 1.0 - std::pow(1.0 - 1e-4, 128);
  EXPECT_NEAR(m.block_failure_probability(c), expected, 1e-12);
}

TEST(FaultModel, Equation1TinyPfailPrecision) {
  // At pfail = 6.1e-13 (the 45nm value of the resilience roadmap cited in
  // §I), pbf ~ K * pfail; the naive pow() formulation would lose this.
  const CacheConfig c = CacheConfig::paper_default();
  const FaultModel m(6.1e-13);
  EXPECT_NEAR(m.block_failure_probability(c), 128 * 6.1e-13, 1e-17);
}

TEST(FaultModel, Equation2And3Pmfs) {
  const CacheConfig c = CacheConfig::paper_default();
  const FaultModel m(1e-4);
  const auto none = m.way_failure_pmf(c, Mechanism::kNone);
  const auto srb = m.way_failure_pmf(c, Mechanism::kSharedReliableBuffer);
  const auto rw = m.way_failure_pmf(c, Mechanism::kReliableWay);
  EXPECT_EQ(none.size(), 5u);  // f = 0..4 (Eq. 2)
  EXPECT_EQ(srb.size(), 5u);   // SRB does not change the fault law
  EXPECT_EQ(rw.size(), 4u);    // f = 0..3 (Eq. 3): no fully faulty set
  EXPECT_EQ(none, srb);
  double sum = 0.0;
  for (double x : rw) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FaultModel, ZeroPfailIsFaultFree) {
  const CacheConfig c = CacheConfig::paper_default();
  const FaultModel m(0.0);
  EXPECT_DOUBLE_EQ(m.block_failure_probability(c), 0.0);
  const auto pmf = m.way_failure_pmf(c, Mechanism::kNone);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
}

class AnalyzerInvariantsTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const PwcetAnalyzer& analyzer(const std::string& name) {
    // Cache analyzers across test cases (program construction + FMM is the
    // expensive part).
    static std::map<std::string, std::unique_ptr<PwcetAnalyzer>> cache;
    static std::map<std::string, std::unique_ptr<Program>> programs;
    auto it = cache.find(name);
    if (it == cache.end()) {
      programs[name] = std::make_unique<Program>(workloads::build(name));
      PwcetOptions options;
      options.engine = WcetEngine::kTree;  // fast; equivalence tested apart
      cache[name] = std::make_unique<PwcetAnalyzer>(
          *programs[name], CacheConfig::paper_default(), options);
      it = cache.find(name);
    }
    return *it->second;
  }
};

TEST_P(AnalyzerInvariantsTest, PwcetAtLeastFaultFree) {
  const auto& a = analyzer(GetParam());
  const FaultModel faults(1e-4);
  for (const Mechanism m : {Mechanism::kNone, Mechanism::kReliableWay,
                            Mechanism::kSharedReliableBuffer}) {
    const auto r = a.analyze(faults, m);
    EXPECT_GE(r.pwcet(1e-15), a.fault_free_wcet());
    EXPECT_GE(r.pwcet(1e-3), a.fault_free_wcet());
  }
}

TEST_P(AnalyzerInvariantsTest, MechanismsNeverHurt) {
  const auto& a = analyzer(GetParam());
  const FaultModel faults(1e-4);
  const auto none = a.analyze(faults, Mechanism::kNone);
  const auto rw = a.analyze(faults, Mechanism::kReliableWay);
  const auto srb = a.analyze(faults, Mechanism::kSharedReliableBuffer);
  for (double p : {1e-6, 1e-9, 1e-12, 1e-15}) {
    EXPECT_LE(rw.pwcet(p), none.pwcet(p)) << "p=" << p;
    EXPECT_LE(srb.pwcet(p), none.pwcet(p)) << "p=" << p;
  }
}

TEST_P(AnalyzerInvariantsTest, PwcetMonotoneInTargetProbability) {
  const auto& a = analyzer(GetParam());
  const FaultModel faults(1e-4);
  const auto r = a.analyze(faults, Mechanism::kNone);
  Cycles prev = r.pwcet(1e-3);
  for (double p : {1e-6, 1e-9, 1e-12, 1e-15, 1e-18}) {
    const Cycles cur = r.pwcet(p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST_P(AnalyzerInvariantsTest, PwcetMonotoneInPfail) {
  const auto& a = analyzer(GetParam());
  Cycles prev = a.fault_free_wcet();
  for (double pfail : {1e-7, 1e-6, 1e-5, 1e-4, 1e-3}) {
    const auto r = a.analyze(FaultModel(pfail), Mechanism::kNone);
    const Cycles cur = r.pwcet(1e-15);
    EXPECT_GE(cur, prev) << "pfail=" << pfail;
    prev = cur;
  }
}

TEST_P(AnalyzerInvariantsTest, VanishingPfailRecoversFaultFree) {
  const auto& a = analyzer(GetParam());
  const auto r = a.analyze(FaultModel(0.0), Mechanism::kNone);
  EXPECT_EQ(r.pwcet(1e-15), a.fault_free_wcet());
  EXPECT_EQ(r.penalty.max_value(), 0);
}

TEST_P(AnalyzerInvariantsTest, PenaltyDistributionWellFormed) {
  const auto& a = analyzer(GetParam());
  const auto r = a.analyze(FaultModel(1e-4), Mechanism::kSharedReliableBuffer);
  EXPECT_NEAR(r.penalty.total_mass(), 1.0, 1e-6);
  EXPECT_GE(r.penalty.min_value(), 0);
  // CCDF is monotone non-increasing.
  const auto points = r.ccdf();
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].wcet, points[i - 1].wcet);
    EXPECT_LE(points[i].exceedance, points[i - 1].exceedance + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, AnalyzerInvariantsTest,
                         ::testing::Values("fibcall", "bs", "matmult", "crc",
                                           "adpcm", "fft", "ud", "nsichneu"),
                         [](const auto& info) { return info.param; });

TEST(Analyzer, ExceedanceQuantileConsistency) {
  const Program p = workloads::build("matmult");
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const PwcetAnalyzer a(p, CacheConfig::paper_default(), options);
  const auto r = a.analyze(FaultModel(1e-4), Mechanism::kNone);
  for (double prob : {1e-6, 1e-10, 1e-15}) {
    const Cycles v = r.pwcet(prob);
    EXPECT_LE(r.exceedance(v), prob);          // v is safe at level prob
    EXPECT_GT(r.exceedance(v - 101), prob);    // and tight to one penalty
  }
}

TEST(Analyzer, PenaltyDistributionDominatesMonteCarlo) {
  // Sample fault maps, evaluate the *model* penalty sum_s FMM[s][f_s], and
  // check the analytic convolution dominates the empirical distribution —
  // this exercises binomial law + convolution + coalescing end to end.
  const Program p = workloads::build("cnt");
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const CacheConfig c = CacheConfig::paper_default();
  const PwcetAnalyzer a(p, c, options);
  // Large pfail so the Monte-Carlo sees non-trivial fault counts.
  const double pfail = 0.005;
  const FaultModel faults(pfail);
  const auto r = a.analyze(faults, Mechanism::kNone);
  const double pbf = faults.block_failure_probability(c);

  Rng rng(97);
  const int n = 20000;
  std::vector<double> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    const FaultMap map = FaultMap::sample(c, pbf, rng);
    double misses = 0.0;
    for (SetIndex s = 0; s < c.sets; ++s)
      misses += a.fmm_bundle().none.at(s, map.faulty_count(s));
    samples.push_back(misses * static_cast<double>(c.miss_penalty));
  }
  // At several thresholds: model exceedance >= empirical - sampling noise.
  for (double q : {0.5, 0.9, 0.99}) {
    const double threshold = empirical_quantile(samples, q);
    const double empirical = empirical_exceedance(samples, threshold);
    const double model =
        r.penalty.exceedance(static_cast<Cycles>(threshold));
    EXPECT_GE(model + 3.0 * std::sqrt(empirical / n) + 1e-9, empirical)
        << "q=" << q;
  }
}

TEST(Analyzer, IlpAndTreeEnginesAgreeEndToEnd) {
  const Program p = workloads::build("expint");
  const CacheConfig c = CacheConfig::paper_default();
  PwcetOptions tree_opts;
  tree_opts.engine = WcetEngine::kTree;
  PwcetOptions ilp_opts;
  ilp_opts.engine = WcetEngine::kIlp;
  const PwcetAnalyzer via_tree(p, c, tree_opts);
  const PwcetAnalyzer via_ilp(p, c, ilp_opts);
  EXPECT_EQ(via_tree.fault_free_wcet(), via_ilp.fault_free_wcet());
  const FaultModel faults(1e-4);
  for (const Mechanism m : {Mechanism::kNone, Mechanism::kReliableWay,
                            Mechanism::kSharedReliableBuffer}) {
    EXPECT_EQ(via_tree.analyze(faults, m).pwcet(1e-15),
              via_ilp.analyze(faults, m).pwcet(1e-15));
  }
}

TEST(Analyzer, CoarserCoalescingStaysConservative) {
  // Fewer support points => the quantile can only move up (sound).
  const Program p = workloads::build("statemate");
  const CacheConfig c = CacheConfig::paper_default();
  PwcetOptions fine;
  fine.engine = WcetEngine::kTree;
  fine.max_distribution_points = 4096;
  PwcetOptions coarse = fine;
  coarse.max_distribution_points = 16;
  const PwcetAnalyzer a_fine(p, c, fine);
  const PwcetAnalyzer a_coarse(p, c, coarse);
  const FaultModel faults(1e-4);
  const auto r_fine = a_fine.analyze(faults, Mechanism::kNone);
  const auto r_coarse = a_coarse.analyze(faults, Mechanism::kNone);
  for (double prob : {1e-6, 1e-10, 1e-15})
    EXPECT_GE(r_coarse.pwcet(prob), r_fine.pwcet(prob));
}

}  // namespace
}  // namespace pwcet
