// Exhaustive-oracle tests: on deliberately tiny programs and caches,
// enumerate EVERY structurally valid path and EVERY fault pattern, compute
// the exact worst-case behaviour by brute force, and check the analysis
// from above. This removes any reliance on sampling in the soundness
// argument for the small regime.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "cache/references.hpp"
#include "core/pwcet_analyzer.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/fmm.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {
namespace {

/// Returns every block sequence subtree `t` can execute (all branch
/// combinations x all loop iteration counts in [0, bound]).
std::vector<std::vector<BlockId>> paths_of(const Program& p, TreeId t) {
  const TreeNode& n = p.tree_node(t);
  switch (n.kind) {
    case TreeKind::kLeaf:
      return {{n.block}};
    case TreeKind::kSeq: {
      std::vector<std::vector<BlockId>> acc{{}};
      for (TreeId c : n.children) {
        const auto child = paths_of(p, c);
        std::vector<std::vector<BlockId>> next;
        next.reserve(acc.size() * child.size());
        for (const auto& a : acc)
          for (const auto& b : child) {
            auto merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        acc = std::move(next);
      }
      return acc;
    }
    case TreeKind::kAlt: {
      std::vector<std::vector<BlockId>> acc;
      for (TreeId c : n.children) {
        auto child = paths_of(p, c);
        acc.insert(acc.end(), child.begin(), child.end());
      }
      return acc;
    }
    case TreeKind::kLoop: {
      const auto header = paths_of(p, n.children[0]);
      const auto body = paths_of(p, n.children[1]);
      std::vector<std::vector<BlockId>> acc;
      // k iterations: header (body header)^k, k in [0, bound].
      std::vector<std::vector<BlockId>> k_paths = header;
      for (std::int64_t k = 0; k <= n.bound; ++k) {
        acc.insert(acc.end(), k_paths.begin(), k_paths.end());
        if (k == n.bound) break;
        std::vector<std::vector<BlockId>> next;
        for (const auto& prefix : k_paths)
          for (const auto& b : body)
            for (const auto& h : header) {
              auto merged = prefix;
              merged.insert(merged.end(), b.begin(), b.end());
              merged.insert(merged.end(), h.begin(), h.end());
              next.push_back(std::move(merged));
            }
        k_paths = std::move(next);
      }
      return acc;
    }
  }
  return {};
}

Program tiny_program() {
  ProgramBuilder b("tiny");
  const StmtId body = b.seq({
      b.code(6),
      b.if_else(2, b.code(4), b.code(7)),
  });
  b.add_function("main", b.seq({
                             b.code(5),
                             b.loop(1, 2, body),
                             b.if_then(1, b.code(3)),
                         }));
  return b.build(0);
}

CacheConfig tiny_cache() {
  CacheConfig c;
  c.sets = 2;
  c.ways = 2;
  c.line_bytes = 8;
  return c;
}

/// All fault maps of a sets x ways cache (one bit per block).
std::vector<FaultMap> all_fault_maps(const CacheConfig& c) {
  const std::uint32_t blocks = c.sets * c.ways;
  std::vector<FaultMap> maps;
  for (std::uint32_t bits = 0; bits < (1u << blocks); ++bits) {
    FaultMap m(c.sets, c.ways);
    for (std::uint32_t i = 0; i < blocks; ++i)
      if (bits & (1u << i)) m.set_faulty(i / c.ways, i % c.ways, true);
    maps.push_back(std::move(m));
  }
  return maps;
}

TEST(ExhaustiveOracle, PathEnumerationMatchesCounts) {
  const Program p = tiny_program();
  const auto paths = paths_of(p, p.tree_root());
  // Loop: k=0 -> 1, k=1 -> 2 arms, k=2 -> 4; total 1+2+4 = 7 loop variants;
  // trailing if_then doubles: 14 paths.
  EXPECT_EQ(paths.size(), 14u);
}

TEST(ExhaustiveOracle, FaultFreeWcetIsExactMaximum) {
  const Program p = tiny_program();
  const CacheConfig c = tiny_cache();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const double wcet = tree_maximize(p, build_time_cost_model(p.cfg(), refs,
                                                             cls, c));
  double exact_worst = 0.0;
  for (const auto& path : paths_of(p, p.tree_root())) {
    const auto trace = fetch_trace(p.cfg(), path);
    const auto stats =
        simulate_trace(c, FaultMap::none(c), Mechanism::kNone, trace);
    exact_worst = std::max(exact_worst, static_cast<double>(stats.cycles));
  }
  EXPECT_GE(wcet, exact_worst);  // soundness
  // Tightness on this tiny program: the analysis is off by at most the
  // cold misses it conservatively re-charges (first-miss accounting).
  EXPECT_LE(wcet, exact_worst * 1.25);
}

TEST(ExhaustiveOracle, PenaltyBoundSoundForAllPathsAndFaultPatterns) {
  const Program p = tiny_program();
  const CacheConfig c = tiny_cache();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const double wcet_ff = tree_maximize(
      p, build_time_cost_model(p.cfg(), refs, cls, c));
  const FmmBundle fmm =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);

  const auto paths = paths_of(p, p.tree_root());
  for (const FaultMap& map : all_fault_maps(c)) {
    for (const Mechanism mech :
         {Mechanism::kNone, Mechanism::kReliableWay,
          Mechanism::kSharedReliableBuffer}) {
      double misses = 0.0;
      for (SetIndex s = 0; s < c.sets; ++s) {
        std::uint32_t f = map.faulty_count(s);
        if (mech == Mechanism::kReliableWay && map.is_faulty(s, 0)) f -= 1;
        misses += fmm.of(mech).at(s, f);
      }
      const double bound =
          wcet_ff + static_cast<double>(c.miss_penalty) * misses;
      for (const auto& path : paths) {
        const auto trace = fetch_trace(p.cfg(), path);
        const auto stats = simulate_trace(c, map, mech, trace);
        ASSERT_LE(static_cast<double>(stats.cycles), bound + 1e-6)
            << "mech=" << mechanism_name(mech);
      }
    }
  }
}

TEST(ExhaustiveOracle, ExactPenaltyDistributionDominated) {
  // Build the EXACT distribution of the model penalty over all fault maps
  // weighted by their probability, and verify the analyzer's (coalesced)
  // distribution dominates it pointwise.
  const Program p = tiny_program();
  const CacheConfig c = tiny_cache();
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  options.max_distribution_points = 8;  // force visible coalescing
  const PwcetAnalyzer a(p, c, options);
  const double pfail = 0.01;
  const FaultModel faults(pfail);
  const auto result = a.analyze(faults, Mechanism::kNone);
  const double pbf = faults.block_failure_probability(c);

  std::vector<ProbabilityAtom> atoms;
  for (const FaultMap& map : all_fault_maps(c)) {
    double prob = 1.0;
    std::uint32_t faulty = 0;
    for (SetIndex s = 0; s < c.sets; ++s) faulty += map.faulty_count(s);
    prob = std::pow(pbf, faulty) *
           std::pow(1 - pbf, c.sets * c.ways - faulty);
    double misses = 0.0;
    for (SetIndex s = 0; s < c.sets; ++s)
      misses += a.fmm_bundle().none.at(s, map.faulty_count(s));
    atoms.push_back(
        {static_cast<Cycles>(misses) * c.miss_penalty, prob});
  }
  const auto exact = DiscreteDistribution::from_atoms(atoms);
  EXPECT_TRUE(result.penalty.dominates(exact, 1e-9));
}

}  // namespace
}  // namespace pwcet
