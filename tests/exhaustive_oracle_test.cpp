// Exhaustive-oracle tests: on deliberately tiny programs and caches,
// enumerate EVERY structurally valid path and EVERY fault pattern, compute
// the exact worst-case behaviour by brute force, and check the analysis
// from above. This removes any reliance on sampling in the soundness
// argument for the small regime.
//
// The RandomOracle suite extends the argument property-based: a seeded
// sweep over randomized small programs x cache geometries x pfail x
// mechanism, asserting that the analytic SPTA pWCET distribution
// stochastically dominates the exhaustive fault-enumeration distribution
// (the TRUE worst case per fault pattern, maximized over every path by
// simulation) at every probability point — for the instruction cache and
// for the combined I+D path.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/dcache_domain.hpp"
#include "analysis/icache_domain.hpp"
#include "analysis/l2_domain.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/tlb_domain.hpp"
#include "analysis/writeback_dcache_domain.hpp"
#include "cache/references.hpp"
#include "core/pwcet_analyzer.hpp"
#include "dcache/dcache_analysis.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "store/analysis_store.hpp"
#include "support/rng.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/fmm.hpp"
#include "wcet/tree_engine.hpp"
#include "workloads/random_program.hpp"

namespace pwcet {
namespace {

/// Returns every block sequence subtree `t` can execute (all branch
/// combinations x all loop iteration counts in [0, bound]).
std::vector<std::vector<BlockId>> paths_of(const Program& p, TreeId t) {
  const TreeNode& n = p.tree_node(t);
  switch (n.kind) {
    case TreeKind::kLeaf:
      return {{n.block}};
    case TreeKind::kSeq: {
      std::vector<std::vector<BlockId>> acc{{}};
      for (TreeId c : n.children) {
        const auto child = paths_of(p, c);
        std::vector<std::vector<BlockId>> next;
        next.reserve(acc.size() * child.size());
        for (const auto& a : acc)
          for (const auto& b : child) {
            auto merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        acc = std::move(next);
      }
      return acc;
    }
    case TreeKind::kAlt: {
      std::vector<std::vector<BlockId>> acc;
      for (TreeId c : n.children) {
        auto child = paths_of(p, c);
        acc.insert(acc.end(), child.begin(), child.end());
      }
      return acc;
    }
    case TreeKind::kLoop: {
      const auto header = paths_of(p, n.children[0]);
      const auto body = paths_of(p, n.children[1]);
      std::vector<std::vector<BlockId>> acc;
      // k iterations: header (body header)^k, k in [0, bound].
      std::vector<std::vector<BlockId>> k_paths = header;
      for (std::int64_t k = 0; k <= n.bound; ++k) {
        acc.insert(acc.end(), k_paths.begin(), k_paths.end());
        if (k == n.bound) break;
        std::vector<std::vector<BlockId>> next;
        for (const auto& prefix : k_paths)
          for (const auto& b : body)
            for (const auto& h : header) {
              auto merged = prefix;
              merged.insert(merged.end(), b.begin(), b.end());
              merged.insert(merged.end(), h.begin(), h.end());
              next.push_back(std::move(merged));
            }
        k_paths = std::move(next);
      }
      return acc;
    }
  }
  return {};
}

Program tiny_program() {
  ProgramBuilder b("tiny");
  const StmtId body = b.seq({
      b.code(6),
      b.if_else(2, b.code(4), b.code(7)),
  });
  b.add_function("main", b.seq({
                             b.code(5),
                             b.loop(1, 2, body),
                             b.if_then(1, b.code(3)),
                         }));
  return b.build(0);
}

CacheConfig tiny_cache() {
  CacheConfig c;
  c.sets = 2;
  c.ways = 2;
  c.line_bytes = 8;
  return c;
}

/// All fault maps of a sets x ways cache (one bit per block).
std::vector<FaultMap> all_fault_maps(const CacheConfig& c) {
  const std::uint32_t blocks = c.sets * c.ways;
  std::vector<FaultMap> maps;
  for (std::uint32_t bits = 0; bits < (1u << blocks); ++bits) {
    FaultMap m(c.sets, c.ways);
    for (std::uint32_t i = 0; i < blocks; ++i)
      if (bits & (1u << i)) m.set_faulty(i / c.ways, i % c.ways, true);
    maps.push_back(std::move(m));
  }
  return maps;
}

TEST(ExhaustiveOracle, PathEnumerationMatchesCounts) {
  const Program p = tiny_program();
  const auto paths = paths_of(p, p.tree_root());
  // Loop: k=0 -> 1, k=1 -> 2 arms, k=2 -> 4; total 1+2+4 = 7 loop variants;
  // trailing if_then doubles: 14 paths.
  EXPECT_EQ(paths.size(), 14u);
}

TEST(ExhaustiveOracle, FaultFreeWcetIsExactMaximum) {
  const Program p = tiny_program();
  const CacheConfig c = tiny_cache();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const double wcet = tree_maximize(p, build_time_cost_model(p.cfg(), refs,
                                                             cls, c));
  double exact_worst = 0.0;
  for (const auto& path : paths_of(p, p.tree_root())) {
    const auto trace = fetch_trace(p.cfg(), path);
    const auto stats =
        simulate_trace(c, FaultMap::none(c), Mechanism::kNone, trace);
    exact_worst = std::max(exact_worst, static_cast<double>(stats.cycles));
  }
  EXPECT_GE(wcet, exact_worst);  // soundness
  // Tightness on this tiny program: the analysis is off by at most the
  // cold misses it conservatively re-charges (first-miss accounting).
  EXPECT_LE(wcet, exact_worst * 1.25);
}

TEST(ExhaustiveOracle, PenaltyBoundSoundForAllPathsAndFaultPatterns) {
  const Program p = tiny_program();
  const CacheConfig c = tiny_cache();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const double wcet_ff = tree_maximize(
      p, build_time_cost_model(p.cfg(), refs, cls, c));
  const FmmBundle fmm =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);

  const auto paths = paths_of(p, p.tree_root());
  for (const FaultMap& map : all_fault_maps(c)) {
    for (const Mechanism mech :
         {Mechanism::kNone, Mechanism::kReliableWay,
          Mechanism::kSharedReliableBuffer}) {
      double misses = 0.0;
      for (SetIndex s = 0; s < c.sets; ++s) {
        std::uint32_t f = map.faulty_count(s);
        if (mech == Mechanism::kReliableWay && map.is_faulty(s, 0)) f -= 1;
        misses += fmm.of(mech).at(s, f);
      }
      const double bound =
          wcet_ff + static_cast<double>(c.miss_penalty) * misses;
      for (const auto& path : paths) {
        const auto trace = fetch_trace(p.cfg(), path);
        const auto stats = simulate_trace(c, map, mech, trace);
        ASSERT_LE(static_cast<double>(stats.cycles), bound + 1e-6)
            << "mech=" << mechanism_name(mech);
      }
    }
  }
}

TEST(ExhaustiveOracle, ExactPenaltyDistributionDominated) {
  // Build the EXACT distribution of the model penalty over all fault maps
  // weighted by their probability, and verify the analyzer's (coalesced)
  // distribution dominates it pointwise.
  const Program p = tiny_program();
  const CacheConfig c = tiny_cache();
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  options.max_distribution_points = 8;  // force visible coalescing
  const PwcetAnalyzer a(p, c, options);
  const double pfail = 0.01;
  const FaultModel faults(pfail);
  const auto result = a.analyze(faults, Mechanism::kNone);
  const double pbf = faults.block_failure_probability(c);

  std::vector<ProbabilityAtom> atoms;
  for (const FaultMap& map : all_fault_maps(c)) {
    double prob = 1.0;
    std::uint32_t faulty = 0;
    for (SetIndex s = 0; s < c.sets; ++s) faulty += map.faulty_count(s);
    prob = std::pow(pbf, faulty) *
           std::pow(1 - pbf, c.sets * c.ways - faulty);
    double misses = 0.0;
    for (SetIndex s = 0; s < c.sets; ++s)
      misses += a.fmm_bundle().none.at(s, map.faulty_count(s));
    atoms.push_back(
        {static_cast<Cycles>(misses) * c.miss_penalty, prob});
  }
  const auto exact = DiscreteDistribution::from_atoms(atoms);
  EXPECT_TRUE(result.penalty.dominates(exact, 1e-9));
}

// ---------------------------------------------------------------------------
// Property-based soundness: randomized programs against the exhaustive
// fault-enumeration oracle.
// ---------------------------------------------------------------------------

/// Generation parameters small enough that full path x fault-map
/// enumeration stays cheap (tiny nesting, tiny loop bounds).
workloads::RandomProgramParams oracle_params(bool with_data_loads) {
  workloads::RandomProgramParams params;
  params.max_depth = 4;
  params.max_children = 3;
  params.max_code_lines = 4;
  params.max_loop_bound = 2;
  params.max_functions = 2;
  params.max_heavy_fetches = 4000;
  if (with_data_loads) {
    params.max_data_loads = 3;
    params.data_pool_words = 16;  // force line sharing in a tiny dcache
  }
  return params;
}

/// Exhaustive path set, bounded on both sides: degenerate programs (a
/// straight line has nothing to maximize over) and path-count explosions
/// are both replaced by the next attempt (deterministically), keeping the
/// sweep cheap while guaranteeing every checked program has real branch /
/// loop structure.
Program oracle_program(std::uint64_t seed,
                       const workloads::RandomProgramParams& params,
                       std::vector<std::vector<BlockId>>& paths) {
  for (std::uint64_t attempt = 0;; ++attempt) {
    Rng rng(Rng::derive_seed(seed, attempt));
    Program p = workloads::random_program(rng, params);
    paths = paths_of(p, p.tree_root());
    if (paths.size() >= 8 && paths.size() <= 512 &&
        heavy_walk_fetch_count(p) >= 50)
      return p;
  }
}

Program oracle_program(std::uint64_t seed, bool with_data_loads,
                       std::vector<std::vector<BlockId>>& paths) {
  return oracle_program(seed, oracle_params(with_data_loads), paths);
}

/// Generation parameters for the store-bearing sweeps (write-back d-cache,
/// TLB, shared L2): loads *and* stores, drawn from tiny pools so streams
/// collide in the tiny secondary caches.
workloads::RandomProgramParams oracle_params_with_stores() {
  workloads::RandomProgramParams params = oracle_params(true);
  params.max_data_stores = 2;
  return params;
}

/// The unified per-path access stream — per block: instruction fetches,
/// then loads, then stores — mirroring extract_unified_references' order
/// (the TLB / shared-L2 reference stream, before line merging).
std::vector<Address> unified_trace(const ControlFlowGraph& cfg,
                                   const std::vector<BlockId>& path) {
  std::vector<Address> out;
  for (const BlockId blk : path) {
    const BasicBlock& b = cfg.block(blk);
    for (std::uint32_t i = 0; i < b.instruction_count; ++i)
      out.push_back(b.first_address + i * kInstructionBytes);
    out.insert(out.end(), b.data_addresses.begin(), b.data_addresses.end());
    out.insert(out.end(), b.store_addresses.begin(),
               b.store_addresses.end());
  }
  return out;
}

/// Per-path data accesses as (address, is_store), loads before stores per
/// block — extract_data_access_references' order.
std::vector<std::pair<Address, bool>> data_access_trace(
    const ControlFlowGraph& cfg, const std::vector<BlockId>& path) {
  std::vector<std::pair<Address, bool>> out;
  for (const BlockId blk : path) {
    const BasicBlock& b = cfg.block(blk);
    for (const Address a : b.data_addresses) out.emplace_back(a, false);
    for (const Address a : b.store_addresses) out.emplace_back(a, true);
  }
  return out;
}

/// P[map] under independent per-block failures with probability pbf. For
/// the RW the hardened way 0 cannot fail: maps touching it have
/// probability zero and are skipped by the caller; the remaining blocks
/// count sets x (ways - 1).
double map_probability(const FaultMap& map, const CacheConfig& c,
                       Mechanism mech, double pbf) {
  std::uint32_t faulty = 0;
  for (SetIndex s = 0; s < c.sets; ++s) faulty += map.faulty_count(s);
  const std::uint32_t blocks =
      mech == Mechanism::kReliableWay ? c.sets * (c.ways - 1)
                                      : c.sets * c.ways;
  return std::pow(pbf, faulty) * std::pow(1.0 - pbf, blocks - faulty);
}

bool touches_hardened_way(const FaultMap& map, const CacheConfig& c) {
  for (SetIndex s = 0; s < c.sets; ++s)
    if (map.is_faulty(s, 0)) return true;
  return false;
}

class RandomOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomOracleTest, IcachePwcetDominatesExhaustiveDistribution) {
  std::vector<std::vector<BlockId>> paths;
  const Program p =
      oracle_program(0x1ce00000 + static_cast<std::uint64_t>(GetParam()),
                     /*with_data_loads=*/false, paths);
  const CacheConfig c = tiny_cache();
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  options.max_distribution_points = 64;  // visible coalescing
  const PwcetAnalyzer analyzer(p, c, options);

  std::vector<std::vector<Address>> traces;
  traces.reserve(paths.size());
  for (const auto& path : paths)
    traces.push_back(fetch_trace(p.cfg(), path));

  const std::vector<FaultMap> maps = all_fault_maps(c);
  for (const Mechanism mech :
       {Mechanism::kNone, Mechanism::kReliableWay,
        Mechanism::kSharedReliableBuffer}) {
    // TRUE worst case per fault pattern: maximize the simulator over every
    // structurally valid path (pfail-independent; shared across pfails).
    std::vector<double> worst(maps.size(), 0.0);
    for (std::size_t m = 0; m < maps.size(); ++m) {
      if (mech == Mechanism::kReliableWay && touches_hardened_way(maps[m], c))
        continue;  // hardened cells cannot fail: zero-probability pattern
      for (const auto& trace : traces)
        worst[m] = std::max(
            worst[m], static_cast<double>(
                          simulate_trace(c, maps[m], mech, trace).cycles));
    }

    for (const double pfail : {0.01, 0.25}) {
      const FaultModel faults(pfail);
      const double pbf = faults.block_failure_probability(c);
      std::vector<ProbabilityAtom> atoms;
      for (std::size_t m = 0; m < maps.size(); ++m) {
        if (mech == Mechanism::kReliableWay &&
            touches_hardened_way(maps[m], c))
          continue;
        atoms.push_back({static_cast<Cycles>(worst[m]),
                         map_probability(maps[m], c, mech, pbf)});
      }
      const DiscreteDistribution exact =
          DiscreteDistribution::from_atoms(atoms);

      const PwcetResult result = analyzer.analyze(faults, mech);
      const DiscreteDistribution analytic =
          result.penalty.shift(result.fault_free_wcet);
      EXPECT_TRUE(analytic.dominates(exact, 1e-9))
          << "mech=" << mechanism_name(mech) << " pfail=" << pfail
          << " paths=" << paths.size();
    }
  }
}

TEST_P(RandomOracleTest, ReweightedPfailSweepDominatesExhaustive) {
  // The re-weighted path against the oracle wall: a pfail LADDER is
  // analyzed through ONE pipeline instance with a live store, so every
  // point after the first reuses the cached pwcet-bundle-v1 scaffold and
  // only re-weights it. Each point must still dominate the exhaustive
  // fault-enumeration distribution — soundness survives the sharing.
  std::vector<std::vector<BlockId>> paths;
  const Program p =
      oracle_program(0x4eb00000 + static_cast<std::uint64_t>(GetParam()),
                     /*with_data_loads=*/false, paths);
  const CacheConfig c = tiny_cache();
  AnalysisStore store;
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  options.max_distribution_points = 64;  // visible coalescing
  options.store = &store;
  const PwcetPipeline pipeline(p, {std::make_shared<IcacheDomain>(c)},
                               options);

  std::vector<std::vector<Address>> traces;
  traces.reserve(paths.size());
  for (const auto& path : paths)
    traces.push_back(fetch_trace(p.cfg(), path));

  const std::vector<FaultMap> maps = all_fault_maps(c);
  for (const Mechanism mech :
       {Mechanism::kNone, Mechanism::kReliableWay,
        Mechanism::kSharedReliableBuffer}) {
    std::vector<double> worst(maps.size(), 0.0);
    for (std::size_t m = 0; m < maps.size(); ++m) {
      if (mech == Mechanism::kReliableWay && touches_hardened_way(maps[m], c))
        continue;
      for (const auto& trace : traces)
        worst[m] = std::max(
            worst[m], static_cast<double>(
                          simulate_trace(c, maps[m], mech, trace).cycles));
    }

    for (const double pfail : {0.001, 0.01, 0.1, 0.25, 0.5}) {
      const FaultModel faults(pfail);
      const double pbf = faults.block_failure_probability(c);
      std::vector<ProbabilityAtom> atoms;
      for (std::size_t m = 0; m < maps.size(); ++m) {
        if (mech == Mechanism::kReliableWay &&
            touches_hardened_way(maps[m], c))
          continue;
        atoms.push_back({static_cast<Cycles>(worst[m]),
                         map_probability(maps[m], c, mech, pbf)});
      }
      const DiscreteDistribution exact =
          DiscreteDistribution::from_atoms(atoms);

      const PwcetResult result = pipeline.analyze(faults, mech);
      const DiscreteDistribution analytic =
          result.penalty.shift(result.fault_free_wcet);
      EXPECT_TRUE(analytic.dominates(exact, 1e-9))
          << "mech=" << mechanism_name(mech) << " pfail=" << pfail
          << " paths=" << paths.size();
    }
  }
}

TEST_P(RandomOracleTest, DcachePwcetDominatesExhaustiveDistribution) {
  std::vector<std::vector<BlockId>> paths;
  const Program p =
      oracle_program(0xdada0000 + static_cast<std::uint64_t>(GetParam()),
                     /*with_data_loads=*/true, paths);
  const CacheConfig ic = tiny_cache();
  CacheConfig dc;
  dc.sets = 2;
  dc.ways = 1;  // 4 fault patterns; RW degenerates to "never fails"
  dc.line_bytes = 8;

  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  options.max_distribution_points = 64;
  const CombinedPwcetAnalyzer analyzer(p, ic, dc, options);

  // Per-path traces: instruction fetches and data loads.
  std::vector<std::vector<Address>> itraces;
  std::vector<std::vector<Address>> dtraces;
  itraces.reserve(paths.size());
  dtraces.reserve(paths.size());
  for (const auto& path : paths) {
    itraces.push_back(fetch_trace(p.cfg(), path));
    std::vector<Address> loads;
    for (const BlockId blk : path) {
      const auto& data = p.cfg().block(blk).data_addresses;
      loads.insert(loads.end(), data.begin(), data.end());
    }
    dtraces.push_back(std::move(loads));
  }

  const std::vector<FaultMap> imaps = all_fault_maps(ic);
  const std::vector<FaultMap> dmaps = all_fault_maps(dc);

  // The four deployments of the E8 table: (imech, dmech).
  const std::pair<Mechanism, Mechanism> deployments[] = {
      {Mechanism::kNone, Mechanism::kNone},
      {Mechanism::kSharedReliableBuffer, Mechanism::kSharedReliableBuffer},
      {Mechanism::kReliableWay, Mechanism::kSharedReliableBuffer},
      {Mechanism::kReliableWay, Mechanism::kReliableWay},
  };
  const double pfail = 0.05;
  const FaultModel faults(pfail);
  const double ipbf = faults.block_failure_probability(ic);
  const double dpbf = faults.block_failure_probability(dc);

  for (const auto& [imech, dmech] : deployments) {
    // Precompute per (path, map) pieces, then combine: the exact time of a
    // chip on a path is icache cycles + dcache misses * miss penalty
    // (loads execute inside already-charged instruction fetches; only
    // their miss penalties add — dcache/dcache_analysis.hpp).
    std::vector<std::vector<double>> icycles(
        paths.size(), std::vector<double>(imaps.size(), 0.0));
    std::vector<std::vector<double>> dpenalty(
        paths.size(), std::vector<double>(dmaps.size(), 0.0));
    for (std::size_t t = 0; t < paths.size(); ++t) {
      for (std::size_t m = 0; m < imaps.size(); ++m) {
        if (imech == Mechanism::kReliableWay &&
            touches_hardened_way(imaps[m], ic))
          continue;
        icycles[t][m] = static_cast<double>(
            simulate_trace(ic, imaps[m], imech, itraces[t]).cycles);
      }
      for (std::size_t m = 0; m < dmaps.size(); ++m) {
        if (dmech == Mechanism::kReliableWay &&
            touches_hardened_way(dmaps[m], dc))
          continue;
        CacheSimulator sim(dc, dmaps[m], dmech);
        for (const Address a : dtraces[t]) sim.fetch(a);
        dpenalty[t][m] = static_cast<double>(sim.stats().misses) *
                         static_cast<double>(dc.miss_penalty);
      }
    }

    std::vector<ProbabilityAtom> atoms;
    for (std::size_t im = 0; im < imaps.size(); ++im) {
      if (imech == Mechanism::kReliableWay &&
          touches_hardened_way(imaps[im], ic))
        continue;
      for (std::size_t dm = 0; dm < dmaps.size(); ++dm) {
        if (dmech == Mechanism::kReliableWay &&
            touches_hardened_way(dmaps[dm], dc))
          continue;
        double worst = 0.0;  // true worst over paths of the SUM
        for (std::size_t t = 0; t < paths.size(); ++t)
          worst = std::max(worst, icycles[t][im] + dpenalty[t][dm]);
        atoms.push_back({static_cast<Cycles>(worst),
                         map_probability(imaps[im], ic, imech, ipbf) *
                             map_probability(dmaps[dm], dc, dmech, dpbf)});
      }
    }
    const DiscreteDistribution exact = DiscreteDistribution::from_atoms(atoms);

    const PwcetResult result = analyzer.analyze_mixed(faults, imech, dmech);
    const DiscreteDistribution analytic =
        result.penalty.shift(result.fault_free_wcet);
    EXPECT_TRUE(analytic.dominates(exact, 1e-9))
        << "imech=" << mechanism_name(imech)
        << " dmech=" << mechanism_name(dmech) << " paths=" << paths.size();
  }
}

// ---------------------------------------------------------------------------
// The three production CacheDomain plugins against the same oracle wall:
// write-back data cache (dirty-eviction write-backs), TLB (page-granular
// unified stream) and shared L2 (lookup-through unified stream), each
// composed with the instruction cache through the generic PwcetPipeline.
// ---------------------------------------------------------------------------

/// The (imech, secondary mech) deployments each secondary-domain sweep
/// checks; on the 2x1 secondary geometries RW degenerates to "never
/// fails", which exercises the zero-probability skip path.
constexpr std::pair<Mechanism, Mechanism> kSecondaryDeployments[] = {
    {Mechanism::kNone, Mechanism::kNone},
    {Mechanism::kSharedReliableBuffer, Mechanism::kSharedReliableBuffer},
    {Mechanism::kReliableWay, Mechanism::kSharedReliableBuffer},
    {Mechanism::kReliableWay, Mechanism::kReliableWay},
};

TEST_P(RandomOracleTest, WritebackDcachePwcetDominatesExhaustive) {
  std::vector<std::vector<BlockId>> paths;
  const Program p =
      oracle_program(0x3b5d0000 + static_cast<std::uint64_t>(GetParam()),
                     oracle_params_with_stores(), paths);
  const CacheConfig ic = tiny_cache();
  CacheConfig dc;
  dc.sets = 2;
  dc.ways = 1;
  dc.line_bytes = 8;
  dc.miss_penalty = 50;  // refill only; the write-back cost rides on top
  const Cycles wb_penalty = 20;

  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  options.max_distribution_points = 64;
  const PwcetPipeline pipeline(
      p,
      {std::make_shared<IcacheDomain>(ic),
       std::make_shared<WritebackDcacheDomain>(dc, wb_penalty)},
      options);

  std::vector<std::vector<Address>> itraces;
  std::vector<std::vector<std::pair<Address, bool>>> dtraces;
  for (const auto& path : paths) {
    itraces.push_back(fetch_trace(p.cfg(), path));
    dtraces.push_back(data_access_trace(p.cfg(), path));
  }

  const std::vector<FaultMap> imaps = all_fault_maps(ic);
  const std::vector<FaultMap> dmaps = all_fault_maps(dc);
  const double pfail = 0.05;
  const FaultModel faults(pfail);
  const double ipbf = faults.block_failure_probability(ic);
  const double dpbf = faults.block_failure_probability(dc);

  for (const auto& [imech, dmech] : kSecondaryDeployments) {
    std::vector<std::vector<double>> icycles(
        paths.size(), std::vector<double>(imaps.size(), 0.0));
    std::vector<std::vector<double>> dpenalty(
        paths.size(), std::vector<double>(dmaps.size(), 0.0));
    for (std::size_t t = 0; t < paths.size(); ++t) {
      for (std::size_t m = 0; m < imaps.size(); ++m) {
        if (imech == Mechanism::kReliableWay &&
            touches_hardened_way(imaps[m], ic))
          continue;
        icycles[t][m] = static_cast<double>(
            simulate_trace(ic, imaps[m], imech, itraces[t]).cycles);
      }
      for (std::size_t m = 0; m < dmaps.size(); ++m) {
        if (dmech == Mechanism::kReliableWay &&
            touches_hardened_way(dmaps[m], dc))
          continue;
        // TRUE write-back cost: misses pay the refill, dirty evictions
        // additionally pay the write-back — strictly below the model's
        // effective (refill + wb) per miss whenever a victim is clean.
        WritebackCacheSimulator sim(dc, dmaps[m], dmech);
        for (const auto& [a, is_store] : dtraces[t]) sim.access(a, is_store);
        dpenalty[t][m] =
            static_cast<double>(sim.stats().misses) *
                static_cast<double>(dc.miss_penalty) +
            static_cast<double>(sim.stats().writebacks) *
                static_cast<double>(wb_penalty);
      }
    }

    std::vector<ProbabilityAtom> atoms;
    for (std::size_t im = 0; im < imaps.size(); ++im) {
      if (imech == Mechanism::kReliableWay &&
          touches_hardened_way(imaps[im], ic))
        continue;
      for (std::size_t dm = 0; dm < dmaps.size(); ++dm) {
        if (dmech == Mechanism::kReliableWay &&
            touches_hardened_way(dmaps[dm], dc))
          continue;
        double worst = 0.0;
        for (std::size_t t = 0; t < paths.size(); ++t)
          worst = std::max(worst, icycles[t][im] + dpenalty[t][dm]);
        atoms.push_back({static_cast<Cycles>(worst),
                         map_probability(imaps[im], ic, imech, ipbf) *
                             map_probability(dmaps[dm], dc, dmech, dpbf)});
      }
    }
    const DiscreteDistribution exact =
        DiscreteDistribution::from_atoms(atoms);

    const PwcetResult result = pipeline.analyze(faults, {imech, dmech});
    const DiscreteDistribution analytic =
        result.penalty.shift(result.fault_free_wcet);
    EXPECT_TRUE(analytic.dominates(exact, 1e-9))
        << "imech=" << mechanism_name(imech)
        << " dmech=" << mechanism_name(dmech) << " paths=" << paths.size();
  }
}

TEST_P(RandomOracleTest, TlbPwcetDominatesExhaustive) {
  std::vector<std::vector<BlockId>> paths;
  const Program p =
      oracle_program(0x71b00000 + static_cast<std::uint64_t>(GetParam()),
                     oracle_params_with_stores(), paths);
  const CacheConfig ic = tiny_cache();
  CacheConfig tlb;  // 2 entries of 1 way, 8-byte pages, hits folded away
  tlb.sets = 2;
  tlb.ways = 1;
  tlb.line_bytes = 8;
  tlb.hit_latency = 0;
  tlb.miss_penalty = 25;

  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  options.max_distribution_points = 64;
  const PwcetPipeline pipeline(p,
                               {std::make_shared<IcacheDomain>(ic),
                                std::make_shared<TlbDomain>(tlb)},
                               options);

  std::vector<std::vector<Address>> itraces;
  std::vector<std::vector<Address>> utraces;
  for (const auto& path : paths) {
    itraces.push_back(fetch_trace(p.cfg(), path));
    utraces.push_back(unified_trace(p.cfg(), path));
  }

  const std::vector<FaultMap> imaps = all_fault_maps(ic);
  const std::vector<FaultMap> tmaps = all_fault_maps(tlb);
  const double pfail = 0.05;
  const FaultModel faults(pfail);
  const double ipbf = faults.block_failure_probability(ic);
  const double tpbf = faults.block_failure_probability(tlb);

  for (const auto& [imech, tmech] : kSecondaryDeployments) {
    std::vector<std::vector<double>> icycles(
        paths.size(), std::vector<double>(imaps.size(), 0.0));
    std::vector<std::vector<double>> tpenalty(
        paths.size(), std::vector<double>(tmaps.size(), 0.0));
    for (std::size_t t = 0; t < paths.size(); ++t) {
      for (std::size_t m = 0; m < imaps.size(); ++m) {
        if (imech == Mechanism::kReliableWay &&
            touches_hardened_way(imaps[m], ic))
          continue;
        icycles[t][m] = static_cast<double>(
            simulate_trace(ic, imaps[m], imech, itraces[t]).cycles);
      }
      for (std::size_t m = 0; m < tmaps.size(); ++m) {
        if (tmech == Mechanism::kReliableWay &&
            touches_hardened_way(tmaps[m], tlb))
          continue;
        // TRUE TLB cost: a page walk per translation miss over the
        // unified fetch/load/store stream; hits are free (folded into
        // the fetch latencies the icache domain already charges).
        CacheSimulator sim(tlb, tmaps[m], tmech);
        for (const Address a : utraces[t]) sim.fetch(a);
        tpenalty[t][m] = static_cast<double>(sim.stats().misses) *
                         static_cast<double>(tlb.miss_penalty);
      }
    }

    std::vector<ProbabilityAtom> atoms;
    for (std::size_t im = 0; im < imaps.size(); ++im) {
      if (imech == Mechanism::kReliableWay &&
          touches_hardened_way(imaps[im], ic))
        continue;
      for (std::size_t tm = 0; tm < tmaps.size(); ++tm) {
        if (tmech == Mechanism::kReliableWay &&
            touches_hardened_way(tmaps[tm], tlb))
          continue;
        double worst = 0.0;
        for (std::size_t t = 0; t < paths.size(); ++t)
          worst = std::max(worst, icycles[t][im] + tpenalty[t][tm]);
        atoms.push_back({static_cast<Cycles>(worst),
                         map_probability(imaps[im], ic, imech, ipbf) *
                             map_probability(tmaps[tm], tlb, tmech, tpbf)});
      }
    }
    const DiscreteDistribution exact =
        DiscreteDistribution::from_atoms(atoms);

    const PwcetResult result = pipeline.analyze(faults, {imech, tmech});
    const DiscreteDistribution analytic =
        result.penalty.shift(result.fault_free_wcet);
    EXPECT_TRUE(analytic.dominates(exact, 1e-9))
        << "imech=" << mechanism_name(imech)
        << " tmech=" << mechanism_name(tmech) << " paths=" << paths.size();
  }
}

TEST_P(RandomOracleTest, SharedL2PwcetDominatesExhaustive) {
  std::vector<std::vector<BlockId>> paths;
  const Program p =
      oracle_program(0x12000000 + static_cast<std::uint64_t>(GetParam()),
                     oracle_params_with_stores(), paths);
  const CacheConfig ic = tiny_cache();
  CacheConfig l2;  // lookup-through: every reference probes it
  l2.sets = 2;
  l2.ways = 1;
  l2.line_bytes = 8;
  l2.hit_latency = 0;  // L2 hit latency rides in the L1 costs
  l2.miss_penalty = 40;

  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  options.max_distribution_points = 64;
  const PwcetPipeline pipeline(p,
                               {std::make_shared<IcacheDomain>(ic),
                                std::make_shared<L2Domain>(l2)},
                               options);

  std::vector<std::vector<Address>> itraces;
  std::vector<std::vector<Address>> utraces;
  for (const auto& path : paths) {
    itraces.push_back(fetch_trace(p.cfg(), path));
    utraces.push_back(unified_trace(p.cfg(), path));
  }

  const std::vector<FaultMap> imaps = all_fault_maps(ic);
  const std::vector<FaultMap> lmaps = all_fault_maps(l2);
  const double pfail = 0.05;
  const FaultModel faults(pfail);
  const double ipbf = faults.block_failure_probability(ic);
  const double lpbf = faults.block_failure_probability(l2);

  for (const auto& [imech, lmech] : kSecondaryDeployments) {
    std::vector<std::vector<double>> icycles(
        paths.size(), std::vector<double>(imaps.size(), 0.0));
    std::vector<std::vector<double>> lpenalty(
        paths.size(), std::vector<double>(lmaps.size(), 0.0));
    for (std::size_t t = 0; t < paths.size(); ++t) {
      for (std::size_t m = 0; m < imaps.size(); ++m) {
        if (imech == Mechanism::kReliableWay &&
            touches_hardened_way(imaps[m], ic))
          continue;
        icycles[t][m] = static_cast<double>(
            simulate_trace(ic, imaps[m], imech, itraces[t]).cycles);
      }
      for (std::size_t m = 0; m < lmaps.size(); ++m) {
        if (lmech == Mechanism::kReliableWay &&
            touches_hardened_way(lmaps[m], l2))
          continue;
        CacheSimulator sim(l2, lmaps[m], lmech);
        for (const Address a : utraces[t]) sim.fetch(a);
        lpenalty[t][m] = static_cast<double>(sim.stats().misses) *
                         static_cast<double>(l2.miss_penalty);
      }
    }

    std::vector<ProbabilityAtom> atoms;
    for (std::size_t im = 0; im < imaps.size(); ++im) {
      if (imech == Mechanism::kReliableWay &&
          touches_hardened_way(imaps[im], ic))
        continue;
      for (std::size_t lm = 0; lm < lmaps.size(); ++lm) {
        if (lmech == Mechanism::kReliableWay &&
            touches_hardened_way(lmaps[lm], l2))
          continue;
        double worst = 0.0;
        for (std::size_t t = 0; t < paths.size(); ++t)
          worst = std::max(worst, icycles[t][im] + lpenalty[t][lm]);
        atoms.push_back({static_cast<Cycles>(worst),
                         map_probability(imaps[im], ic, imech, ipbf) *
                             map_probability(lmaps[lm], l2, lmech, lpbf)});
      }
    }
    const DiscreteDistribution exact =
        DiscreteDistribution::from_atoms(atoms);

    const PwcetResult result = pipeline.analyze(faults, {imech, lmech});
    const DiscreteDistribution analytic =
        result.penalty.shift(result.fault_free_wcet);
    EXPECT_TRUE(analytic.dominates(exact, 1e-9))
        << "imech=" << mechanism_name(imech)
        << " lmech=" << mechanism_name(lmech) << " paths=" << paths.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOracleTest, ::testing::Range(0, 12));

// Three-domain composition: icache x write-back dcache x shared L2, the
// full fixed-shape cross-domain convolution against a 3-way exhaustive
// fault product. Fewer seeds — each checks 16 x 4 x 4 = 256 fault
// combinations maximized over every path.
class ComposedOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ComposedOracleTest, TriplePwcetDominatesExhaustive) {
  std::vector<std::vector<BlockId>> paths;
  const Program p =
      oracle_program(0xc0de0000 + static_cast<std::uint64_t>(GetParam()),
                     oracle_params_with_stores(), paths);
  const CacheConfig ic = tiny_cache();
  CacheConfig dc;
  dc.sets = 2;
  dc.ways = 1;
  dc.line_bytes = 8;
  dc.miss_penalty = 50;
  const Cycles wb_penalty = 20;
  CacheConfig l2;
  l2.sets = 2;
  l2.ways = 1;
  l2.line_bytes = 8;
  l2.hit_latency = 0;
  l2.miss_penalty = 40;

  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  options.max_distribution_points = 64;
  const PwcetPipeline pipeline(
      p,
      {std::make_shared<IcacheDomain>(ic),
       std::make_shared<WritebackDcacheDomain>(dc, wb_penalty),
       std::make_shared<L2Domain>(l2)},
      options);

  std::vector<std::vector<Address>> itraces;
  std::vector<std::vector<std::pair<Address, bool>>> dtraces;
  std::vector<std::vector<Address>> utraces;
  for (const auto& path : paths) {
    itraces.push_back(fetch_trace(p.cfg(), path));
    dtraces.push_back(data_access_trace(p.cfg(), path));
    utraces.push_back(unified_trace(p.cfg(), path));
  }

  const std::vector<FaultMap> imaps = all_fault_maps(ic);
  const std::vector<FaultMap> dmaps = all_fault_maps(dc);
  const std::vector<FaultMap> lmaps = all_fault_maps(l2);
  const double pfail = 0.05;
  const FaultModel faults(pfail);
  const double ipbf = faults.block_failure_probability(ic);
  const double dpbf = faults.block_failure_probability(dc);
  const double lpbf = faults.block_failure_probability(l2);

  const std::array<Mechanism, 3> deployments[] = {
      {Mechanism::kNone, Mechanism::kNone, Mechanism::kNone},
      {Mechanism::kSharedReliableBuffer, Mechanism::kSharedReliableBuffer,
       Mechanism::kSharedReliableBuffer},
  };
  for (const auto& [imech, dmech, lmech] : deployments) {
    std::vector<std::vector<double>> icycles(
        paths.size(), std::vector<double>(imaps.size(), 0.0));
    std::vector<std::vector<double>> dpenalty(
        paths.size(), std::vector<double>(dmaps.size(), 0.0));
    std::vector<std::vector<double>> lpenalty(
        paths.size(), std::vector<double>(lmaps.size(), 0.0));
    for (std::size_t t = 0; t < paths.size(); ++t) {
      for (std::size_t m = 0; m < imaps.size(); ++m)
        icycles[t][m] = static_cast<double>(
            simulate_trace(ic, imaps[m], imech, itraces[t]).cycles);
      for (std::size_t m = 0; m < dmaps.size(); ++m) {
        WritebackCacheSimulator sim(dc, dmaps[m], dmech);
        for (const auto& [a, is_store] : dtraces[t]) sim.access(a, is_store);
        dpenalty[t][m] =
            static_cast<double>(sim.stats().misses) *
                static_cast<double>(dc.miss_penalty) +
            static_cast<double>(sim.stats().writebacks) *
                static_cast<double>(wb_penalty);
      }
      for (std::size_t m = 0; m < lmaps.size(); ++m) {
        CacheSimulator sim(l2, lmaps[m], lmech);
        for (const Address a : utraces[t]) sim.fetch(a);
        lpenalty[t][m] = static_cast<double>(sim.stats().misses) *
                         static_cast<double>(l2.miss_penalty);
      }
    }

    std::vector<ProbabilityAtom> atoms;
    for (std::size_t im = 0; im < imaps.size(); ++im)
      for (std::size_t dm = 0; dm < dmaps.size(); ++dm)
        for (std::size_t lm = 0; lm < lmaps.size(); ++lm) {
          double worst = 0.0;
          for (std::size_t t = 0; t < paths.size(); ++t)
            worst = std::max(
                worst, icycles[t][im] + dpenalty[t][dm] + lpenalty[t][lm]);
          atoms.push_back(
              {static_cast<Cycles>(worst),
               map_probability(imaps[im], ic, imech, ipbf) *
                   map_probability(dmaps[dm], dc, dmech, dpbf) *
                   map_probability(lmaps[lm], l2, lmech, lpbf)});
        }
    const DiscreteDistribution exact =
        DiscreteDistribution::from_atoms(atoms);

    const PwcetResult result =
        pipeline.analyze(faults, {imech, dmech, lmech});
    const DiscreteDistribution analytic =
        result.penalty.shift(result.fault_free_wcet);
    EXPECT_TRUE(analytic.dominates(exact, 1e-9))
        << "imech=" << mechanism_name(imech)
        << " dmech=" << mechanism_name(dmech)
        << " lmech=" << mechanism_name(lmech) << " paths=" << paths.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComposedOracleTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace pwcet
