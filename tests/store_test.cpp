// Unit tests for the content-addressed analysis store (src/store/): key
// stability (golden values pin the hash algorithm), LRU semantics of the
// memo cache, concurrent access from the engine pool, artifact round-trips,
// and the headline invariant — campaign reports with the store enabled are
// byte-identical to cold recomputation, at any thread count, cold or warm.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pwcet_analyzer.hpp"
#include "engine/campaign.hpp"
#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/thread_pool.hpp"
#include "store/analysis_store.hpp"
#include "store/artifact_store.hpp"
#include "store/key.hpp"
#include "store/memo_cache.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

namespace fs = std::filesystem;

// ---- keys ------------------------------------------------------------------

// Golden values: the store's on-disk artifacts are addressed by these
// hashes, so the algorithm must never drift. If one of these fails, the
// mixer changed — bump ArtifactStore::kFormatVersion and re-pin, or (far
// more likely) revert the accidental change.
TEST(StoreKey, GoldenValues) {
  EXPECT_EQ(KeyHasher("golden").finish().hex(),
            "11f613a3d9fddb6c7492d97ba7c8e7ae");
  EXPECT_EQ(KeyHasher("golden").mix_u64(1).mix_u64(2).finish().hex(),
            "a0f506b74baab7a563c738c3bb3dbd30");
  EXPECT_EQ(KeyHasher("golden").mix_double(1.5).finish().hex(),
            "8be7fb7895983952229acd01efa4af7e");
  EXPECT_EQ(hash_cache_config(CacheConfig::paper_default()).hex(),
            "c1f3964c35bf25f8c70fee652860efe7");
  EXPECT_EQ(hash_fault_model(1e-4).hex(),
            "9f5f38575fa06520a57c217e54a1c741");
  // Structural program hash: pins CFG + loop + structure-tree hashing.
  EXPECT_EQ(hash_program(workloads::build("fibcall")).hex(),
            "c566f5440d451cbca81159735ff58ff1");
}

TEST(StoreKey, LengthPrefixPreventsBoundaryAliasing) {
  const StoreKey ab_c = KeyHasher("golden").mix_string("ab").mix_string("c").finish();
  const StoreKey a_bc = KeyHasher("golden").mix_string("a").mix_string("bc").finish();
  EXPECT_NE(ab_c, a_bc);
  EXPECT_EQ(ab_c.hex(), "5cc9a2d5ad04116e4a8a47875fe03cfa");
  EXPECT_EQ(a_bc.hex(), "e509d34c3162d11a230b39e2992d8231");
}

TEST(StoreKey, SensitiveToEveryConfigFieldAndDomain) {
  const CacheConfig base = CacheConfig::paper_default();
  const StoreKey k = hash_cache_config(base);
  CacheConfig c = base;
  c.sets = 8;
  EXPECT_NE(hash_cache_config(c), k);
  c = base;
  c.ways = 2;
  EXPECT_NE(hash_cache_config(c), k);
  c = base;
  c.line_bytes = 32;
  EXPECT_NE(hash_cache_config(c), k);
  c = base;
  c.hit_latency = 2;
  EXPECT_NE(hash_cache_config(c), k);
  c = base;
  c.miss_penalty = 50;
  EXPECT_NE(hash_cache_config(c), k);

  // Domain separation: identical field streams, different domains.
  EXPECT_NE(KeyHasher("a").mix_u64(7).finish(),
            KeyHasher("b").mix_u64(7).finish());
  // Order sensitivity.
  EXPECT_NE(KeyHasher("golden").mix_u64(1).mix_u64(2).finish(),
            KeyHasher("golden").mix_u64(2).mix_u64(1).finish());
}

TEST(StoreKey, HexIsStableAndOrdered) {
  const StoreKey key{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(key.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_LT((StoreKey{0, 1}), (StoreKey{1, 0}));
  EXPECT_LT((StoreKey{1, 0}), (StoreKey{1, 1}));
}

TEST(StoreKey, ProgramHashIsContentAddressed) {
  // Same structure built twice hashes identically; a different task does
  // not (the name itself is excluded — content decides).
  EXPECT_EQ(hash_program(workloads::build("fibcall")),
            hash_program(workloads::build("fibcall")));
  EXPECT_NE(hash_program(workloads::build("fibcall")),
            hash_program(workloads::build("bs")));
}

// ---- memo cache ------------------------------------------------------------

std::shared_ptr<const void> boxed(int v) {
  return std::make_shared<const int>(v);
}

TEST(MemoCache, LruEvictionOrder) {
  MemoCache cache(MemoCache::Config{/*capacity=*/3, /*shards=*/1});
  const StoreKey a{0, 1}, b{0, 2}, c{0, 3}, d{0, 4};
  cache.put(a, boxed(1));
  cache.put(b, boxed(2));
  cache.put(c, boxed(3));
  // Touch a: b becomes the least recently used entry.
  EXPECT_NE(cache.get(a), nullptr);
  cache.put(d, boxed(4));

  EXPECT_EQ(cache.get(b), nullptr);  // evicted
  EXPECT_NE(cache.get(a), nullptr);
  EXPECT_NE(cache.get(c), nullptr);
  EXPECT_NE(cache.get(d), nullptr);

  const StoreStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.hits, 4u);    // a, then a/c/d after the eviction
  EXPECT_EQ(stats.misses, 1u);  // b
}

TEST(MemoCache, GetOrComputeMemoizes) {
  MemoCache cache(MemoCache::Config{8, 2});
  const StoreKey key{42, 42};
  int computed = 0;
  auto compute = [&] {
    ++computed;
    return 7;
  };
  EXPECT_EQ(*cache.get_or_compute<int>(key, compute), 7);
  EXPECT_EQ(*cache.get_or_compute<int>(key, compute), 7);
  EXPECT_EQ(computed, 1);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(*cache.get_or_compute<int>(key, compute), 7);
  EXPECT_EQ(computed, 2);
}

TEST(MemoCache, DuplicatePutKeepsFirstValueAndCounts) {
  MemoCache cache(MemoCache::Config{4, 1});
  const StoreKey key{9, 9};
  cache.put(key, boxed(1));
  cache.put(key, boxed(2));  // benign compute race: first insert wins
  EXPECT_EQ(*std::static_pointer_cast<const int>(cache.get(key)), 1);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(MemoCache, ConcurrentAccessFromEnginePool) {
  MemoCache cache(MemoCache::Config{64, 8});
  ThreadPool pool(4);
  constexpr std::size_t kLookups = 2000;
  constexpr std::uint64_t kDistinct = 16;
  const auto values = pool.map_indexed(kLookups, [&](std::size_t i) {
    const std::uint64_t slot = i % kDistinct;
    const StoreKey key =
        KeyHasher("concurrent-test").mix_u64(slot).finish();
    return *cache.get_or_compute<std::uint64_t>(key,
                                                [&] { return slot * 7; });
  });
  for (std::size_t i = 0; i < kLookups; ++i)
    EXPECT_EQ(values[i], (i % kDistinct) * 7);
  const StoreStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kLookups);
  EXPECT_EQ(stats.entries, kDistinct);
  EXPECT_GE(stats.hits, kLookups - 4 * kDistinct);  // racing misses are rare
}

// ---- artifact store --------------------------------------------------------

class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("pwcet_store_test_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ArtifactStoreTest, TextRoundTripAndLoadOrCompute) {
  const ArtifactStore store({dir_});
  const StoreKey key = KeyHasher("artifact-test").mix_u64(1).finish();
  EXPECT_FALSE(store.load_text("report", key).has_value());

  int computed = 0;
  auto compute = [&] {
    ++computed;
    return std::string("line1\nline2\n");
  };
  EXPECT_EQ(store.load_or_compute_text("report", key, compute),
            "line1\nline2\n");
  EXPECT_EQ(store.load_or_compute_text("report", key, compute),
            "line1\nline2\n");
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(store.disk_writes(), 1u);
  EXPECT_GE(store.disk_hits(), 1u);

  // Same key, different kind: distinct artifact.
  EXPECT_FALSE(store.load_text("other", key).has_value());
  // A kind that could escape the cache directory is rejected outright.
  EXPECT_FALSE(store.load_text("../escape", key).has_value());
  EXPECT_FALSE(store.store_text("../escape", key, "x"));
}

TEST_F(ArtifactStoreTest, DistributionRoundTripIsExact) {
  const ArtifactStore store({dir_});
  // Deliberately awkward doubles: non-terminating binary fractions and a
  // deep tail. %.17g must round-trip every bit.
  const DiscreteDistribution original = DiscreteDistribution::from_atoms({
      {0, 0.1},
      {100, 1.0 / 3.0},
      {101, 1e-300},
      {1000000007, 1.0 - 0.1 - 1.0 / 3.0 - 1e-300},
  });
  const StoreKey key = KeyHasher("dist-test").mix_u64(7).finish();
  EXPECT_TRUE(store.store_distribution(key, original));

  const auto loaded = store.load_distribution(key);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->atoms()[i].value, original.atoms()[i].value);
    // Bitwise, not approximate: identity of reports depends on it.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->atoms()[i].probability),
              std::bit_cast<std::uint64_t>(original.atoms()[i].probability));
  }
  EXPECT_EQ(*loaded, original);
}

TEST_F(ArtifactStoreTest, CorruptOrMismatchedArtifactsLoadAsMisses) {
  const ArtifactStore store({dir_});
  const StoreKey key = KeyHasher("dist-test").mix_u64(8).finish();
  const std::string path =
      dir_ + "/distribution/" + key.hex() + ".jsonl";

  auto rewrite = [&](const std::string& from, const std::string& to) {
    std::ifstream in(path);
    std::stringstream all;
    all << in.rdbuf();
    std::string contents = all.str();
    const auto at = contents.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    contents.replace(at, from.size(), to);
    std::ofstream(path, std::ios::trunc) << contents;
  };

  // Version bump: the header no longer matches.
  ASSERT_TRUE(store.store_distribution(
      key, DiscreteDistribution::degenerate(5)));
  ASSERT_TRUE(fs::exists(path));
  rewrite("\"version\":1", "\"version\":9");
  EXPECT_FALSE(store.load_distribution(key).has_value());

  // Bitrot: one flipped digit in a structurally still-valid payload; the
  // header's payload content hash catches it.
  ASSERT_TRUE(store.store_distribution(
      key, DiscreteDistribution::degenerate(5)));
  EXPECT_TRUE(store.load_distribution(key).has_value());
  rewrite("\"value\":5", "\"value\":6");
  EXPECT_FALSE(store.load_distribution(key).has_value());

  // Structurally invalid payload behind a *valid* header and checksum
  // (written through store_text, e.g. by a future buggy producer):
  // load_distribution's own validation rejects it instead of aborting.
  ASSERT_TRUE(store.store_text("distribution", key,
                               "{\"value\":10,\"p\":0.5}\n"
                               "{\"value\":3,\"p\":0.5}\n"));
  EXPECT_FALSE(store.load_distribution(key).has_value());  // not increasing
}

// ---- analyzer + engine integration ----------------------------------------

CampaignSpec identity_spec() {
  CampaignSpec spec;
  spec.tasks = {"fibcall", "bs"};
  CacheConfig tiny = CacheConfig::paper_default();
  tiny.sets = 8;
  tiny.ways = 2;
  spec.geometries = {CacheConfig::paper_default(), tiny};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kReliableWay,
                     Mechanism::kSharedReliableBuffer};
  spec.engines = {WcetEngine::kIlp, WcetEngine::kTree};
  return spec;
}

TEST(StoreIdentity, AnalyzerWithStoreMatchesWithoutBitForBit) {
  const Program program = workloads::build("fibcall");
  const CacheConfig config = CacheConfig::paper_default();
  const FaultModel faults(1e-3);

  const PwcetAnalyzer plain(program, config);
  AnalysisStore store;
  PwcetOptions stored_options;
  stored_options.store = &store;
  const PwcetAnalyzer stored(program, config, stored_options);
  // Second stored analyzer: core comes entirely from the memo.
  const PwcetAnalyzer memoized(program, config, stored_options);

  EXPECT_EQ(plain.fault_free_wcet(), stored.fault_free_wcet());
  EXPECT_EQ(plain.fault_free_wcet(), memoized.fault_free_wcet());
  for (const Mechanism m : {Mechanism::kNone, Mechanism::kReliableWay,
                            Mechanism::kSharedReliableBuffer}) {
    EXPECT_EQ(plain.fmm_bundle().of(m).misses, stored.fmm_bundle().of(m).misses);
    EXPECT_EQ(plain.fmm_bundle().of(m).misses,
              memoized.fmm_bundle().of(m).misses);
    const PwcetResult a = plain.analyze(faults, m);
    const PwcetResult b = stored.analyze(faults, m);
    const PwcetResult c = memoized.analyze(faults, m);  // memo hit path
    EXPECT_EQ(a.penalty, b.penalty);
    EXPECT_EQ(a.penalty, c.penalty);
    EXPECT_EQ(a.pwcet(1e-15), b.pwcet(1e-15));
  }
  EXPECT_GT(store.stats().hits, 0u);
}

TEST(StoreIdentity, CampaignReportsByteIdenticalStoreOnOffAnyThreads) {
  const CampaignSpec spec = identity_spec();

  RunnerOptions off;
  off.threads = 1;
  off.store.enabled = false;
  const CampaignResult baseline = run_campaign(spec, off);
  const std::string csv = report_csv(baseline);
  const std::string jsonl = report_jsonl(baseline);

  RunnerOptions on1;
  on1.threads = 1;
  RunnerOptions on2;
  on2.threads = 2;
  const CampaignResult with_store_1 = run_campaign(spec, on1);
  const CampaignResult with_store_2 = run_campaign(spec, on2);
  EXPECT_EQ(csv, report_csv(with_store_1));
  EXPECT_EQ(jsonl, report_jsonl(with_store_1));
  EXPECT_EQ(csv, report_csv(with_store_2));
  EXPECT_EQ(jsonl, report_jsonl(with_store_2));

  // Warm re-run on a shared store: still identical, and nearly every
  // lookup hits (the acceptance bar is >50%; a warm run is far above).
  AnalysisStore store;
  RunnerOptions shared;
  shared.threads = 2;
  shared.shared_store = &store;
  const CampaignResult cold = run_campaign(spec, shared);
  const CampaignResult warm = run_campaign(spec, shared);
  EXPECT_EQ(csv, report_csv(cold));
  EXPECT_EQ(csv, report_csv(warm));
  EXPECT_EQ(jsonl, report_jsonl(warm));
  EXPECT_GT(warm.store_stats.hit_rate(), 0.5);
  EXPECT_GT(warm.store_stats.hits, 0u);
  EXPECT_EQ(warm.store_stats.evictions, 0u);
}

TEST_F(ArtifactStoreTest, CampaignWarmFromDiskIsByteIdentical) {
  CampaignSpec spec = identity_spec();
  spec.engines = {WcetEngine::kIlp};

  RunnerOptions off;
  off.threads = 1;
  off.store.enabled = false;
  const std::string csv = report_csv(run_campaign(spec, off));

  // Fresh process simulation: two runs, each with its own cold memo,
  // sharing only the on-disk artifacts. Caller-owned stores bypass the
  // runner's environment resolution, so an exported PWCET_STORE=0 (e.g.
  // left over from a manual verify run) cannot turn this test hollow.
  StoreOptions disk_options;
  disk_options.artifact_dir = dir_;
  AnalysisStore run1(disk_options), run2(disk_options);
  RunnerOptions disk;
  disk.threads = 2;
  disk.shared_store = &run1;
  const CampaignResult first = run_campaign(spec, disk);
  disk.shared_store = &run2;
  const CampaignResult second = run_campaign(spec, disk);
  EXPECT_EQ(csv, report_csv(first));
  EXPECT_EQ(csv, report_csv(second));
  EXPECT_GT(second.store_stats.disk_hits, 0u);
  // The second run is answered entirely from the persisted campaign
  // report (whole-campaign load-or-compute): no memoized computation ran.
  EXPECT_EQ(second.store_stats.misses, 0u);
  EXPECT_EQ(report_jsonl(first), report_jsonl(second));

  // The campaign report itself is persisted as a versioned artifact whose
  // payload is exactly the JSONL report.
  const ArtifactStore reader({dir_});
  const auto report = reader.load_text("campaign-report",
                                       campaign_spec_key(spec));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(*report, report_jsonl(second));
}

TEST(StoreIdentity, GroupKeyIsContentDerived) {
  CampaignSpec spec = identity_spec();
  // Duplicate axis values at different indices share a group key.
  spec.tasks = {"fibcall", "fibcall"};
  spec.geometries = {CacheConfig::paper_default(),
                     CacheConfig::paper_default()};
  const auto jobs = expand_campaign(spec);
  const CampaignJob* first = &jobs.front();
  const CampaignJob* other = nullptr;
  for (const CampaignJob& job : jobs)
    if (job.task_i != first->task_i && job.geometry_i != first->geometry_i &&
        job.engine_i == first->engine_i) {
      other = &job;
      break;
    }
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(campaign_group_key(*first), campaign_group_key(*other));

  CacheConfig different = CacheConfig::paper_default();
  different.sets = 8;
  CampaignJob changed = *first;
  changed.geometry = different;
  EXPECT_NE(campaign_group_key(*first), campaign_group_key(changed));

  // The spec key, by contrast, must see every axis value — and be a pure
  // function of the spec.
  CampaignSpec wider = spec;
  wider.pfails.push_back(1e-6);
  EXPECT_NE(campaign_spec_key(spec), campaign_spec_key(wider));
  EXPECT_EQ(campaign_spec_key(identity_spec()),
            campaign_spec_key(identity_spec()));

  // A job with the data cache enabled must land in a different analyzer
  // group: the combined analyzer's memoized core depends on the dcache
  // geometry.
  CampaignJob with_dcache = *first;
  with_dcache.dcache.enabled = true;
  with_dcache.dcache.geometry.sets = 8;
  EXPECT_NE(campaign_group_key(*first), campaign_group_key(with_dcache));
}

TEST(StoreIdentity, SpecKeyHashesEveryNewAxisAndIsPinned) {
  CampaignSpec spec;
  spec.tasks = {"fibcall"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone};
  // Golden value: persisted campaign-report artifacts are addressed by
  // this hash; any accidental change to the spec-key schema (or to the
  // fibcall workload's structural content) fails here and demands an
  // ArtifactStore::kFormatVersion review.
  EXPECT_EQ(campaign_spec_key(spec).hex(),
            "9fa096dccf353c6351c266adbe530d4f");

  const StoreKey base = campaign_spec_key(spec);
  {
    CampaignSpec s = spec;
    DcacheAxis d;
    d.enabled = true;
    d.geometry.sets = 8;
    s.dcaches.push_back(d);
    EXPECT_NE(campaign_spec_key(s), base) << "dcaches axis not hashed";
  }
  {
    CampaignSpec s = spec;
    s.dcache_mechanisms.push_back(DcacheMechanism::kSharedReliableBuffer);
    EXPECT_NE(campaign_spec_key(s), base)
        << "dcache_mechanisms axis not hashed";
  }
  {
    CampaignSpec s = spec;
    s.sample_counts.push_back(100);
    EXPECT_NE(campaign_spec_key(s), base) << "sample_counts axis not hashed";
  }
  {
    CampaignSpec s = spec;
    s.ccdf_exceedances = {1e-6};
    EXPECT_NE(campaign_spec_key(s), base) << "ccdf_exceedances not hashed";
  }
  {
    CampaignSpec s = spec;
    s.kinds = {AnalysisKind::kSlack};
    s.mechanisms = {Mechanism::kSharedReliableBuffer};
    EXPECT_NE(campaign_spec_key(s), base);
  }
}

// ---- report escaping (satellite: arbitrary scenario labels) ---------------

CampaignResult synthetic_campaign(const std::string& label) {
  CampaignResult campaign;
  campaign.spec.tasks = {label};
  campaign.spec.geometries = {CacheConfig::paper_default()};
  campaign.spec.pfails = {1e-4};
  campaign.spec.mechanisms = {Mechanism::kNone};
  JobResult result;
  result.job.task = label;
  result.job.geometry = CacheConfig::paper_default();
  result.job.pfail = 1e-4;
  result.pwcet = 123.0;
  campaign.results.push_back(result);
  return campaign;
}

TEST(ReportEscaping, CsvQuotesCommasQuotesAndNewlines) {
  const std::string evil = "task,with \"quotes\"\nand\rnewlines";
  const std::string csv = report_csv(synthetic_campaign(evil));
  // RFC 4180: the field is quoted, embedded quotes doubled, newlines kept
  // verbatim inside the quotes.
  EXPECT_NE(csv.find("\"task,with \"\"quotes\"\"\nand\rnewlines\""),
            std::string::npos);
  // Header row + payload row (whose label spans two physical lines).
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 3);
}

TEST(ReportEscaping, JsonlEscapesControlCharacters) {
  const std::string evil = "task,\"x\"\n\r\t\x01 end";
  const std::string jsonl = report_jsonl(synthetic_campaign(evil));
  // One physical line per job, no matter what the label contains.
  EXPECT_EQ(static_cast<int>(std::count(jsonl.begin(), jsonl.end(), '\n')), 1);
  EXPECT_NE(jsonl.find("task,\\\"x\\\"\\n\\r\\t\\u0001 end"),
            std::string::npos);
}

}  // namespace
}  // namespace pwcet
