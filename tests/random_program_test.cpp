// Property-based tests over randomly generated structured programs: the
// strongest evidence that the engines and the soundness argument are not
// overfitted to the 25 hand-written workloads.
#include <gtest/gtest.h>

#include "cfg/dominators.hpp"
#include "core/pwcet_analyzer.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/rng.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/fmm.hpp"
#include "wcet/ipet.hpp"
#include "wcet/tree_engine.hpp"
#include "workloads/random_program.hpp"

namespace pwcet {
namespace {

class RandomProgramTest : public ::testing::TestWithParam<int> {
 protected:
  Program make_program() {
    Rng rng(0xbeef0000 + static_cast<std::uint64_t>(GetParam()));
    return workloads::random_program(rng);
  }
};

TEST_P(RandomProgramTest, CfgIsWellFormed) {
  const Program p = make_program();
  p.cfg().validate();
  const auto order = p.cfg().reverse_post_order();
  EXPECT_EQ(order.size(), p.cfg().block_count());
}

TEST_P(RandomProgramTest, DetectedLoopsMatchRegistered) {
  const Program p = make_program();
  const auto detected = detect_natural_loops(p.cfg());
  // Loops with bound 0 still form back edges structurally, so counts match.
  EXPECT_EQ(detected.size(), p.cfg().loops().size());
  for (const DetectedLoop& dl : detected) {
    bool found = false;
    for (const LoopInfo& li : p.cfg().loops()) found |= (li.header == dl.header);
    EXPECT_TRUE(found);
  }
}

TEST_P(RandomProgramTest, IpetEqualsTreeOnTimeModel) {
  const Program p = make_program();
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel m = build_time_cost_model(p.cfg(), refs, cls, c);
  IpetCalculator ipet(p);
  const double via_ipet = ipet.maximize(m).objective;
  const double via_tree = tree_maximize(p, m);
  EXPECT_NEAR(via_ipet, via_tree, 1e-6 * std::max(1.0, via_tree));
}

TEST_P(RandomProgramTest, FmmEnginesAgree) {
  const Program p = make_program();
  // A small cache makes degraded classifications non-trivial.
  CacheConfig c;
  c.sets = 8;
  c.ways = 2;
  const auto refs = extract_references(p.cfg(), c);
  IpetCalculator ipet(p);
  const FmmBundle a = compute_fmm_bundle(p, c, refs, WcetEngine::kIlp, &ipet);
  const FmmBundle t =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);
  for (SetIndex s = 0; s < c.sets; ++s)
    for (std::uint32_t f = 0; f <= c.ways; ++f) {
      EXPECT_NEAR(a.none.at(s, f), t.none.at(s, f), 1e-5);
      EXPECT_NEAR(a.srb.at(s, f), t.srb.at(s, f), 1e-5);
    }
}

TEST_P(RandomProgramTest, WcetBoundsSimulatedFaultFreeTime) {
  const Program p = make_program();
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel m = build_time_cost_model(p.cfg(), refs, cls, c);
  const double wcet = tree_maximize(p, m);
  Rng rng(0xcafe + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 3; ++trial) {
    const auto trace = fetch_trace(p.cfg(), random_walk(p, rng));
    const auto stats =
        simulate_trace(c, FaultMap::none(c), Mechanism::kNone, trace);
    EXPECT_LE(static_cast<double>(stats.cycles), wcet + 1e-6);
  }
}

TEST_P(RandomProgramTest, PenaltyBoundSoundUnderFaults) {
  const Program p = make_program();
  // Small, highly contended cache + aggressive fault rates.
  CacheConfig c;
  c.sets = 4;
  c.ways = 2;
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const double wcet_ff =
      tree_maximize(p, build_time_cost_model(p.cfg(), refs, cls, c));
  const FmmBundle fmm =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);

  Rng rng(0xf00d + static_cast<std::uint64_t>(GetParam()));
  const auto trace = fetch_trace(p.cfg(), full_iteration_walk(p, rng));
  for (int fault_trial = 0; fault_trial < 6; ++fault_trial) {
    const FaultMap map = FaultMap::sample(c, 0.15 * (fault_trial + 1), rng);
    for (const Mechanism mech :
         {Mechanism::kNone, Mechanism::kReliableWay,
          Mechanism::kSharedReliableBuffer}) {
      const auto stats = simulate_trace(c, map, mech, trace);
      double misses = 0.0;
      for (SetIndex s = 0; s < c.sets; ++s) {
        std::uint32_t f = map.faulty_count(s);
        if (mech == Mechanism::kReliableWay && map.is_faulty(s, 0)) f -= 1;
        misses += fmm.of(mech).at(s, f);
      }
      const double bound =
          wcet_ff + static_cast<double>(c.miss_penalty) * misses;
      EXPECT_LE(static_cast<double>(stats.cycles), bound + 1e-6)
          << "mech=" << mechanism_name(mech) << " faults=" << fault_trial;
    }
  }
}

TEST_P(RandomProgramTest, AnalyzerInvariantsHold) {
  const Program p = make_program();
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const PwcetAnalyzer a(p, CacheConfig::paper_default(), options);
  const FaultModel faults(1e-4);
  const auto none = a.analyze(faults, Mechanism::kNone);
  const auto rw = a.analyze(faults, Mechanism::kReliableWay);
  const auto srb = a.analyze(faults, Mechanism::kSharedReliableBuffer);
  for (double prob : {1e-9, 1e-15}) {
    EXPECT_GE(none.pwcet(prob), a.fault_free_wcet());
    EXPECT_LE(rw.pwcet(prob), none.pwcet(prob));
    EXPECT_LE(srb.pwcet(prob), none.pwcet(prob));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace pwcet
