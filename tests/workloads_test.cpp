// Sanity and structure tests over the 25 Mälardalen counterparts, plus the
// paper-level integration invariants of the Fig. 4 experiment.
#include <gtest/gtest.h>

#include <set>

#include "core/pwcet_analyzer.hpp"
#include "sim/path.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

TEST(Workloads, TwentyFiveBenchmarks) {
  const auto names = workloads::names();
  EXPECT_EQ(names.size(), 25u);  // paper §IV-A: 25 Mälardalen benchmarks
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  // The benchmarks the paper calls out by name are present.
  for (const char* required : {"adpcm", "matmult", "fft", "ud"})
    EXPECT_TRUE(unique.count(required)) << required;
}

TEST(Workloads, ExtensionKernelsBuildAndCarryDataLoads) {
  // The data-cache study kernels live outside the 25-benchmark suite (so
  // the paper-invariant averages above stay untouched) but must build and
  // actually exercise the data-reference path.
  for (const std::string& name : workloads::extension_names()) {
    const Program p = workloads::build(name);
    EXPECT_EQ(p.name(), name);
    p.cfg().validate();
    std::uint64_t loads = 0, stores = 0;
    for (const BasicBlock& b : p.cfg().blocks()) {
      loads += b.data_addresses.size();
      stores += b.store_addresses.size();
    }
    EXPECT_GT(loads, 0u) << name << " records no data loads";
    // ringbuf is the store-bearing kernel: the write-back d-cache and
    // TLB/L2 unified-stream paths need at least one task with stores.
    if (name == "ringbuf") {
      EXPECT_GT(stores, 0u) << name << " records no data stores";
    }
  }
  const auto all = workloads::all_names();
  EXPECT_EQ(all.size(), workloads::names().size() +
                            workloads::extension_names().size());
  const std::set<std::string> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
}

class WorkloadShapeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadShapeTest, BuildsValidCfg) {
  const Program p = workloads::build(GetParam());
  EXPECT_EQ(p.name(), GetParam());
  p.cfg().validate();  // aborts on broken structure
  EXPECT_GT(p.cfg().block_count(), 0u);
  EXPECT_GT(p.cfg().total_instructions(), 0u);
}

TEST_P(WorkloadShapeTest, CodeSizeIsRealistic) {
  // Every benchmark carries runtime/startup code and a body; the paper's
  // cache is 1 KB, and the suite intentionally spans programs near and far
  // beyond that size.
  const Program p = workloads::build(GetParam());
  EXPECT_GE(p.code_size_bytes(), 512u);
  EXPECT_LE(p.code_size_bytes(), 64u * 1024u);
}

TEST_P(WorkloadShapeTest, TraceLengthIsBoundedForSimulation) {
  const Program p = workloads::build(GetParam());
  EXPECT_LT(heavy_walk_fetch_count(p), 2'000'000u);
}

TEST_P(WorkloadShapeTest, HasLoops) {
  const Program p = workloads::build(GetParam());
  EXPECT_FALSE(p.cfg().loops().empty());
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadShapeTest,
                         ::testing::ValuesIn(workloads::names()),
                         [](const auto& info) { return info.param; });

// Paper-level integration invariants at the Fig. 4 operating point
// (pfail = 1e-4, exceedance 1e-15).
class PaperInvariantsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperInvariantsTest, Figure4Orderings) {
  const Program p = workloads::build(GetParam());
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const PwcetAnalyzer a(p, CacheConfig::paper_default(), options);
  const FaultModel faults(1e-4);
  const auto none = a.analyze(faults, Mechanism::kNone);
  const auto rw = a.analyze(faults, Mechanism::kReliableWay);
  const auto srb = a.analyze(faults, Mechanism::kSharedReliableBuffer);
  const Cycles p_none = none.pwcet(1e-15);
  const Cycles p_rw = rw.pwcet(1e-15);
  const Cycles p_srb = srb.pwcet(1e-15);
  // fault-free <= RW <= SRB <= none (paper §IV-B: the RW gain is larger
  // than or equal to the SRB gain on every benchmark).
  EXPECT_LE(a.fault_free_wcet(), p_rw);
  EXPECT_LE(p_rw, p_srb);
  EXPECT_LE(p_srb, p_none);
  // Both mechanisms yield strictly positive gains on every benchmark
  // ("for all benchmarks ... significantly lower pWCETs", §IV-B).
  EXPECT_LT(p_rw, p_none);
  EXPECT_LT(p_srb, p_none);
}

INSTANTIATE_TEST_SUITE_P(All, PaperInvariantsTest,
                         ::testing::ValuesIn(workloads::names()),
                         [](const auto& info) { return info.param; });

TEST(PaperResults, AllFourCategoriesOccur) {
  // §IV-B groups the 25 benchmarks in four behaviour categories; the
  // reproduced suite must populate all of them.
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const FaultModel faults(1e-4);
  std::set<int> seen;
  for (const std::string& name : workloads::names()) {
    const Program p = workloads::build(name);
    const PwcetAnalyzer a(p, CacheConfig::paper_default(), options);
    const auto none = a.analyze(faults, Mechanism::kNone);
    const auto rw = a.analyze(faults, Mechanism::kReliableWay);
    const auto srb = a.analyze(faults, Mechanism::kSharedReliableBuffer);
    const double base = static_cast<double>(none.pwcet(1e-15));
    const double ff = a.fault_free_wcet() / base;
    const double nrw = rw.pwcet(1e-15) / base;
    const double nsrb = srb.pwcet(1e-15) / base;
    const double eps = 1e-9;
    if (nrw <= ff + eps && nsrb <= ff + eps)
      seen.insert(1);
    else if (nrw <= ff + eps)
      seen.insert(2);
    else if (std::abs(nrw - nsrb) <= 0.02)
      seen.insert(3);
    else
      seen.insert(4);
  }
  EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4}));
}

TEST(PaperResults, AverageGainsInPaperBallpark) {
  // Paper: average gain 48 % (RW) and 40 % (SRB). The workloads are
  // structural counterparts, so enforce a generous corridor around the
  // reported averages rather than exact values.
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const FaultModel faults(1e-4);
  double sum_rw = 0.0, sum_srb = 0.0;
  int n = 0;
  for (const std::string& name : workloads::names()) {
    const Program p = workloads::build(name);
    const PwcetAnalyzer a(p, CacheConfig::paper_default(), options);
    const double base =
        static_cast<double>(a.analyze(faults, Mechanism::kNone).pwcet(1e-15));
    sum_rw += 1.0 - a.analyze(faults, Mechanism::kReliableWay).pwcet(1e-15) /
                        base;
    sum_srb +=
        1.0 -
        a.analyze(faults, Mechanism::kSharedReliableBuffer).pwcet(1e-15) /
            base;
    ++n;
  }
  const double avg_rw = sum_rw / n;
  const double avg_srb = sum_srb / n;
  EXPECT_NEAR(avg_rw, 0.48, 0.10);   // paper: 48 %
  EXPECT_NEAR(avg_srb, 0.40, 0.10);  // paper: 40 %
  EXPECT_GE(avg_rw, avg_srb);        // RW gain is the larger on average
}

}  // namespace
}  // namespace pwcet
