// Unit tests for the campaign engine: thread pool (ordering, exceptions,
// nesting), RNG substreams, campaign expansion, and the determinism
// contract (an N-thread campaign reproduces a 1-thread campaign byte for
// byte).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <string>

#include "core/pwcet_analyzer.hpp"
#include "engine/campaign.hpp"
#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/thread_pool.hpp"
#include "support/rng.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

TEST(ThreadPool, ResultsInSubmissionOrder) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  const auto results = pool.map_indexed(
      1000, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(results.size(), 1000u);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i], static_cast<int>(i * i));
}

TEST(ThreadPool, ManySmallJobsStress) {
  ThreadPool pool(8);
  std::atomic<int> executed{0};
  const auto results = pool.map_indexed(5000, [&](std::size_t i) {
    executed.fetch_add(1, std::memory_order_relaxed);
    return i;
  });
  EXPECT_EQ(executed.load(), 5000);
  EXPECT_EQ(results.size(), 5000u);
}

TEST(ThreadPool, ExceptionsPropagateToWaiter) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.map_indexed(100,
                                [](std::size_t i) {
                                  if (i == 37)
                                    throw std::runtime_error("job 37");
                                  return i;
                                }),
               std::runtime_error);
  // The pool survives a throwing batch.
  const auto ok = pool.map_indexed(8, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(ok.size(), 8u);
}

TEST(ThreadPool, NestedFanOutDoesNotDeadlock) {
  // Jobs submit sub-jobs to the same pool and wait for them: with only one
  // worker this deadlocks unless waiting threads help drain the queue.
  ThreadPool pool(1);
  const auto results = pool.map_indexed(4, [&](std::size_t i) {
    const auto inner =
        pool.map_indexed(4, [i](std::size_t j) { return i * 10 + j; });
    std::size_t sum = 0;
    for (const std::size_t v : inner) sum += v;
    return sum;
  });
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(results[i], 40 * i + 6);
}

TEST(RngSplit, DeterministicAndIndependentOfParentDraws) {
  const Rng parent(123);
  Rng a = parent.split(7);
  Rng b = parent.split(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // split() is const: drawing from a child does not disturb the parent.
  Rng c = parent.split(8);
  Rng d = parent.split(7);
  Rng e = parent.split(7);
  EXPECT_EQ(d.next_u64(), e.next_u64());
  (void)c;
}

TEST(RngSplit, DistinctStreamsDiverge) {
  const Rng parent(99);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(RngSplit, DeriveSeedSeparatesStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream)
    seeds.insert(Rng::derive_seed(42, stream));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(Rng::derive_seed(1, 0), Rng::derive_seed(2, 0));
}

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.tasks = {"fibcall", "bs"};
  CacheConfig small = CacheConfig::paper_default();
  CacheConfig tiny = CacheConfig::paper_default();
  tiny.sets = 8;
  tiny.ways = 2;
  spec.geometries = {small, tiny};
  spec.pfails = {1e-4, 1e-3};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kReliableWay,
                     Mechanism::kSharedReliableBuffer};
  return spec;
}

TEST(Campaign, ExpandsTheFullGrid) {
  const CampaignSpec spec = small_spec();
  const auto jobs = expand_campaign(spec);
  ASSERT_EQ(jobs.size(), 2u * 2u * 2u * 3u);
  ASSERT_EQ(jobs.size(), spec.job_count());

  // Expansion order is row-major with kinds innermost; indices invert it.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CampaignJob& job = jobs[i];
    EXPECT_EQ(job.index, i);
    EXPECT_EQ(campaign_job_index(spec, job.task_i, job.geometry_i,
                                 job.pfail_i, job.mechanism_i, job.engine_i,
                                 job.kind_i),
              i);
    EXPECT_EQ(job.task, spec.tasks[job.task_i]);
    EXPECT_EQ(job.pfail, spec.pfails[job.pfail_i]);
    EXPECT_EQ(job.mechanism, spec.mechanisms[job.mechanism_i]);
    EXPECT_EQ(job.geometry.sets, spec.geometries[job.geometry_i].sets);
  }
  // First axis to move is the innermost one.
  EXPECT_EQ(jobs[0].mechanism_i, 0u);
  EXPECT_EQ(jobs[1].mechanism_i, 1u);
  EXPECT_EQ(jobs[0].task_i, 0u);
  EXPECT_EQ(jobs.back().task_i, 1u);
}

TEST(Campaign, SeedsAreUniqueAndKeyedByValues) {
  const CampaignSpec spec = small_spec();
  const auto jobs = expand_campaign(spec);
  std::set<std::uint64_t> seeds;
  for (const CampaignJob& job : jobs) seeds.insert(job.seed);
  EXPECT_EQ(seeds.size(), jobs.size());

  // Seeds depend on the job's own axis values, not on grid position:
  // extending an axis must not reseed pre-existing cells.
  CampaignSpec wider = spec;
  wider.pfails.push_back(1e-6);
  const auto wider_jobs = expand_campaign(wider);
  for (const CampaignJob& job : jobs) {
    const CampaignJob& same = wider_jobs[campaign_job_index(
        wider, job.task_i, job.geometry_i, job.pfail_i, job.mechanism_i,
        job.engine_i, job.kind_i)];
    EXPECT_EQ(job.seed, same.seed) << job.id();
  }

  // A different base seed moves every stream.
  CampaignSpec reseeded = spec;
  reseeded.base_seed = spec.base_seed + 1;
  EXPECT_NE(expand_campaign(reseeded)[0].seed, jobs[0].seed);
}

TEST(Campaign, JobIdNamesEveryAxis) {
  const auto jobs = expand_campaign(small_spec());
  EXPECT_EQ(jobs[0].id(), "fibcall/16x4x16B/1.0e-04/none/ilp/spta");

  // Non-default extension axes append suffixes; default cells keep the
  // historic id above.
  CampaignSpec spec = small_spec();
  DcacheAxis dcache;
  dcache.enabled = true;
  dcache.geometry.sets = 8;
  spec.dcaches = {dcache};
  spec.dcache_mechanisms = {DcacheMechanism::kSharedReliableBuffer};
  const auto dcache_jobs = expand_campaign(spec);
  EXPECT_EQ(dcache_jobs[0].id(),
            "fibcall/16x4x16B/1.0e-04/none/ilp/spta/D8x4x16B/SRB");

  CampaignSpec sampled = small_spec();
  sampled.kinds = {AnalysisKind::kSimulation};
  sampled.sample_counts = {200};
  EXPECT_EQ(expand_campaign(sampled)[0].id(),
            "fibcall/16x4x16B/1.0e-04/none/ilp/sim/n200");
}

TEST(Campaign, NewAxesExpandInnermostAndKeepSeedsStable) {
  // The extension axes (dcaches, dcache_mechanisms, sample_counts) expand
  // innermost, so adding them to a spec leaves the relative order of the
  // pre-existing cells unchanged; and seeds stay keyed by axis *values*:
  // widening any new axis must not reseed pre-existing cells.
  CampaignSpec spec = small_spec();
  DcacheAxis dcache;
  dcache.enabled = true;
  dcache.geometry.sets = 8;
  spec.dcaches = {dcache};
  spec.dcache_mechanisms = {DcacheMechanism::kNone,
                            DcacheMechanism::kReliableWay};
  spec.sample_counts = {0, 100};
  const auto jobs = expand_campaign(spec);
  ASSERT_EQ(jobs.size(), spec.job_count());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CampaignJob& job = jobs[i];
    EXPECT_EQ(campaign_job_index(spec, job.task_i, job.geometry_i,
                                 job.pfail_i, job.mechanism_i, job.engine_i,
                                 job.kind_i, job.dcache_i, job.dmech_i,
                                 job.samples_i),
              i);
  }
  // samples is the innermost axis.
  EXPECT_EQ(jobs[0].samples_i, 0u);
  EXPECT_EQ(jobs[1].samples_i, 1u);

  std::set<std::uint64_t> seeds;
  for (const CampaignJob& job : jobs) seeds.insert(job.seed);
  EXPECT_EQ(seeds.size(), jobs.size());

  CampaignSpec wider = spec;
  wider.sample_counts.push_back(500);
  const auto wider_jobs = expand_campaign(wider);
  for (const CampaignJob& job : jobs) {
    const CampaignJob& same = wider_jobs[campaign_job_index(
        wider, job.task_i, job.geometry_i, job.pfail_i, job.mechanism_i,
        job.engine_i, job.kind_i, job.dcache_i, job.dmech_i,
        job.samples_i)];
    EXPECT_EQ(job.seed, same.seed) << job.id();
  }
}

TEST(Campaign, IgnoredAxisValuesDoNotPerturbSeeds) {
  // Seeds derive only from axis values the cell actually consumes
  // (mirroring id()'s suffix rule). Consequences: cells identical in
  // every meaningful axis share a seed even when an *ignored* axis value
  // differs, and campaigns written before the extension axes existed
  // keep their published seeds.
  const CampaignSpec historic = small_spec();
  const auto historic_jobs = expand_campaign(historic);

  // A dcache mechanism without a data cache is ignored: same seed.
  CampaignSpec with_dmech = historic;
  with_dmech.dcache_mechanisms = {DcacheMechanism::kSharedReliableBuffer};
  EXPECT_EQ(expand_campaign(with_dmech)[0].seed, historic_jobs[0].seed);

  // Two pairings resolving to the same data-cache mechanism are the same
  // computation: same seed.
  CampaignSpec resolved = historic;
  DcacheAxis dcache;
  dcache.enabled = true;
  dcache.geometry.sets = 8;
  resolved.dcaches = {dcache};
  resolved.mechanisms = {Mechanism::kSharedReliableBuffer};
  resolved.dcache_mechanisms = {DcacheMechanism::kSame,
                                DcacheMechanism::kSharedReliableBuffer};
  const auto resolved_jobs = expand_campaign(resolved);
  EXPECT_EQ(resolved_jobs[0].seed, resolved_jobs[1].seed);

  // A default sample count (0 = spec-level populations) derives through
  // the historic chain; an explicit one reseeds.
  CampaignSpec sampled = historic;
  sampled.sample_counts = {0, 100};
  const auto sampled_jobs = expand_campaign(sampled);
  EXPECT_EQ(sampled_jobs[0].seed, historic_jobs[0].seed);
  EXPECT_NE(sampled_jobs[1].seed, historic_jobs[0].seed);
}

TEST(Runner, TwoThreadRunIsByteIdenticalToOneThread) {
  CampaignSpec spec = small_spec();
  spec.kinds = {AnalysisKind::kSpta, AnalysisKind::kMbpta,
                AnalysisKind::kSimulation};
  spec.mbpta.chips = 40;
  spec.mbpta.block_size = 10;
  spec.simulation_chips = 50;

  RunnerOptions serial;
  serial.threads = 1;
  RunnerOptions parallel;
  parallel.threads = 2;

  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, parallel);
  EXPECT_EQ(a.threads_used, 1u);
  EXPECT_EQ(b.threads_used, 2u);
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(report_csv(a), report_csv(b));
  EXPECT_EQ(report_jsonl(a), report_jsonl(b));
}

TEST(Runner, PooledAnalyzerMatchesSerialAnalyzer) {
  // The per-set fan-out and pooled tree reduction inside one analysis must
  // not change a single bit of the result.
  const Program program = workloads::build("fibcall");
  const CacheConfig config = CacheConfig::paper_default();
  const FaultModel faults(1e-4);

  const PwcetAnalyzer serial(program, config);
  ThreadPool pool(3);
  PwcetOptions pooled_options;
  pooled_options.pool = &pool;
  const PwcetAnalyzer pooled(program, config, pooled_options);

  EXPECT_EQ(serial.fault_free_wcet(), pooled.fault_free_wcet());
  for (const Mechanism m : {Mechanism::kNone, Mechanism::kReliableWay,
                            Mechanism::kSharedReliableBuffer}) {
    const PwcetResult rs = serial.analyze(faults, m);
    const PwcetResult rp = pooled.analyze(faults, m);
    EXPECT_EQ(rs.penalty, rp.penalty);
    EXPECT_EQ(rs.pwcet(1e-15), rp.pwcet(1e-15));
  }
}

TEST(Runner, TreeEngineCampaignIsDeterministicToo) {
  CampaignSpec spec;
  spec.tasks = {"fibcall"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer};
  spec.engines = {WcetEngine::kTree};

  RunnerOptions serial;
  serial.threads = 1;
  RunnerOptions parallel;
  parallel.threads = 4;
  EXPECT_EQ(report_csv(run_campaign(spec, serial)),
            report_csv(run_campaign(spec, parallel)));
}

TEST(Runner, SimulationNeverExceedsStaticBound) {
  CampaignSpec spec;
  spec.tasks = {"bs"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-3};
  spec.mechanisms = {Mechanism::kNone};
  spec.kinds = {AnalysisKind::kSpta, AnalysisKind::kSimulation};
  spec.simulation_chips = 200;

  const CampaignResult campaign = run_campaign(spec, {});
  const JobResult& spta = campaign.at(0, 0, 0, 0, 0, 0);
  const JobResult& sim = campaign.at(0, 0, 0, 0, 0, 1);
  EXPECT_GT(spta.pwcet, 0.0);
  // The static bound must dominate every simulated execution.
  EXPECT_GE(spta.pwcet, sim.observed_max);
}

TEST(Report, ShapesAreConsistent) {
  CampaignSpec spec;
  spec.tasks = {"fibcall"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone};
  const CampaignResult campaign = run_campaign(spec, {});

  const std::string csv = report_csv(campaign);
  // Header + one line per job.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(1 + campaign.results.size()));
  const std::string jsonl = report_jsonl(campaign);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'),
            static_cast<long>(campaign.results.size()));
  EXPECT_NE(jsonl.find("\"task\":\"fibcall\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"spta\""), std::string::npos);
}

}  // namespace
}  // namespace pwcet
