// Unit tests for the campaign-spec file format (engine/spec_io.hpp):
//
//  - round-trip: spec -> JSON -> spec preserves every field that reaches
//    campaign_spec_key (so a serialized spec is a byte-equivalent stand-in
//    for the programmatic campaign it came from);
//  - the shipped specs under specs/ reproduce the exact programmatic
//    campaigns the example/bench binaries used to construct in C++;
//  - defaults match the C++ defaults of CampaignSpec;
//  - malformed specs are rejected with diagnostics naming the offending
//    field (and its line), never with an abort.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/spec_io.hpp"
#include "workloads/malardalen.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

namespace pwcet {
namespace {

CampaignSpec parse_ok(const std::string& text) {
  return parse_spec(text, "<inline>").spec;
}

/// Asserts that parsing fails and that the diagnostic mentions every
/// expected fragment (field names, line numbers, suggestions).
void expect_rejected(const std::string& text,
                     const std::vector<std::string>& fragments) {
  try {
    parse_spec(text, "<inline>");
    FAIL() << "spec unexpectedly parsed:\n" << text;
  } catch (const SpecError& e) {
    const std::string message = e.what();
    for (const std::string& fragment : fragments)
      EXPECT_NE(message.find(fragment), std::string::npos)
          << "missing \"" << fragment << "\" in diagnostic:\n  " << message;
  }
}

const char* kMinimalSpec = R"({
  "tasks": ["fibcall"],
  "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
  "pfails": [1e-4],
  "mechanisms": ["none"]
})";

// ---- happy path ------------------------------------------------------------

TEST(SpecIo, MinimalSpecGetsCxxDefaults) {
  const CampaignSpec spec = parse_ok(kMinimalSpec);
  const CampaignSpec defaults;
  EXPECT_EQ(spec.tasks, std::vector<std::string>{"fibcall"});
  ASSERT_EQ(spec.geometries.size(), 1u);
  EXPECT_EQ(spec.geometries[0].hit_latency, CacheConfig{}.hit_latency);
  EXPECT_EQ(spec.geometries[0].miss_penalty, CacheConfig{}.miss_penalty);
  ASSERT_EQ(spec.engines.size(), 1u);
  EXPECT_EQ(spec.engines[0], WcetEngine::kIlp);
  ASSERT_EQ(spec.kinds.size(), 1u);
  EXPECT_EQ(spec.kinds[0], AnalysisKind::kSpta);
  EXPECT_EQ(spec.target_exceedance, defaults.target_exceedance);
  EXPECT_EQ(spec.max_distribution_points, defaults.max_distribution_points);
  EXPECT_EQ(spec.mbpta.chips, defaults.mbpta.chips);
  EXPECT_EQ(spec.mbpta.block_size, defaults.mbpta.block_size);
  EXPECT_EQ(spec.mbpta.seed, defaults.mbpta.seed);
  EXPECT_EQ(spec.simulation_chips, defaults.simulation_chips);
  EXPECT_EQ(spec.base_seed, defaults.base_seed);
}

TEST(SpecIo, EnumNamesAreCaseInsensitive) {
  const CampaignSpec spec = parse_ok(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["NONE", "rw", "Srb"],
    "engines": ["ILP", "Tree"],
    "kinds": ["SPTA", "sim"]
  })");
  EXPECT_EQ(spec.mechanisms,
            (std::vector<Mechanism>{Mechanism::kNone, Mechanism::kReliableWay,
                                    Mechanism::kSharedReliableBuffer}));
  EXPECT_EQ(spec.engines,
            (std::vector<WcetEngine>{WcetEngine::kIlp, WcetEngine::kTree}));
  EXPECT_EQ(spec.kinds, (std::vector<AnalysisKind>{AnalysisKind::kSpta,
                                                   AnalysisKind::kSimulation}));
}

TEST(SpecIo, RoundTripPreservesEveryKeyedField) {
  CampaignSpec spec;
  spec.tasks = {"fibcall", "adpcm", "fft"};
  CacheConfig small;
  small.sets = 8;
  small.ways = 2;
  small.line_bytes = 32;
  small.hit_latency = 2;
  small.miss_penalty = 77;
  spec.geometries = {CacheConfig::paper_default(), small};
  spec.pfails = {6.1e-13, 1e-4, 0.125};
  spec.mechanisms = {Mechanism::kSharedReliableBuffer, Mechanism::kNone,
                     Mechanism::kReliableWay};
  spec.engines = {WcetEngine::kTree, WcetEngine::kIlp};
  spec.kinds = {AnalysisKind::kMbpta, AnalysisKind::kSpta,
                AnalysisKind::kSimulation};
  spec.dcache_mechanisms = {DcacheMechanism::kSame, DcacheMechanism::kNone,
                            DcacheMechanism::kReliableWay,
                            DcacheMechanism::kSharedReliableBuffer};
  spec.sample_counts = {0, 64, 4000};
  spec.ccdf_exceedances = {1.0, 1e-3, 1e-16};
  spec.target_exceedance = 1e-12;
  spec.max_distribution_points = 512;
  spec.mbpta.chips = 128;
  spec.mbpta.block_size = 16;
  spec.mbpta.seed = 0xfeedface;
  spec.simulation_chips = 99;
  spec.base_seed = 0x0123456789abcdefULL;  // above 2^53: string route

  const std::string json = spec_to_json(spec, "round-trip", "notes text");
  const SpecDocument doc = parse_spec(json, "<round-trip>");
  EXPECT_EQ(doc.name, "round-trip");
  EXPECT_EQ(doc.notes, "notes text");
  EXPECT_EQ(doc.spec.tasks, spec.tasks);
  EXPECT_EQ(doc.spec.pfails, spec.pfails);
  EXPECT_EQ(doc.spec.base_seed, spec.base_seed);
  EXPECT_EQ(doc.spec.mbpta.seed, spec.mbpta.seed);
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));

  // Second generation must be textually stable (canonical form).
  EXPECT_EQ(spec_to_json(doc.spec, doc.name, doc.notes), json);
}

TEST(SpecIo, DcacheAxisRoundTripsThroughTheSerializer) {
  CampaignSpec spec;
  spec.tasks = {"interp", "dispatch"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kReliableWay};
  DcacheAxis off;
  DcacheAxis on;
  on.enabled = true;
  on.geometry.sets = 8;
  on.geometry.ways = 2;
  on.geometry.line_bytes = 32;
  on.geometry.miss_penalty = 25;
  spec.dcaches = {off, on};
  spec.dcache_mechanisms = {DcacheMechanism::kSame,
                            DcacheMechanism::kSharedReliableBuffer};

  const std::string json = spec_to_json(spec);
  const SpecDocument doc = parse_spec(json, "<dcache-round-trip>");
  ASSERT_EQ(doc.spec.dcaches.size(), 2u);
  EXPECT_FALSE(doc.spec.dcaches[0].enabled);
  ASSERT_TRUE(doc.spec.dcaches[1].enabled);
  EXPECT_EQ(doc.spec.dcaches[1].geometry.sets, 8u);
  EXPECT_EQ(doc.spec.dcaches[1].geometry.miss_penalty, 25);
  EXPECT_EQ(doc.spec.dcache_mechanisms, spec.dcache_mechanisms);
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
  EXPECT_EQ(spec_to_json(doc.spec), json);
}

TEST(SpecIo, WritebackDcacheAxisRoundTripsThroughTheSerializer) {
  CampaignSpec spec;
  spec.tasks = {"ringbuf"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone};
  DcacheAxis wb;
  wb.enabled = true;
  wb.geometry.sets = 8;
  wb.policy = WritePolicy::kWriteBack;
  wb.writeback_penalty = 40;
  spec.dcaches = {DcacheAxis{}, wb};

  const std::string json = spec_to_json(spec);
  EXPECT_NE(json.find("\"policy\": \"write_back\""), std::string::npos);
  EXPECT_NE(json.find("\"writeback_penalty\": 40"), std::string::npos);
  const SpecDocument doc = parse_spec(json, "<wb-round-trip>");
  ASSERT_EQ(doc.spec.dcaches.size(), 2u);
  EXPECT_EQ(doc.spec.dcaches[0].policy, WritePolicy::kWriteThrough);
  EXPECT_EQ(doc.spec.dcaches[1].policy, WritePolicy::kWriteBack);
  EXPECT_EQ(doc.spec.dcaches[1].writeback_penalty, 40);
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
  EXPECT_EQ(spec_to_json(doc.spec), json);
  // The write-back axis must change the spec key: same geometry under
  // write-through is a different campaign.
  CampaignSpec through = spec;
  through.dcaches[1].policy = WritePolicy::kWriteThrough;
  through.dcaches[1].writeback_penalty = 0;
  EXPECT_NE(campaign_spec_key(through), campaign_spec_key(spec));
}

TEST(SpecIo, TlbAndL2AxesRoundTripThroughTheSerializer) {
  CampaignSpec spec;
  spec.tasks = {"fibcall", "ringbuf"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer};
  TlbAxis tlb;
  tlb.enabled = true;
  tlb.entries = 16;
  tlb.ways = 2;
  tlb.page_bytes = 128;
  tlb.miss_penalty = 45;
  spec.tlbs = {TlbAxis{}, tlb};
  L2Axis l2;
  l2.enabled = true;
  l2.geometry.sets = 64;
  l2.geometry.line_bytes = 32;
  l2.geometry.hit_latency = 0;
  l2.geometry.miss_penalty = 80;
  spec.l2s = {L2Axis{}, l2};

  const std::string json = spec_to_json(spec);
  const SpecDocument doc = parse_spec(json, "<tlb-l2-round-trip>");
  ASSERT_EQ(doc.spec.tlbs.size(), 2u);
  EXPECT_FALSE(doc.spec.tlbs[0].enabled);
  ASSERT_TRUE(doc.spec.tlbs[1].enabled);
  EXPECT_EQ(doc.spec.tlbs[1].entries, 16u);
  EXPECT_EQ(doc.spec.tlbs[1].ways, 2u);
  EXPECT_EQ(doc.spec.tlbs[1].page_bytes, 128u);
  EXPECT_EQ(doc.spec.tlbs[1].miss_penalty, 45);
  ASSERT_EQ(doc.spec.l2s.size(), 2u);
  ASSERT_TRUE(doc.spec.l2s[1].enabled);
  EXPECT_EQ(doc.spec.l2s[1].geometry.sets, 64u);
  EXPECT_EQ(doc.spec.l2s[1].geometry.miss_penalty, 80);
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
  EXPECT_EQ(spec_to_json(doc.spec), json);

  // Enabling either axis must change the spec key; collapsing both back
  // to the default single-disabled entry restores the pre-axis key (the
  // shipped-spec pin tests above lock that key's value).
  CampaignSpec plain = spec;
  plain.tlbs = {TlbAxis{}};
  plain.l2s = {L2Axis{}};
  EXPECT_NE(campaign_spec_key(plain), campaign_spec_key(spec));
  CampaignSpec tlb_only = plain;
  tlb_only.tlbs = spec.tlbs;
  EXPECT_NE(campaign_spec_key(tlb_only), campaign_spec_key(plain));
  EXPECT_NE(campaign_spec_key(tlb_only), campaign_spec_key(spec));
}

TEST(SpecIo, SeedsAboveDoublePrecisionSurviveAsStrings) {
  const CampaignSpec spec = parse_ok(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "base_seed": "18446744073709551615"
  })");
  EXPECT_EQ(spec.base_seed, 18446744073709551615ULL);
}

// ---- shipped specs reproduce the programmatic campaigns --------------------

std::string shipped(const char* name) {
  return std::string(PWCET_SPECS_DIR) + "/" + name;
}

TEST(ShippedSpecs, GeometrySweepMatchesProgrammaticCampaign) {
  // The exact spec bench/tab_geometry_sweep.cpp used to build in C++.
  CampaignSpec spec;
  spec.tasks = {"adpcm", "matmult", "crc", "fft", "fibcall", "ud"};
  for (const auto& [sets, ways, line] :
       {std::tuple{32u, 2u, 16u}, std::tuple{16u, 4u, 16u},
        std::tuple{8u, 8u, 16u}, std::tuple{32u, 4u, 8u},
        std::tuple{8u, 4u, 32u}}) {
    CacheConfig config;
    config.sets = sets;
    config.ways = ways;
    config.line_bytes = line;
    spec.geometries.push_back(config);
  }
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.target_exceedance = 1e-15;

  const SpecDocument doc = load_spec(shipped("geometry_sweep.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, PfailSweepMatchesProgrammaticCampaign) {
  // The exact spec bench/tab_pfail_sweep.cpp used to build in C++.
  CampaignSpec spec;
  spec.tasks = {"adpcm", "fibcall", "matmult", "crc", "fft", "ud"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {6.1e-13, 1e-9, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.target_exceedance = 1e-15;

  const SpecDocument doc = load_spec(shipped("pfail_sweep.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, MbptaVsSptaMatchesProgrammaticCampaign) {
  // The exact spec bench/tab_mbpta_vs_spta.cpp used to build in C++.
  CampaignSpec spec;
  spec.tasks = {"fibcall", "bs", "matmult", "crc", "fft", "ud"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-3};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kReliableWay,
                     Mechanism::kSharedReliableBuffer};
  spec.kinds = {AnalysisKind::kSpta, AnalysisKind::kMbpta};
  spec.target_exceedance = 1e-15;
  spec.mbpta.chips = 400;
  spec.mbpta.block_size = 20;

  const SpecDocument doc = load_spec(shipped("mbpta_vs_spta.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, ArchitectureTradeoffMatchesProgrammaticCampaign) {
  // The exact spec examples/architecture_tradeoff.cpp used to build in C++.
  CampaignSpec spec;
  spec.tasks = {"statemate", "fft", "adpcm"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-6, 1e-5, 1e-4, 1e-3};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.target_exceedance = 1e-15;

  const SpecDocument doc = load_spec(shipped("architecture_tradeoff.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, CcdfMatchesProgrammaticCampaign) {
  // The exact campaign bench/fig3_ccdf.cpp used to build in C++ — the
  // decade grid 1e0..1e-16 of the paper's Fig. 3 y-axis is now the
  // distribution sink.
  CampaignSpec spec;
  spec.tasks = {"adpcm"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.target_exceedance = 1e-15;
  for (int decade = 0; decade >= -16; --decade)
    spec.ccdf_exceedances.push_back(std::pow(10.0, decade));

  const SpecDocument doc = load_spec(shipped("ccdf.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, NormalizedPwcetCoversTheWholeSuite) {
  // The exact campaign bench/fig4_normalized_pwcet.cpp used to build:
  // every benchmark of the 25-task suite, in display order.
  CampaignSpec spec;
  spec.tasks = workloads::names();
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.target_exceedance = 1e-15;

  const SpecDocument doc = load_spec(shipped("normalized_pwcet.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, DcacheExtensionMatchesProgrammaticCampaign) {
  // The exact deployments bench/tab_dcache_extension.cpp used to build in
  // C++ (E8: split 1 KB I / 512 B D cache, uniform + mixed mechanisms).
  CampaignSpec spec;
  spec.tasks = {"interp", "dispatch"};
  spec.geometries = {CacheConfig::paper_default()};
  DcacheAxis dcache;
  dcache.enabled = true;
  dcache.geometry.sets = 8;
  spec.dcaches = {dcache};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.dcache_mechanisms = {DcacheMechanism::kSame,
                            DcacheMechanism::kSharedReliableBuffer};
  spec.target_exceedance = 1e-15;

  const SpecDocument doc = load_spec(shipped("dcache_extension.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, SrbConservatismMatchesProgrammaticCampaign) {
  // The exact sweep bench/tab_srb_conservatism.cpp used to run in C++
  // (E5), now as slack jobs with the SRB/RW pairing.
  CampaignSpec spec;
  spec.tasks = workloads::names();
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.kinds = {AnalysisKind::kSlack};

  const SpecDocument doc = load_spec(shipped("srb_conservatism.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, TlbSweepMatchesProgrammaticCampaign) {
  CampaignSpec spec;
  spec.tasks = {"fibcall", "interp", "ringbuf"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  TlbAxis small;
  small.enabled = true;
  small.entries = 16;
  small.ways = 2;
  small.page_bytes = 64;
  TlbAxis large;
  large.enabled = true;
  large.entries = 32;
  large.ways = 4;
  large.page_bytes = 128;
  spec.tlbs = {TlbAxis{}, small, large};

  const SpecDocument doc = load_spec(shipped("tlb_sweep.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, WritebackDcacheMatchesProgrammaticCampaign) {
  CampaignSpec spec;
  spec.tasks = {"interp", "dispatch", "ringbuf"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  DcacheAxis through;
  through.enabled = true;
  through.geometry.sets = 8;
  DcacheAxis back = through;
  back.policy = WritePolicy::kWriteBack;
  back.writeback_penalty = 40;
  spec.dcaches = {DcacheAxis{}, through, back};

  const SpecDocument doc = load_spec(shipped("writeback_dcache.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, SharedL2MatchesProgrammaticCampaign) {
  CampaignSpec spec;
  spec.tasks = {"fibcall", "ringbuf"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer};
  spec.engines = {WcetEngine::kIlp, WcetEngine::kTree};
  L2Axis l2;
  l2.enabled = true;
  l2.geometry.sets = 64;
  l2.geometry.line_bytes = 32;
  l2.geometry.hit_latency = 0;
  l2.geometry.miss_penalty = 80;
  spec.l2s = {L2Axis{}, l2};
  spec.ccdf_exceedances = {1e-3, 1e-6, 1e-9, 1e-12, 1e-15};

  const SpecDocument doc = load_spec(shipped("shared_l2.json"));
  EXPECT_EQ(campaign_spec_key(doc.spec), campaign_spec_key(spec));
}

TEST(ShippedSpecs, EverySpecRoundTripsThroughTheSerializer) {
  for (const char* name :
       {"geometry_sweep.json", "pfail_sweep.json", "mbpta_vs_spta.json",
        "architecture_tradeoff.json", "ccdf.json", "normalized_pwcet.json",
        "dcache_extension.json", "srb_conservatism.json", "tlb_sweep.json",
        "writeback_dcache.json", "shared_l2.json"}) {
    const SpecDocument doc = load_spec(shipped(name));
    const SpecDocument again =
        parse_spec(spec_to_json(doc.spec, doc.name, doc.notes), name);
    EXPECT_EQ(campaign_spec_key(again.spec), campaign_spec_key(doc.spec))
        << name;
  }
}

// ---- rejection diagnostics -------------------------------------------------

TEST(SpecIoErrors, UnknownKeySuggestsTheClosestOne) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisim": ["none"]
  })",
                  {"<inline>:5", "unknown key \"mechanisim\"",
                   "did you mean \"mechanisms\"?", "field \"mechanisim\""});
}

TEST(SpecIoErrors, BadEnumValueListsValidValues) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none", "rww"]
  })",
                  {"<inline>:5", "unknown mechanism \"rww\"",
                   "valid values: none, RW, SRB", "field \"mechanisms[1]\""});
}

TEST(SpecIoErrors, UnknownTaskSuggestsTheClosestBenchmark) {
  expect_rejected(R"({
    "tasks": ["adpcmx"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"]
  })",
                  {"<inline>:2", "unknown task \"adpcmx\"",
                   "did you mean \"adpcm\"?", "field \"tasks[0]\""});
}

TEST(SpecIoErrors, MissingRequiredKeyIsNamed) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4]
  })",
                  {"missing required key \"mechanisms\""});
}

TEST(SpecIoErrors, WrongTypeIsNamedWithTheActualType) {
  expect_rejected(R"({
    "tasks": "fibcall",
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"]
  })",
                  {"expected an array of task names, got a string",
                   "field \"tasks\""});
}

TEST(SpecIoErrors, NonIntegralCountIsRejected) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16.5, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"]
  })",
                  {"field \"geometries[0].sets\"", "non-integral"});
}

TEST(SpecIoErrors, GeometryConstraintsAreExplained) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 10}],
    "pfails": [1e-4],
    "mechanisms": ["none"]
  })",
                  {"line_bytes must be a positive multiple of 4",
                   "field \"geometries[0].line_bytes\""});
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4}],
    "pfails": [1e-4],
    "mechanisms": ["none"]
  })",
                  {"geometry is missing \"line_bytes\""});
}

TEST(SpecIoErrors, CycleCountsBeyondInt64AreRejectedNotWrapped) {
  // 10^19 fits u64 but not int64; an unchecked cast would wrap negative
  // and abort in CampaignSpec::validate instead of reporting.
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16,
                    "hit_latency": 10000000000000000000}],
    "pfails": [1e-4],
    "mechanisms": ["none"]
  })",
                  {"does not fit in a signed 64-bit cycle count",
                   "field \"geometries[0].hit_latency\""});
}

TEST(SpecIoErrors, ProbabilityRangeIsEnforced) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1.5],
    "mechanisms": ["none"]
  })",
                  {"must be in [0, 1]", "field \"pfails[0]\""});
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "target_exceedance": 0
  })",
                  {"target_exceedance must be in (0, 1]"});
}

TEST(SpecIoErrors, EmptyAxesAreRejected) {
  expect_rejected(R"({
    "tasks": [],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"]
  })",
                  {"\"tasks\" must not be empty"});
}

TEST(SpecIoErrors, MbptaPopulationConstraintIsExplained) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "kinds": ["mbpta"],
    "mbpta": {"chips": 10, "block_size": 20}
  })",
                  {"mbpta.chips must be at least 2 * mbpta.block_size",
                   "field \"mbpta.chips\""});
}

TEST(SpecIoErrors, DcacheEntriesMustBeNullOrGeometry) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "dcaches": ["off"],
    "pfails": [1e-4],
    "mechanisms": ["none"]
  })",
                  {"expected null (data cache off) or a geometry object",
                   "field \"dcaches[0]\""});
}

TEST(SpecIoErrors, TlbEntriesMustBeAMultipleOfWays) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "tlbs": [{"entries": 10, "ways": 4, "page_bytes": 64}]
  })",
                  {"<inline>:6", "entries must be a positive multiple of ways",
                   "field \"tlbs[0].entries\""});
}

TEST(SpecIoErrors, TlbMissingPageBytesIsNamed) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "tlbs": [null, {"entries": 16, "ways": 2}]
  })",
                  {"TLB entry is missing \"page_bytes\"",
                   "field \"tlbs[1].page_bytes\""});
}

TEST(SpecIoErrors, UnknownTlbKeySuggestsTheClosestOne) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "tlbs": [{"entries": 16, "ways": 2, "page_byte": 64}]
  })",
                  {"unknown key \"page_byte\" in TLB entry",
                   "did you mean \"page_bytes\"?",
                   "field \"tlbs[0].page_byte\""});
}

TEST(SpecIoErrors, BadWritePolicyListsValidValues) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "dcaches": [{"sets": 8, "ways": 4, "line_bytes": 16,
                 "policy": "writeback"}]
  })",
                  {"unknown write policy \"writeback\"",
                   "valid values: write_through, write_back",
                   "field \"dcaches[0].policy\""});
}

TEST(SpecIoErrors, WritebackPenaltyNeedsWriteBackPolicy) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "dcaches": [{"sets": 8, "ways": 4, "line_bytes": 16,
                 "writeback_penalty": 40}]
  })",
                  {"\"writeback_penalty\" needs \"policy\": \"write_back\"",
                   "field \"dcaches[0].writeback_penalty\""});
}

TEST(SpecIoErrors, L2EntriesMustBeNullOrGeometry) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "l2s": [64]
  })",
                  {"expected null (no shared L2) or a geometry object",
                   "got a number", "field \"l2s[0]\""});
}

TEST(SpecIoErrors, TlbNeedsSptaKinds) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["SRB"],
    "kinds": ["spta", "mbpta"],
    "tlbs": [{"entries": 16, "ways": 2, "page_bytes": 64}]
  })",
                  {"kind \"mbpta\" does not support a TLB",
                   "need kinds = [\"spta\"]", "field \"tlbs\""});
}

TEST(SpecIoErrors, L2NeedsSptaKinds) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["SRB"],
    "kinds": ["sim"],
    "l2s": [{"sets": 64, "ways": 4, "line_bytes": 32}]
  })",
                  {"kind \"sim\" does not support a shared L2",
                   "need kinds = [\"spta\"]", "field \"l2s\""});
}

TEST(SpecIoErrors, DcacheNeedsSptaKinds) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "dcaches": [{"sets": 8, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "kinds": ["spta", "sim"]
  })",
                  {"kind \"sim\" does not support a data cache",
                   "field \"dcaches\""});
}

TEST(SpecIoErrors, UnknownDcacheMechanismListsValidValues) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "dcache_mechanisms": ["mirror"]
  })",
                  {"unknown dcache mechanism \"mirror\"",
                   "valid values: same, none, RW, SRB",
                   "field \"dcache_mechanisms[0]\""});
}

TEST(SpecIoErrors, SlackKindRejectsUnprotectedMechanism) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["SRB", "none"],
    "kinds": ["slack"]
  })",
                  {"kind \"slack\"", "field \"mechanisms[1]\""});
}

TEST(SpecIoErrors, MbptaSampleCountConstraintIsExplained) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "kinds": ["mbpta"],
    "sample_counts": [0, 10]
  })",
                  {"sample_counts entries must be at least 2 * "
                   "mbpta.block_size",
                   "field \"sample_counts[1]\""});
}

TEST(SpecIoErrors, CcdfExceedanceRangeIsEnforced) {
  expect_rejected(R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none"],
    "ccdf_exceedances": [1e-6, 0]
  })",
                  {"exceedance probability must be in (0, 1]",
                   "field \"ccdf_exceedances[1]\""});
}

TEST(SpecIoErrors, SyntaxErrorsCarryLineNumbers) {
  expect_rejected("{\n  \"tasks\": [\"fibcall\",\n}",
                  {"<inline>:3"});
  expect_rejected(std::string(kMinimalSpec) + " trailing",
                  {"trailing content"});
  expect_rejected(R"({"tasks": ["fibcall"], "tasks": ["bs"]})",
                  {"duplicate key \"tasks\""});
}

TEST(SpecIoErrors, MissingFileIsAnErrorNotAnAbort) {
  EXPECT_THROW(load_spec("/nonexistent/spec.json"), SpecError);
}

}  // namespace
}  // namespace pwcet
