// Unit and property tests for src/prob: binomial law (paper Eq. 2-3) and
// the discrete penalty distributions with conservative coalescing
// (paper Fig. 1.b).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "prob/binomial.hpp"
#include "prob/discrete_distribution.hpp"
#include "support/rng.hpp"

namespace pwcet {
namespace {

TEST(Binomial, CoefficientSmallCases) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(4, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(4, 1)), 4.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(4, 2)), 6.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 5)), 252.0, 1e-9);
}

TEST(Binomial, PmfMatchesDirectFormula) {
  const double p = 0.3;
  for (unsigned k = 0; k <= 4; ++k) {
    double direct = 1.0;
    // n = 4 direct computation.
    const double choose[] = {1, 4, 6, 4, 1};
    direct = choose[k] * std::pow(p, k) * std::pow(1 - p, 4 - k);
    EXPECT_NEAR(binomial_pmf(4, k, p), direct, 1e-12);
  }
}

TEST(Binomial, PmfVectorSumsToOne) {
  for (double p : {0.0, 1e-10, 1e-4, 0.01, 0.5, 0.99, 1.0}) {
    const auto pmf = binomial_pmf_vector(4, p);
    ASSERT_EQ(pmf.size(), 5u);
    double sum = 0.0;
    for (double x : pmf) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(Binomial, ExtremeTailStaysAccurate) {
  // pbf ~ 1.3e-2 for pfail = 1e-4 (paper); pwf(4) = pbf^4 ~ 2.6e-8 must not
  // round to zero, nor should far smaller tails.
  const double pbf = 0.0127182;
  EXPECT_NEAR(binomial_pmf(4, 4, pbf), std::pow(pbf, 4), 1e-14);
  const double tiny = binomial_pmf(4, 4, 1e-10);
  EXPECT_GT(tiny, 0.0);
  EXPECT_NEAR(tiny, 1e-40, 1e-45);
}

TEST(Binomial, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 4, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 1, 1.0), 0.0);
}

TEST(Binomial, TailGeq) {
  const double p = 0.2;
  EXPECT_NEAR(binomial_tail_geq(4, 0, p), 1.0, 1e-12);
  double direct = 0.0;
  for (unsigned k = 2; k <= 4; ++k) direct += binomial_pmf(4, k, p);
  EXPECT_NEAR(binomial_tail_geq(4, 2, p), direct, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_tail_geq(4, 5, p), 0.0);
}

TEST(Distribution, DefaultIsZeroPoint) {
  const DiscreteDistribution d;
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.min_value(), 0);
  EXPECT_DOUBLE_EQ(d.total_mass(), 1.0);
}

TEST(Distribution, FromAtomsMergesAndSorts) {
  const auto d = DiscreteDistribution::from_atoms(
      {{5, 0.25}, {1, 0.5}, {5, 0.25}});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.atoms()[0].value, 1);
  EXPECT_DOUBLE_EQ(d.atoms()[0].probability, 0.5);
  EXPECT_EQ(d.atoms()[1].value, 5);
  EXPECT_DOUBLE_EQ(d.atoms()[1].probability, 0.5);
}

TEST(Distribution, DropsZeroProbabilityAtoms) {
  const auto d =
      DiscreteDistribution::from_atoms({{1, 1.0}, {7, 0.0}});
  EXPECT_EQ(d.size(), 1u);
}

TEST(Distribution, ExceedanceStepFunction) {
  const auto d = DiscreteDistribution::from_atoms({{10, 0.7}, {20, 0.3}});
  EXPECT_DOUBLE_EQ(d.exceedance(9), 1.0);
  EXPECT_DOUBLE_EQ(d.exceedance(10), 0.3);
  EXPECT_DOUBLE_EQ(d.exceedance(19), 0.3);
  EXPECT_DOUBLE_EQ(d.exceedance(20), 0.0);
}

TEST(Distribution, QuantileExceedance) {
  const auto d = DiscreteDistribution::from_atoms({{10, 0.7}, {20, 0.3}});
  // P[X > 10] = 0.3 <= 0.5, and any v < 10 has exceedance 1.0.
  EXPECT_EQ(d.quantile_exceedance(0.5), 10);
  EXPECT_EQ(d.quantile_exceedance(0.3), 10);   // 0.3 <= 0.3 holds at 10
  EXPECT_EQ(d.quantile_exceedance(0.29), 20);  // need the top atom
  EXPECT_EQ(d.quantile_exceedance(0.0), 20);
}

TEST(Distribution, QuantileOfDegenerate) {
  const auto d = DiscreteDistribution::degenerate(42);
  EXPECT_EQ(d.quantile_exceedance(1e-15), 42);
  EXPECT_EQ(d.quantile_exceedance(0.9), 42);
}

TEST(Distribution, ConvolveTwoDice) {
  std::vector<ProbabilityAtom> die;
  for (int v = 1; v <= 6; ++v) die.push_back({v, 1.0 / 6.0});
  const auto d = DiscreteDistribution::from_atoms(die);
  const auto sum = d.convolve(d);
  ASSERT_EQ(sum.size(), 11u);  // 2..12
  EXPECT_EQ(sum.min_value(), 2);
  EXPECT_EQ(sum.max_value(), 12);
  EXPECT_NEAR(sum.total_mass(), 1.0, 1e-12);
  // P[sum = 7] = 6/36.
  EXPECT_NEAR(sum.exceedance(6) - sum.exceedance(7), 6.0 / 36.0, 1e-12);
}

TEST(Distribution, ConvolveWithZeroIsIdentity) {
  const auto d = DiscreteDistribution::from_atoms({{3, 0.4}, {9, 0.6}});
  const auto same = d.convolve(DiscreteDistribution::degenerate(0));
  EXPECT_EQ(same, d);
}

TEST(Distribution, ShiftAndScale) {
  const auto d = DiscreteDistribution::from_atoms({{1, 0.5}, {2, 0.5}});
  const auto shifted = d.shift(100);
  EXPECT_EQ(shifted.min_value(), 101);
  EXPECT_EQ(shifted.max_value(), 102);
  const auto scaled = d.scale_values(100);
  EXPECT_EQ(scaled.min_value(), 100);
  EXPECT_EQ(scaled.max_value(), 200);
  // Scaling by zero collapses to a single atom at 0.
  const auto zero = d.scale_values(0);
  EXPECT_EQ(zero.size(), 1u);
  EXPECT_NEAR(zero.total_mass(), 1.0, 1e-12);
}

TEST(Distribution, MeanLinearity) {
  const auto d = DiscreteDistribution::from_atoms({{2, 0.5}, {6, 0.5}});
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_DOUBLE_EQ(d.shift(10).mean(), 14.0);
  EXPECT_DOUBLE_EQ(d.scale_values(3).mean(), 12.0);
}

TEST(Distribution, CoalesceKeepsMassAndBounds) {
  std::vector<ProbabilityAtom> atoms;
  for (int v = 0; v < 100; ++v) atoms.push_back({v, 0.01});
  const auto d = DiscreteDistribution::from_atoms(atoms);
  const auto c = d.coalesce_up(10);
  EXPECT_LE(c.size(), 10u);
  EXPECT_NEAR(c.total_mass(), 1.0, 1e-12);
  EXPECT_EQ(c.max_value(), d.max_value());  // top atom always preserved
}

TEST(Distribution, CoalesceIsConservative) {
  // The coalesced distribution must stochastically dominate the original:
  // moving mass upward can only increase exceedance probabilities.
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ProbabilityAtom> atoms;
    double total = 0.0;
    const int n = 20 + static_cast<int>(rng.next_below(80));
    for (int i = 0; i < n; ++i) {
      const double p = rng.next_double() + 1e-3;
      atoms.push_back({static_cast<Cycles>(rng.next_below(100000)), p});
      total += p;
    }
    for (auto& a : atoms) a.probability /= total;
    const auto d = DiscreteDistribution::from_atoms(atoms);
    const auto c = d.coalesce_up(8);
    EXPECT_TRUE(c.dominates(d)) << "trial " << trial;
    EXPECT_NEAR(c.total_mass(), 1.0, 1e-9);
  }
}

TEST(Distribution, DominatesIsReflexiveAndDetectsViolation) {
  const auto a = DiscreteDistribution::from_atoms({{1, 0.5}, {10, 0.5}});
  const auto b = DiscreteDistribution::from_atoms({{1, 0.4}, {10, 0.6}});
  EXPECT_TRUE(a.dominates(a));
  EXPECT_TRUE(b.dominates(a));   // b has more mass up high
  EXPECT_FALSE(a.dominates(b));
}

TEST(Distribution, ConvolveAllWithCoalescing) {
  // 16 independent 3-point distributions (like 16 cache sets).
  std::vector<DiscreteDistribution> parts;
  for (int s = 0; s < 16; ++s) {
    parts.push_back(DiscreteDistribution::from_atoms(
        {{0, 0.9}, {100 * (s + 1), 0.09}, {1000 * (s + 1), 0.01}}));
  }
  const auto all = convolve_all(parts, 512);
  EXPECT_LE(all.size(), 512u);
  EXPECT_NEAR(all.total_mass(), 1.0, 1e-9);
  // Maximum penalty = sum of the per-part maxima (coalescing keeps the top).
  Cycles expected_max = 0;
  for (int s = 0; s < 16; ++s) expected_max += 1000 * (s + 1);
  EXPECT_EQ(all.max_value(), expected_max);
  // All-zero outcome has probability 0.9^16.
  EXPECT_NEAR(1.0 - all.exceedance(0), std::pow(0.9, 16), 1e-9);
}

TEST(Distribution, PaperFigure1Example) {
  // Paper Fig. 1.b: sets 0 and 1 with FMM rows {10, 130} and {14, 164}
  // (W = 2), combined by convolution. Probabilities pwf(0), pwf(1), pwf(2).
  const double pbf = 0.1;
  const auto pwf = binomial_pmf_vector(2, pbf);
  const auto set0 = DiscreteDistribution::from_atoms(
      {{0, pwf[0]}, {10, pwf[1]}, {130, pwf[2]}});
  const auto set1 = DiscreteDistribution::from_atoms(
      {{0, pwf[0]}, {14, pwf[1]}, {164, pwf[2]}});
  const auto combined = set0.convolve(set1);
  // 9 combinations, all distinct sums here.
  EXPECT_EQ(combined.size(), 9u);
  EXPECT_EQ(combined.max_value(), 130 + 164);
  EXPECT_NEAR(combined.exceedance(293), pwf[2] * pwf[2], 1e-15);
  // P[penalty = 24] = pwf(1)^2 (one faulty block in each set).
  EXPECT_NEAR(combined.exceedance(23) - combined.exceedance(24),
              pwf[1] * pwf[1], 1e-12);
}

TEST(Distribution, ExceedanceAccumulatesTinyTails) {
  // Summing from the top must retain 1e-30-scale tail atoms.
  const auto d = DiscreteDistribution::from_atoms(
      {{0, 1.0 - 1e-30}, {1000, 1e-30}});
  EXPECT_NEAR(d.exceedance(500), 1e-30, 1e-36);
}

// ---- the convolve fast path ------------------------------------------------

/// The historical convolve, verbatim: generate all pair products a-major /
/// b-minor, stable-sort by value, accumulate left to right. The shipped
/// implementation (dense lattice buckets / streaming k-way merge) claims
/// bit-identity with this ordering; these tests hold it to that.
DiscreteDistribution reference_convolve(const DiscreteDistribution& a,
                                        const DiscreteDistribution& b) {
  std::vector<ProbabilityAtom> products;
  products.reserve(a.size() * b.size());
  for (const auto& x : a.atoms())
    for (const auto& y : b.atoms())
      products.push_back({x.value + y.value, x.probability * y.probability});
  std::stable_sort(products.begin(), products.end(),
                   [](const ProbabilityAtom& x, const ProbabilityAtom& y) {
                     return x.value < y.value;
                   });
  std::vector<ProbabilityAtom> atoms;
  for (const auto& product : products) {
    if (!atoms.empty() && atoms.back().value == product.value)
      atoms.back().probability += product.probability;
    else
      atoms.push_back(product);
  }
  std::erase_if(atoms,
                [](const ProbabilityAtom& a) { return a.probability == 0.0; });
  return DiscreteDistribution::from_canonical_atoms(std::move(atoms));
}

/// A random distribution on the lattice {base + stride * k}; mimics the
/// penalty shapes the analysis produces (values = multiples of the miss
/// penalty).
DiscreteDistribution random_lattice_distribution(Rng& rng, Cycles stride,
                                                 std::size_t max_atoms) {
  const std::size_t count = 1 + rng.next_below(max_atoms);
  std::vector<ProbabilityAtom> atoms;
  double mass = 0.0;
  Cycles value = static_cast<Cycles>(rng.next_below(50)) * stride;
  for (std::size_t i = 0; i < count; ++i) {
    const double p = rng.next_double() + 1e-3;
    atoms.push_back({value, p});
    mass += p;
    value += static_cast<Cycles>(1 + rng.next_below(20)) * stride;
  }
  for (auto& a : atoms) a.probability /= mass;
  return DiscreteDistribution::from_atoms(std::move(atoms));
}

TEST(Distribution, ConvolveBitIdenticalToReferenceOnLattices) {
  // The dense-bucket path (lattice supports, the analysis workload).
  Rng rng(0xc0417e5);
  for (int trial = 0; trial < 200; ++trial) {
    const Cycles stride = static_cast<Cycles>(1 + rng.next_below(40));
    const auto a = random_lattice_distribution(rng, stride, 64);
    const auto b = random_lattice_distribution(rng, stride, 64);
    ASSERT_EQ(a.convolve(b), reference_convolve(a, b));
  }
}

TEST(Distribution, ConvolveBitIdenticalToReferenceOffLattice) {
  // Mixed strides (gcd collapses to small values or 1) still bucket
  // densely; the scatter path must match the reference too.
  Rng rng(0x0ffb347);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_lattice_distribution(
        rng, static_cast<Cycles>(1 + rng.next_below(7)), 48);
    const auto b = random_lattice_distribution(
        rng, static_cast<Cycles>(1 + rng.next_below(5)), 48);
    ASSERT_EQ(a.convolve(b), reference_convolve(a, b));
  }
}

TEST(Distribution, ConvolveAdversariallyWideInputs) {
  // Values spread over a 2^40 range with gcd 1: a dense accumulator would
  // need ~10^12 buckets, so this must take the streaming merge path — the
  // regression test for the old unchecked reserve(n * m), which on inputs
  // like these requested absurd allocations proportional to the product
  // rather than the output. Bit-identity with the reference still holds.
  Rng rng(0x51deb00c);
  std::vector<ProbabilityAtom> wide_a, wide_b;
  double mass_a = 0.0, mass_b = 0.0;
  for (int i = 0; i < 40; ++i) {
    const double pa = rng.next_double() + 1e-3;
    const double pb = rng.next_double() + 1e-3;
    wide_a.push_back(
        {static_cast<Cycles>(rng.next_below(std::uint64_t{1} << 40)), pa});
    wide_b.push_back(
        {static_cast<Cycles>(rng.next_below(std::uint64_t{1} << 40)) | 1,
         pb});
    mass_a += pa;
    mass_b += pb;
  }
  for (auto& a : wide_a) a.probability /= mass_a;
  for (auto& b : wide_b) b.probability /= mass_b;
  const auto a = DiscreteDistribution::from_atoms(std::move(wide_a));
  const auto b = DiscreteDistribution::from_atoms(std::move(wide_b));
  const auto fast = a.convolve(b);
  EXPECT_EQ(fast, reference_convolve(a, b));
  EXPECT_NEAR(fast.total_mass(), 1.0, 1e-9);
  EXPECT_EQ(fast.max_value(), a.max_value() + b.max_value());
}

TEST(Distribution, ConvolveAllTreeSharedMatchesExpandedTree) {
  // The deduplicating tree must be bit-identical to convolve_all_tree on
  // the expanded leaf list, for every leaf multiplicity pattern — odd
  // counts included (the pass-through leg).
  Rng rng(0xdedu);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t distinct_count = 1 + rng.next_below(5);
    std::vector<DiscreteDistribution> distinct;
    for (std::size_t i = 0; i < distinct_count; ++i)
      distinct.push_back(random_lattice_distribution(rng, 10, 8));
    const std::size_t leaves = 1 + rng.next_below(33);
    std::vector<std::uint32_t> ids;
    std::vector<DiscreteDistribution> expanded;
    for (std::size_t s = 0; s < leaves; ++s) {
      ids.push_back(
          static_cast<std::uint32_t>(rng.next_below(distinct_count)));
      expanded.push_back(distinct[ids.back()]);
    }
    const std::size_t max_points = 2 + rng.next_below(64);
    ASSERT_EQ(convolve_all_tree_shared(distinct, ids, max_points),
              convolve_all_tree(expanded, max_points));
  }
}

}  // namespace
}  // namespace pwcet
