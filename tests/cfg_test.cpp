// Tests for the structured program builder, CFG invariants, layout and
// inlining, dominators and natural-loop recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cfg/dominators.hpp"
#include "cfg/program.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

TEST(Builder, StraightLineProgram) {
  ProgramBuilder b("straight");
  b.add_function("main", b.code(8));
  const Program p = b.build(0);
  // Exactly one real block with 8 instructions.
  std::uint64_t total = 0;
  for (const auto& blk : p.cfg().blocks()) total += blk.instruction_count;
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(p.code_size_bytes(), 8 * kInstructionBytes);
  EXPECT_TRUE(p.cfg().loops().empty());
}

TEST(Builder, SequenceLaysOutContiguously) {
  ProgramBuilder b("seq");
  b.add_function("main", b.seq({b.code(4), b.code(4), b.code(4)}));
  const Program p = b.build(0);
  // Instruction addresses cover [0, 48) without gaps.
  std::set<Address> addrs;
  for (const auto& blk : p.cfg().blocks())
    for (std::uint32_t i = 0; i < blk.instruction_count; ++i)
      addrs.insert(blk.first_address + i * kInstructionBytes);
  EXPECT_EQ(addrs.size(), 12u);
  EXPECT_EQ(*addrs.begin(), 0u);
  EXPECT_EQ(*addrs.rbegin(), 44u);
}

TEST(Builder, BaseAddressOffsetsLayout) {
  ProgramBuilder b("based");
  b.add_function("main", b.code(4));
  const Program p = b.build(0, /*base_address=*/0x1000);
  bool found = false;
  for (const auto& blk : p.cfg().blocks())
    if (blk.instruction_count > 0) {
      EXPECT_EQ(blk.first_address, 0x1000u);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Builder, IfElseShape) {
  ProgramBuilder b("ifelse");
  b.add_function("main", b.if_else(2, b.code(3), b.code(5)));
  const Program p = b.build(0);
  p.cfg().validate();
  // Condition block has two successors.
  int branchy = 0;
  for (const auto& blk : p.cfg().blocks())
    if (blk.out_edges.size() == 2) ++branchy;
  EXPECT_EQ(branchy, 1);
  EXPECT_TRUE(p.cfg().loops().empty());
}

TEST(Builder, LoopMetadata) {
  ProgramBuilder b("loop");
  b.add_function("main", b.loop(1, 10, b.code(4)));
  const Program p = b.build(0);
  ASSERT_EQ(p.cfg().loops().size(), 1u);
  const LoopInfo& l = p.cfg().loop(0);
  EXPECT_EQ(l.bound, 10);
  EXPECT_EQ(l.parent, kNoLoop);
  ASSERT_EQ(l.back_edges.size(), 1u);
  ASSERT_EQ(l.entry_edges.size(), 1u);
  EXPECT_EQ(p.cfg().edge(l.back_edges[0]).target, l.header);
  EXPECT_EQ(p.cfg().edge(l.entry_edges[0]).target, l.header);
  // Header and body blocks belong to the loop.
  EXPECT_NE(std::find(l.blocks.begin(), l.blocks.end(), l.header),
            l.blocks.end());
}

TEST(Builder, NestedLoopParents) {
  ProgramBuilder b("nest");
  b.add_function("main", b.loop(1, 5, b.loop(1, 7, b.code(2))));
  const Program p = b.build(0);
  ASSERT_EQ(p.cfg().loops().size(), 2u);
  const LoopInfo& outer = p.cfg().loop(0);
  const LoopInfo& inner = p.cfg().loop(1);
  EXPECT_EQ(outer.parent, kNoLoop);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_TRUE(p.cfg().loop_contains(outer.id, inner.id));
  EXPECT_FALSE(p.cfg().loop_contains(inner.id, outer.id));
  // Inner loop blocks are also outer loop blocks.
  for (BlockId blk : inner.blocks)
    EXPECT_NE(std::find(outer.blocks.begin(), outer.blocks.end(), blk),
              outer.blocks.end());
  // innermost_loop picks the inner loop for the inner body block.
  EXPECT_EQ(p.cfg().innermost_loop(inner.header), inner.id);
}

TEST(Builder, CallSitesShareCalleeAddresses) {
  ProgramBuilder b("calls");
  const FunctionId callee = b.add_function("f", b.code(6));
  b.add_function("main", b.seq({b.call(callee), b.code(2), b.call(callee)}));
  const Program p = b.build(1);
  // Two inlined instances of f: distinct blocks, same first_address.
  std::vector<Address> starts;
  for (const auto& blk : p.cfg().blocks())
    if (blk.instruction_count == 6) starts.push_back(blk.first_address);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], starts[1]);
}

TEST(Builder, CalleeLaidOutBeforeLaterFunctions) {
  ProgramBuilder b("order");
  const FunctionId f = b.add_function("f", b.code(4));
  b.add_function("main", b.seq({b.code(4), b.call(f)}));
  const Program p = b.build(1);
  // f occupies [0,16); main starts at 16.
  Address main_start = ~0ull;
  Address f_start = ~0ull;
  for (const auto& blk : p.cfg().blocks()) {
    if (blk.instruction_count != 4) continue;
    if (blk.id == p.cfg().entry() ||
        p.cfg().block(p.cfg().entry()).instruction_count == 0) {
      // identify by address instead
    }
    if (blk.first_address == 0)
      f_start = blk.first_address;
    else
      main_start = std::min(main_start, blk.first_address);
  }
  EXPECT_EQ(f_start, 0u);
  EXPECT_EQ(main_start, 16u);
}

TEST(Builder, EmptyElseArm) {
  ProgramBuilder b("ifthen");
  b.add_function("main", b.if_then(1, b.code(3)));
  const Program p = b.build(0);
  p.cfg().validate();  // no abort: both arms wired, exit reachable
}

TEST(Builder, ZeroBoundLoopStillValid) {
  ProgramBuilder b("dead");
  b.add_function("main", b.loop(1, 0, b.code(4)));
  const Program p = b.build(0);
  EXPECT_EQ(p.cfg().loop(0).bound, 0);
}

TEST(Builder, RecursionAborts) {
  // Direct recursion is rejected: functions must be declared before call,
  // so self-reference is the only possible cycle — guarded at build time.
  ProgramBuilder b("rec");
  const FunctionId f = b.add_function("f", b.code(2));
  // A second function calling f twice nested is fine; true self-recursion
  // cannot even be expressed (call requires an existing id). Verify the
  // legal nested-call case builds.
  const FunctionId g = b.add_function("g", b.seq({b.call(f), b.call(f)}));
  b.add_function("main", b.call(g));
  const Program p = b.build(2);
  p.cfg().validate();
}

TEST(Cfg, ReversePostOrderStartsAtEntry) {
  const Program p = workloads::build("matmult");
  const auto order = p.cfg().reverse_post_order();
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), p.cfg().entry());
  EXPECT_EQ(order.size(), p.cfg().block_count());
}

TEST(Cfg, EdgesConsistentWithAdjacency) {
  const Program p = workloads::build("fft");
  for (const CfgEdge& e : p.cfg().edges()) {
    const auto& out = p.cfg().block(e.source).out_edges;
    EXPECT_NE(std::find(out.begin(), out.end(), e.id), out.end());
    const auto& in = p.cfg().block(e.target).in_edges;
    EXPECT_NE(std::find(in.begin(), in.end(), e.id), in.end());
  }
}

TEST(Dominators, DiamondIdoms) {
  ProgramBuilder b("diamond");
  b.add_function("main", b.if_else(1, b.code(2), b.code(3)));
  const Program p = b.build(0);
  const DominatorTree dom(p.cfg());
  const BlockId entry = p.cfg().entry();
  const BlockId exit = p.cfg().exit();
  EXPECT_TRUE(dom.dominates(entry, exit));
  EXPECT_TRUE(dom.dominates(entry, entry));
  // Neither arm dominates the join.
  for (const auto& blk : p.cfg().blocks()) {
    if (blk.id == entry || blk.id == exit) continue;
    if (blk.instruction_count == 2 || blk.instruction_count == 3) {
      EXPECT_FALSE(dom.dominates(blk.id, exit));
    }
  }
}

TEST(Dominators, LoopHeaderDominatesBody) {
  ProgramBuilder b("loopdom");
  b.add_function("main", b.loop(1, 3, b.code(4)));
  const Program p = b.build(0);
  const DominatorTree dom(p.cfg());
  const LoopInfo& l = p.cfg().loop(0);
  for (BlockId blk : l.blocks) EXPECT_TRUE(dom.dominates(l.header, blk));
}

// The builder's registered loops must agree with natural-loop detection on
// every workload: same headers, same block sets.
class LoopRecoveryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LoopRecoveryTest, DetectedLoopsMatchRegistered) {
  const Program p = workloads::build(GetParam());
  const auto detected = detect_natural_loops(p.cfg());
  ASSERT_EQ(detected.size(), p.cfg().loops().size());

  for (const DetectedLoop& dl : detected) {
    const LoopInfo* match = nullptr;
    for (const LoopInfo& li : p.cfg().loops())
      if (li.header == dl.header) match = &li;
    ASSERT_NE(match, nullptr) << "no registered loop with header "
                              << dl.header;
    std::vector<BlockId> registered = match->blocks;
    std::sort(registered.begin(), registered.end());
    EXPECT_EQ(dl.blocks, registered);
    // Back edges agree.
    std::vector<EdgeId> reg_back = match->back_edges;
    std::sort(reg_back.begin(), reg_back.end());
    std::vector<EdgeId> det_back = dl.back_edges;
    std::sort(det_back.begin(), det_back.end());
    EXPECT_EQ(det_back, reg_back);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, LoopRecoveryTest,
                         ::testing::ValuesIn(workloads::names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace pwcet
