// Tests for the data-cache extension (paper §VI future work), including
// simulator-backed soundness of the data-side FMM.
#include <gtest/gtest.h>

#include "core/pwcet_analyzer.hpp"
#include "dcache/dcache_analysis.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/rng.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {
namespace {

/// A table-lookup kernel: the loop body loads a 4-entry scalar cluster and
/// walks a 64-byte constant table region.
Program data_program() {
  ProgramBuilder b("data_task");
  const Address table = 0x2000;
  std::vector<Address> body_loads;
  for (Address i = 0; i < 4; ++i) body_loads.push_back(0x1000 + 4 * i);
  for (Address i = 0; i < 4; ++i) body_loads.push_back(table + 16 * i);
  b.add_function("main",
                 b.seq({
                     b.code_with_loads(8, {0x1000, 0x1010}),
                     b.loop(1, 20, b.code_with_loads(12, body_loads)),
                     b.code_with_loads(4, {0x1000}),
                 }));
  return b.build(0);
}

TEST(DataRefs, ExtractionMergesSameLine) {
  const Program p = data_program();
  CacheConfig d;  // 16 B lines
  const auto drefs = extract_data_references(p.cfg(), d);
  for (const auto& blk : p.cfg().blocks()) {
    if (blk.data_addresses.size() != 8) continue;
    // 4 scalar loads share one 16 B line; 4 table loads are 16 B apart.
    ASSERT_EQ(drefs[size_t(blk.id)].size(), 5u);
    EXPECT_EQ(drefs[size_t(blk.id)][0].fetches, 4u);
  }
}

TEST(DataRefs, BlocksWithoutLoadsAreEmpty) {
  ProgramBuilder b("noloads");
  b.add_function("main", b.code(16));
  const Program p = b.build(0);
  const auto drefs = extract_data_references(p.cfg(), CacheConfig{});
  for (const auto& refs : drefs) EXPECT_TRUE(refs.empty());
}

TEST(Combined, FaultFreeWcetExceedsInstructionOnly) {
  const Program p = data_program();
  const CacheConfig cache = CacheConfig::paper_default();
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const PwcetAnalyzer ionly(p, cache, options);
  const CombinedPwcetAnalyzer combined(p, cache, cache, options);
  // Data misses only add time.
  EXPECT_GT(combined.fault_free_wcet(), ionly.fault_free_wcet());
}

TEST(Combined, InvariantsMatchSingleCacheAnalysis) {
  const Program p = data_program();
  const CacheConfig cache = CacheConfig::paper_default();
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const CombinedPwcetAnalyzer a(p, cache, cache, options);
  const FaultModel faults(1e-4);
  const auto none = a.analyze(faults, Mechanism::kNone);
  const auto rw = a.analyze(faults, Mechanism::kReliableWay);
  const auto srb = a.analyze(faults, Mechanism::kSharedReliableBuffer);
  for (double prob : {1e-9, 1e-15}) {
    EXPECT_GE(none.pwcet(prob), a.fault_free_wcet());
    EXPECT_LE(rw.pwcet(prob), none.pwcet(prob));
    EXPECT_LE(srb.pwcet(prob), none.pwcet(prob));
  }
  // Vanishing pfail recovers the fault-free WCET.
  EXPECT_EQ(a.analyze(FaultModel(0.0), Mechanism::kNone).pwcet(1e-15),
            a.fault_free_wcet());
}

TEST(Combined, MixedDeploymentBracketsUniformOnes) {
  // RW on both >= (RW on I, SRB on D) >= SRB on both ... in pWCET terms the
  // mixed deployment sits between the uniform ones.
  const Program p = data_program();
  const CacheConfig cache = CacheConfig::paper_default();
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const CombinedPwcetAnalyzer a(p, cache, cache, options);
  const FaultModel faults(1e-4);
  const Cycles rw_rw =
      a.analyze(faults, Mechanism::kReliableWay).pwcet(1e-15);
  const Cycles srb_srb =
      a.analyze(faults, Mechanism::kSharedReliableBuffer).pwcet(1e-15);
  const Cycles rw_srb =
      a.analyze_mixed(faults, Mechanism::kReliableWay,
                      Mechanism::kSharedReliableBuffer)
          .pwcet(1e-15);
  EXPECT_LE(rw_rw, rw_srb);
  EXPECT_LE(rw_srb, srb_srb);
}

TEST(Combined, DataFmmSoundVsSimulation) {
  // Simulated data-side misses on a degraded D-cache never exceed the
  // fault-free data misses bound + FMM. Checked via miss counts (the time
  // model charges data misses only).
  const Program p = data_program();
  CacheConfig d;
  d.sets = 4;
  d.ways = 2;
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const CombinedPwcetAnalyzer a(p, CacheConfig::paper_default(), d, options);

  Rng rng(0xdcac);
  const auto drefs = extract_data_references(p.cfg(), d);
  for (int trial = 0; trial < 10; ++trial) {
    const BlockPath path = full_iteration_walk(p, rng);
    const FaultMap map = FaultMap::sample(d, 0.3, rng);
    // Simulate the data access stream.
    CacheSimulator sim(d, map, Mechanism::kNone);
    for (BlockId blk : path)
      for (Address addr : p.cfg().block(blk).data_addresses) sim.fetch(addr);
    // Fault-free misses along the same stream.
    CacheSimulator ff(d, FaultMap::none(d), Mechanism::kNone);
    for (BlockId blk : path)
      for (Address addr : p.cfg().block(blk).data_addresses) ff.fetch(addr);
    double fmm_misses = 0.0;
    for (SetIndex s = 0; s < d.sets; ++s)
      fmm_misses += a.dcache_fmm().none.at(s, map.faulty_count(s));
    EXPECT_LE(static_cast<double>(sim.stats().misses),
              static_cast<double>(ff.stats().misses) + fmm_misses + 1e-6)
        << trial;
  }
}

TEST(Combined, SeparateGeometriesSupported) {
  const Program p = data_program();
  CacheConfig icache = CacheConfig::paper_default();
  CacheConfig dcache;
  dcache.sets = 8;
  dcache.ways = 2;
  dcache.line_bytes = 32;
  PwcetOptions options;
  options.engine = WcetEngine::kTree;
  const CombinedPwcetAnalyzer a(p, icache, dcache, options);
  const auto r = a.analyze(FaultModel(1e-4), Mechanism::kNone);
  EXPECT_GE(r.pwcet(1e-15), a.fault_free_wcet());
  EXPECT_NEAR(r.penalty.total_mass(), 1.0, 1e-6);
}

TEST(Combined, IlpAndTreeEnginesAgree) {
  const Program p = data_program();
  const CacheConfig cache = CacheConfig::paper_default();
  PwcetOptions tree_opts;
  tree_opts.engine = WcetEngine::kTree;
  PwcetOptions ilp_opts;
  ilp_opts.engine = WcetEngine::kIlp;
  const CombinedPwcetAnalyzer via_tree(p, cache, cache, tree_opts);
  const CombinedPwcetAnalyzer via_ilp(p, cache, cache, ilp_opts);
  EXPECT_EQ(via_tree.fault_free_wcet(), via_ilp.fault_free_wcet());
  const FaultModel faults(1e-4);
  EXPECT_EQ(via_tree.analyze(faults, Mechanism::kNone).pwcet(1e-15),
            via_ilp.analyze(faults, Mechanism::kNone).pwcet(1e-15));
}

}  // namespace
}  // namespace pwcet
