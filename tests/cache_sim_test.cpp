// Tests for reference extraction and the cycle-accurate cache simulator,
// including the fault semantics of §II-A and the RW/SRB lookup behaviour
// of §III-A.
#include <gtest/gtest.h>

#include "cache/references.hpp"
#include "cfg/program.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/rng.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

CacheConfig small_config() {
  CacheConfig c;
  c.sets = 4;
  c.ways = 2;
  c.line_bytes = 16;
  return c;
}

std::vector<Address> line_trace(const CacheConfig& c,
                                std::initializer_list<LineAddress> lines) {
  std::vector<Address> t;
  for (LineAddress l : lines) t.push_back(l * c.line_bytes);
  return t;
}

TEST(References, MergesFetchesWithinLine) {
  ProgramBuilder b("p");
  b.add_function("main", b.code(10));  // 10 instructions = 2.5 lines
  const Program p = b.build(0);
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  for (const auto& blk : p.cfg().blocks()) {
    if (blk.instruction_count != 10) continue;
    const auto& seq = refs[size_t(blk.id)];
    ASSERT_EQ(seq.size(), 3u);
    EXPECT_EQ(seq[0].fetches, 4u);
    EXPECT_EQ(seq[1].fetches, 4u);
    EXPECT_EQ(seq[2].fetches, 2u);
    EXPECT_EQ(block_fetches(refs, blk.id), 10u);
    // Consecutive lines map to consecutive sets.
    EXPECT_EQ(seq[1].set, (seq[0].set + 1) % c.sets);
  }
}

TEST(References, BlockStartingMidLine) {
  ProgramBuilder b("p");
  b.add_function("main", b.seq({b.code(2), b.code(4)}));
  const Program p = b.build(0);
  const auto refs = extract_references(p.cfg(), CacheConfig::paper_default());
  for (const auto& blk : p.cfg().blocks()) {
    if (blk.instruction_count != 4) continue;
    // Starts at byte 8 (mid line 0): refs = line 0 (2 fetches) + line 1 (2).
    const auto& seq = refs[size_t(blk.id)];
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0].line, 0u);
    EXPECT_EQ(seq[0].fetches, 2u);
    EXPECT_EQ(seq[1].line, 1u);
  }
}

TEST(Sim, ColdMissThenHit) {
  const CacheConfig c = small_config();
  CacheSimulator sim(c, FaultMap::none(c), Mechanism::kNone);
  EXPECT_FALSE(sim.fetch(0));  // cold miss
  EXPECT_TRUE(sim.fetch(4));   // same line
  EXPECT_TRUE(sim.fetch(0));
  EXPECT_EQ(sim.stats().misses, 1u);
  EXPECT_EQ(sim.stats().fetches, 3u);
  EXPECT_EQ(sim.stats().cycles, 3 * c.hit_latency + 1 * c.miss_penalty);
}

TEST(Sim, LruEvictionOrder) {
  const CacheConfig c = small_config();  // 2 ways
  CacheSimulator sim(c, FaultMap::none(c), Mechanism::kNone);
  // Lines 0, 4, 8 all map to set 0 (4 sets).
  sim.run(line_trace(c, {0, 4}));
  EXPECT_TRUE(sim.fetch(0 * c.line_bytes));   // hit, 0 becomes MRU
  sim.fetch(8 * c.line_bytes);                // evicts 4 (LRU)
  EXPECT_TRUE(sim.fetch(0 * c.line_bytes));   // still resident
  EXPECT_FALSE(sim.fetch(4 * c.line_bytes));  // was evicted
}

TEST(Sim, FaultyWaysShrinkCapacity) {
  const CacheConfig c = small_config();
  // One faulty way in set 0 -> effective associativity 1.
  const FaultMap map = FaultMap::with_faulty_ways(c, 0, 1);
  CacheSimulator sim(c, map, Mechanism::kNone);
  EXPECT_EQ(sim.usable_ways(0), 1u);
  EXPECT_EQ(sim.usable_ways(1), 2u);
  sim.run(line_trace(c, {0, 4}));  // both to set 0; 4 evicts 0
  EXPECT_FALSE(sim.fetch(0));      // 0 was evicted in a 1-way set
}

TEST(Sim, FullyFaultySetNeverHits) {
  const CacheConfig c = small_config();
  const FaultMap map = FaultMap::with_faulty_ways(c, 0, 2);
  CacheSimulator sim(c, map, Mechanism::kNone);
  for (int rep = 0; rep < 3; ++rep)
    EXPECT_FALSE(sim.fetch(0));  // same address, every fetch misses
  EXPECT_EQ(sim.stats().misses, 3u);
  // Other sets are unaffected.
  EXPECT_FALSE(sim.fetch(1 * c.line_bytes));
  EXPECT_TRUE(sim.fetch(1 * c.line_bytes));
}

TEST(Sim, ReliableWayMasksFaults) {
  const CacheConfig c = small_config();
  const FaultMap map = FaultMap::with_faulty_ways(c, 0, 2);  // all faulty
  CacheSimulator sim(c, map, Mechanism::kReliableWay);
  EXPECT_EQ(sim.usable_ways(0), 1u);  // way 0 hardened
  EXPECT_FALSE(sim.fetch(0));
  EXPECT_TRUE(sim.fetch(0));  // direct-mapped behaviour survives
}

TEST(Sim, ReliableWayAtMostOneExtraWay) {
  const CacheConfig c = small_config();
  // Fault only in way 1: RW keeps 1 usable way -> same as the fault map.
  FaultMap map = FaultMap::none(c);
  map.set_faulty(0, 1, true);
  CacheSimulator rw(c, map, Mechanism::kReliableWay);
  CacheSimulator none(c, map, Mechanism::kNone);
  EXPECT_EQ(rw.usable_ways(0), none.usable_ways(0));
}

TEST(Sim, SrbServesFullyFaultySet) {
  const CacheConfig c = small_config();
  const FaultMap map = FaultMap::with_faulty_ways(c, 0, 2);
  CacheSimulator sim(c, map, Mechanism::kSharedReliableBuffer);
  EXPECT_FALSE(sim.fetch(0));  // SRB miss, loads line 0
  EXPECT_TRUE(sim.fetch(4));   // same line: SRB hit (spatial locality)
  EXPECT_EQ(sim.stats().srb_hits, 1u);
  sim.fetch(4 * c.line_bytes);  // line 4, same faulty set: reloads SRB
  EXPECT_FALSE(sim.fetch(0));   // line 0 evicted from SRB
}

TEST(Sim, SrbNotUsedByHealthySets) {
  const CacheConfig c = small_config();
  const FaultMap map = FaultMap::with_faulty_ways(c, 0, 2);
  CacheSimulator sim(c, map, Mechanism::kSharedReliableBuffer);
  sim.fetch(0);  // faulty set: SRB now holds line 0
  // A healthy-set access must not disturb the SRB (paper §III-A.2: the SRB
  // is consulted only when the whole set is faulty).
  sim.fetch(1 * c.line_bytes);
  EXPECT_TRUE(sim.fetch(0));  // line 0 still in the SRB
}

TEST(Sim, SrbSharedAcrossFaultySets) {
  CacheConfig c = small_config();
  FaultMap map(c.sets, c.ways);
  for (std::uint32_t w = 0; w < c.ways; ++w) {
    map.set_faulty(0, w, true);
    map.set_faulty(1, w, true);
  }
  CacheSimulator sim(c, map, Mechanism::kSharedReliableBuffer);
  sim.fetch(0);                    // set 0 -> SRB holds line 0
  sim.fetch(1 * c.line_bytes);     // set 1 -> SRB reloaded with line 1
  EXPECT_FALSE(sim.fetch(0));      // interference through the shared buffer
}

TEST(Sim, MechanismsNeverSlowerThanNone) {
  // On random traces and random fault maps, RW and SRB can only help.
  const CacheConfig c = CacheConfig::paper_default();
  Rng rng(51);
  for (int trial = 0; trial < 20; ++trial) {
    const FaultMap map = FaultMap::sample(c, 0.2, rng);
    std::vector<Address> trace;
    for (int i = 0; i < 3000; ++i)
      trace.push_back(rng.next_below(2048) * kInstructionBytes);
    const auto none = simulate_trace(c, map, Mechanism::kNone, trace);
    const auto rw = simulate_trace(c, map, Mechanism::kReliableWay, trace);
    const auto srb =
        simulate_trace(c, map, Mechanism::kSharedReliableBuffer, trace);
    EXPECT_LE(rw.cycles, none.cycles) << trial;
    EXPECT_LE(srb.cycles, none.cycles) << trial;
  }
}

TEST(Sim, FaultFreeMechanismsAllEquivalent) {
  const CacheConfig c = CacheConfig::paper_default();
  Rng rng(53);
  std::vector<Address> trace;
  for (int i = 0; i < 2000; ++i)
    trace.push_back(rng.next_below(1024) * kInstructionBytes);
  const FaultMap none_map = FaultMap::none(c);
  const auto a = simulate_trace(c, none_map, Mechanism::kNone, trace);
  const auto b = simulate_trace(c, none_map, Mechanism::kReliableWay, trace);
  const auto d =
      simulate_trace(c, none_map, Mechanism::kSharedReliableBuffer, trace);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.cycles, d.cycles);
}

TEST(FaultMapTest, SampleRateMatchesPbf) {
  const CacheConfig c = CacheConfig::paper_default();
  Rng rng(57);
  int faulty = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    const FaultMap m = FaultMap::sample(c, 0.1, rng);
    for (SetIndex s = 0; s < c.sets; ++s) {
      faulty += m.faulty_count(s);
      total += c.ways;
    }
  }
  EXPECT_NEAR(static_cast<double>(faulty) / total, 0.1, 0.01);
}

TEST(Path, RandomWalkIsStructurallyValid) {
  const Program p = workloads::build("statemate");
  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    const BlockPath path = random_walk(p, rng);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), p.cfg().entry());
    EXPECT_EQ(path.back(), p.cfg().exit());
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      bool edge_exists = false;
      for (EdgeId e : p.cfg().block(path[i]).out_edges)
        edge_exists |= (p.cfg().edge(e).target == path[i + 1]);
      EXPECT_TRUE(edge_exists) << "no edge " << path[i] << "->" << path[i + 1];
    }
  }
}

TEST(Path, HeavyWalkMatchesWeight) {
  const Program p = workloads::build("cnt");
  const BlockPath path = heavy_walk(p);
  const auto trace = fetch_trace(p.cfg(), path);
  EXPECT_EQ(trace.size(), heavy_walk_fetch_count(p));
}

TEST(Path, LoopBoundsRespected) {
  const Program p = workloads::build("fibcall");
  Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    const BlockPath path = random_walk(p, rng);
    for (const LoopInfo& loop : p.cfg().loops()) {
      // Header executions <= (bound + 1) * entries. With a single entry per
      // run for fibcall's top-level loop, this is bound + 1.
      std::int64_t header_count = 0;
      for (BlockId blk : path) header_count += (blk == loop.header);
      EXPECT_LE(header_count, loop.bound + 1);
    }
  }
}

}  // namespace
}  // namespace pwcet
