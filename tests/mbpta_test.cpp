// Tests for the hand-rolled EVT statistics and the MBPTA protocol.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pwcet_analyzer.hpp"
#include "mbpta/evt.hpp"
#include "mbpta/mbpta.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

/// Inverse-CDF sampling from a Gumbel(mu, beta).
std::vector<double> gumbel_sample(double mu, double beta, std::size_t n,
                                  Rng& rng) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.next_double();
    out.push_back(mu - beta * std::log(-std::log(u + 1e-300)));
  }
  return out;
}

TEST(Gumbel, CdfAndQuantileAreInverse) {
  GumbelFit fit;
  fit.mu = 100.0;
  fit.beta = 12.0;
  for (double p : {0.5, 1e-3, 1e-9, 1e-15}) {
    const double x = fit.quantile_exceedance(p);
    EXPECT_NEAR(fit.exceedance(x), p, p * 1e-6);
  }
  // The naive 1 - cdf agrees where it is representable.
  EXPECT_NEAR(1.0 - fit.cdf(fit.quantile_exceedance(1e-3)), 1e-3, 1e-9);
}

TEST(Gumbel, QuantileMonotoneInExceedance) {
  GumbelFit fit;
  fit.mu = 0.0;
  fit.beta = 1.0;
  EXPECT_LT(fit.quantile_exceedance(1e-3), fit.quantile_exceedance(1e-6));
  EXPECT_LT(fit.quantile_exceedance(1e-6), fit.quantile_exceedance(1e-12));
}

TEST(Gumbel, MleRecoversSyntheticParameters) {
  Rng rng(101);
  const auto sample = gumbel_sample(500.0, 30.0, 5000, rng);
  const GumbelFit fit = fit_gumbel_mle(sample);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.mu, 500.0, 3.0);
  EXPECT_NEAR(fit.beta, 30.0, 2.0);
}

TEST(Gumbel, MleHandlesLargeLocation) {
  // Execution times are ~1e6 cycles; exponentials must not overflow.
  Rng rng(103);
  const auto sample = gumbel_sample(2.0e6, 1.5e4, 2000, rng);
  const GumbelFit fit = fit_gumbel_mle(sample);
  EXPECT_NEAR(fit.mu, 2.0e6, 2e3);
  EXPECT_NEAR(fit.beta, 1.5e4, 2e3);
}

TEST(Gumbel, DegenerateSampleDoesNotBlowUp) {
  const std::vector<double> flat(50, 7.0);
  const GumbelFit fit = fit_gumbel_mle(flat);
  EXPECT_FALSE(fit.converged);
  EXPECT_NEAR(fit.mu, 7.0, 1e-6);
}

TEST(Gumbel, KsSmallOnSelfFitLargeOnWrongModel) {
  Rng rng(107);
  const auto sample = gumbel_sample(100.0, 10.0, 3000, rng);
  const GumbelFit good = fit_gumbel_mle(sample);
  const double d_good =
      ks_statistic(sample, [&](double x) { return good.cdf(x); });
  EXPECT_LT(d_good, 0.03);
  GumbelFit bad;
  bad.mu = 300.0;
  bad.beta = 3.0;
  const double d_bad =
      ks_statistic(sample, [&](double x) { return bad.cdf(x); });
  EXPECT_GT(d_bad, 0.5);
}

TEST(Gpd, ExponentialTailHasZeroShape) {
  // Exponential(1) excesses are GPD with xi = 0.
  Rng rng(109);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i)
    sample.push_back(-std::log(1.0 - rng.next_double()));
  const GpdFit fit = fit_gpd_pot(sample, 0.9);
  EXPECT_NEAR(fit.xi, 0.0, 0.08);
  EXPECT_NEAR(fit.sigma, 1.0, 0.1);
  EXPECT_NEAR(fit.exceed_rate, 0.1, 0.01);
}

TEST(Gpd, ExceedanceAndQuantileConsistent) {
  GpdFit fit;
  fit.threshold = 50.0;
  fit.sigma = 5.0;
  fit.xi = 0.1;
  fit.exceed_rate = 0.05;
  for (double p : {1e-3, 1e-6, 1e-9}) {
    const double x = fit.quantile_exceedance(p);
    EXPECT_NEAR(fit.exceedance(x), p, p * 1e-6);
  }
  EXPECT_DOUBLE_EQ(fit.exceedance(fit.threshold), fit.exceed_rate);
}

TEST(Gpd, NegativeShapeHasFiniteEndpoint) {
  GpdFit fit;
  fit.threshold = 0.0;
  fit.sigma = 10.0;
  fit.xi = -0.5;  // right endpoint at sigma/|xi| = 20
  fit.exceed_rate = 1.0;
  EXPECT_GT(fit.exceedance(19.0), 0.0);
  EXPECT_DOUBLE_EQ(fit.exceedance(25.0), 0.0);
}

TEST(BlockMaxima, WindowsAndRemainder) {
  const std::vector<double> v{1, 5, 2, 8, 3, 4, 9};
  const auto maxima = block_maxima(v, 2);
  ASSERT_EQ(maxima.size(), 3u);  // trailing element dropped
  EXPECT_DOUBLE_EQ(maxima[0], 5);
  EXPECT_DOUBLE_EQ(maxima[1], 8);
  EXPECT_DOUBLE_EQ(maxima[2], 4);
}

TEST(Mbpta, RunsAndBracketsObservedTimes) {
  const Program p = workloads::build("bs");
  const CacheConfig c = CacheConfig::paper_default();
  MbptaOptions options;
  options.chips = 200;
  options.block_size = 10;
  const auto r = run_mbpta(p, c, FaultModel(1e-3), Mechanism::kNone, options);
  ASSERT_EQ(r.times.size(), 200u);
  EXPECT_GT(r.observed_max, 0.0);
  // The fitted 1e-9 quantile lies above the empirical sample body.
  EXPECT_GE(r.pwcet(1e-9), empirical_quantile(r.times, 0.99));
}

TEST(Mbpta, StaticBoundDominatesAllObservations) {
  // The SPTA pWCET at the per-chip exceedance level must dominate every
  // observed (simulated) chip execution on the same path — the paper's
  // core safety claim, checked against the measurement pipeline.
  const Program p = workloads::build("prime");
  const CacheConfig c = CacheConfig::paper_default();
  PwcetOptions popt;
  popt.engine = WcetEngine::kTree;
  const PwcetAnalyzer analyzer(p, c, popt);
  const FaultModel faults(1e-3);
  MbptaOptions options;
  options.chips = 300;
  options.block_size = 15;
  for (const Mechanism m : {Mechanism::kNone, Mechanism::kReliableWay,
                            Mechanism::kSharedReliableBuffer}) {
    const auto spta = analyzer.analyze(faults, m);
    const auto mbpta = run_mbpta(p, c, faults, m, options);
    EXPECT_GE(static_cast<double>(spta.pwcet(1e-15)), mbpta.observed_max)
        << mechanism_name(m);
  }
}

TEST(Mbpta, DeterministicUnderSeed) {
  const Program p = workloads::build("bs");
  const CacheConfig c = CacheConfig::paper_default();
  MbptaOptions options;
  options.chips = 60;
  options.block_size = 10;
  options.seed = 12345;
  const auto a = run_mbpta(p, c, FaultModel(1e-3), Mechanism::kNone, options);
  const auto b = run_mbpta(p, c, FaultModel(1e-3), Mechanism::kNone, options);
  EXPECT_EQ(a.times, b.times);
}

}  // namespace
}  // namespace pwcet
