// Tests for the domain-pluggable pipeline (src/analysis/): the store-key
// compatibility contract — the refactored key chain is pinned against hex
// values captured from the pre-pipeline analyzers, so memo entries and
// disk artifacts written before the refactor keep resolving after it —
// and N-domain composition: a synthetic third CacheDomain registered here
// composes with the two shipped plugins and stays byte-identical at any
// thread count, store on/off, cold or warm.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dcache_domain.hpp"
#include "analysis/icache_domain.hpp"
#include "analysis/pipeline.hpp"
#include "core/pwcet_analyzer.hpp"
#include "dcache/dcache_analysis.hpp"
#include "engine/thread_pool.hpp"
#include "store/analysis_store.hpp"
#include "store/artifact_store.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

namespace fs = std::filesystem;

CacheConfig small_dcache() {
  CacheConfig dc = CacheConfig::paper_default();
  dc.sets = 8;
  dc.ways = 2;
  return dc;
}

// ---- pre-refactor golden keys ----------------------------------------------

// Hex values captured from the pre-pipeline PwcetAnalyzer /
// CombinedPwcetAnalyzer on this exact input (fibcall, the paper-default
// icache, the 8x2 dcache above). If one of these fails, the refactored
// key chain drifted from the historical recipes and every store written
// before the change silently turns into misses — revert the drift (or,
// for an *intentional* semantic change, bump the recipe version tags and
// ArtifactStore::kFormatVersion, then re-pin).
TEST(PipelineGoldenKeys, CoreKeysMatchPreRefactorValues) {
  const Program p = workloads::build("fibcall");
  const CacheConfig ic = CacheConfig::paper_default();

  EXPECT_EQ(pwcet_core_key(p, ic, WcetEngine::kIlp).hex(),
            "cc02c7097bbec7aac3765c1f0b70271e");
  EXPECT_EQ(pwcet_core_key(p, ic, WcetEngine::kTree).hex(),
            "e7bdbda527acf914ba3e580b6a9cee7a");

  // The facades' core keys are the pipeline keys of the two shipped
  // compositions — both must reproduce the historical recipes.
  const PwcetAnalyzer single(p, ic);
  EXPECT_EQ(single.core_key().hex(), "cc02c7097bbec7aac3765c1f0b70271e");
  const CombinedPwcetAnalyzer combined(p, ic, small_dcache());
  EXPECT_EQ(combined.core_key().hex(), "9fb50b765ec8ffff8199eff92bcfb640");

  // Row-prefix sub-domains: the icache domain shares the single-cache
  // core recipe (so both analyzer flavours share memoized rows); the
  // dcache domain owns a distinct prefix (a data reference map must never
  // alias an instruction one).
  EXPECT_EQ(IcacheDomain(ic).row_key_prefix(p, WcetEngine::kIlp),
            pwcet_core_key(p, ic, WcetEngine::kIlp));
  EXPECT_EQ(DcacheDomain(small_dcache())
                .row_key_prefix(p, WcetEngine::kIlp)
                .hex(),
            "7b8a4afc2cfa84fd06e74c06e57244f1");

  // Per-set penalty layer: content-addressed on (miss penalty, pwf, FMM
  // row) — the recipe build_penalty_distribution keys the memo with.
  EXPECT_EQ(KeyHasher("set-penalty-v1")
                .mix_i64(10)
                .mix_doubles({0.5, 0.25, 0.25})
                .mix_doubles({0.0, 2.0, 5.0})
                .finish()
                .hex(),
            "160e51255b1fffc3311d0ddc4463cf24");
}

TEST(PipelineGoldenKeys, ResultArtifactsLandOnPreRefactorKeys) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("pwcet_pipeline_keys_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  const Program p = workloads::build("fibcall");
  StoreOptions disk_options;
  disk_options.artifact_dir = dir;
  AnalysisStore store(disk_options);
  PwcetOptions options;
  options.store = &store;
  const FaultModel faults(1e-4);

  // The per-result disk artifacts are addressed by the live result keys;
  // their file names therefore pin the exact key bytes analyze() chains
  // (core key x mechanisms x pfail x coalescing budget).
  const PwcetAnalyzer single(p, CacheConfig::paper_default(), options);
  single.analyze(faults, Mechanism::kSharedReliableBuffer);
  EXPECT_TRUE(fs::exists(
      fs::path(dir) / "distribution" /
      "8942d3694dac48474a8407b5414c1cb9.jsonl"));

  const CombinedPwcetAnalyzer combined(p, CacheConfig::paper_default(),
                                       small_dcache(), options);
  combined.analyze_mixed(faults, Mechanism::kReliableWay,
                         Mechanism::kSharedReliableBuffer);
  EXPECT_TRUE(fs::exists(
      fs::path(dir) / "distribution" /
      "7e58309b965fdef2b11b38445e742623.jsonl"));

  fs::remove_all(dir);
}

TEST(PipelineGoldenKeys, NumericResultsMatchPreRefactorValues) {
  const Program p = workloads::build("fibcall");
  const FaultModel faults(1e-4);

  const PwcetAnalyzer single(p, CacheConfig::paper_default());
  EXPECT_EQ(single.fault_free_wcet(), 8188u);
  EXPECT_EQ(
      single.analyze(faults, Mechanism::kSharedReliableBuffer).pwcet(1e-15),
      14088u);

  const CombinedPwcetAnalyzer combined(p, CacheConfig::paper_default(),
                                       small_dcache());
  EXPECT_EQ(combined.fault_free_wcet(), 8188u);
  EXPECT_EQ(combined
                .analyze_mixed(faults, Mechanism::kReliableWay,
                               Mechanism::kSharedReliableBuffer)
                .pwcet(1e-15),
            8188u);
}

// ---- synthetic third domain -------------------------------------------------

/// A TLB-like third cache domain: the instruction-fetch stream analyzed
/// against its own tiny geometry. Contributes nothing to the fault-free
/// time model (its hits are free by construction) but its faulty-way
/// penalty convolves into the combined distribution — a minimal but
/// complete plugin (~40 lines), exactly what a shared-L2 / scratchpad /
/// per-core-split scenario would add.
class TlbDomain final : public CacheDomain {
 public:
  TlbDomain() {
    config_.sets = 4;
    config_.ways = 2;
    config_.line_bytes = 32;
    config_.hit_latency = 0;
    config_.miss_penalty = 7;
    config_.validate();
  }

  std::string_view name() const override { return "test-tlb"; }
  const CacheConfig& config() const override { return config_; }
  bool standalone() const override { return false; }

  // A synthetic domain must separate its store sub-domains itself: its
  // reference semantics differ from the shipped domains', so neither its
  // core-key contribution nor its row prefix may alias theirs.
  void mix_core_key(KeyHasher& hasher) const override {
    hasher.mix_string("test-tlb-v1");
    hasher.mix_key(hash_cache_config(config_));
  }
  StoreKey row_key_prefix(const Program& program,
                          WcetEngine engine) const override {
    return KeyHasher("test-tlb-rows-v1")
        .mix_key(hash_program(program))
        .mix_key(hash_cache_config(config_))
        .mix_u64(static_cast<std::uint64_t>(engine))
        .finish();
  }

  ReferenceMap extract(const Program& program) const override {
    return extract_references(program.cfg(), config_);
  }
  CostModel time_cost_model(const Program& program, const ReferenceMap&,
                            const ClassificationMap&) const override {
    return CostModel::zero(program.cfg());
  }

 private:
  CacheConfig config_;
};

std::vector<std::shared_ptr<const CacheDomain>> three_domains() {
  return {std::make_shared<const IcacheDomain>(CacheConfig::paper_default()),
          std::make_shared<const DcacheDomain>(small_dcache()),
          std::make_shared<const TlbDomain>()};
}

// One distinct mechanism per domain; the TLB runs unprotected so its
// catastrophic fully-faulty column contributes a visible penalty tail.
const std::vector<Mechanism> kMixedMechanisms = {
    Mechanism::kSharedReliableBuffer, Mechanism::kReliableWay,
    Mechanism::kNone};

TEST(ThirdDomain, ComposesWithTheShippedTwo) {
  const Program p = workloads::build("fibcall");
  const FaultModel faults(1e-3);

  const PwcetPipeline three(p, three_domains());
  const CombinedPwcetAnalyzer two(p, CacheConfig::paper_default(),
                                  small_dcache());

  // The TLB charges no fault-free cycles, so the single summed
  // maximization reproduces the two-domain WCET...
  EXPECT_EQ(three.fault_free_wcet(), two.fault_free_wcet());
  // ...but its core key must not collide with the two-domain composition,
  EXPECT_NE(three.core_key(), two.core_key());
  // ...and its faulty behaviour convolves into the penalty tail.
  const PwcetResult with_tlb = three.analyze(faults, kMixedMechanisms);
  const PwcetResult without =
      two.analyze_mixed(faults, kMixedMechanisms[0], kMixedMechanisms[1]);
  EXPECT_GT(with_tlb.penalty.max_value(), without.penalty.max_value());
  EXPECT_GE(with_tlb.pwcet(1e-15), without.pwcet(1e-15));
  EXPECT_NEAR(with_tlb.penalty.total_mass(), 1.0, 1e-9);
}

TEST(ThirdDomain, ByteIdenticalAtAnyThreadCountStoreOnOffColdWarm) {
  const Program p = workloads::build("fibcall");
  const FaultModel faults(1e-3);
  const auto domains = three_domains();

  // Baseline: serial, no store.
  const PwcetPipeline baseline(p, domains);
  const PwcetResult base = baseline.analyze(faults, kMixedMechanisms);

  // N threads (oversubscription on narrow hosts is harmless — the
  // convolution tree and set partitioning are fixed-shape).
  ThreadPool pool(3);
  PwcetOptions pooled_options;
  pooled_options.pool = &pool;
  const PwcetPipeline pooled(p, domains, pooled_options);
  const PwcetResult wide = pooled.analyze(faults, kMixedMechanisms);
  EXPECT_EQ(base.fault_free_wcet, wide.fault_free_wcet);
  EXPECT_EQ(base.penalty, wide.penalty);

  // Store on: cold compute, then a warm pipeline whose core and result
  // come entirely from the memo.
  AnalysisStore store;
  PwcetOptions stored_options;
  stored_options.store = &store;
  const PwcetPipeline cold(p, domains, stored_options);
  const PwcetResult cold_result = cold.analyze(faults, kMixedMechanisms);
  const PwcetPipeline warm(p, domains, stored_options);
  const PwcetResult warm_result = warm.analyze(faults, kMixedMechanisms);
  EXPECT_EQ(base.penalty, cold_result.penalty);
  EXPECT_EQ(base.penalty, warm_result.penalty);
  EXPECT_GT(store.stats().hits, 0u);

  // Disk tier: two stores with fresh memos sharing one artifact
  // directory simulate separate processes; the second run's penalty is
  // answered from the persisted artifact, byte-identically.
  const std::string dir =
      (fs::temp_directory_path() /
       ("pwcet_pipeline_disk_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  StoreOptions disk_options;
  disk_options.artifact_dir = dir;
  {
    AnalysisStore run1(disk_options), run2(disk_options);
    PwcetOptions opt1, opt2;
    opt1.store = &run1;
    opt2.store = &run2;
    const PwcetResult first =
        PwcetPipeline(p, domains, opt1).analyze(faults, kMixedMechanisms);
    const PwcetResult second =
        PwcetPipeline(p, domains, opt2).analyze(faults, kMixedMechanisms);
    EXPECT_EQ(base.penalty, first.penalty);
    EXPECT_EQ(base.penalty, second.penalty);
    EXPECT_GT(run2.stats().disk_hits, 0u);
  }
  fs::remove_all(dir);
}

TEST(ThirdDomain, UniformMechanismOverloadAppliesToEveryDomain) {
  const Program p = workloads::build("fibcall");
  const FaultModel faults(1e-3);
  const PwcetPipeline three(p, three_domains());
  const PwcetResult uniform = three.analyze(faults, Mechanism::kReliableWay);
  const PwcetResult explicit_vector = three.analyze(
      faults, {Mechanism::kReliableWay, Mechanism::kReliableWay,
               Mechanism::kReliableWay});
  EXPECT_EQ(uniform.penalty, explicit_vector.penalty);
  EXPECT_EQ(uniform.fault_free_wcet, explicit_vector.fault_free_wcet);
}

TEST(ThirdDomain, SecondaryDomainsCannotLeadAPipeline) {
  const Program p = workloads::build("fibcall");
  EXPECT_DEATH(
      PwcetPipeline(p, {std::make_shared<const DcacheDomain>(small_dcache())}),
      "standalone");
}

// ---- the shared re-weighting bundle ----------------------------------------

// The pfail ladder and mechanism set of specs/pfail_sweep.json — the grid
// the bundle exists for.
const std::vector<Probability> kSweepPfails = {6.1e-13, 1e-9, 1e-7, 1e-6,
                                               1e-5,    1e-4, 1e-3};
const std::vector<Mechanism> kAllMechanisms = {
    Mechanism::kNone, Mechanism::kSharedReliableBuffer,
    Mechanism::kReliableWay};

TEST(Reweight, SweptCellsAreByteIdenticalToFreshPipelines) {
  // Property: analyzing N pfail points through ONE pipeline instance —
  // where every point after the first re-weights the cached bundle — is
  // byte-identical to a fresh pipeline per point (which builds its bundle
  // from scratch). Swept across the shipped pfail_sweep tasks, serial and
  // pooled, store off and on (cold + warm within the shared store).
  ThreadPool pool(3);
  for (const char* task : {"adpcm", "fibcall", "matmult", "crc", "fft",
                           "ud"}) {
    const Program p = workloads::build(task);
    const auto domains = std::vector<std::shared_ptr<const CacheDomain>>{
        std::make_shared<IcacheDomain>(CacheConfig::paper_default())};
    AnalysisStore store;
    PwcetOptions stored_options;
    stored_options.store = &store;
    PwcetOptions pooled_options;
    pooled_options.pool = &pool;
    const PwcetPipeline swept(p, domains);
    const PwcetPipeline swept_stored(p, domains, stored_options);
    const PwcetPipeline swept_pooled(p, domains, pooled_options);
    for (const Mechanism mechanism : kAllMechanisms) {
      for (const Probability pfail : kSweepPfails) {
        const FaultModel faults(pfail);
        const PwcetResult shared = swept.analyze(faults, mechanism);
        const PwcetResult fresh =
            PwcetPipeline(p, domains).analyze(faults, mechanism);
        ASSERT_EQ(shared.penalty, fresh.penalty) << task;
        ASSERT_EQ(shared.fault_free_wcet, fresh.fault_free_wcet) << task;
        ASSERT_EQ(swept_stored.analyze(faults, mechanism).penalty,
                  shared.penalty)
            << task;
        ASSERT_EQ(swept_pooled.analyze(faults, mechanism).penalty,
                  shared.penalty)
            << task;
      }
    }
    // Warm pass: every cell now memoized; must reproduce the same bytes.
    for (const Mechanism mechanism : kAllMechanisms)
      for (const Probability pfail : kSweepPfails)
        ASSERT_EQ(
            swept_stored.analyze(FaultModel(pfail), mechanism).penalty,
            swept.analyze(FaultModel(pfail), mechanism).penalty)
            << task;
  }
}

TEST(Reweight, MatchesTheFromScratchPenaltyComposition) {
  // The re-weighted analyze() against the exported from-scratch builder
  // (build_penalty_distribution reads the raw FMM per cell): bit-equality
  // here proves the bundle path changes nothing, independent of the
  // PWCET_REWEIGHT escape hatch and of which path analyze() took.
  const Program p = workloads::build("fibcall");
  const PwcetPipeline pipeline(
      p, {std::make_shared<IcacheDomain>(CacheConfig::paper_default())});
  for (const Mechanism mechanism : kAllMechanisms) {
    for (const Probability pfail : kSweepPfails) {
      const FaultModel faults(pfail);
      const DiscreteDistribution from_scratch = build_penalty_distribution(
          pipeline.fmm(0).of(mechanism), pipeline.domain(0).config(),
          pipeline.domain(0).pwf(faults, mechanism), 2048, nullptr,
          nullptr);
      ASSERT_EQ(pipeline.analyze(faults, mechanism).penalty, from_scratch);
    }
  }
}

TEST(Reweight, MultiDomainSweepMatchesFreshPipelines) {
  // The bundle carries one scaffold per domain; the cross-domain fold
  // must stay byte-identical under re-weighting too.
  const Program p = workloads::build("fibcall");
  const auto domains = std::vector<std::shared_ptr<const CacheDomain>>{
      std::make_shared<IcacheDomain>(CacheConfig::paper_default()),
      std::make_shared<DcacheDomain>(small_dcache())};
  const PwcetPipeline swept(p, domains);
  for (const Probability pfail : kSweepPfails) {
    const FaultModel faults(pfail);
    const PwcetResult shared = swept.analyze(faults, kMixedMechanisms[0]);
    const PwcetResult fresh =
        PwcetPipeline(p, domains).analyze(faults, kMixedMechanisms[0]);
    ASSERT_EQ(shared.penalty, fresh.penalty);
  }
}

TEST(Reweight, BundleKeyOmitsPfailAndIsPinned) {
  // The bundle recipe must never drift (persisted memo semantics), and —
  // its entire point — must not incorporate the fault probability: the
  // key is a pure function of (core key, mechanism assignment).
  const StoreKey core = KeyHasher("pinned-core").mix_u64(42).finish();
  const StoreKey key = pwcet_bundle_key(core, {0, 2});
  EXPECT_EQ(key.hex(), pwcet_bundle_key(core, {0, 2}).hex());
  EXPECT_NE(key, pwcet_bundle_key(core, {0, 1}));
  EXPECT_NE(key, pwcet_bundle_key(core, {0}));
  EXPECT_EQ(key.hex(), "fc42a10a1ab4c875820a9ca3da302e2a");
}

}  // namespace
}  // namespace pwcet
