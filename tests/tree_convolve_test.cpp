// Tests for the pairwise (tree-reduction) convolution against the serial
// left fold and against the exact (uncoalesced) convolution: with no
// coalescing pressure the two orders agree exactly; under coalescing the
// tree result must keep the conservative-upper-bound contract of
// prob/discrete_distribution.hpp (exceedance >= exact, pointwise) and
// should stay at least as tight as the fold on long chains.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "prob/discrete_distribution.hpp"
#include "support/rng.hpp"

namespace pwcet {
namespace {

/// Random small distribution: 2-5 atoms, values in [0, 400], normalized.
DiscreteDistribution random_part(Rng& rng) {
  const std::size_t atoms = 2 + rng.next_below(4);
  std::vector<ProbabilityAtom> raw;
  double mass = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    const double weight = rng.next_double() + 1e-3;
    raw.push_back({static_cast<Cycles>(rng.next_below(401)), weight});
    mass += weight;
  }
  for (ProbabilityAtom& atom : raw) atom.probability /= mass;
  return DiscreteDistribution::from_atoms(std::move(raw));
}

std::vector<DiscreteDistribution> random_parts(Rng& rng, std::size_t count) {
  std::vector<DiscreteDistribution> parts;
  parts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) parts.push_back(random_part(rng));
  return parts;
}

constexpr std::size_t kNoCoalescing = 1u << 20;

TEST(TreeConvolve, MatchesFoldExactlyWithoutCoalescing) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const auto parts = random_parts(rng, 1 + rng.next_below(10));
    const auto fold = convolve_all(parts, kNoCoalescing);
    const auto tree = convolve_all_tree(parts, kNoCoalescing);
    // Convolution is associative; without coalescing both orders give the
    // same support. Compare supports exactly and probabilities to within
    // reordering round-off.
    ASSERT_EQ(tree.size(), fold.size());
    for (std::size_t i = 0; i < tree.size(); ++i) {
      EXPECT_EQ(tree.atoms()[i].value, fold.atoms()[i].value);
      EXPECT_NEAR(tree.atoms()[i].probability, fold.atoms()[i].probability,
                  1e-12);
    }
  }
}

TEST(TreeConvolve, DominatesExactUnderCoalescing) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto parts = random_parts(rng, 2 + rng.next_below(12));
    const auto exact = convolve_all(parts, kNoCoalescing);
    for (const std::size_t max_points : {8u, 16u, 64u}) {
      const auto tree = convolve_all_tree(parts, max_points);
      EXPECT_LE(tree.size(), max_points);
      // The coalescing contract: the kept exceedance function is a
      // pointwise upper bound of the exact one.
      EXPECT_TRUE(tree.dominates(exact, 1e-9))
          << "trial " << trial << " max_points " << max_points;
      // Mass moves, it is never created or destroyed.
      EXPECT_NEAR(tree.total_mass(), 1.0, 1e-9);
      EXPECT_GE(tree.mean(), exact.mean() - 1e-9);
      // The maximum is preserved exactly (coalescing keeps the top atom).
      EXPECT_EQ(tree.max_value(), exact.max_value());
    }
  }
}

TEST(TreeConvolve, FoldAlsoDominatesExact) {
  // Sanity for the comparison baseline: the serial fold honours the same
  // contract, so either reduction order is sound for pWCET bounds.
  Rng rng(11);
  const auto parts = random_parts(rng, 12);
  const auto exact = convolve_all(parts, kNoCoalescing);
  const auto fold = convolve_all(parts, 16);
  EXPECT_TRUE(fold.dominates(exact, 1e-9));
}

TEST(TreeConvolve, TreeQuantilesNoLooserThanFoldOnLongChains) {
  // O(log n) coalescing steps per leaf-to-root path (tree) vs O(n) on the
  // fold's spine: on long chains the tree's tail quantiles should not be
  // (materially) more conservative. Both dominate the exact result, so
  // compare their 1e-9..1e-15 quantiles directly.
  Rng rng(13);
  double tree_total = 0.0, fold_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto parts = random_parts(rng, 32);
    const auto tree = convolve_all_tree(parts, 64);
    const auto fold = convolve_all(parts, 64);
    for (const double p : {1e-9, 1e-12, 1e-15}) {
      tree_total += static_cast<double>(tree.quantile_exceedance(p));
      fold_total += static_cast<double>(fold.quantile_exceedance(p));
    }
  }
  EXPECT_LE(tree_total, fold_total * 1.001);
}

TEST(TreeConvolve, EdgeCases) {
  // Empty input: neutral element (all mass at zero).
  const auto empty = convolve_all_tree({}, 16);
  EXPECT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty.max_value(), 0);

  // Single part: returned as-is (subject to the budget).
  Rng rng(3);
  const auto part = random_part(rng);
  const auto single = convolve_all_tree({part}, kNoCoalescing);
  EXPECT_EQ(single, part);

  // Odd count: the unpaired distribution must not be dropped.
  const std::vector<DiscreteDistribution> three{
      DiscreteDistribution::degenerate(1),
      DiscreteDistribution::degenerate(2),
      DiscreteDistribution::degenerate(4)};
  const auto sum = convolve_all_tree(three, kNoCoalescing);
  EXPECT_EQ(sum.size(), 1u);
  EXPECT_EQ(sum.max_value(), 7);
}

}  // namespace
}  // namespace pwcet
