// In-process tests for the `pwcet` CLI (cli/cli.hpp): the smoke contract
// that `pwcet run <spec>` emits byte-identical reports to the programmatic
// campaign API (store on or off, any thread count), plus exit-code and
// diagnostic behavior for malformed inputs, and the describe/list/cache
// subcommands.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "cli/cli.hpp"
#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "support/json_doc.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

namespace pwcet {
namespace {

namespace fs = std::filesystem;

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run_cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliResult result;
  result.code = cli::run(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("pwcet_cli_test_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const std::string path = (fs::path(dir_) / name).string();
    std::ofstream(path, std::ios::binary) << text;
    return path;
  }

  static std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  /// The tiny campaign used by the identity tests (12 cheap SPTA jobs),
  /// as both a spec file and its programmatic twin.
  std::string tiny_spec_path() {
    return write_file("tiny.json", R"({
      "tasks": ["fibcall", "bs"],
      "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
      "pfails": [1e-6, 1e-4],
      "mechanisms": ["none", "SRB", "RW"]
    })");
  }

  static CampaignSpec tiny_spec_programmatic() {
    CampaignSpec spec;
    spec.tasks = {"fibcall", "bs"};
    spec.geometries = {CacheConfig::paper_default()};
    spec.pfails = {1e-6, 1e-4};
    spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                       Mechanism::kReliableWay};
    return spec;
  }

  std::string dir_;
};

// ---- pwcet run: byte-identity with the programmatic API --------------------

TEST_F(CliTest, RunEmitsByteIdenticalReportsAtAnyThreadCountAndStoreMode) {
  const std::string spec_path = tiny_spec_path();

  RunnerOptions reference_options;
  reference_options.threads = 1;
  const CampaignResult reference =
      run_campaign(tiny_spec_programmatic(), reference_options);
  const std::string csv = report_csv(reference);
  const std::string jsonl = report_jsonl(reference);

  // Default store, default threads.
  CliResult result = run_cli({"run", spec_path});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out, csv);

  // Different thread count, store disabled: same bytes.
  result = run_cli({"run", spec_path, "--threads", "2", "--store", "off"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out, csv);

  // JSONL format.
  result = run_cli({"run", spec_path, "--format", "jsonl"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out, jsonl);

  // Disk tier enabled: cold run, then warm run answered from the
  // persisted campaign artifact — still the same bytes.
  const std::string cache = (fs::path(dir_) / "cache").string();
  result = run_cli({"run", spec_path, "--cache-dir", cache});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out, csv);
  result = run_cli({"run", spec_path, "--cache-dir", cache});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out, csv);
}

TEST_F(CliTest, RunWithOutputWritesTheExampleBinaryReportFiles) {
  const std::string spec_path = tiny_spec_path();
  const std::string base = (fs::path(dir_) / "report").string();

  const CliResult result = run_cli({"run", spec_path, "--output", base});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out, "");  // report went to files, stdout stays empty

  // The files must match what the programmatic API (and therefore every
  // example binary, which calls the same write_report_files) produces.
  const CampaignResult reference =
      run_campaign(tiny_spec_programmatic(), RunnerOptions{});
  EXPECT_EQ(read_file(base + ".csv"), report_csv(reference));
  EXPECT_EQ(read_file(base + ".jsonl"), report_jsonl(reference));
}

TEST_F(CliTest, ExplicitStoreOnBeatsPwcetStoreEnvironment) {
  const std::string spec_path = tiny_spec_path();
  const char* saved = std::getenv("PWCET_STORE");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::setenv("PWCET_STORE", "0", 1);
  const CliResult with_flag = run_cli({"run", spec_path, "--store", "on"});
  const CliResult defaulted = run_cli({"run", spec_path});
  if (saved != nullptr) {
    ::setenv("PWCET_STORE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("PWCET_STORE");
  }
  ASSERT_EQ(with_flag.code, 0) << with_flag.err;
  ASSERT_EQ(defaulted.code, 0) << defaulted.err;
  // The env knob disables the default store (it exists to drive the
  // spec-less bench binaries)...
  EXPECT_NE(defaulted.err.find("store: 0 hits / 0 misses"),
            std::string::npos)
      << defaulted.err;
  // ...but an explicit --store on wins over it.
  EXPECT_EQ(with_flag.err.find("store: 0 hits / 0 misses"),
            std::string::npos)
      << with_flag.err;
  // Byte-identity holds either way.
  EXPECT_EQ(with_flag.out, defaulted.out);
}

TEST_F(CliTest, LastStoreFlagWins) {
  const std::string spec_path = tiny_spec_path();
  const CliResult result =
      run_cli({"run", spec_path, "--store", "on", "--store", "off"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.err.find("store: 0 hits / 0 misses"), std::string::npos)
      << result.err;
}

// ---- error handling --------------------------------------------------------

TEST_F(CliTest, MalformedSpecFailsNonZeroNamingTheField) {
  const std::string bad = write_file("bad.json", R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["reliable-way"]
  })");
  const CliResult result = run_cli({"run", bad});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("unknown mechanism \"reliable-way\""),
            std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("mechanisms[0]"), std::string::npos) << result.err;
  EXPECT_NE(result.err.find(":5"), std::string::npos) << result.err;
}

TEST_F(CliTest, MissingSpecFileFailsNonZero) {
  const CliResult result = run_cli({"run", dir_ + "/nope.json"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("cannot open spec file"), std::string::npos);
}

TEST_F(CliTest, UsageErrorsExitWithTwo) {
  EXPECT_EQ(run_cli({}).code, 2);
  EXPECT_EQ(run_cli({"frobnicate"}).code, 2);
  EXPECT_EQ(run_cli({"run"}).code, 2);
  EXPECT_EQ(run_cli({"run", "a.json", "--format", "yaml"}).code, 2);
  EXPECT_EQ(run_cli({"run", "a.json", "--threads", "many"}).code, 2);
  EXPECT_EQ(run_cli({"run", "a.json", "--store", "maybe"}).code, 2);
  EXPECT_EQ(run_cli({"run", "a.json", "--threads"}).code, 2);
  EXPECT_EQ(run_cli({"run", "a.json", "--output", "b", "--format", "csv"})
                .code,
            2);
  EXPECT_EQ(run_cli({"cache", "flush"}).code, 2);
  EXPECT_EQ(run_cli({"help"}).code, 0);
}

// ---- describe / list -------------------------------------------------------

TEST_F(CliTest, DescribeExpandsTheGridWithoutRunning) {
  const CliResult result =
      run_cli({"describe", PWCET_SPECS_DIR "/geometry_sweep.json"});
  EXPECT_EQ(result.code, 0) << result.err;
  // 6 tasks x 5 geometries x 1 pfail x 3 mechanisms = 90 jobs.
  EXPECT_NE(result.out.find("= 90 jobs"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("spec key: "), std::string::npos);
  // Seeds in the listing are the exact per-job derived seeds.
  const SpecDocument doc = load_spec(PWCET_SPECS_DIR "/geometry_sweep.json");
  const std::vector<CampaignJob> jobs = expand_campaign(doc.spec);
  EXPECT_NE(result.out.find(std::to_string(jobs.front().seed)),
            std::string::npos);
  EXPECT_NE(result.out.find(std::to_string(jobs.back().seed)),
            std::string::npos);
}

TEST_F(CliTest, ListNamesEveryAxisValue) {
  const CliResult result = run_cli({"list"});
  EXPECT_EQ(result.code, 0);
  for (const char* needle :
       {"adpcm", "statemate", "interp", "dispatch", "none", "RW", "SRB",
        "same", "ilp", "tree", "spta", "mbpta", "sim", "slack"})
    EXPECT_NE(result.out.find(needle), std::string::npos) << needle;
}

// ---- distribution sink -----------------------------------------------------

TEST_F(CliTest, DistributionFormatsAndFilesMatchTheProgrammaticApi) {
  const std::string spec_path = write_file("dist.json", R"({
    "tasks": ["fibcall"],
    "geometries": [{"sets": 16, "ways": 4, "line_bytes": 16}],
    "pfails": [1e-4],
    "mechanisms": ["none", "SRB"],
    "ccdf_exceedances": [1e-3, 1e-9, 1e-15]
  })");
  const SpecDocument doc = load_spec(spec_path);
  const CampaignResult reference = run_campaign(doc.spec, RunnerOptions{});

  CliResult result = run_cli({"run", spec_path, "--format", "dist-csv"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out, report_dist_csv(reference));

  result = run_cli({"run", spec_path, "--format", "dist-jsonl"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out, report_dist_jsonl(reference));

  // --output additionally writes the .dist pair.
  const std::string base = (fs::path(dir_) / "dist_report").string();
  result = run_cli({"run", spec_path, "--output", base});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(read_file(base + ".csv"), report_csv(reference));
  EXPECT_EQ(read_file(base + ".dist.csv"), report_dist_csv(reference));
  EXPECT_EQ(read_file(base + ".dist.jsonl"), report_dist_jsonl(reference));

  // A dist format on a spec without a distribution sink is a user error.
  const std::string scalar = tiny_spec_path();
  result = run_cli({"run", scalar, "--format", "dist-csv"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("ccdf_exceedances"), std::string::npos)
      << result.err;
}

// ---- cache -----------------------------------------------------------------

TEST_F(CliTest, CacheStatsAndClearManageTheArtifactDirectory) {
  const std::string spec_path = tiny_spec_path();
  const std::string cache = (fs::path(dir_) / "cache").string();

  // No directory yet.
  CliResult result = run_cli({"cache", "stats", "--cache-dir", cache});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("does not exist"), std::string::npos);

  // Populate it, then stats must see the artifacts.
  ASSERT_EQ(run_cli({"run", spec_path, "--cache-dir", cache}).code, 0);
  result = run_cli({"cache", "stats", "--cache-dir", cache});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("campaign-report"), std::string::npos)
      << result.out;

  // Clear, then stats must see an empty cache again.
  result = run_cli({"cache", "clear", "--cache-dir", cache});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("removed "), std::string::npos);
  result = run_cli({"cache", "stats", "--cache-dir", cache});
  EXPECT_EQ(result.code, 0);
  EXPECT_EQ(result.out.find("campaign-report"), std::string::npos)
      << result.out;

  // A foreign file in the cache directory survives `clear`, but an
  // orphaned artifact temp file (a writer died before its rename) is
  // swept even when its kind directory holds nothing else.
  const std::string foreign = (fs::path(cache) / "README").string();
  std::ofstream(foreign) << "not an artifact";
  const fs::path orphan_dir = fs::path(cache) / "distribution";
  fs::create_directories(orphan_dir);
  const std::string orphan =
      (orphan_dir / "deadbeef.jsonl.tmp123.4").string();
  std::ofstream(orphan) << "partial write";
  ASSERT_EQ(run_cli({"cache", "clear", "--cache-dir", cache}).code, 0);
  EXPECT_TRUE(fs::exists(foreign));
  EXPECT_FALSE(fs::exists(orphan));
}

TEST_F(CliTest, CacheStatsAndClearOnMissingOrEmptyDirectoryReportCleanly) {
  // Nonexistent directory: both subcommands succeed and say so (0
  // artifacts), instead of erroring on a path that simply was never
  // populated.
  const std::string missing = (fs::path(dir_) / "never_created").string();
  CliResult result = run_cli({"cache", "stats", "--cache-dir", missing});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("0 artifacts"), std::string::npos) << result.out;
  result = run_cli({"cache", "clear", "--cache-dir", missing});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("0 artifacts"), std::string::npos) << result.out;

  // Existing but empty directory: stats shows a zero total, clear removes
  // zero artifacts; both exit 0.
  const std::string empty = (fs::path(dir_) / "empty_cache").string();
  fs::create_directories(empty);
  result = run_cli({"cache", "stats", "--cache-dir", empty});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("total"), std::string::npos) << result.out;
  result = run_cli({"cache", "clear", "--cache-dir", empty});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("removed 0 artifacts"), std::string::npos)
      << result.out;
}

// ---- shard / merge ---------------------------------------------------------

TEST_F(CliTest, ShardRunsAndMergeReproduceTheSingleProcessBytes) {
  const std::string spec_path = tiny_spec_path();
  const CliResult single = run_cli({"run", spec_path, "--store", "off"});
  ASSERT_EQ(single.code, 0) << single.err;

  const std::string cache = (fs::path(dir_) / "shards").string();
  for (const char* selector : {"1/2", "2/2"}) {
    const CliResult shard =
        run_cli({"run", spec_path, "--shard", selector, "--cache-dir", cache});
    ASSERT_EQ(shard.code, 0) << shard.err;
    EXPECT_NE(shard.err.find("fragment ->"), std::string::npos) << shard.err;
  }

  const std::string union_dir = (fs::path(dir_) / "union").string();
  const CliResult merged = run_cli(
      {"merge", spec_path, "--from", cache, "--into", union_dir});
  ASSERT_EQ(merged.code, 0) << merged.err;
  EXPECT_EQ(merged.out, single.out);
  EXPECT_NE(merged.err.find("merged 2 shards"), std::string::npos)
      << merged.err;

  // The union published the merged campaign artifact: a whole-campaign run
  // against it answers warm with the same bytes.
  const CliResult warm =
      run_cli({"run", spec_path, "--cache-dir", union_dir});
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_EQ(warm.out, single.out);
}

TEST_F(CliTest, ShardFlagValidatesItsSpellingAndCacheDirRequirement) {
  const std::string spec_path = tiny_spec_path();
  // --shard without any cache directory cannot write its fragment.
  CliResult result = run_cli({"run", spec_path, "--shard", "1/2"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("cache directory"), std::string::npos)
      << result.err;
  // Malformed selectors are usage errors.
  for (const char* bad : {"0/2", "3/2", "2", "a/b"}) {
    result = run_cli({"run", spec_path, "--shard", bad, "--cache-dir",
                      (fs::path(dir_) / "c").string()});
    EXPECT_EQ(result.code, 2) << bad;
    EXPECT_NE(result.err.find("--shard wants i/N"), std::string::npos)
        << result.err;
  }
}

TEST_F(CliTest, MergeFailsNonZeroOnMissingOrCorruptedFragments) {
  const std::string spec_path = tiny_spec_path();
  const std::string cache = (fs::path(dir_) / "partial").string();
  ASSERT_EQ(run_cli({"run", spec_path, "--shard", "1/2", "--cache-dir",
                     cache})
                .code,
            0);

  // Shard 2/2 never ran: the merge names the missing shard and fails.
  CliResult result = run_cli({"merge", spec_path, "--from", cache});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("missing shard 2/2"), std::string::npos)
      << result.err;

  // Complete the set, then corrupt one fragment artifact: hard error
  // naming the file (the artifact's content hash catches the flip).
  ASSERT_EQ(run_cli({"run", spec_path, "--shard", "2/2", "--cache-dir",
                     cache})
                .code,
            0);
  ASSERT_EQ(run_cli({"merge", spec_path, "--from", cache}).code, 0);
  const fs::path fragment_dir = fs::path(cache) / "campaign-shard";
  std::string victim;
  for (const auto& entry : fs::directory_iterator(fragment_dir))
    if (entry.path().extension() == ".jsonl") {
      victim = entry.path().string();
      break;
    }
  ASSERT_FALSE(victim.empty());
  std::string bytes = read_file(victim);
  bytes[bytes.size() - 2] = bytes[bytes.size() - 2] == '0' ? '1' : '0';
  std::ofstream(victim, std::ios::binary) << bytes;
  result = run_cli({"merge", spec_path, "--from", cache});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("corrupted shard fragment artifact"),
            std::string::npos)
      << result.err;
}

TEST_F(CliTest, DescribeShardsAppendsTheAssignmentColumn) {
  const std::string spec_path = tiny_spec_path();
  CliResult result = run_cli({"describe", spec_path, "--shards", "3"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("shard"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("/3"), std::string::npos) << result.out;
  // Without the flag the column stays absent, and a bad count is a usage
  // error.
  result = run_cli({"describe", spec_path});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out.find("shard"), std::string::npos) << result.out;
  result = run_cli({"describe", spec_path, "--shards", "0"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--shards wants"), std::string::npos)
      << result.err;
}

// ---- observability flags ---------------------------------------------------

TEST_F(CliTest, TraceAndMetricsExportsParseAndLeaveTheReportUntouched) {
  const std::string spec_path = tiny_spec_path();
  RunnerOptions reference_options;
  reference_options.threads = 1;
  const std::string csv =
      report_csv(run_campaign(tiny_spec_programmatic(), reference_options));

  const std::string trace = (fs::path(dir_) / "trace.json").string();
  const std::string metrics = (fs::path(dir_) / "metrics.json").string();
  const CliResult result = run_cli({"run", spec_path, "--threads", "2",
                                    "--trace-out", trace, "--metrics-out",
                                    metrics});
  EXPECT_EQ(result.code, 0) << result.err;
  // The observation-only contract, end to end through the CLI.
  EXPECT_EQ(result.out, csv);

  const Json trace_doc = parse_json(read_file(trace), trace);
  EXPECT_EQ(trace_doc.find("displayTimeUnit")->string, "ms");
  const Json* events = trace_doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->array.empty());
  const std::string trace_text = read_file(trace);
  for (const char* span : {"campaign.run", "engine.job", "pipeline.core",
                           "phase.penalty", "phase.convolve"})
    EXPECT_NE(trace_text.find(span), std::string::npos) << span;

  const Json metrics_doc = parse_json(read_file(metrics), metrics);
  ASSERT_NE(metrics_doc.find("counters"), nullptr);
  ASSERT_NE(metrics_doc.find("histograms"), nullptr);
  EXPECT_NE(metrics_doc.find("counters")->find("engine.jobs"), nullptr);
  EXPECT_NE(metrics_doc.find("histograms")->find("pipeline.analyze"),
            nullptr);
}

TEST_F(CliTest, ProfilePrintsSpanAndCounterTablesOnStderr) {
  const CliResult result = run_cli({"run", tiny_spec_path(), "--threads",
                                    "1", "--profile"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.err.find("profile: wall time per span"),
            std::string::npos);
  EXPECT_NE(result.err.find("pipeline.core"), std::string::npos);
  EXPECT_NE(result.err.find("profile: counters"), std::string::npos);
  EXPECT_NE(result.err.find("engine.jobs"), std::string::npos);
}

TEST_F(CliTest, ProgressStaysSilentWhenStderrIsNotATerminal) {
  // run_cli's stderr is a stringstream, not a TTY: the meter must not
  // animate (a redirected run would otherwise be littered with \r).
  const CliResult result =
      run_cli({"run", tiny_spec_path(), "--progress"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.err.find('\r'), std::string::npos);
}

TEST_F(CliTest, CacheStatsRendersPerLayerStoreCounters) {
  const std::string spec_path = tiny_spec_path();
  const std::string metrics = (fs::path(dir_) / "metrics.json").string();
  ASSERT_EQ(run_cli({"run", spec_path, "--threads", "1", "--metrics-out",
                     metrics})
                .code,
            0);

  // Snapshot alone (no cache directory needed for the memo tier).
  const char* saved = std::getenv("PWCET_CACHE_DIR");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::unsetenv("PWCET_CACHE_DIR");
  CliResult result = run_cli({"cache", "stats", "--metrics", metrics});
  if (saved != nullptr) ::setenv("PWCET_CACHE_DIR", saved_value.c_str(), 1);
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("store counters"), std::string::npos);
  EXPECT_NE(result.out.find("memo"), std::string::npos);
  EXPECT_NE(result.out.find("set-penalty"), std::string::npos);
  EXPECT_NE(result.out.find("core"), std::string::npos);

  // Alongside a cache directory both tables render.
  const std::string cache = (fs::path(dir_) / "cache").string();
  ASSERT_EQ(run_cli({"run", spec_path, "--cache-dir", cache}).code, 0);
  result = run_cli({"cache", "stats", "--cache-dir", cache, "--metrics",
                    metrics});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("campaign-report"), std::string::npos);
  EXPECT_NE(result.out.find("store counters"), std::string::npos);

  // A missing or malformed snapshot is a diagnosed failure, not a crash.
  result = run_cli({"cache", "stats", "--metrics",
                    (fs::path(dir_) / "absent.json").string()});
  EXPECT_EQ(result.code, 1);
  result = run_cli(
      {"cache", "stats", "--metrics", write_file("bad.json", "{oops")});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("bad.json"), std::string::npos);
}

// ---- bench -----------------------------------------------------------------

TEST_F(CliTest, BenchListNamesTheBuiltinScenarios) {
  const CliResult result = run_cli({"bench", "list"});
  EXPECT_EQ(result.code, 0) << result.err;
  for (const char* needle :
       {"campaign.geometry_sweep.cold", "campaign.geometry_sweep.warm",
        "pipeline.full", "micro.extract", "micro.maximize.ilp"})
    EXPECT_NE(result.out.find(needle), std::string::npos) << needle;
}

TEST_F(CliTest, BenchRunWritesALoadableReportAndSelfDiffsClean) {
  // One cheap micro scenario, minimal sampling: this is a contract test
  // for the artifact shape and the diff plumbing, not a measurement.
  const std::string a = (fs::path(dir_) / "a.json").string();
  CliResult result =
      run_cli({"bench", "run", "--scenarios", "micro.extract",
               "--repetitions", "2", "--warmup", "0", "--output", a});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.err.find("micro.extract"), std::string::npos);

  const Json doc = parse_json(read_file(a), a);
  EXPECT_EQ(doc.find("schema")->string, "pwcet-bench-report-v1");
  ASSERT_NE(doc.find("environment"), nullptr);
  EXPECT_EQ(doc.find("environment")->find("threads")->string, "1");
  const Json* scenarios = doc.find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_EQ(scenarios->array.size(), 1u);
  EXPECT_EQ(scenarios->array[0].find("name")->string, "micro.extract");
  EXPECT_EQ(scenarios->array[0].find("samples")->array.size(), 2u);

  // A report diffed against itself has nothing to flag.
  result = run_cli({"bench", "diff", a, a});
  EXPECT_EQ(result.code, 0) << result.out;
  EXPECT_NE(result.out.find("0 regressed"), std::string::npos)
      << result.out;
}

TEST_F(CliTest, BenchRunRecordsAnInjectedSlowdownInTheEnvironment) {
  const std::string slow = (fs::path(dir_) / "slow.json").string();
  const CliResult result = run_cli(
      {"bench", "run", "--scenarios", "micro.extract", "--repetitions", "2",
       "--warmup", "0", "--inject-slowdown", "wall_ns=10.0", "--output",
       slow});
  ASSERT_EQ(result.code, 0) << result.err;
  // A doctored artifact can never masquerade as a clean baseline.
  EXPECT_NE(read_file(slow).find("inject_slowdown"), std::string::npos);
  EXPECT_NE(read_file(slow).find("wall_ns=10.000"), std::string::npos);
}

TEST_F(CliTest, BenchDiffExitsThreeOnARegressedArtifactPair) {
  // Fixed-number artifacts keep the exit-code contract deterministic
  // under any system load; real-timing pairs are exercised (and allowed
  // to be noisy) by the CI gate instead.
  auto artifact = [this](const std::string& name, const std::string& median) {
    return write_file(
        name,
        "{\"schema\":\"pwcet-bench-report-v1\",\n"
        "\"environment\":{\"threads\":\"1\"},\n"
        "\"scenarios\":[{\"name\":\"micro.extract\",\"samples\":[],\n"
        "\"stats\":{\"wall_ns\":{\"count\":5,\"median\":" + median +
        ",\"min\":900000.0,\"p90\":1100000.0,\"mad\":1000.0}}}]}\n");
  };
  const std::string base = artifact("base.json", "1000000.0");
  const std::string slow = artifact("slow.json", "10000000.0");

  const CliResult result = run_cli({"bench", "diff", base, slow});
  EXPECT_EQ(result.code, 3) << result.out;
  EXPECT_NE(result.out.find("regressed: micro.extract/wall_ns"),
            std::string::npos)
      << result.out;
  // Reversed, the same pair reads as an improvement, exit 0.
  const CliResult reversed = run_cli({"bench", "diff", slow, base});
  EXPECT_EQ(reversed.code, 0) << reversed.out;
  EXPECT_NE(reversed.out.find("1 improved"), std::string::npos)
      << reversed.out;
}

TEST_F(CliTest, BenchUsageErrors) {
  EXPECT_EQ(run_cli({"bench"}).code, 2);
  EXPECT_EQ(run_cli({"bench", "frobnicate"}).code, 2);
  EXPECT_EQ(run_cli({"bench", "run", "--repetitions", "0"}).code, 2);
  EXPECT_EQ(run_cli({"bench", "run", "--repetitions", "soon"}).code, 2);
  EXPECT_EQ(run_cli({"bench", "run", "--inject-slowdown", "nofactor"}).code,
            2);
  EXPECT_EQ(run_cli({"bench", "run", "--inject-slowdown", "x=-1"}).code, 2);
  EXPECT_EQ(run_cli({"bench", "diff", "only_one.json"}).code, 2);
  EXPECT_EQ(run_cli({"bench", "diff", "a.json", "b.json", "--threshold",
                     "nope"})
                .code,
            2);
  // An unknown scenario filter and an unreadable artifact are runtime
  // failures (1), distinct from both usage (2) and regression (3).
  EXPECT_EQ(run_cli({"bench", "run", "--scenarios", "no.such"}).code, 1);
  EXPECT_EQ(
      run_cli({"bench", "diff", dir_ + "/a.json", dir_ + "/b.json"}).code,
      1);
}

TEST_F(CliTest, ProfileTableCarriesPercentileColumns) {
  const CliResult result = run_cli({"run", tiny_spec_path(), "--threads",
                                    "1", "--profile"});
  EXPECT_EQ(result.code, 0) << result.err;
  for (const char* column : {"p50 ms", "p90 ms", "p99 ms"})
    EXPECT_NE(result.err.find(column), std::string::npos) << column;
}

TEST_F(CliTest, CacheStatsRendersHistogramPercentiles) {
  const std::string spec_path = tiny_spec_path();
  const std::string metrics = (fs::path(dir_) / "metrics.json").string();
  ASSERT_EQ(run_cli({"run", spec_path, "--threads", "1", "--metrics-out",
                     metrics})
                .code,
            0);
  const char* saved = std::getenv("PWCET_CACHE_DIR");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::unsetenv("PWCET_CACHE_DIR");
  const CliResult result = run_cli({"cache", "stats", "--metrics", metrics});
  if (saved != nullptr) ::setenv("PWCET_CACHE_DIR", saved_value.c_str(), 1);
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("histogram percentiles"), std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("pipeline.analyze"), std::string::npos);
  for (const char* column : {"p50 ms", "p90 ms", "p99 ms"})
    EXPECT_NE(result.out.find(column), std::string::npos) << column;
}

TEST_F(CliTest, CacheWithoutDirectoryIsAnError) {
  // No --cache-dir and no PWCET_CACHE_DIR: refuse rather than guess.
  const char* saved = std::getenv("PWCET_CACHE_DIR");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::unsetenv("PWCET_CACHE_DIR");
  const CliResult result = run_cli({"cache", "stats"});
  if (saved != nullptr) ::setenv("PWCET_CACHE_DIR", saved_value.c_str(), 1);
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("no cache directory"), std::string::npos);
}

}  // namespace
}  // namespace pwcet
