// Golden-report corpus: every shipped campaign spec under specs/ has its
// full machine-readable reports checked in under tests/golden/, and a
// fresh run must reproduce them byte for byte — the strongest regression
// net over the eight paper artifacts: any change to the analyzer, the
// engine, the store, number formatting or the report layout that moves a
// single byte fails here and forces a reviewed regeneration
// (tools/regen-golden.sh).
//
// Coverage is two-sided: a spec without goldens fails (new artifacts must
// be pinned), and a golden file without a spec fails (stale corpus).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif
#ifndef PWCET_GOLDEN_DIR
#define PWCET_GOLDEN_DIR "tests/golden"
#endif

namespace pwcet {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing golden file " << path
                  << " — run tools/regen-golden.sh and review the diff";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> spec_stems() {
  std::set<std::string> stems;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(PWCET_SPECS_DIR))
    if (entry.path().extension() == ".json")
      stems.insert(entry.path().stem().string());
  return stems;
}

TEST(GoldenCorpus, EveryGoldenFileBelongsToAShippedSpec) {
  const std::set<std::string> stems = spec_stems();
  ASSERT_FALSE(stems.empty());
  for (const fs::directory_entry& entry :
       fs::directory_iterator(PWCET_GOLDEN_DIR)) {
    // Golden files are <stem>.csv / .jsonl / .dist.csv / .dist.jsonl.
    std::string stem = entry.path().filename().string();
    const std::size_t dot = stem.find('.');
    ASSERT_NE(dot, std::string::npos) << entry.path();
    stem.resize(dot);
    EXPECT_TRUE(stems.count(stem))
        << entry.path() << " has no spec under specs/ — stale corpus?";
  }
}

class GoldenReportTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenReportTest, LiveRunReproducesTheCorpusByteForByte) {
  const std::string stem = GetParam();
  const SpecDocument doc =
      load_spec(std::string(PWCET_SPECS_DIR) + "/" + stem + ".json");
  const CampaignResult campaign = run_campaign(doc.spec);

  const fs::path golden(PWCET_GOLDEN_DIR);
  EXPECT_EQ(report_csv(campaign), read_file(golden / (stem + ".csv")));
  EXPECT_EQ(report_jsonl(campaign), read_file(golden / (stem + ".jsonl")));
  if (!doc.spec.ccdf_exceedances.empty()) {
    EXPECT_EQ(report_dist_csv(campaign),
              read_file(golden / (stem + ".dist.csv")));
    EXPECT_EQ(report_dist_jsonl(campaign),
              read_file(golden / (stem + ".dist.jsonl")));
  } else {
    EXPECT_FALSE(fs::exists(golden / (stem + ".dist.csv")))
        << stem << " has no distribution sink but a .dist golden exists";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, GoldenReportTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> stems;
      for (const std::string& stem : spec_stems()) stems.push_back(stem);
      return stems;
    }()),
    [](const auto& info) { return info.param; });

}  // namespace
}  // namespace pwcet
