// Property suite for distributed campaign sharding (engine/shard.hpp):
// for every shipped spec and several shard counts, running the shards
// independently and merging their fragments must reproduce the
// single-process report byte for byte — store on or off, cold or warm —
// and every way a fragment set can be inconsistent (missing shard,
// duplicate shard, spec-key mismatch, corrupted artifact, store
// collision) must be a hard, named error.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/shard.hpp"
#include "engine/spec_io.hpp"
#include "store/artifact_store.hpp"
#include "store/merge.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

namespace pwcet {
namespace {

namespace fs = std::filesystem;

const char* const kShippedSpecs[] = {
    "architecture_tradeoff", "ccdf",        "dcache_extension",
    "geometry_sweep",        "mbpta_vs_spta", "normalized_pwcet",
    "pfail_sweep",           "shared_l2",   "srb_conservatism",
    "tlb_sweep",             "writeback_dcache"};

std::string spec_path(const std::string& name) {
  return std::string(PWCET_SPECS_DIR) + "/" + name + ".json";
}

class ShardMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("pwcet_shard_test_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string subdir(const std::string& name) {
    const std::string path = (fs::path(root_) / name).string();
    fs::create_directories(path);
    return path;
  }

  std::string root_;
};

/// Renders the pair of report texts every identity check compares.
struct ReportBytes {
  std::string scalar;
  std::string dist;
};

ReportBytes render(const CampaignResult& campaign) {
  return {report_csv(campaign) + report_jsonl(campaign),
          campaign.spec.ccdf_exceedances.empty()
              ? std::string()
              : report_dist_csv(campaign) + report_dist_jsonl(campaign)};
}

// ---- unit: selector, partition, assignment --------------------------------

TEST(ShardSelectorParse, AcceptsOneBasedIOverN) {
  ShardSelector shard;
  ASSERT_TRUE(parse_shard_selector("1/1", shard));
  EXPECT_EQ(shard.index, 0u);
  EXPECT_EQ(shard.count, 1u);
  ASSERT_TRUE(parse_shard_selector("3/7", shard));
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 7u);
}

TEST(ShardSelectorParse, RejectsMalformedSpellings) {
  ShardSelector shard;
  for (const char* bad : {"", "/", "1/", "/3", "0/3", "4/3", "a/3", "1/b",
                          "1/3/5", "-1/3", "1/-3", "1/65537", "1 /3"})
    EXPECT_FALSE(parse_shard_selector(bad, shard)) << "'" << bad << "'";
}

TEST(ShardPartition, RangesTileTheGroupsContiguously) {
  for (const std::size_t groups : {0u, 1u, 5u, 9u, 64u}) {
    for (const std::size_t count : {1u, 2u, 3u, 7u, 11u}) {
      std::size_t expected_begin = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const auto [begin, end] =
            shard_group_range(groups, ShardSelector{i, count});
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        EXPECT_LE(end, groups);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, groups);
    }
  }
}

TEST(ShardPartition, AssignmentCoversEveryJobExactlyOnce) {
  const SpecDocument doc = load_spec(spec_path("pfail_sweep"));
  const std::vector<CampaignJob> jobs = expand_campaign(doc.spec);
  const auto schedule = campaign_group_schedule(jobs);
  for (const std::size_t count : {1u, 2u, 3u, 7u}) {
    const std::vector<std::size_t> assignment =
        shard_assignment(schedule, jobs.size(), count);
    ASSERT_EQ(assignment.size(), jobs.size());
    std::set<std::size_t> covered;
    for (std::size_t i = 0; i < count; ++i) {
      for (const std::size_t slot :
           shard_job_slots(schedule, ShardSelector{i, count})) {
        EXPECT_EQ(assignment[slot], i);
        EXPECT_TRUE(covered.insert(slot).second) << "slot " << slot;
      }
    }
    EXPECT_EQ(covered.size(), jobs.size());
  }
}

TEST(ShardFragmentCodec, RoundTripsThroughRenderAndParse) {
  ShardFragment fragment;
  fragment.index = 1;
  fragment.count = 3;
  fragment.spec_key = "00112233445566778899aabbccddeeff";
  fragment.job_count = 9;
  fragment.curve_points = 2;
  fragment.slots = {3, 4, 5, 7};
  fragment.report_rows = "{\"r\":1}\n{\"r\":2}\n{\"r\":3}\n{\"r\":4}\n";
  fragment.dist_rows =
      "{\"d\":1}\n{\"d\":2}\n{\"d\":3}\n{\"d\":4}\n"
      "{\"d\":5}\n{\"d\":6}\n{\"d\":7}\n{\"d\":8}\n";
  fragment.store_stats.hits = 5;
  fragment.store_stats.disk_writes = 2;

  ShardFragment parsed;
  std::string error;
  ASSERT_TRUE(parse_shard_fragment(render_shard_fragment(fragment), parsed,
                                   error))
      << error;
  EXPECT_EQ(parsed.index, fragment.index);
  EXPECT_EQ(parsed.count, fragment.count);
  EXPECT_EQ(parsed.spec_key, fragment.spec_key);
  EXPECT_EQ(parsed.job_count, fragment.job_count);
  EXPECT_EQ(parsed.curve_points, fragment.curve_points);
  EXPECT_EQ(parsed.slots, fragment.slots);
  EXPECT_EQ(parsed.report_rows, fragment.report_rows);
  EXPECT_EQ(parsed.dist_rows, fragment.dist_rows);
  EXPECT_EQ(parsed.store_stats.hits, fragment.store_stats.hits);
  EXPECT_EQ(parsed.store_stats.disk_writes, fragment.store_stats.disk_writes);
}

TEST(ShardFragmentCodec, RejectsForeignSchemaAndRowMiscounts) {
  ShardFragment fragment;
  fragment.spec_key = "00112233445566778899aabbccddeeff";
  fragment.job_count = 4;
  fragment.count = 2;
  fragment.slots = {0, 1};
  fragment.report_rows = "{}\n";  // one row short of slots.size()
  ShardFragment parsed;
  std::string error;
  EXPECT_FALSE(parse_shard_fragment(render_shard_fragment(fragment), parsed,
                                    error));
  EXPECT_NE(error.find("report row"), std::string::npos) << error;
  EXPECT_FALSE(parse_shard_fragment("{\"schema\":\"bogus\"}\n", parsed,
                                    error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

// ---- the identity property across every shipped spec ----------------------

/// Shards share one cache directory (the concurrent-deployment layout);
/// store on/off alternates with the shard count so both paths cross every
/// spec. Cold/warm is exercised by a second pass for one spec below.
TEST_F(ShardMergeTest, EveryShippedSpecMergesByteIdenticallyForAllCounts) {
  for (const char* name : kShippedSpecs) {
    SCOPED_TRACE(name);
    const SpecDocument doc = load_spec(spec_path(name));

    RunnerOptions reference_options;
    reference_options.threads = 1;
    reference_options.store.enabled = false;
    const ReportBytes reference =
        render(run_campaign(doc.spec, reference_options));

    std::size_t variant = 0;
    for (const std::size_t count : {1u, 2u, 3u, 7u}) {
      SCOPED_TRACE("count=" + std::to_string(count));
      const std::string cache_dir =
          subdir(std::string(name) + "_n" + std::to_string(count));
      const bool with_store = (variant++ % 2) == 0;
      for (std::size_t i = 0; i < count; ++i) {
        RunnerOptions options;
        options.threads = 1;
        options.store.enabled = with_store;
        if (with_store) options.store.artifact_dir = cache_dir;
        run_campaign_shard(doc.spec, ShardSelector{i, count}, options,
                           cache_dir);
      }

      ShardMergeOptions merge_options;
      merge_options.from_dirs = {cache_dir};
      merge_options.into_dir =
          subdir(std::string(name) + "_n" + std::to_string(count) + "_union");
      const ShardMergeOutcome merged =
          merge_campaign_shards(doc.spec, merge_options);
      EXPECT_EQ(merged.shard_count, count);

      const ReportBytes rebuilt = render(merged.campaign);
      EXPECT_EQ(reference.scalar, rebuilt.scalar);
      EXPECT_EQ(reference.dist, rebuilt.dist);
    }
  }
}

/// Warm path: re-running the shards against the cache directory the first
/// pass populated (including the merged artifacts published by `--into`
/// pointing back at it) must answer from disk and still merge to the same
/// bytes.
TEST_F(ShardMergeTest, WarmShardRerunsMergeToTheSameBytes) {
  const SpecDocument doc = load_spec(spec_path("pfail_sweep"));
  RunnerOptions reference_options;
  reference_options.threads = 1;
  reference_options.store.enabled = false;
  const ReportBytes reference =
      render(run_campaign(doc.spec, reference_options));

  const std::string cache_dir = subdir("warm");
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE("pass=" + std::to_string(pass));
    for (std::size_t i = 0; i < 3; ++i) {
      RunnerOptions options;
      options.threads = 1;
      options.store.enabled = true;
      options.store.artifact_dir = cache_dir;
      run_campaign_shard(doc.spec, ShardSelector{i, 3}, options, cache_dir);
    }
    ShardMergeOptions merge_options;
    merge_options.from_dirs = {cache_dir};
    merge_options.into_dir = cache_dir;
    const ShardMergeOutcome merged =
        merge_campaign_shards(doc.spec, merge_options);
    const ReportBytes rebuilt = render(merged.campaign);
    EXPECT_EQ(reference.scalar, rebuilt.scalar);
    EXPECT_EQ(reference.dist, rebuilt.dist);
  }
}

/// More shards than analyzer groups: the surplus shards own nothing, write
/// (empty) fragments, and the merge still reassembles everything.
TEST_F(ShardMergeTest, MoreShardsThanGroupsLeavesSurplusShardsEmpty) {
  const SpecDocument doc = load_spec(spec_path("ccdf"));
  const std::vector<CampaignJob> jobs = expand_campaign(doc.spec);
  const std::size_t groups = campaign_group_schedule(jobs).size();
  const std::size_t count = groups + 2;
  ASSERT_LE(count, kMaxShardCount);

  const std::string cache_dir = subdir("surplus");
  std::size_t owned_total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    RunnerOptions options;
    options.threads = 1;
    options.store.enabled = false;
    const ShardRunOutcome outcome = run_campaign_shard(
        doc.spec, ShardSelector{i, count}, options, cache_dir);
    owned_total += outcome.slots.size();
  }
  EXPECT_EQ(owned_total, jobs.size());

  ShardMergeOptions merge_options;
  merge_options.from_dirs = {cache_dir};
  const ShardMergeOutcome merged =
      merge_campaign_shards(doc.spec, merge_options);
  RunnerOptions reference_options;
  reference_options.threads = 1;
  reference_options.store.enabled = false;
  const ReportBytes reference =
      render(run_campaign(doc.spec, reference_options));
  const ReportBytes rebuilt = render(merged.campaign);
  EXPECT_EQ(reference.scalar, rebuilt.scalar);
  EXPECT_EQ(reference.dist, rebuilt.dist);
}

// ---- rejection diagnostics -------------------------------------------------

class ShardMergeRejectionTest : public ShardMergeTest {
 protected:
  /// Runs shards {0..count-1} \ {skip} of pfail_sweep into per-shard dirs;
  /// returns the dirs (slot `skip`, if any, simply has no fragment).
  std::vector<std::string> run_shards(std::size_t count,
                                      std::size_t skip = SIZE_MAX) {
    doc_ = load_spec(spec_path("pfail_sweep"));
    std::vector<std::string> dirs;
    for (std::size_t i = 0; i < count; ++i) {
      dirs.push_back(subdir("shard" + std::to_string(i)));
      if (i == skip) continue;
      RunnerOptions options;
      options.threads = 1;
      options.store.enabled = true;
      options.store.artifact_dir = dirs.back();
      run_campaign_shard(doc_.spec, ShardSelector{i, count}, options,
                         dirs.back());
    }
    return dirs;
  }

  std::string merge_error(const std::vector<std::string>& dirs,
                          std::size_t shard_count = 0,
                          const std::string& into = "") {
    ShardMergeOptions options;
    options.from_dirs = dirs;
    options.shard_count = shard_count;
    options.into_dir = into;
    try {
      merge_campaign_shards(doc_.spec, options);
    } catch (const ShardMergeError& e) {
      return e.what();
    }
    return "";
  }

  /// The single fragment artifact file under `dir`.
  std::string fragment_file(const std::string& dir) {
    for (const auto& entry :
         fs::directory_iterator(fs::path(dir) / kShardFragmentKind))
      if (entry.path().extension() == ".jsonl") return entry.path().string();
    ADD_FAILURE() << "no fragment under " << dir;
    return "";
  }

  SpecDocument doc_;
};

TEST_F(ShardMergeRejectionTest, MissingShardIsNamed) {
  const std::vector<std::string> dirs = run_shards(3, 1);
  const std::string error = merge_error(dirs, 3);
  EXPECT_NE(error.find("missing shard 2/3"), std::string::npos) << error;
}

TEST_F(ShardMergeRejectionTest, DuplicateDifferingShardIsNamed) {
  const std::vector<std::string> dirs = run_shards(3);
  // A doctored duplicate of shard 1: same fragment key, different rows.
  const std::string original = fragment_file(dirs[0]);
  std::ifstream in(original, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string payload = buffer.str();
  // Re-store a modified payload under the same key in another directory so
  // both validate but disagree.
  ShardFragment fragment;
  std::string parse_diagnostic;
  {
    // Strip the artifact header (first line) to get the raw payload.
    const std::string raw = payload.substr(payload.find('\n') + 1);
    ASSERT_TRUE(parse_shard_fragment(raw, fragment, parse_diagnostic))
        << parse_diagnostic;
  }
  fragment.store_stats.hits += 1;  // differing bytes, still well-formed
  const ArtifactStore duplicate_store({dirs[1]});
  ASSERT_TRUE(duplicate_store.store_text(
      kShardFragmentKind,
      shard_fragment_key(campaign_spec_key(doc_.spec), fragment.index,
                         fragment.count),
      render_shard_fragment(fragment)));
  const std::string error = merge_error(dirs, 3);
  EXPECT_NE(error.find("duplicate shard 1/3"), std::string::npos) << error;
}

TEST_F(ShardMergeRejectionTest, ByteIdenticalDuplicateFragmentsAreAccepted) {
  const std::vector<std::string> dirs = run_shards(3);
  // The same shard run lands in two directories (a retry that succeeded
  // twice): identical bytes are not a conflict.
  const std::string original = fragment_file(dirs[0]);
  const std::string copy_dir = subdir("shard0_copy");
  fs::create_directories(fs::path(copy_dir) / kShardFragmentKind);
  fs::copy_file(original, fs::path(copy_dir) / kShardFragmentKind /
                              fs::path(original).filename());
  std::vector<std::string> all = dirs;
  all.push_back(copy_dir);
  EXPECT_EQ(merge_error(all, 3), "");
}

TEST_F(ShardMergeRejectionTest, SpecKeyMismatchIsNamed) {
  run_shards(2);
  const std::vector<std::string> dirs = {subdir("shard0"), subdir("shard1")};
  const SpecDocument other = load_spec(spec_path("ccdf"));
  doc_ = other;  // merge against a different spec than the fragments carry
  const std::string error = merge_error(dirs, 2);
  EXPECT_NE(error.find("spec"), std::string::npos) << error;
  EXPECT_NE(error.find(campaign_spec_key(other.spec).hex()),
            std::string::npos)
      << error;
}

TEST_F(ShardMergeRejectionTest, ShardCountAmbiguityAsksForShardsFlag) {
  const std::vector<std::string> dirs = run_shards(2);
  // Add a 1/1 partition of the same spec into the same directories.
  RunnerOptions options;
  options.threads = 1;
  options.store.enabled = false;
  run_campaign_shard(doc_.spec, ShardSelector{0, 1}, options, dirs[0]);
  const std::string ambiguous = merge_error(dirs);
  EXPECT_NE(ambiguous.find("--shards"), std::string::npos) << ambiguous;
  // Selecting either partition explicitly resolves it.
  EXPECT_EQ(merge_error(dirs, 2), "");
  EXPECT_EQ(merge_error({dirs[0]}, 1), "");
}

TEST_F(ShardMergeRejectionTest, CorruptedFragmentArtifactIsNamed) {
  const std::vector<std::string> dirs = run_shards(2);
  const std::string victim = fragment_file(dirs[1]);
  std::string bytes;
  {
    std::ifstream in(victim, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  // Flip one payload byte; the artifact header's content hash catches it.
  bytes[bytes.size() / 2] = bytes[bytes.size() / 2] == 'x' ? 'y' : 'x';
  std::ofstream(victim, std::ios::binary) << bytes;
  const std::string error = merge_error(dirs, 2);
  EXPECT_NE(error.find("corrupted shard fragment artifact"),
            std::string::npos)
      << error;
  EXPECT_NE(error.find(victim), std::string::npos) << error;
}

TEST_F(ShardMergeRejectionTest, StoreCollisionNamesKeyAndBothFiles) {
  const std::vector<std::string> dirs = run_shards(2);
  // Plant the same artifact key with different bytes in both stores.
  const ArtifactStore a({dirs[0]});
  const ArtifactStore b({dirs[1]});
  const StoreKey key = KeyHasher("collision-test").mix_u64(7).finish();
  ASSERT_TRUE(a.store_text("campaign-report", key, "alpha\n"));
  ASSERT_TRUE(b.store_text("campaign-report", key, "beta\n"));
  const std::string union_dir = subdir("union");
  const std::string error = merge_error(dirs, 2, union_dir);
  EXPECT_NE(error.find("collision"), std::string::npos) << error;
  EXPECT_NE(error.find(key.hex()), std::string::npos) << error;
  // Both colliding files are named: the incoming shard copy and the copy
  // already landed in the union (shard 1's bytes arrive there first).
  EXPECT_NE(error.find(dirs[1]), std::string::npos) << error;
  EXPECT_NE(error.find(union_dir), std::string::npos) << error;
}

TEST_F(ShardMergeRejectionTest, NoFragmentsAnywhereIsNamed) {
  doc_ = load_spec(spec_path("pfail_sweep"));
  const std::string error = merge_error({subdir("empty")});
  EXPECT_NE(error.find("no shard fragments"), std::string::npos) << error;
}

// ---- store hygiene ---------------------------------------------------------

TEST_F(ShardMergeTest, OrphanSweepRemovesOnlyStaleTempFiles) {
  const std::string dir = subdir("orphans");
  const fs::path kind_dir = fs::path(dir) / "campaign-report";
  fs::create_directories(kind_dir);
  const fs::path fresh = kind_dir / "aa.jsonl.tmp123.1";
  const fs::path artifact = kind_dir / "bb.jsonl";
  std::ofstream(fresh) << "partial";
  std::ofstream(artifact) << "done";

  const ArtifactStore store({dir});
  // A fresh temp file (age < min_age) belongs to a live writer: kept.
  EXPECT_EQ(store.sweep_orphans(std::chrono::seconds(3600)), 0u);
  // With the age floor at zero it is debris: removed; artifacts survive.
  EXPECT_EQ(store.sweep_orphans(std::chrono::seconds(0)), 1u);
  EXPECT_FALSE(fs::exists(fresh));
  EXPECT_TRUE(fs::exists(artifact));
}

}  // namespace
}  // namespace pwcet
