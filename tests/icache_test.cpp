// Tests for the static instruction-cache analyses: Must/May abstract set
// states, the per-set fixpoint + persistence classifier, and the SRB
// analysis — including soundness properties checked against the concrete
// simulator.
#include <gtest/gtest.h>

#include "cache/references.hpp"
#include "icache/abstract_set.hpp"
#include "icache/set_analysis.hpp"
#include "icache/srb_analysis.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/rng.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

TEST(MustState, AccessAndAging) {
  MustState s;
  s.access(1, 2);
  EXPECT_TRUE(s.contains(1));
  s.access(2, 2);  // 1 ages to 1, still resident
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  s.access(3, 2);  // 1 evicted (age 2), 2 ages to 1
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
}

TEST(MustState, ReaccessRefreshesAge) {
  MustState s;
  s.access(1, 2);
  s.access(2, 2);
  s.access(1, 2);  // 1 back to MRU; 2 must NOT age (was older than 1's pos)
  s.access(3, 2);  // ages 1 -> 1; 2 evicted
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
}

TEST(MustState, JoinIntersectsWithMaxAge) {
  MustState a, b;
  a.access(1, 4);
  a.access(2, 4);  // a: 2@0, 1@1
  b.access(3, 4);
  b.access(1, 4);  // b: 1@0, 3@1
  const MustState j = MustState::join(a, b);
  EXPECT_TRUE(j.contains(1));
  EXPECT_FALSE(j.contains(2));
  EXPECT_FALSE(j.contains(3));
  ASSERT_EQ(j.lines().size(), 1u);
  EXPECT_EQ(j.lines()[0].age, 1u);  // max(1, 0)
}

TEST(MayState, JoinUnionsWithMinAge) {
  MayState a, b;
  a.access(1, 4);  // 1@0
  b.access(2, 4);
  b.access(1, 4);  // 1@0, 2@1
  const MayState j = MayState::join(a, b);
  EXPECT_TRUE(j.contains(1));
  EXPECT_TRUE(j.contains(2));
}

TEST(MayState, EvictsAtCapacity) {
  MayState s;
  s.access(1, 2);
  s.access(2, 2);
  s.access(3, 2);
  EXPECT_FALSE(s.contains(1));  // min age reached associativity
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
}

// Soundness of the abstract transfer functions against concrete LRU: for
// random access sequences, Must-resident lines always hit and May-absent
// lines always miss in the concrete simulation.
TEST(AbstractSet, SoundVsConcreteLru) {
  Rng rng(71);
  const std::uint32_t assoc = 4;
  for (int trial = 0; trial < 200; ++trial) {
    MustState must;
    MayState may;
    // Concrete set: MRU-first stack.
    std::vector<LineAddress> stack;
    for (int step = 0; step < 60; ++step) {
      const LineAddress line = rng.next_below(8);
      const bool concrete_hit =
          std::find(stack.begin(), stack.end(), line) != stack.end();
      if (must.contains(line)) {
        EXPECT_TRUE(concrete_hit) << trial;
      }
      if (!may.contains(line)) {
        EXPECT_FALSE(concrete_hit) << trial;
      }
      // Concrete update.
      auto it = std::find(stack.begin(), stack.end(), line);
      if (it != stack.end()) stack.erase(it);
      stack.insert(stack.begin(), line);
      if (stack.size() > assoc) stack.pop_back();
      // Abstract updates.
      must.access(line, assoc);
      may.access(line, assoc);
    }
  }
}

ProgramBuilder tiny_loop_builder(std::uint32_t body_instr, std::int64_t bound) {
  ProgramBuilder b("tiny");
  b.add_function("main", b.loop(4, bound, b.code(body_instr)));
  return b;
}

TEST(SetAnalysis, StraightLineSecondRefHits) {
  // Two blocks touching the same line: the second reference is always-hit.
  ProgramBuilder b("p");
  b.add_function("main", b.seq({b.code(2), b.code(2)}));
  const Program p = b.build(0);
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const SetAnalysis analysis(p.cfg(), refs, /*set=*/0, c.ways);
  int always_hit = 0, first = 0;
  for (const auto& blk : p.cfg().blocks()) {
    for (std::size_t i = 0; i < refs[size_t(blk.id)].size(); ++i) {
      if (refs[size_t(blk.id)][i].set != 0) continue;
      const RefClass rc = analysis.classification(blk.id, i);
      always_hit += (rc.chmc == Chmc::kAlwaysHit);
      first += (rc.chmc != Chmc::kAlwaysHit);
    }
  }
  EXPECT_EQ(always_hit, 1);  // the second block's ref
  EXPECT_EQ(first, 1);       // the initial cold reference
}

TEST(SetAnalysis, LoopBodyPersistsWhenItFits) {
  // 4-instruction body = 1 line; loop scope has 2 lines total (header+body)
  // but they are in different sets, so each set sees 1 line: first-miss.
  auto b = tiny_loop_builder(4, 10);
  const Program p = b.build(0);
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  bool found_fm = false;
  for (SetIndex s = 0; s < c.sets; ++s) {
    const SetAnalysis analysis(p.cfg(), refs, s, c.ways);
    for (const auto& blk : p.cfg().blocks())
      for (std::size_t i = 0; i < refs[size_t(blk.id)].size(); ++i) {
        if (refs[size_t(blk.id)][i].set != s) continue;
        const RefClass rc = analysis.classification(blk.id, i);
        EXPECT_NE(rc.chmc, Chmc::kNotClassified);
        if (rc.chmc == Chmc::kFirstMiss) found_fm = true;
      }
  }
  EXPECT_TRUE(found_fm);
}

TEST(SetAnalysis, ZeroAssociativityMeansAllMiss) {
  auto b = tiny_loop_builder(8, 5);
  const Program p = b.build(0);
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const SetAnalysis analysis(p.cfg(), refs, 0, /*associativity=*/0);
  for (const auto& blk : p.cfg().blocks())
    for (std::size_t i = 0; i < refs[size_t(blk.id)].size(); ++i)
      if (refs[size_t(blk.id)][i].set == 0) {
        EXPECT_EQ(analysis.classification(blk.id, i).chmc, Chmc::kAlwaysMiss);
      }
}

TEST(SetAnalysis, DegradedAssociativityOnlyDegrades) {
  // Lowering the associativity can never turn a non-hit into always-hit or
  // widen a persistence scope.
  const Program p = workloads::build("ud");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  for (SetIndex s = 0; s < c.sets; s += 5) {
    const SetAnalysis full(p.cfg(), refs, s, 4);
    const SetAnalysis degraded(p.cfg(), refs, s, 2);
    for (const auto& blk : p.cfg().blocks()) {
      for (std::size_t i = 0; i < refs[size_t(blk.id)].size(); ++i) {
        if (refs[size_t(blk.id)][i].set != s) continue;
        const RefClass f = full.classification(blk.id, i);
        const RefClass d = degraded.classification(blk.id, i);
        if (d.chmc == Chmc::kAlwaysHit) {
          EXPECT_EQ(f.chmc, Chmc::kAlwaysHit);
        }
        if (d.chmc == Chmc::kFirstMiss && f.chmc == Chmc::kFirstMiss) {
          // The degraded scope must be nested inside the full scope.
          if (f.scope != d.scope && d.scope != kNoLoop) {
            EXPECT_TRUE(f.scope == kNoLoop ||
                        p.cfg().loop_contains(f.scope, d.scope));
          }
        }
      }
    }
  }
}

TEST(SetAnalysis, AlwaysHitSoundVsSimulation) {
  // Fault-free simulation of random paths: a reference classified
  // always-hit must never miss; the first fetch of an always-miss
  // reference must never hit.
  const CacheConfig c = CacheConfig::paper_default();
  for (const char* name : {"matmult", "bs", "crc", "statemate"}) {
    const Program p = workloads::build(name);
    const auto refs = extract_references(p.cfg(), c);
    std::vector<SetAnalysis> per_set;
    for (SetIndex s = 0; s < c.sets; ++s)
      per_set.emplace_back(p.cfg(), refs, s, c.ways);

    Rng rng(73);
    for (int trial = 0; trial < 3; ++trial) {
      const BlockPath path = random_walk(p, rng);
      CacheSimulator sim(c, FaultMap::none(c), Mechanism::kNone);
      for (BlockId blk : path) {
        const auto& block_refs = refs[size_t(blk)];
        for (std::size_t i = 0; i < block_refs.size(); ++i) {
          const LineRef& r = block_refs[i];
          const RefClass rc = per_set[r.set].classification(blk, i);
          bool first_fetch_hit = false;
          for (std::uint32_t k = 0; k < r.fetches; ++k) {
            const bool hit = sim.fetch(r.line * c.line_bytes + 4 * k);
            if (k == 0) first_fetch_hit = hit;
          }
          if (rc.chmc == Chmc::kAlwaysHit) {
            EXPECT_TRUE(first_fetch_hit) << name << " block " << blk;
          }
          if (rc.chmc == Chmc::kAlwaysMiss) {
            EXPECT_FALSE(first_fetch_hit) << name << " block " << blk;
          }
        }
      }
    }
  }
}

TEST(SetAnalysis, FirstMissBoundSoundVsSimulation) {
  // Along a heavy path, a first-miss reference with whole-program scope
  // misses at most once; with a loop scope, at most once per loop entry
  // (entries bounded by the walk structure: here heavy_walk enters each
  // loop exactly (product of outer bounds) times).
  const CacheConfig c = CacheConfig::paper_default();
  const Program p = workloads::build("fibcall");
  const auto refs = extract_references(p.cfg(), c);
  std::vector<SetAnalysis> per_set;
  for (SetIndex s = 0; s < c.sets; ++s)
    per_set.emplace_back(p.cfg(), refs, s, c.ways);

  const BlockPath path = heavy_walk(p);
  CacheSimulator sim(c, FaultMap::none(c), Mechanism::kNone);
  // Count misses per (block, ref) with global first-miss scope.
  std::map<std::pair<BlockId, std::size_t>, int> misses;
  for (BlockId blk : path) {
    const auto& block_refs = refs[size_t(blk)];
    for (std::size_t i = 0; i < block_refs.size(); ++i) {
      const LineRef& r = block_refs[i];
      bool hit0 = false;
      for (std::uint32_t k = 0; k < r.fetches; ++k) {
        const bool hit = sim.fetch(r.line * c.line_bytes + 4 * k);
        if (k == 0) hit0 = hit;
      }
      const RefClass rc = per_set[r.set].classification(blk, i);
      if (rc.chmc == Chmc::kFirstMiss && rc.scope == kNoLoop && !hit0)
        ++misses[{blk, i}];
    }
  }
  for (const auto& [key, count] : misses) EXPECT_LE(count, 1);
}

TEST(Srb, PaperExampleStream) {
  // Paper §III-B.2: stream a1 a2 b1 b2 a1 a2 with a, b in distinct sets.
  // Line-level: A B A. The second A is *not* SRB-always-hit (B may have
  // reloaded the buffer); every B following A is not a hit either; only
  // intra-line fetches (a2 after a1) hit — those are merged into one
  // reference here, so no reference is classified SRB-always-hit.
  ProgramBuilder b("p");
  // Block design: 8 instructions = lines {0, 1}; then revisit line 0 via a
  // second block at address 0 is impossible structurally, so use a loop:
  // body touches lines 0 and 1 alternately across iterations.
  b.add_function("main", b.loop(4, 3, b.code(4)));
  const Program p = b.build(0);
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const SrbHitMap hits = analyze_srb(p.cfg(), refs);
  // Header (line 0) and body (line 1) alternate: header sees body's line
  // on the back edge and the preheader state on entry -> join is Top or a
  // different line; nothing is guaranteed.
  for (const auto& blk : p.cfg().blocks())
    for (std::size_t i = 0; i < refs[size_t(blk.id)].size(); ++i)
      EXPECT_EQ(hits[size_t(blk.id)][i], 0u);
}

TEST(Srb, SingleLineLoopBodyHits) {
  // A loop whose header+body live in ONE line: every re-reference is
  // preceded by a reference to the same line on all paths.
  ProgramBuilder b("p");
  b.add_function("main", b.loop(1, 5, b.code(2)));  // 3 instructions total
  const Program p = b.build(0);
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const SrbHitMap hits = analyze_srb(p.cfg(), refs);
  int srb_hits = 0, total = 0;
  for (const auto& blk : p.cfg().blocks())
    for (std::size_t i = 0; i < refs[size_t(blk.id)].size(); ++i) {
      total += 1;
      srb_hits += hits[size_t(blk.id)][i];
    }
  // Header and body refs merge to the same line; all refs after the very
  // first one are guaranteed SRB hits.
  EXPECT_EQ(total - srb_hits, 1);
}

TEST(Srb, SoundVsSimulationAllSetsFaulty) {
  // With EVERY set fully faulty, all fetches go through the SRB: an
  // SRB-always-hit reference must hit in simulation on any path.
  const CacheConfig c = CacheConfig::paper_default();
  for (const char* name : {"fibcall", "adpcm", "ns"}) {
    const Program p = workloads::build(name);
    const auto refs = extract_references(p.cfg(), c);
    const SrbHitMap hits = analyze_srb(p.cfg(), refs);
    FaultMap all_faulty(c.sets, c.ways);
    for (SetIndex s = 0; s < c.sets; ++s)
      for (std::uint32_t w = 0; w < c.ways; ++w)
        all_faulty.set_faulty(s, w, true);

    Rng rng(79);
    const BlockPath path = random_walk(p, rng);
    CacheSimulator sim(c, all_faulty, Mechanism::kSharedReliableBuffer);
    for (BlockId blk : path) {
      const auto& block_refs = refs[size_t(blk)];
      for (std::size_t i = 0; i < block_refs.size(); ++i) {
        const LineRef& r = block_refs[i];
        bool hit0 = false;
        for (std::uint32_t k = 0; k < r.fetches; ++k) {
          const bool hit = sim.fetch(r.line * c.line_bytes + 4 * k);
          if (k == 0) hit0 = hit;
        }
        if (hits[size_t(blk)][i]) {
          EXPECT_TRUE(hit0) << name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace pwcet
