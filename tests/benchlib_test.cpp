// Tests for src/benchlib — the statistical benchmark harness behind
// `pwcet bench`:
//
//  - robust statistics (median/min/p90/MAD) on known samples;
//  - harness discipline: warmup repetitions are discarded, samples carry
//    recorder metrics and (when armed) MetricsRegistry data, and the
//    --inject-slowdown self-test knob scales exactly the named metric;
//  - BenchReport JSON round-trip through a file;
//  - diff verdict golden pairs: regression, improvement, within-noise,
//    scenario added/removed, schema-version mismatch;
//  - the observation-only contract: running a benchlib campaign scenario
//    changes no campaign report bytes and leaves the registry disabled.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/diff.hpp"
#include "benchlib/harness.hpp"
#include "benchlib/report.hpp"
#include "benchlib/scenario.hpp"
#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "obs/metrics.hpp"
#include "store/analysis_store.hpp"
#include "support/stats.hpp"

namespace pwcet::benchlib {
namespace {

// ---- statistics -----------------------------------------------------------

TEST(BenchStats, ComputeMetricStatsKnownValues) {
  const MetricStats stats =
      compute_metric_stats({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(stats.count, 5u);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  // empirical_quantile semantics (linear interpolation over sorted order).
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(stats.p90, pwcet::empirical_quantile(sorted, 0.9));
  EXPECT_DOUBLE_EQ(stats.mad, 1.0);
}

TEST(BenchStats, ComputeMetricStatsEmptyIsAllZero) {
  const MetricStats stats = compute_metric_stats({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.median, 0.0);
  EXPECT_DOUBLE_EQ(stats.mad, 0.0);
}

// ---- harness --------------------------------------------------------------

TEST(BenchHarness, WarmupRepetitionsRunButAreDiscarded) {
  BenchOptions options;
  options.warmup = 2;
  options.repetitions = 3;
  options.capture_metrics = false;
  std::size_t calls = 0;
  const ScenarioSamples samples =
      run_scenario("probe", options, [&calls](Recorder&) { ++calls; });
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(samples.samples.size(), 3u);
  EXPECT_EQ(samples.name, "probe");
}

TEST(BenchHarness, RecorderMetricsLandInEverySample) {
  BenchOptions options;
  options.warmup = 0;
  options.repetitions = 2;
  options.capture_metrics = false;
  std::size_t rep = 0;
  const ScenarioSamples samples =
      run_scenario("probe", options, [&rep](Recorder& recorder) {
        recorder.record_ns("cold_ns", 100 + rep);
        recorder.record_ns("cold_ns", 200 + rep);  // overwrite wins
        recorder.record_ns("warm_ns", 10);
        ++rep;
      });
  ASSERT_EQ(samples.samples.size(), 2u);
  const auto& metrics = samples.samples[0].metrics;
  ASSERT_EQ(metrics.size(), 2u);  // sorted: cold_ns, warm_ns
  EXPECT_EQ(metrics[0].first, "cold_ns");
  EXPECT_EQ(metrics[0].second, 200u);
  EXPECT_EQ(metrics[1].first, "warm_ns");
  EXPECT_EQ(samples.samples[1].metrics[0].second, 201u);
}

TEST(BenchHarness, ArmedRegistryMetricsAndCountersAreCaptured) {
  BenchOptions options;
  options.warmup = 1;
  options.repetitions = 2;
  const ScenarioSamples samples =
      run_scenario("probe", options, [](Recorder&) {
        obs::MetricsRegistry::instance().observe_ns("probe.phase", 4096);
        obs::MetricsRegistry::instance().add("probe.count", 3);
      });
  ASSERT_EQ(samples.samples.size(), 2u);
  for (const RepetitionSample& sample : samples.samples) {
    ASSERT_EQ(sample.metrics.size(), 1u);  // cleared between repetitions
    EXPECT_EQ(sample.metrics[0].first, "probe.phase");
    EXPECT_EQ(sample.metrics[0].second, 4096u);
    ASSERT_EQ(sample.counters.size(), 1u);
    EXPECT_EQ(sample.counters[0].first, "probe.count");
    EXPECT_EQ(sample.counters[0].second, 3u);
  }
  // Left disabled and zeroed for whoever runs next (registered names
  // persist; their values must not).
  EXPECT_FALSE(obs::MetricsRegistry::instance().enabled());
  for (const auto& [name, value] : obs::MetricsRegistry::instance().counters())
    EXPECT_EQ(value, 0u) << name;
}

TEST(BenchHarness, InjectedSlowdownScalesExactlyTheNamedMetric) {
  BenchOptions options;
  options.warmup = 0;
  options.repetitions = 1;
  options.capture_metrics = false;
  options.inject_slowdown = {{"cold_ns", 2.0}};
  const ScenarioSamples samples =
      run_scenario("probe", options, [](Recorder& recorder) {
        recorder.record_ns("cold_ns", 1000);
        recorder.record_ns("warm_ns", 1000);
      });
  const auto& metrics = samples.samples.at(0).metrics;
  EXPECT_EQ(metrics[0].second, 2000u);  // cold_ns doubled
  EXPECT_EQ(metrics[1].second, 1000u);  // warm_ns untouched
}

TEST(BenchHarness, BodyExceptionsPropagateAndDisarmTheRegistry) {
  BenchOptions options;
  options.warmup = 0;
  options.repetitions = 1;
  EXPECT_THROW(run_scenario("probe", options,
                            [](Recorder&) { throw std::runtime_error("x"); }),
               std::runtime_error);
  EXPECT_FALSE(obs::MetricsRegistry::instance().enabled());
}

// ---- report round-trip ----------------------------------------------------

BenchReport tiny_report(double wall_median, double wall_mad) {
  BenchReport report;
  report.environment = {{"threads", "1"}, {"build_type", "release"}};
  ScenarioReport scenario;
  scenario.name = "probe";
  RepetitionSample sample;
  sample.wall_ns = static_cast<std::uint64_t>(wall_median);
  sample.metrics = {{"phase.convolve", 500}};
  sample.counters = {{"engine.jobs", 60}};
  scenario.samples.push_back(sample);
  MetricStats wall;
  wall.count = 5;
  wall.median = wall_median;
  wall.min = wall_median * 0.9;
  wall.p90 = wall_median * 1.1;
  wall.mad = wall_mad;
  scenario.stats["wall_ns"] = wall;
  report.scenarios.push_back(std::move(scenario));
  return report;
}

TEST(BenchReportIo, JsonRoundTripsThroughAFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("pwcet_bench_report_" + std::to_string(::getpid()) + ".json"))
          .string();
  const BenchReport original = tiny_report(1e6, 1e3);
  ASSERT_TRUE(write_bench_report(original, path));

  const BenchReport loaded = load_bench_report(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.schema, BenchReport::kSchema);
  EXPECT_EQ(loaded.environment, original.environment);
  ASSERT_EQ(loaded.scenarios.size(), 1u);
  const ScenarioReport& scenario = loaded.scenarios[0];
  EXPECT_EQ(scenario.name, "probe");
  ASSERT_EQ(scenario.samples.size(), 1u);
  EXPECT_EQ(scenario.samples[0].wall_ns, 1000000u);
  EXPECT_EQ(scenario.samples[0].metrics, original.scenarios[0].samples[0].metrics);
  EXPECT_EQ(scenario.samples[0].counters,
            original.scenarios[0].samples[0].counters);
  const MetricStats& wall = scenario.stats.at("wall_ns");
  EXPECT_EQ(wall.count, 5u);
  EXPECT_DOUBLE_EQ(wall.median, 1e6);
  EXPECT_DOUBLE_EQ(wall.mad, 1e3);
}

TEST(BenchReportIo, LoaderRejectsWrongShapesWithDiagnostics) {
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string path =
      dir + "/pwcet_bench_bad_" + std::to_string(::getpid()) + ".json";
  const auto write_text = [&path](const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  };
  write_text("[1,2,3]");
  EXPECT_THROW(load_bench_report(path), BenchError);
  write_text("{\"schema\":\"x\"}");  // missing environment/scenarios
  EXPECT_THROW(load_bench_report(path), BenchError);
  write_text("not json at all");
  EXPECT_THROW(load_bench_report(path), BenchError);
  std::filesystem::remove(path);
  EXPECT_THROW(load_bench_report(path), BenchError);  // unreadable
}

// ---- diff verdicts --------------------------------------------------------

TEST(BenchDiffing, FlagsARegressionBeyondEveryGuard) {
  // 2x median shift, tiny MAD: beyond the 25% relative guard, the MAD
  // guard and the absolute floor. Must regress, naming the metric.
  const BenchReport before = tiny_report(1e6, 1e3);
  const BenchReport after = tiny_report(2e6, 1e3);
  const BenchDiff diff = diff_reports(before, after, {});
  ASSERT_FALSE(diff.deltas.empty());
  EXPECT_TRUE(diff.has_regression());
  EXPECT_EQ(diff.count(Verdict::kRegressed), 1u);
  const MetricDelta& delta = diff.deltas[0];
  EXPECT_EQ(delta.scenario, "probe");
  EXPECT_EQ(delta.metric, "wall_ns");
  EXPECT_EQ(delta.verdict, Verdict::kRegressed);

  std::ostringstream rendered;
  render_diff(diff, {}, rendered);
  EXPECT_NE(rendered.str().find("regressed: probe/wall_ns"),
            std::string::npos);
}

TEST(BenchDiffing, FlagsAnImprovementSymmetrically) {
  const BenchDiff diff =
      diff_reports(tiny_report(2e6, 1e3), tiny_report(1e6, 1e3), {});
  EXPECT_FALSE(diff.has_regression());
  EXPECT_EQ(diff.count(Verdict::kImproved), 1u);
}

TEST(BenchDiffing, ShiftWithinTheNoiseBandIsUnchanged) {
  // +10% shift under the default 25% relative threshold.
  const BenchDiff relative =
      diff_reports(tiny_report(1e6, 1e3), tiny_report(1.1e6, 1e3), {});
  EXPECT_EQ(relative.count(Verdict::kUnchanged), 1u);

  // +40% shift but the dispersion is huge: the MAD guard
  // (4 x 1.4826 x 1e6) swallows it — noisy hosts must not cry wolf.
  const BenchDiff noisy =
      diff_reports(tiny_report(1e6, 1e6), tiny_report(1.4e6, 1e6), {});
  EXPECT_EQ(noisy.count(Verdict::kUnchanged), 1u);

  // A tighter --threshold flips the relative case to regressed.
  DiffOptions tight;
  tight.threshold = 0.05;
  const BenchDiff flipped =
      diff_reports(tiny_report(1e6, 1e3), tiny_report(1.1e6, 1e3), tight);
  EXPECT_TRUE(flipped.has_regression());
}

TEST(BenchDiffing, TinyAbsoluteShiftsSitUnderTheFloor) {
  // 3x relative shift on a sub-microsecond metric: under the 1000 ns
  // absolute floor, so not a verdict (clock granularity noise).
  const BenchDiff diff =
      diff_reports(tiny_report(300, 5), tiny_report(900, 5), {});
  EXPECT_EQ(diff.count(Verdict::kUnchanged), 1u);
}

TEST(BenchDiffing, ScenarioAddedAndRemovedAreNotesNotRegressions) {
  BenchReport before = tiny_report(1e6, 1e3);
  BenchReport after = tiny_report(1e6, 1e3);
  after.scenarios[0].name = "other";
  const BenchDiff diff = diff_reports(before, after, {});
  EXPECT_TRUE(diff.deltas.empty());
  ASSERT_EQ(diff.removed_scenarios.size(), 1u);
  EXPECT_EQ(diff.removed_scenarios[0], "probe");
  ASSERT_EQ(diff.added_scenarios.size(), 1u);
  EXPECT_EQ(diff.added_scenarios[0], "other");
  EXPECT_FALSE(diff.has_regression());
}

TEST(BenchDiffing, SchemaMismatchIsAHardError) {
  BenchReport before = tiny_report(1e6, 1e3);
  BenchReport after = tiny_report(1e6, 1e3);
  after.schema = "pwcet-bench-report-v0";
  EXPECT_THROW(diff_reports(before, after, {}), BenchError);
  before.schema = "pwcet-bench-report-v0";
  // Two artifacts agreeing on an unknown schema are just as meaningless.
  EXPECT_THROW(diff_reports(before, after, {}), BenchError);
}

TEST(BenchDiffing, EnvironmentChangesAreReported) {
  BenchReport before = tiny_report(1e6, 1e3);
  BenchReport after = tiny_report(1e6, 1e3);
  after.environment[0].second = "4";
  const BenchDiff diff = diff_reports(before, after, {});
  ASSERT_EQ(diff.environment_changes.size(), 1u);
  EXPECT_EQ(diff.environment_changes[0], "threads: 1 -> 4");
}

// ---- scenarios + observation-only contract --------------------------------

TEST(BenchScenarios, BuiltinsAreNamedAndDescribed) {
  const std::vector<Scenario> scenarios = builtin_scenarios();
  ASSERT_FALSE(scenarios.empty());
  bool has_campaign = false, has_micro = false;
  for (const Scenario& scenario : scenarios) {
    EXPECT_FALSE(scenario.name.empty());
    EXPECT_FALSE(scenario.description.empty());
    EXPECT_TRUE(static_cast<bool>(scenario.body));
    has_campaign |= scenario.name.rfind("campaign.", 0) == 0;
    has_micro |= scenario.name.rfind("micro.", 0) == 0;
  }
  EXPECT_TRUE(has_campaign);
  EXPECT_TRUE(has_micro);
}

TEST(BenchScenarios, MeasuringACampaignIsObservationOnly) {
  // Reference report without benchlib anywhere near the pipeline.
  CampaignSpec spec;
  spec.tasks = {"fibcall"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone};
  RunnerOptions options;
  options.threads = 1;
  options.store.enabled = false;
  const std::string reference = report_csv(run_campaign(spec, options));

  // The same campaign run *inside* the harness with metrics armed.
  BenchOptions bench;
  bench.warmup = 0;
  bench.repetitions = 1;
  std::string measured;
  run_scenario("obs.check", bench, [&](Recorder&) {
    RunnerOptions inner;
    inner.threads = 1;
    inner.store.enabled = false;
    measured = report_csv(run_campaign(spec, inner));
  });
  EXPECT_EQ(measured, reference);

  // And a plain run afterwards is byte-identical too — the harness left
  // no collector armed.
  EXPECT_FALSE(obs::MetricsRegistry::instance().enabled());
  EXPECT_EQ(report_csv(run_campaign(spec, options)), reference);
}

// ---- scenario specs stay in lockstep with the shipped JSON -----------------

// The campaign scenarios rebuild their specs in C++ (so `pwcet bench`
// needs no file paths); these pins keep them byte-equivalent to the
// shipped JSON specs the CLI and tables use — a drift would silently make
// the bench measure a different campaign than the one CI diffs.
TEST(BenchScenarios, GeometrySweepSpecMatchesShippedJson) {
  const SpecDocument doc =
      load_spec(std::string(PWCET_SPECS_DIR) + "/geometry_sweep.json");
  CampaignSpec programmatic = geometry_sweep_spec();
  // The shipped spec carries two extra tasks and the table's exceedance
  // target; the scenario trims tasks for bench wall-clock. Geometry /
  // pfail / mechanism axes must match exactly.
  EXPECT_EQ(programmatic.geometries.size(), doc.spec.geometries.size());
  programmatic.tasks = doc.spec.tasks;
  programmatic.target_exceedance = doc.spec.target_exceedance;
  EXPECT_EQ(campaign_spec_key(programmatic), campaign_spec_key(doc.spec));
}

TEST(BenchScenarios, PfailSweepSpecMatchesShippedJson) {
  const SpecDocument doc =
      load_spec(std::string(PWCET_SPECS_DIR) + "/pfail_sweep.json");
  EXPECT_EQ(campaign_spec_key(pfail_sweep_spec()),
            campaign_spec_key(doc.spec));
}

}  // namespace
}  // namespace pwcet::benchlib
