// Tests for the in-house LP/ILP solver (the CPLEX replacement).
#include <gtest/gtest.h>

#include <cmath>

#include "ilp/ilp_solver.hpp"
#include "ilp/simplex.hpp"
#include "support/rng.hpp"

namespace pwcet {
namespace {

LinearConstraint le(std::vector<std::pair<VarId, double>> terms, double rhs) {
  return {std::move(terms), ConstraintSense::kLe, rhs};
}
LinearConstraint ge(std::vector<std::pair<VarId, double>> terms, double rhs) {
  return {std::move(terms), ConstraintSense::kGe, rhs};
}
LinearConstraint eq(std::vector<std::pair<VarId, double>> terms, double rhs) {
  return {std::move(terms), ConstraintSense::kEq, rhs};
}

TEST(Simplex, SimpleTwoVariableMax) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> optimum at (4, 0) = 12.
  LinearProgram lp;
  const VarId x = lp.add_variable("x");
  const VarId y = lp.add_variable("y");
  lp.set_objective(x, 3.0);
  lp.set_objective(y, 2.0);
  lp.add_constraint(le({{x, 1}, {y, 1}}, 4));
  lp.add_constraint(le({{x, 1}, {y, 3}}, 6));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-9);
  EXPECT_NEAR(sol.values[size_t(x)], 4.0, 1e-9);
  EXPECT_NEAR(sol.values[size_t(y)], 0.0, 1e-9);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> (4/3, 4/3), value 8/3.
  LinearProgram lp;
  const VarId x = lp.add_variable("x");
  const VarId y = lp.add_variable("y");
  lp.set_objective(x, 1.0);
  lp.set_objective(y, 1.0);
  lp.add_constraint(le({{x, 2}, {y, 1}}, 4));
  lp.add_constraint(le({{x, 1}, {y, 2}}, 4));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0 / 3.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // max x + 2y s.t. x + y = 3, y <= 2 -> (1, 2), value 5.
  LinearProgram lp;
  const VarId x = lp.add_variable("x");
  const VarId y = lp.add_variable("y");
  lp.set_objective(x, 1.0);
  lp.set_objective(y, 2.0);
  lp.add_constraint(eq({{x, 1}, {y, 1}}, 3));
  lp.add_constraint(le({{y, 1}}, 2));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
  EXPECT_NEAR(sol.values[size_t(x)], 1.0, 1e-9);
  EXPECT_NEAR(sol.values[size_t(y)], 2.0, 1e-9);
}

TEST(Simplex, GreaterEqualAndNegativeRhs) {
  // max -x s.t. x >= 2  -> x = 2. Also exercises -x <= -2 normalization.
  LinearProgram lp;
  const VarId x = lp.add_variable("x");
  lp.set_objective(x, -1.0);
  lp.add_constraint(le({{x, -1}}, -2));  // -x <= -2  <=>  x >= 2
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[size_t(x)], 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  const VarId x = lp.add_variable("x");
  lp.set_objective(x, 1.0);
  lp.add_constraint(le({{x, 1}}, 1));
  lp.add_constraint(ge({{x, 1}}, 2));
  EXPECT_EQ(solve_lp(lp).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  const VarId x = lp.add_variable("x");
  lp.set_objective(x, 1.0);
  lp.add_constraint(ge({{x, 1}}, 1));
  EXPECT_EQ(solve_lp(lp).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeObjectiveCoefficients) {
  // max 2x - 3y s.t. x <= 5, x - y <= 2 -> y = x - 2 when beneficial?
  // Optimum: x = 2 (y = 0) gives 4; x = 5 needs y >= 3 giving 10 - 9 = 1.
  LinearProgram lp;
  const VarId x = lp.add_variable("x");
  const VarId y = lp.add_variable("y");
  lp.set_objective(x, 2.0);
  lp.set_objective(y, -3.0);
  lp.add_constraint(le({{x, 1}}, 5));
  lp.add_constraint(le({{x, 1}, {y, -1}}, 2));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-9);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple redundant constraints through one vertex (classic degeneracy).
  LinearProgram lp;
  const VarId x = lp.add_variable("x");
  const VarId y = lp.add_variable("y");
  lp.set_objective(x, 1.0);
  lp.set_objective(y, 1.0);
  lp.add_constraint(le({{x, 1}, {y, 1}}, 2));
  lp.add_constraint(le({{x, 1}, {y, 1}}, 2));
  lp.add_constraint(le({{x, 2}, {y, 2}}, 4));
  lp.add_constraint(le({{x, 1}}, 2));
  lp.add_constraint(le({{y, 1}}, 2));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(Simplex, ReoptimizeMatchesFreshSolves) {
  // One constraint system, many objectives: the warm-started reoptimize
  // path must agree with fresh solves.
  LinearProgram lp;
  const VarId x = lp.add_variable("x");
  const VarId y = lp.add_variable("y");
  const VarId z = lp.add_variable("z");
  lp.add_constraint(le({{x, 1}, {y, 2}, {z, 1}}, 10));
  lp.add_constraint(le({{x, 3}, {y, 1}}, 15));
  lp.add_constraint(le({{y, 1}, {z, 4}}, 8));
  lp.add_constraint(eq({{x, 1}, {y, 1}, {z, 1}}, 7));

  SimplexSolver shared(lp);
  ASSERT_TRUE(shared.feasible());

  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> obj(3);
    for (double& c : obj) c = rng.next_double() * 10.0 - 5.0;
    const auto warm = shared.reoptimize(obj);
    LinearProgram fresh = lp;
    fresh.set_objective_vector(obj);
    const auto cold = solve_lp(fresh);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    if (warm.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "trial " << trial;
    }
  }
}

TEST(Simplex, SolutionSatisfiesConstraints) {
  Rng rng(37);
  for (int trial = 0; trial < 30; ++trial) {
    LinearProgram lp;
    const int nvars = 2 + static_cast<int>(rng.next_below(4));
    for (int v = 0; v < nvars; ++v)
      lp.set_objective(lp.add_variable("v"), rng.next_double() * 4 - 2);
    const int ncons = 2 + static_cast<int>(rng.next_below(4));
    std::vector<LinearConstraint> cons;
    for (int c = 0; c < ncons; ++c) {
      LinearConstraint lc;
      for (int v = 0; v < nvars; ++v)
        lc.terms.push_back({v, rng.next_double() * 2});
      lc.sense = ConstraintSense::kLe;
      lc.rhs = 1.0 + rng.next_double() * 9.0;
      lp.add_constraint(lc);
      cons.push_back(lc);
    }
    const auto sol = solve_lp(lp);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    for (const auto& lc : cons) {
      double lhs = 0.0;
      for (const auto& [v, coef] : lc.terms) lhs += coef * sol.values[size_t(v)];
      EXPECT_LE(lhs, lc.rhs + 1e-6);
    }
    for (double v : sol.values) EXPECT_GE(v, -1e-9);
  }
}

TEST(Ilp, IntegerOptimumBelowRelaxation) {
  // max x + y s.t. 2x + 2y <= 5 -> LP: 2.5, ILP: 2.
  LinearProgram lp;
  const VarId x = lp.add_variable("x", /*integral=*/true);
  const VarId y = lp.add_variable("y", /*integral=*/true);
  lp.set_objective(x, 1.0);
  lp.set_objective(y, 1.0);
  lp.add_constraint(le({{x, 2}, {y, 2}}, 5));
  const auto relaxed = solve_lp_relaxation_bound(lp);
  const auto exact = solve_ilp(lp);
  ASSERT_EQ(exact.status, SolveStatus::kOptimal);
  EXPECT_NEAR(relaxed.objective, 2.5, 1e-9);
  EXPECT_NEAR(exact.objective, 2.0, 1e-9);
  EXPECT_GE(relaxed.objective, exact.objective);
}

TEST(Ilp, KnapsackExact) {
  // Knapsack: values {10, 6, 4}, weights {5, 4, 3}, capacity 7, binaries.
  // Best: items 2+3 (weight 7, value 10) or item 1 (value 10) -> 10.
  LinearProgram lp;
  std::vector<VarId> v;
  const double value[] = {10, 6, 4};
  const double weight[] = {5, 4, 3};
  LinearConstraint cap;
  for (int i = 0; i < 3; ++i) {
    v.push_back(lp.add_variable("item", true));
    lp.set_objective(v[i], value[i]);
    cap.terms.push_back({v[i], weight[i]});
    lp.add_constraint(le({{v[i], 1}}, 1));  // binary upper bound
  }
  cap.sense = ConstraintSense::kLe;
  cap.rhs = 7;
  lp.add_constraint(cap);
  const auto sol = solve_ilp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-6);
  for (VarId var : v) {
    const double x = sol.values[size_t(var)];
    EXPECT_NEAR(x, std::round(x), 1e-6);  // integral
  }
}

TEST(Ilp, MixedIntegerRespectsContinuousVars) {
  // x integer, y continuous: max x + y, x + y <= 2.5, x <= 1.7.
  // Optimum: x = 1, y = 1.5 -> 2.5.
  LinearProgram lp;
  const VarId x = lp.add_variable("x", true);
  const VarId y = lp.add_variable("y", false);
  lp.set_objective(x, 1.0);
  lp.set_objective(y, 1.0);
  lp.add_constraint(le({{x, 1}, {y, 1}}, 2.5));
  lp.add_constraint(le({{x, 1}}, 1.7));
  const auto sol = solve_ilp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.5, 1e-6);
  EXPECT_NEAR(sol.values[size_t(x)], 1.0, 1e-6);
}

TEST(Ilp, InfeasibleIntegerButFeasibleRelaxation) {
  // 0.5 <= x <= 0.7 has no integer point.
  LinearProgram lp;
  const VarId x = lp.add_variable("x", true);
  lp.set_objective(x, 1.0);
  lp.add_constraint(ge({{x, 1}}, 0.5));
  lp.add_constraint(le({{x, 1}}, 0.7));
  EXPECT_EQ(solve_lp(lp).status, SolveStatus::kOptimal);
  EXPECT_EQ(solve_ilp(lp).status, SolveStatus::kInfeasible);
}

TEST(Ilp, RandomModelsRelaxationDominates) {
  Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    LinearProgram lp;
    const int nvars = 2 + static_cast<int>(rng.next_below(3));
    for (int v = 0; v < nvars; ++v) {
      lp.set_objective(lp.add_variable("v", true),
                       1.0 + rng.next_double() * 5.0);
      lp.add_constraint(le({{v, 1}}, 1 + double(rng.next_below(4))));
    }
    LinearConstraint knap;
    for (int v = 0; v < nvars; ++v)
      knap.terms.push_back({v, 1.0 + rng.next_double() * 3});
    knap.sense = ConstraintSense::kLe;
    knap.rhs = 2.0 + rng.next_double() * 6.0;
    lp.add_constraint(knap);

    const auto relaxed = solve_lp_relaxation_bound(lp);
    const auto exact = solve_ilp(lp);
    ASSERT_EQ(relaxed.status, SolveStatus::kOptimal);
    ASSERT_EQ(exact.status, SolveStatus::kOptimal);
    EXPECT_GE(relaxed.objective + 1e-6, exact.objective) << "trial " << trial;
    // Integer solution really is integral.
    for (double x : exact.values)
      EXPECT_NEAR(x, std::round(x), 1e-5) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pwcet
