// Tests for the observability layer (src/obs/): tracer span collection,
// nesting and thread attribution; the Perfetto/Chrome shape of the trace
// export; metrics counters, histograms and their JSON snapshot; the
// ProgressMeter's render/erase behavior; and the layer's two hard
// contracts — counter determinism for a fixed serial cold-store campaign,
// and byte-identity of campaign reports with collection on vs off at any
// thread count and store mode.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "store/analysis_store.hpp"
#include "support/json_doc.hpp"

namespace pwcet {
namespace {

/// Every test leaves the process-wide collectors disabled and empty — the
/// binary shares one tracer/registry across all tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().disable();
    obs::MetricsRegistry::instance().clear();
  }

  /// 12 cheap SPTA jobs in 2 analyzer groups (2 tasks x 1 geometry x
  /// 2 pfails x 3 mechanisms) — the same grid cli_test uses.
  static CampaignSpec tiny_spec() {
    CampaignSpec spec;
    spec.tasks = {"fibcall", "bs"};
    spec.geometries = {CacheConfig::paper_default()};
    spec.pfails = {1e-6, 1e-4};
    spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                       Mechanism::kReliableWay};
    return spec;
  }

  /// Non-"_ns" counters: the structural, deterministic subset (busy_ns
  /// counts wall time and is excluded from determinism comparisons).
  static std::vector<std::pair<std::string, std::uint64_t>>
  structural_counters() {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (auto& entry : obs::MetricsRegistry::instance().counters()) {
      const std::string& name = entry.first;
      if (name.size() >= 3 && name.rfind("_ns") == name.size() - 3) continue;
      if (entry.second != 0) out.push_back(std::move(entry));
    }
    return out;
  }
};

// ---- tracer ---------------------------------------------------------------

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  {
    obs::TraceSpan span("should.not.appear");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(ObsTest, SpanStraddlingEnableIsDropped) {
  // The enabled check happens once, on open.
  obs::Tracer::instance().disable();
  {
    obs::TraceSpan span("opened.disabled");
    obs::Tracer::instance().enable();
  }
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(ObsTest, SpansNestByTimeContainmentOnOneThread) {
  obs::Tracer::instance().enable();
  {
    obs::TraceSpan outer("outer");
    obs::TraceSpan inner("inner");
    EXPECT_TRUE(outer.active());
    EXPECT_TRUE(inner.active());
  }
  obs::Tracer::instance().disable();

  const Json doc =
      parse_json(obs::Tracer::instance().trace_json(), "<trace>");
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  const Json* outer = nullptr;
  const Json* inner = nullptr;
  for (const Json& event : events->array) {
    const Json* name = event.find("name");
    ASSERT_NE(name, nullptr);
    if (name->string == "outer") outer = &event;
    if (name->string == "inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->find("tid")->integer, inner->find("tid")->integer);
  const double outer_start = outer->find("ts")->number;
  const double outer_end = outer_start + outer->find("dur")->number;
  const double inner_start = inner->find("ts")->number;
  const double inner_end = inner_start + inner->find("dur")->number;
  // The viewer reconstructs the stack from interval containment; allow
  // the export's 3-decimal (nanosecond) rounding at the edges.
  EXPECT_GE(inner_start, outer_start - 1e-3);
  EXPECT_LE(inner_end, outer_end + 1e-3);
}

TEST_F(ObsTest, SpansAttributeToTheRecordingThread) {
  obs::Tracer::instance().enable();
  const std::uint32_t main_tid = obs::Tracer::instance().current_thread_id();
  {
    obs::TraceSpan span("main.span");
  }
  std::thread worker([] {
    obs::Tracer::instance().name_current_thread("helper");
    obs::TraceSpan span("helper.span");
  });
  worker.join();
  obs::Tracer::instance().disable();

  // The worker's buffer outlives the worker (co-owned by the registry).
  const std::string json = obs::Tracer::instance().trace_json();
  EXPECT_NE(json.find("\"helper\""), std::string::npos);

  const Json doc = parse_json(json, "<trace>");
  std::uint64_t helper_tid = main_tid;
  for (const Json& event : doc.find("traceEvents")->array)
    if (event.find("name")->string == "helper.span")
      helper_tid = event.find("tid")->integer;
  EXPECT_NE(helper_tid, main_tid);
}

TEST_F(ObsTest, TraceExportHasThePerfettoShape) {
  obs::Tracer::instance().enable();
  {
    obs::TraceSpan span("shaped", "test");
    span.annotate("\"cells\":3");
  }
  obs::Tracer::instance().disable();

  const Json doc =
      parse_json(obs::Tracer::instance().trace_json(), "<trace>");
  ASSERT_EQ(doc.type, Json::Type::kObject);
  EXPECT_EQ(doc.find("displayTimeUnit")->string, "ms");
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, Json::Type::kArray);
  ASSERT_FALSE(events->array.empty());

  bool saw_process_name = false;
  bool saw_span = false;
  for (const Json& event : events->array) {
    // Every event carries the members Perfetto keys on.
    for (const char* key : {"name", "ph", "pid", "tid"})
      ASSERT_NE(event.find(key), nullptr) << "missing " << key;
    EXPECT_EQ(event.find("pid")->integer, 1u);
    const std::string& ph = event.find("ph")->string;
    if (ph == "M" && event.find("name")->string == "process_name")
      saw_process_name = true;
    if (ph == "X") {
      ASSERT_NE(event.find("ts"), nullptr);
      ASSERT_NE(event.find("dur"), nullptr);
      EXPECT_EQ(event.find("name")->string, "shaped");
      EXPECT_EQ(event.find("cat")->string, "test");
      EXPECT_EQ(event.find("args")->find("cells")->integer, 3u);
      saw_span = true;
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_span);
}

// ---- metrics --------------------------------------------------------------

TEST_F(ObsTest, DisabledRegistryIgnoresGatedRecorders) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.add("ignored.counter");
  registry.observe_ns("ignored.histogram", 42);
  obs::count_store("memo", "core", "hits");
  EXPECT_TRUE(registry.counters().empty());
  EXPECT_TRUE(registry.histograms().empty());
}

TEST_F(ObsTest, HistogramTracksCountSumMinMaxAndPowerOfTwoBuckets) {
  obs::DurationHistogram histogram;
  histogram.observe_ns(1);     // bit_width 1
  histogram.observe_ns(1000);  // bit_width 10
  histogram.observe_ns(1500);  // bit_width 11
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum_ns, 2501u);
  EXPECT_EQ(snap.min_ns, 1u);
  EXPECT_EQ(snap.max_ns, 1500u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[10], 1u);
  EXPECT_EQ(snap.buckets[11], 1u);
}

TEST_F(ObsTest, SnapshotJsonParsesAndRoundTripsValues) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.enable();
  registry.add("alpha.count", 7);
  registry.observe_ns("beta.time", 1000);
  registry.observe_ns("beta.time", 3000);
  registry.disable();

  const Json doc = parse_json(registry.json_snapshot(), "<metrics>");
  EXPECT_EQ(doc.find("counters")->find("alpha.count")->integer, 7u);
  const Json* beta = doc.find("histograms")->find("beta.time");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->find("count")->integer, 2u);
  EXPECT_EQ(beta->find("sum_ns")->integer, 4000u);
  EXPECT_EQ(beta->find("min_ns")->integer, 1000u);
  EXPECT_EQ(beta->find("max_ns")->integer, 3000u);
  const Json* buckets = beta->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_FALSE(buckets->array.empty());
  for (const Json& bucket : buckets->array) {
    ASSERT_NE(bucket.find("le_ns"), nullptr);
    ASSERT_NE(bucket.find("count"), nullptr);
  }
}

TEST_F(ObsTest, QuantileInterpolatesInsideTheBucket) {
  // {4,5,6,7} all land in bucket [4,7]: the interpolated quantiles must
  // match the exact empirical ones (p50 = 5.5, p90 = 6.7) because the
  // samples are uniform over the bucket.
  obs::DurationHistogram histogram;
  for (const std::uint64_t ns : {4u, 5u, 6u, 7u}) histogram.observe_ns(ns);
  const auto snap = histogram.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile_ns(0.5), 5.5);
  EXPECT_DOUBLE_EQ(snap.quantile_ns(0.9), 6.7);
}

TEST_F(ObsTest, QuantileWalksBucketsAndClampsToTheObservedEnvelope) {
  obs::DurationHistogram spread;
  for (const std::uint64_t ns : {1u, 4u, 5u, 6u, 7u, 64u})
    spread.observe_ns(ns);
  // Median target falls in the [4,7] bucket after one sample in [1,1].
  EXPECT_DOUBLE_EQ(spread.snapshot().quantile_ns(0.5), 5.5);
  // Out-of-range q clamps; an empty histogram reads zero.
  EXPECT_DOUBLE_EQ(spread.snapshot().quantile_ns(-1.0),
                   spread.snapshot().quantile_ns(0.0));
  EXPECT_DOUBLE_EQ(obs::DurationHistogram().snapshot().quantile_ns(0.5), 0.0);

  // A single sample: every quantile is that sample, because the bucket
  // interpolation is clamped to the [min_ns, max_ns] envelope (1000 sits
  // mid-bucket in [512, 1023] — unclamped interpolation would undershoot).
  obs::DurationHistogram single;
  single.observe_ns(1000);
  const auto snap = single.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile_ns(0.01), 1000.0);
  EXPECT_DOUBLE_EQ(snap.quantile_ns(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(snap.quantile_ns(0.99), 1000.0);
}

TEST_F(ObsTest, SnapshotJsonCarriesDerivedPercentiles) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.enable();
  for (const std::uint64_t ns : {4u, 5u, 6u, 7u})
    registry.observe_ns("gamma.time", ns);
  registry.disable();

  const Json doc = parse_json(registry.json_snapshot(), "<metrics>");
  const Json* gamma = doc.find("histograms")->find("gamma.time");
  ASSERT_NE(gamma, nullptr);
  ASSERT_NE(gamma->find("p50_ns"), nullptr);
  ASSERT_NE(gamma->find("p90_ns"), nullptr);
  ASSERT_NE(gamma->find("p99_ns"), nullptr);
  EXPECT_DOUBLE_EQ(gamma->find("p50_ns")->number, 5.5);
  EXPECT_DOUBLE_EQ(gamma->find("p90_ns")->number, 6.7);
}

// ---- campaign integration -------------------------------------------------

TEST_F(ObsTest, StructuralCountersAreDeterministicForSerialColdRuns) {
  RunnerOptions options;
  options.threads = 1;

  const auto run_once = [&] {
    reset();
    obs::MetricsRegistry::instance().enable();
    AnalysisStore store;  // fresh: both runs start cold
    options.shared_store = &store;
    run_campaign(tiny_spec(), options);
    obs::MetricsRegistry::instance().disable();
    return structural_counters();
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);

  // Spot-check the structural counts against the grid: 12 jobs in 2
  // analyzer groups, each group one cold pipeline core.
  std::uint64_t jobs = 0, spta = 0, core_misses = 0, result_misses = 0;
  std::uint64_t set_penalty = 0;
  for (const auto& [name, value] : first) {
    if (name == "engine.jobs") jobs = value;
    if (name == "engine.jobs.spta") spta = value;
    if (name == "store.memo.core.misses") core_misses = value;
    if (name == "store.memo.result.misses") result_misses = value;
    if (name == "store.memo.set-penalty.misses") set_penalty = value;
  }
  EXPECT_EQ(jobs, 12u);
  EXPECT_EQ(spta, 12u);
  // One core lookup per group (the group reuses its analyzer in-object,
  // so a cold run sees exactly one miss per group and no hits); one
  // result lookup per job, all cold misses.
  EXPECT_EQ(core_misses, 2u);
  EXPECT_EQ(result_misses, 12u);
  EXPECT_GT(set_penalty, 0u);
}

TEST_F(ObsTest, SerialQueueWaitIsBoundedByTheCampaignWall) {
  // Regression: engine.queue_wait once measured every group from the bulk
  // enqueue instant, so a serial campaign's backlog counted as "wait" and
  // the histogram summed to ~6x the wall clock (a 1.68s run reported a
  // 9.96s median). The wait of a group is the time it sat runnable with
  // an idle worker — on a serial run those gaps are scheduler overhead
  // only, so their *sum* must stay below the campaign wall clock.
  RunnerOptions options;
  options.threads = 1;
  AnalysisStore store;
  options.shared_store = &store;
  obs::MetricsRegistry::instance().enable();
  const CampaignResult result = run_campaign(tiny_spec(), options);
  obs::MetricsRegistry::instance().disable();

  const auto waits =
      obs::MetricsRegistry::instance().histogram("engine.queue_wait")
          .snapshot();
  ASSERT_GT(waits.count, 0u);  // one sample per analyzer group
  const double wall_ns = result.wall_seconds * 1e9;
  EXPECT_LT(static_cast<double>(waits.sum_ns), wall_ns);
}

TEST_F(ObsTest, ReportsAreByteIdenticalWithObservabilityOnOrOff) {
  const CampaignSpec spec = tiny_spec();

  RunnerOptions reference_options;
  reference_options.threads = 1;
  reference_options.store.enabled = false;
  const std::string reference =
      report_csv(run_campaign(spec, reference_options));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool store_on : {false, true}) {
      reset();
      obs::Tracer::instance().enable();
      obs::MetricsRegistry::instance().enable();
      RunnerOptions options;
      options.threads = threads;
      options.store.enabled = store_on;
      AnalysisStore store;
      if (store_on) options.shared_store = &store;
      const CampaignResult observed = run_campaign(spec, options);
      obs::Tracer::instance().disable();
      obs::MetricsRegistry::instance().disable();
      EXPECT_EQ(report_csv(observed), reference)
          << "threads=" << threads << " store=" << store_on;
      EXPECT_GT(obs::Tracer::instance().event_count(), 0u);
    }
  }
}

TEST_F(ObsTest, CampaignTraceContainsThePhaseTaxonomy) {
  obs::Tracer::instance().enable();
  RunnerOptions options;
  options.threads = 2;
  AnalysisStore store;
  options.shared_store = &store;
  run_campaign(tiny_spec(), options);
  obs::Tracer::instance().disable();

  const std::string json = obs::Tracer::instance().trace_json();
  for (const char* name :
       {obs::engine_name::kCampaign, obs::engine_name::kGroup,
        obs::engine_name::kJob, obs::phase_name::kCore,
        obs::phase_name::kExtract, obs::phase_name::kClassify,
        obs::phase_name::kMaximize, obs::phase_name::kFmm,
        obs::phase_name::kAnalyze, obs::phase_name::kPwf,
        obs::phase_name::kPenalty, obs::phase_name::kConvolve})
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << "span " << name << " missing from campaign trace";
  // Pool workers named themselves (tracing was on at pool construction).
  EXPECT_NE(json.find("\"worker-0\""), std::string::npos);
}

TEST_F(ObsTest, PerJobEventsFireOnBothColdAndWarmPaths) {
  // The runner must report every job to on_job_finished — computed jobs
  // and jobs answered at once by the whole-campaign warm disk path — or a
  // progress meter would stall short of jobs/jobs.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("pwcet_obs_warm_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  const CampaignSpec spec = tiny_spec();

  std::atomic<std::size_t> finished{0};
  RunnerOptions options;
  options.threads = 2;
  options.store.artifact_dir = dir;
  options.on_job_finished = [&finished] {
    finished.fetch_add(1, std::memory_order_relaxed);
  };

  run_campaign(spec, options);  // cold: computes, persists the report
  EXPECT_EQ(finished.load(), 12u);

  finished.store(0);
  run_campaign(spec, options);  // warm: whole campaign from one artifact
  EXPECT_EQ(finished.load(), 12u);
  std::filesystem::remove_all(dir);
}

// ---- progress meter -------------------------------------------------------

TEST_F(ObsTest, ProgressMeterRendersCountsAndErasesItself) {
  std::ostringstream out;
  obs::ProgressMeter meter(3, out, /*enabled=*/true);
  meter.job_finished();
  meter.job_finished();
  meter.job_finished();  // final cell always renders
  meter.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("3/3"), std::string::npos);
  EXPECT_NE(text.find("100%"), std::string::npos);
  EXPECT_NE(text.find('\r'), std::string::npos);
  // finish() leaves the cursor on an erased line: the output ends with a
  // carriage return after blanks, so the next stderr line starts clean.
  EXPECT_EQ(text.back(), '\r');
}

TEST_F(ObsTest, ProgressMeterSeedsEtaAfterFirstJobAndClampsAtCompletion) {
  std::ostringstream out;
  obs::ProgressMeter meter(3, out, /*enabled=*/true);
  // One completed job is not a rate yet (the gap before it is startup
  // cost, not throughput): the first render must show "--", not a number
  // extrapolated from thin air.
  meter.job_finished();
  EXPECT_NE(out.str().find("ETA --"), std::string::npos);
  meter.job_finished();
  meter.job_finished();
  // The final cell always renders, and at done == total the ETA is
  // clamped to zero — never a residual positive estimate.
  EXPECT_NE(out.str().find("ETA 0.0s"), std::string::npos);
  meter.finish();
}

TEST_F(ObsTest, DisabledProgressMeterWritesNothing) {
  std::ostringstream out;
  obs::ProgressMeter meter(3, out, /*enabled=*/false);
  meter.job_finished();
  meter.finish();
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace pwcet
