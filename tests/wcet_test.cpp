// Tests for the WCET engines: IPET vs the loop-tree engine, cost models,
// FMM properties, and the end-to-end soundness of the fault-penalty bound
// against the cycle-accurate simulator.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "fault/fault_map.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/rng.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/fmm.hpp"
#include "wcet/ipet.hpp"
#include "wcet/tree_engine.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

CostModel unit_block_cost(const Program& p) {
  CostModel m = CostModel::zero(p.cfg());
  for (const auto& blk : p.cfg().blocks())
    m.block_cost[size_t(blk.id)] = blk.instruction_count;
  return m;
}

TEST(Tree, StraightLineCost) {
  ProgramBuilder b("p");
  b.add_function("main", b.seq({b.code(3), b.code(5)}));
  const Program p = b.build(0);
  EXPECT_DOUBLE_EQ(tree_maximize(p, unit_block_cost(p)), 8.0);
}

TEST(Tree, BranchTakesMax) {
  ProgramBuilder b("p");
  b.add_function("main", b.if_else(2, b.code(3), b.code(7)));
  const Program p = b.build(0);
  EXPECT_DOUBLE_EQ(tree_maximize(p, unit_block_cost(p)), 2.0 + 7.0);
}

TEST(Tree, LoopMultipliesBody) {
  ProgramBuilder b("p");
  b.add_function("main", b.loop(2, 10, b.code(5)));
  const Program p = b.build(0);
  // Header (2 instr) runs 11 times, body (5 instr) 10 times.
  EXPECT_DOUBLE_EQ(tree_maximize(p, unit_block_cost(p)), 11 * 2 + 10 * 5);
}

TEST(Tree, NestedLoopsMultiply) {
  ProgramBuilder b("p");
  b.add_function("main", b.loop(1, 3, b.loop(1, 4, b.code(2))));
  const Program p = b.build(0);
  // Outer header 4x; inner entered 3x: each entry header 5x, body 4x.
  EXPECT_DOUBLE_EQ(tree_maximize(p, unit_block_cost(p)),
                   4 * 1 + 3 * (5 * 1 + 4 * 2));
}

TEST(Tree, LoopEntryCostOncePerEntry) {
  ProgramBuilder b("p");
  b.add_function("main", b.loop(1, 3, b.loop(1, 4, b.code(2))));
  const Program p = b.build(0);
  CostModel m = unit_block_cost(p);
  // Inner loop id is 1 (outer registered first).
  m.loop_entry_cost[1] = 100.0;
  // Inner loop entered 3 times.
  EXPECT_DOUBLE_EQ(tree_maximize(p, m),
                   4 * 1 + 3 * (5 * 1 + 4 * 2) + 3 * 100.0);
}

TEST(Tree, RootEntryCostOnce) {
  ProgramBuilder b("p");
  b.add_function("main", b.code(4));
  const Program p = b.build(0);
  CostModel m = unit_block_cost(p);
  m.root_entry_cost = 42.0;
  EXPECT_DOUBLE_EQ(tree_maximize(p, m), 46.0);
}

TEST(Tree, NegativeBodySkipsLoop) {
  // Delta models can make a loop body net-negative; the maximizing path
  // then runs zero iterations.
  ProgramBuilder b("p");
  b.add_function("main", b.loop(1, 10, b.code(4)));
  const Program p = b.build(0);
  CostModel m = CostModel::zero(p.cfg());
  for (const auto& blk : p.cfg().blocks())
    if (blk.instruction_count == 4) m.block_cost[size_t(blk.id)] = -3.0;
  // Only the header contributes 0; body would subtract.
  EXPECT_DOUBLE_EQ(tree_maximize(p, m), 0.0);
  // Worst path contains no body block.
  const auto path = tree_worst_path(p, m);
  for (BlockId blk : path)
    EXPECT_NE(p.cfg().block(blk).instruction_count, 4u);
}

TEST(Tree, WorstPathCostMatchesMaximum) {
  // Evaluating the emitted path under the model reproduces tree_maximize.
  const Program p = workloads::build("cnt");
  CostModel m = unit_block_cost(p);
  const double best = tree_maximize(p, m);
  double path_cost = m.root_entry_cost;
  for (BlockId blk : tree_worst_path(p, m))
    path_cost += m.block_cost[size_t(blk)];
  // cnt's model has no loop-entry costs, so the leaf sum is the whole cost.
  EXPECT_DOUBLE_EQ(path_cost, best);
}

TEST(Ipet, MatchesHandComputedLoop) {
  ProgramBuilder b("p");
  b.add_function("main", b.loop(2, 10, b.code(5)));
  const Program p = b.build(0);
  IpetCalculator ipet(p);
  const auto sol = ipet.maximize(unit_block_cost(p));
  EXPECT_NEAR(sol.objective, 11 * 2 + 10 * 5, 1e-6);
}

TEST(Ipet, BlockCountsRespectStructure) {
  ProgramBuilder b("p");
  b.add_function("main", b.loop(1, 6, b.if_else(1, b.code(2), b.code(9))));
  const Program p = b.build(0);
  IpetCalculator ipet(p);
  const auto sol = ipet.maximize(unit_block_cost(p));
  // The heavy arm runs 6 times, the light arm 0.
  for (const auto& blk : p.cfg().blocks()) {
    if (blk.instruction_count == 9) {
      EXPECT_NEAR(sol.block_counts[size_t(blk.id)], 6.0, 1e-6);
    }
    if (blk.instruction_count == 2) {
      EXPECT_NEAR(sol.block_counts[size_t(blk.id)], 0.0, 1e-6);
    }
  }
}

// Engine equivalence: the IPET LP relaxation and the structural tree engine
// agree on every workload, for the fault-free time model — evidence both
// of tree-engine correctness and of the relaxation's integrality on these
// flow systems.
class EngineEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineEquivalenceTest, IpetEqualsTreeOnTimeModel) {
  const Program p = workloads::build(GetParam());
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel m = build_time_cost_model(p.cfg(), refs, cls, c);
  IpetCalculator ipet(p);
  const double via_ipet = ipet.maximize(m).objective;
  const double via_tree = tree_maximize(p, m);
  EXPECT_NEAR(via_ipet, via_tree, 1e-6 * std::max(1.0, via_tree));
}

TEST_P(EngineEquivalenceTest, FmmEnginesAgree) {
  const Program p = workloads::build(GetParam());
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  IpetCalculator ipet(p);
  const FmmBundle via_ilp =
      compute_fmm_bundle(p, c, refs, WcetEngine::kIlp, &ipet);
  const FmmBundle via_tree =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);
  for (SetIndex s = 0; s < c.sets; ++s) {
    for (std::uint32_t f = 0; f <= c.ways; ++f) {
      EXPECT_NEAR(via_ilp.none.at(s, f), via_tree.none.at(s, f), 1e-5)
          << "none s=" << s << " f=" << f;
      EXPECT_NEAR(via_ilp.srb.at(s, f), via_tree.srb.at(s, f), 1e-5)
          << "srb s=" << s << " f=" << f;
      EXPECT_NEAR(via_ilp.rw.at(s, f), via_tree.rw.at(s, f), 1e-5)
          << "rw s=" << s << " f=" << f;
    }
  }
}

// Reference equivalence for the FMM signature dedup (wcet/fmm.cpp): with
// PWCET_FMM_DEDUP=0 every used set computes its own rows; by default sets
// sharing a canonical reference signature reuse one computation. The
// bundles must match bitwise for both engines — the dedup is a pure
// strength reduction, not an approximation, and in particular must not
// perturb the ILP engine's warm-started simplex trajectory.
TEST_P(EngineEquivalenceTest, FmmSignatureDedupIsBitIdentical) {
  const Program p = workloads::build(GetParam());
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  for (const WcetEngine engine : {WcetEngine::kTree, WcetEngine::kIlp}) {
    ::setenv("PWCET_FMM_DEDUP", "0", 1);
    IpetCalculator ipet_reference(p);
    const FmmBundle reference = compute_fmm_bundle(
        p, c, refs, engine,
        engine == WcetEngine::kIlp ? &ipet_reference : nullptr);
    ::setenv("PWCET_FMM_DEDUP", "1", 1);
    IpetCalculator ipet_dedup(p);
    const FmmBundle dedup = compute_fmm_bundle(
        p, c, refs, engine,
        engine == WcetEngine::kIlp ? &ipet_dedup : nullptr);
    ::unsetenv("PWCET_FMM_DEDUP");
    for (SetIndex s = 0; s < c.sets; ++s)
      for (std::uint32_t f = 0; f <= c.ways; ++f) {
        EXPECT_EQ(reference.none.at(s, f), dedup.none.at(s, f))
            << "none s=" << s << " f=" << f;
        EXPECT_EQ(reference.rw.at(s, f), dedup.rw.at(s, f))
            << "rw s=" << s << " f=" << f;
        EXPECT_EQ(reference.srb.at(s, f), dedup.srb.at(s, f))
            << "srb s=" << s << " f=" << f;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EngineEquivalenceTest,
                         ::testing::ValuesIn(workloads::names()),
                         [](const auto& info) { return info.param; });

TEST(Fmm, RowsAreMonotoneAndNonNegative) {
  const Program p = workloads::build("crc");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const FmmBundle fmm =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);
  for (SetIndex s = 0; s < c.sets; ++s) {
    for (std::uint32_t f = 1; f <= c.ways; ++f) {
      EXPECT_GE(fmm.none.at(s, f), 0.0);
      if (f > 1) {
        EXPECT_GE(fmm.none.at(s, f), fmm.none.at(s, f - 1));
      }
    }
  }
}

TEST(Fmm, MechanismsDifferOnlyInFullColumn) {
  const Program p = workloads::build("fdct");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const FmmBundle fmm =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);
  for (SetIndex s = 0; s < c.sets; ++s) {
    for (std::uint32_t f = 1; f < c.ways; ++f) {
      EXPECT_DOUBLE_EQ(fmm.none.at(s, f), fmm.srb.at(s, f));
      EXPECT_DOUBLE_EQ(fmm.none.at(s, f), fmm.rw.at(s, f));
    }
    // SRB can only reduce the full-failure column; RW has none.
    EXPECT_LE(fmm.srb.at(s, c.ways), fmm.none.at(s, c.ways));
    EXPECT_DOUBLE_EQ(fmm.rw.at(s, c.ways), 0.0);
  }
}

TEST(Fmm, UnreferencedSetHasZeroRow) {
  // A program touching only lines 0..3 leaves sets 4..15 untouched.
  ProgramBuilder b("p");
  b.add_function("main", b.code(16));  // 4 lines -> sets 0..3
  const Program p = b.build(0);
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const FmmBundle fmm =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);
  for (SetIndex s = 4; s < c.sets; ++s)
    for (std::uint32_t f = 0; f <= c.ways; ++f)
      EXPECT_DOUBLE_EQ(fmm.none.at(s, f), 0.0) << "s=" << s;
}

TEST(Fmm, FullFailureCountsEveryFetch) {
  // Straight-line code, one 4-fetch line per set reference: fault-free the
  // line misses once (cold); fully faulty, all 4 fetches miss -> delta 3.
  ProgramBuilder b("p");
  b.add_function("main", b.code(4));  // one line, set 0
  const Program p = b.build(0);
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const FmmBundle fmm =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);
  EXPECT_DOUBLE_EQ(fmm.none.at(0, c.ways), 3.0);
  // Partial faults leave a 1-line set unaffected.
  EXPECT_DOUBLE_EQ(fmm.none.at(0, 1), 0.0);
  // The SRB cannot help a single cold reference (nothing precedes it).
  EXPECT_DOUBLE_EQ(fmm.srb.at(0, c.ways), 0.0);
  // Wait: cold ref was a miss fault-free too; SRB serves the line with one
  // miss, so delta = 1 - 1 = 0. Checked above.
}

// The core soundness theorem of the reproduction: for any concrete fault
// map F and any structurally valid path, the simulated execution time is
// bounded by  WCET_ff + miss_penalty * sum_s FMM[mech][s][faults(F, s)].
class PenaltySoundnessTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PenaltySoundnessTest, SimulationNeverExceedsBound) {
  const Program p = workloads::build(GetParam());
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel time_model = build_time_cost_model(p.cfg(), refs, cls, c);
  const double wcet_ff = tree_maximize(p, time_model);
  const FmmBundle fmm =
      compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr);

  Rng rng(83);
  const double heavy_fetches = static_cast<double>(heavy_walk_fetch_count(p));
  const int path_trials = heavy_fetches > 200000 ? 2 : 4;
  for (int trial = 0; trial < path_trials; ++trial) {
    // Mix of random and adversarial paths.
    const BlockPath path =
        (trial == 0) ? heavy_walk(p) : random_walk(p, rng);
    const auto trace = fetch_trace(p.cfg(), path);
    for (int fault_trial = 0; fault_trial < 4; ++fault_trial) {
      // Heavy fault rates stress the bound harder than realistic ones.
      const double pbf = (fault_trial + 1) * 0.2;
      const FaultMap map = FaultMap::sample(c, pbf, rng);
      for (const Mechanism mech :
           {Mechanism::kNone, Mechanism::kReliableWay,
            Mechanism::kSharedReliableBuffer}) {
        const auto stats = simulate_trace(c, map, mech, trace);
        double penalty_misses = 0.0;
        for (SetIndex s = 0; s < c.sets; ++s) {
          std::uint32_t f = map.faulty_count(s);
          if (mech == Mechanism::kReliableWay && map.is_faulty(s, 0)) {
            f -= 1;  // the hardened way masks its fault (Eq. 3 regime)
          }
          penalty_misses += fmm.of(mech).at(s, f);
        }
        const double bound =
            wcet_ff + static_cast<double>(c.miss_penalty) * penalty_misses;
        EXPECT_LE(static_cast<double>(stats.cycles), bound + 1e-6)
            << GetParam() << " mech=" << mechanism_name(mech)
            << " trial=" << trial << " faults=" << fault_trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PenaltySoundnessTest,
    ::testing::Values("fibcall", "bs", "prime", "matmult", "crc", "cnt",
                      "statemate", "ud", "fft", "janne_complex"),
    [](const auto& info) { return info.param; });

}  // namespace
}  // namespace pwcet
