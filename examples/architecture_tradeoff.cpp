// Scenario: a hardware designer choosing between the RW and the SRB
// (paper §III-A: "the two mechanisms differ by their hardware cost and
// impact on estimated pWCETs, to allow the hardware designer to find the
// best pWCET/cost tradeoff").
//
// For a task set and a range of cell failure probabilities, prints the
// pWCET head-room each mechanism buys over the unprotected cache, next to
// a simple hardware-cost proxy (hardened bits: the RW hardens one way —
// sets * line bits — while the SRB hardens a single line).
//
// The whole trade-off study is one campaign spec, declared in
// specs/architecture_tradeoff.json; this binary loads it (pass a path as
// argv[1] to study your own task set/pfail range — no recompile needed),
// runs it on the pool (PWCET_THREADS workers) and pivots the results into
// tables. Running `pwcet run specs/architecture_tradeoff.json` produces
// the byte-identical machine-readable report.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "support/table.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

int main(int argc, char** argv) {
  using namespace pwcet;
  const std::string spec_path =
      argc > 1 ? argv[1] : PWCET_SPECS_DIR "/architecture_tradeoff.json";

  SpecDocument doc;
  try {
    doc = load_spec_for_mechanism_tables(spec_path);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const CampaignSpec& spec = doc.spec;
  const CacheConfig& config = spec.geometries[0];

  const std::uint64_t rw_bits =
      std::uint64_t{config.sets} * config.block_bits();
  const std::uint64_t srb_bits = config.block_bits();
  std::printf(
      "Mechanism cost proxy: RW hardens %llu bits (one way), SRB hardens "
      "%llu bits (one buffer) — a %.0fx difference.\n\n",
      static_cast<unsigned long long>(rw_bits),
      static_cast<unsigned long long>(srb_bits),
      static_cast<double>(rw_bits) / static_cast<double>(srb_bits));

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  if (spec.geometries.size() > 1 || spec.engines.size() > 1 ||
      spec.kinds.size() > 1)
    std::fprintf(stderr,
                 "note: these tables pivot only the first geometry/engine/"
                 "kind; the full grid is in "
                 "architecture_tradeoff.{csv,jsonl}\n");

  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    TextTable table({"pfail", "none", "SRB", "RW", "SRB-gain%", "RW-gain%"});
    for (std::size_t p = 0; p < spec.pfails.size(); ++p) {
      const JobResult& none = campaign.at(t, 0, p, 0);
      const JobResult& srb = campaign.at(t, 0, p, 1);
      const JobResult& rw = campaign.at(t, 0, p, 2);
      table.add_row({fmt_prob(spec.pfails[p]), fmt_double(none.pwcet, 0),
                     fmt_double(srb.pwcet, 0), fmt_double(rw.pwcet, 0),
                     fmt_double(100.0 * (1.0 - srb.pwcet / none.pwcet), 1),
                     fmt_double(100.0 * (1.0 - rw.pwcet / none.pwcet), 1)});
    }
    std::printf("task %s (fault-free WCET %lld cycles)\n%s\n",
                spec.tasks[t].c_str(),
                static_cast<long long>(
                    campaign.at(t, 0, 0, 0).fault_free_wcet),
                table.to_string().c_str());
  }

  if (!write_report_files(campaign, "architecture_tradeoff")) {
    std::fprintf(stderr,
                 "error: failed to write architecture_tradeoff.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "Reading: if the SRB's gain is within your timing margin, it delivers\n"
      "most of the protection at a small fraction of the hardened bits;\n"
      "kernels with deep temporal reuse justify the RW's extra cost.\n"
      "[%zu jobs on %zu threads in %.2fs — full grid in "
      "architecture_tradeoff.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
