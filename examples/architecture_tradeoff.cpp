// Scenario: a hardware designer choosing between the RW and the SRB
// (paper §III-A: "the two mechanisms differ by their hardware cost and
// impact on estimated pWCETs, to allow the hardware designer to find the
// best pWCET/cost tradeoff").
//
// For a task set and a range of cell failure probabilities, prints the
// pWCET head-room each mechanism buys over the unprotected cache, next to
// a simple hardware-cost proxy (hardened bits: the RW hardens one way —
// sets * line bits — while the SRB hardens a single line).
#include <cstdio>
#include <string>
#include <vector>

#include "core/pwcet_analyzer.hpp"
#include "support/table.hpp"
#include "workloads/malardalen.hpp"

int main() {
  using namespace pwcet;
  const CacheConfig config = CacheConfig::paper_default();
  const double target = 1e-15;

  const std::uint64_t rw_bits =
      std::uint64_t{config.sets} * config.block_bits();
  const std::uint64_t srb_bits = config.block_bits();
  std::printf(
      "Mechanism cost proxy: RW hardens %llu bits (one way), SRB hardens "
      "%llu bits (one buffer) — a %.0fx difference.\n\n",
      static_cast<unsigned long long>(rw_bits),
      static_cast<unsigned long long>(srb_bits),
      static_cast<double>(rw_bits) / static_cast<double>(srb_bits));

  // A mission task set: one control kernel, one DSP kernel, one big codec.
  const std::vector<std::string> tasks{"statemate", "fft", "adpcm"};
  for (const std::string& task : tasks) {
    const Program program = workloads::build(task);
    const PwcetAnalyzer analyzer(program, config);
    TextTable table({"pfail", "none", "SRB", "RW", "SRB-gain%", "RW-gain%"});
    for (double pfail : {1e-6, 1e-5, 1e-4, 1e-3}) {
      const FaultModel faults(pfail);
      const auto none = analyzer.analyze(faults, Mechanism::kNone);
      const auto srb =
          analyzer.analyze(faults, Mechanism::kSharedReliableBuffer);
      const auto rw = analyzer.analyze(faults, Mechanism::kReliableWay);
      const auto base = static_cast<double>(none.pwcet(target));
      table.add_row(
          {fmt_prob(pfail), std::to_string(none.pwcet(target)),
           std::to_string(srb.pwcet(target)),
           std::to_string(rw.pwcet(target)),
           fmt_double(100.0 * (1.0 - srb.pwcet(target) / base), 1),
           fmt_double(100.0 * (1.0 - rw.pwcet(target) / base), 1)});
    }
    std::printf("task %s (fault-free WCET %lld cycles)\n%s\n", task.c_str(),
                static_cast<long long>(analyzer.fault_free_wcet()),
                table.to_string().c_str());
  }
  std::printf(
      "Reading: if the SRB's gain is within your timing margin, it delivers\n"
      "most of the protection at a small fraction of the hardened bits;\n"
      "kernels with deep temporal reuse justify the RW's extra cost.\n");
  return 0;
}
