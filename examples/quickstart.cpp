// Quickstart: build a small task, run the pWCET analysis for all three
// hardware configurations, and print the 1e-15 pWCET estimates.
//
//   $ ./examples/quickstart
//
// This walks the exact pipeline of the paper: structured task -> fault-free
// WCET (cache analysis + IPET) -> FMM -> per-set penalty distributions ->
// convolution -> pWCET quantile.
#include <cstdio>

#include "core/pwcet_analyzer.hpp"
#include "workloads/malardalen.hpp"

int main() {
  using namespace pwcet;

  // A 4-way, 16-set, 16 B-line, 1 KB LRU instruction cache; 1-cycle hits
  // and a 100-cycle miss penalty — the paper's configuration (§IV-A).
  const CacheConfig config = CacheConfig::paper_default();

  // Any structured task works; here, the matmult benchmark counterpart.
  const Program program = workloads::build("matmult");
  std::printf("task: %s (%zu basic blocks, %llu bytes of code)\n",
              program.name().c_str(), program.cfg().block_count(),
              static_cast<unsigned long long>(program.code_size_bytes()));

  // Analyzer: shared work (classification, IPET, FMM) happens here once.
  const PwcetAnalyzer analyzer(program, config);
  std::printf("fault-free WCET: %lld cycles\n\n",
              static_cast<long long>(analyzer.fault_free_wcet()));

  // pfail = 1e-4 (the paper's §IV-A cell failure probability) and the
  // aerospace exceedance target 1e-15 per activation.
  const FaultModel faults(1e-4);
  const Probability target = 1e-15;

  for (const Mechanism m : {Mechanism::kNone, Mechanism::kReliableWay,
                            Mechanism::kSharedReliableBuffer}) {
    const PwcetResult result = analyzer.analyze(faults, m);
    std::printf("%-5s pWCET@1e-15 = %10lld cycles  (penalty %lld)\n",
                mechanism_name(m).c_str(),
                static_cast<long long>(result.pwcet(target)),
                static_cast<long long>(result.pwcet(target) -
                                       result.fault_free_wcet));
  }
  return 0;
}
