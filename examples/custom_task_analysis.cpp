// Scenario: analyzing YOUR OWN task with the public API.
//
// Shows the full workflow a downstream user follows: describe the task
// with the structured builder (sizes, loop bounds, calls — everything a
// binary decoder would extract), pick a cache, and query the pWCET
// distribution, including the raw CCDF points (paper Fig. 3) and the
// fault miss map (paper Fig. 1.a) for one mechanism.
#include <cstdio>

#include "core/pwcet_analyzer.hpp"
#include "support/table.hpp"

int main() {
  using namespace pwcet;

  // --- 1. Describe the task -----------------------------------------
  // An engine-controller-style task: sensor decode, a filter loop calling
  // a shared fixed-point helper, and an actuation branch.
  ProgramBuilder b("engine_ctrl");
  const FunctionId fixmul = b.add_function("fixmul", b.code(24));
  const StmtId filter_body = b.seq({
      b.code(20),
      b.call(fixmul),
      b.if_else(4, b.code(12), b.code(8)),
  });
  const StmtId body = b.seq({
      b.code(64),                      // sensor decode
      b.loop(4, 32, filter_body),      // 32-tap filter
      b.if_else(4, b.seq({b.code(40), b.call(fixmul)}),  // actuate
                b.code(16)),           // hold
  });
  b.add_function("main", b.seq({b.code(96), body, b.code(32)}));
  const Program program = b.build(1);

  // --- 2. Pick the architecture --------------------------------------
  CacheConfig config;  // 1 KB, 4-way, 16 B lines, 1/100-cycle latencies
  const FaultModel faults(1e-4);

  // --- 3. Analyze -----------------------------------------------------
  const PwcetAnalyzer analyzer(program, config);
  std::printf("task %s: %llu bytes of code, fault-free WCET %lld cycles\n\n",
              program.name().c_str(),
              static_cast<unsigned long long>(program.code_size_bytes()),
              static_cast<long long>(analyzer.fault_free_wcet()));

  const PwcetResult result =
      analyzer.analyze(faults, Mechanism::kSharedReliableBuffer);

  // pWCET at certification-relevant exceedance levels.
  TextTable levels({"exceedance", "pWCET (cycles)", "over fault-free"});
  for (double p : {1e-6, 1e-9, 1e-12, 1e-15}) {
    const Cycles v = result.pwcet(p);
    levels.add_row({fmt_prob(p), std::to_string(v),
                    fmt_double(100.0 * (v - result.fault_free_wcet) /
                                   static_cast<double>(
                                       result.fault_free_wcet),
                               2) + "%"});
  }
  std::printf("SRB-protected pWCET:\n%s\n", levels.to_string().c_str());

  // --- 4. Inspect the fault miss map (paper Fig. 1.a) -----------------
  std::printf("fault miss map (misses, rows = sets, cols = faulty ways):\n");
  TextTable fmm({"set", "f=1", "f=2", "f=3", "f=4"});
  for (SetIndex s = 0; s < config.sets; ++s) {
    fmm.add_row({std::to_string(s),
                 fmt_double(result.fmm.at(s, 1), 0),
                 fmt_double(result.fmm.at(s, 2), 0),
                 fmt_double(result.fmm.at(s, 3), 0),
                 fmt_double(result.fmm.at(s, 4), 0)});
  }
  std::printf("%s", fmm.to_string().c_str());
  std::printf(
      "\nthe f=4 column is what the SRB tames: without it, a fully faulty\n"
      "set costs every fetch a miss rather than one miss per reference.\n");
  return 0;
}
