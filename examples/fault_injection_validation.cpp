// Scenario: independently validating the static bounds by brute force.
//
// Samples thousands of degraded chips, simulates the task's worst
// structural path on each, and checks every observation against the
// static pWCET machinery:
//   * per-chip: cycles <= WCET_ff + miss_penalty * sum_s FMM[s][faults(s)]
//   * population: the analytic penalty CCDF dominates the empirical one.
// This is the repository's safety argument made runnable — useful as a
// template when porting the analysis to a new cache model.
#include <cstdio>

#include "core/pwcet_analyzer.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/malardalen.hpp"

int main() {
  using namespace pwcet;
  const CacheConfig config = CacheConfig::paper_default();
  // High pfail so even a modest population exercises heavy degradation.
  const FaultModel faults(5e-3);
  const Probability pbf = faults.block_failure_probability(config);
  const int chips = 5000;

  std::printf("fault-injection validation: %d chips, pfail = %g "
              "(pbf = %.3f)\n\n",
              chips, faults.pfail(), pbf);

  TextTable table({"benchmark", "mech", "max-sim", "max-bound", "violations",
                   "mean-slack%"});
  Rng rng(0xfa117);
  for (const char* name : {"fibcall", "matmult", "crc", "ud"}) {
    const Program program = workloads::build(name);
    PwcetOptions options;
    options.engine = WcetEngine::kTree;
    const PwcetAnalyzer analyzer(program, config, options);
    const auto trace = fetch_trace(program.cfg(), heavy_walk(program));

    for (const Mechanism mech :
         {Mechanism::kNone, Mechanism::kReliableWay,
          Mechanism::kSharedReliableBuffer}) {
      const FaultMissMap& fmm = analyzer.fmm_bundle().of(mech);
      int violations = 0;
      double max_sim = 0.0, max_bound = 0.0, slack_sum = 0.0;
      for (int chip = 0; chip < chips / 10; ++chip) {
        const FaultMap map = FaultMap::sample(config, pbf, rng);
        const SimStats stats = simulate_trace(config, map, mech, trace);
        double misses = 0.0;
        for (SetIndex s = 0; s < config.sets; ++s) {
          std::uint32_t f = map.faulty_count(s);
          if (mech == Mechanism::kReliableWay && map.is_faulty(s, 0)) f -= 1;
          misses += fmm.at(s, f);
        }
        const double bound =
            static_cast<double>(analyzer.fault_free_wcet()) +
            static_cast<double>(config.miss_penalty) * misses;
        const auto sim = static_cast<double>(stats.cycles);
        violations += (sim > bound) ? 1 : 0;
        max_sim = std::max(max_sim, sim);
        max_bound = std::max(max_bound, bound);
        slack_sum += (bound - sim) / bound;
      }
      table.add_row({name, mechanism_name(mech), fmt_double(max_sim, 0),
                     fmt_double(max_bound, 0), std::to_string(violations),
                     fmt_double(100.0 * slack_sum / (chips / 10), 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("violations must be 0; mean-slack quantifies how conservative\n"
              "the per-chip bound is on this (adversarial) fault rate.\n");
  return 0;
}
