// Reproduces paper Fig. 3: the complementary cumulative distribution
// (exceedance function) of the pWCET of benchmark adpcm for three levels of
// protection — none, SRB, RW — at pfail = 1e-4.
//
// The campaign itself is declared in specs/ccdf.json — this binary is a
// thin wrapper that loads the spec (pass a path as argv[1] to run a
// variant), executes it on the thread pool (PWCET_THREADS workers) and
// pivots the distribution sink into the paper-style decade table. Running
// `pwcet run specs/ccdf.json` produces byte-identical machine-readable
// reports (fig3_ccdf.{csv,jsonl} plus fig3_ccdf.dist.{csv,jsonl} — the
// per-decade series live in the .dist files).
//
// The expected shape: a near-vertical drop around the fault-free WCET,
// then plateaus; the no-protection curve extends far to the right at low
// probabilities (whole-set failures), while the RW and SRB curves stay
// close to the fault-free WCET.
#include <cstdio>
#include <string>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "support/table.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

int main(int argc, char** argv) {
  using namespace pwcet;
  const std::string spec_path =
      argc > 1 ? argv[1] : PWCET_SPECS_DIR "/ccdf.json";

  SpecDocument doc;
  try {
    doc = load_spec_for_mechanism_tables(spec_path);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const CampaignSpec& spec = doc.spec;
  if (spec.ccdf_exceedances.empty()) {
    std::fprintf(stderr,
                 "%s: this figure needs \"ccdf_exceedances\" (the CCDF "
                 "series); use `pwcet run` for scalar campaigns\n",
                 spec_path.c_str());
    return 1;
  }

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  // Pivot the first grid cell of each mechanism (none/SRB/RW per the
  // shape check above); extra axis values stay in the report files.
  const JobResult& none = campaign.at(0, 0, 0, 0);
  const JobResult& srb = campaign.at(0, 0, 0, 1);
  const JobResult& rw = campaign.at(0, 0, 0, 2);

  std::printf(
      "Fig. 3 — pWCET exceedance (CCDF) for %s, pfail = %s\n"
      "fault-free WCET = %lld cycles\n\n",
      spec.tasks[0].c_str(), fmt_prob(spec.pfails[0]).c_str(),
      static_cast<long long>(none.fault_free_wcet));

  TextTable table({"exceedance", "no-protection", "SRB", "RW"});
  for (std::size_t i = 0; i < spec.ccdf_exceedances.size(); ++i)
    table.add_row({fmt_prob(spec.ccdf_exceedances[i]),
                   std::to_string(static_cast<long long>(none.curve[i])),
                   std::to_string(static_cast<long long>(srb.curve[i])),
                   std::to_string(static_cast<long long>(rw.curve[i]))});
  std::printf("%s\n", table.to_string().c_str());

  // The paper's qualitative claims at the certification target.
  std::printf("at %s: none=%lld  SRB=%lld  RW=%lld  (expect RW <= SRB "
              "<= none; plateaus from whole-set failures on 'none')\n",
              fmt_prob(spec.target_exceedance).c_str(),
              static_cast<long long>(none.pwcet),
              static_cast<long long>(srb.pwcet),
              static_cast<long long>(rw.pwcet));

  if (!write_report_files(campaign, "fig3_ccdf")) {
    std::fprintf(stderr, "error: failed to write fig3_ccdf report files\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — grid in fig3_ccdf.{csv,jsonl}, "
      "CCDF series in fig3_ccdf.dist.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
