// Reproduces paper Fig. 3: the complementary cumulative distribution
// (exceedance function) of the pWCET of benchmark adpcm for three levels of
// protection — none, SRB, RW — at pfail = 1e-4.
//
// Output: one (exceedance probability, pWCET cycles) series per mechanism,
// sampled at decade probabilities from 1e0 down to 1e-16, exactly the range
// of the paper's y-axis. The expected shape: a near-vertical drop around
// the fault-free WCET, then plateaus; the no-protection curve extends far
// to the right at low probabilities (whole-set failures), while the RW and
// SRB curves stay close to the fault-free WCET.
#include <cmath>
#include <cstdio>

#include "core/pwcet_analyzer.hpp"
#include "support/table.hpp"
#include "workloads/malardalen.hpp"

int main() {
  using namespace pwcet;
  const CacheConfig config = CacheConfig::paper_default();
  const FaultModel faults(1e-4);

  const Program program = workloads::build("adpcm");
  const PwcetAnalyzer analyzer(program, config);

  std::printf(
      "Fig. 3 — pWCET exceedance (CCDF) for adpcm, pfail = %g\n"
      "fault-free WCET = %lld cycles\n\n",
      faults.pfail(), static_cast<long long>(analyzer.fault_free_wcet()));

  const PwcetResult none = analyzer.analyze(faults, Mechanism::kNone);
  const PwcetResult rw = analyzer.analyze(faults, Mechanism::kReliableWay);
  const PwcetResult srb =
      analyzer.analyze(faults, Mechanism::kSharedReliableBuffer);

  TextTable table({"exceedance", "no-protection", "SRB", "RW"});
  for (int decade = 0; decade >= -16; --decade) {
    const double p = std::pow(10.0, decade);
    table.add_row({fmt_prob(p), std::to_string(none.pwcet(p)),
                   std::to_string(srb.pwcet(p)),
                   std::to_string(rw.pwcet(p))});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The paper's qualitative claims at the certification target.
  const double target = 1e-15;
  std::printf("at 1e-15: none=%lld  SRB=%lld  RW=%lld  (expect RW <= SRB "
              "<= none; plateaus from whole-set failures on 'none')\n",
              static_cast<long long>(none.pwcet(target)),
              static_cast<long long>(srb.pwcet(target)),
              static_cast<long long>(rw.pwcet(target)));
  return 0;
}
