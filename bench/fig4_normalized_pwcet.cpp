// Reproduces paper Fig. 4: pWCET estimates for a fault-free architecture,
// an architecture with the SRB, and an architecture with the RW, all
// normalized against the pWCET of a system with no protection mechanism.
// Target exceedance probability 1e-15, pfail = 1e-4 (paper §IV).
//
// Paper reference points: average gain 48 % for the RW (min 26 %, fft) and
// 40 % for the SRB (min 25 %, ud); benchmarks fall into four behaviour
// categories (§IV-B). Absolute cycle counts differ from the paper (the
// workloads are structural counterparts, not the original MIPS binaries);
// the orderings, categories and gain magnitudes are the reproduction target.
#include <cstdio>
#include <string>
#include <vector>

#include "core/pwcet_analyzer.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/malardalen.hpp"

namespace {

using namespace pwcet;

/// Paper §IV-B category of a benchmark, derived from the measured values:
///  1: RW == SRB == fault-free; 2: RW == fault-free > SRB;
///  3: RW ~= SRB < fault-free ... mapped per the paper's descriptions.
int categorize(double ff, double srb, double rw) {
  const double eps = 1e-9;
  const bool rw_is_ff = rw <= ff + eps;
  const bool srb_is_ff = srb <= ff + eps;
  const bool rw_eq_srb = std::abs(rw - srb) <= 0.02;
  if (rw_is_ff && srb_is_ff) return 1;
  if (rw_is_ff) return 2;
  if (rw_eq_srb) return 3;
  return 4;
}

}  // namespace

int main() {
  const CacheConfig config = CacheConfig::paper_default();
  const FaultModel faults(1e-4);
  const Probability target = 1e-15;

  std::printf("Fig. 4 — normalized pWCET @ %g, pfail = %g\n", target,
              faults.pfail());
  std::printf("(values normalized to the no-protection pWCET)\n\n");

  TextTable table({"benchmark", "fault-free", "SRB", "RW", "gain-SRB%",
                   "gain-RW%", "category"});
  std::vector<double> gains_rw, gains_srb;

  for (const std::string& name : workloads::names()) {
    const Program program = workloads::build(name);
    const PwcetAnalyzer analyzer(program, config);

    const auto none = analyzer.analyze(faults, Mechanism::kNone);
    const auto rw = analyzer.analyze(faults, Mechanism::kReliableWay);
    const auto srb =
        analyzer.analyze(faults, Mechanism::kSharedReliableBuffer);

    const auto base = static_cast<double>(none.pwcet(target));
    const double ff = static_cast<double>(analyzer.fault_free_wcet()) / base;
    const double n_rw = static_cast<double>(rw.pwcet(target)) / base;
    const double n_srb = static_cast<double>(srb.pwcet(target)) / base;

    gains_rw.push_back(1.0 - n_rw);
    gains_srb.push_back(1.0 - n_srb);

    table.add_row({name, fmt_double(ff, 3), fmt_double(n_srb, 3),
                   fmt_double(n_rw, 3), fmt_double(100.0 * (1.0 - n_srb), 1),
                   fmt_double(100.0 * (1.0 - n_rw), 1),
                   std::to_string(categorize(ff, n_srb, n_rw))});
  }

  std::printf("%s\n", table.to_string().c_str());

  const SampleSummary rw_summary = summarize(gains_rw);
  const SampleSummary srb_summary = summarize(gains_srb);
  std::printf("average gain RW : %5.1f %%   (paper: 48 %%, min 26 %%)\n",
              100.0 * rw_summary.mean);
  std::printf("minimum gain RW : %5.1f %%\n", 100.0 * rw_summary.min);
  std::printf("average gain SRB: %5.1f %%   (paper: 40 %%, min 25 %%)\n",
              100.0 * srb_summary.mean);
  std::printf("minimum gain SRB: %5.1f %%\n", 100.0 * srb_summary.min);
  return 0;
}
