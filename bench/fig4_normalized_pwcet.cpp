// Reproduces paper Fig. 4: pWCET estimates for a fault-free architecture,
// an architecture with the SRB, and an architecture with the RW, all
// normalized against the pWCET of a system with no protection mechanism.
// Target exceedance probability 1e-15, pfail = 1e-4 (paper §IV).
//
// The campaign itself is declared in specs/normalized_pwcet.json — this
// binary is a thin wrapper that loads the spec (pass a path as argv[1] to
// run a variant), executes it on the thread pool (PWCET_THREADS workers)
// and pivots the grid into the paper-style normalized table. Running
// `pwcet run specs/normalized_pwcet.json` produces the byte-identical
// machine-readable report.
//
// Paper reference points: average gain 48 % for the RW (min 26 %, fft) and
// 40 % for the SRB (min 25 %, ud); benchmarks fall into four behaviour
// categories (§IV-B). Absolute cycle counts differ from the paper (the
// workloads are structural counterparts, not the original MIPS binaries);
// the orderings, categories and gain magnitudes are the reproduction target.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

namespace {

using namespace pwcet;

/// Paper §IV-B category of a benchmark, derived from the measured values:
///  1: RW == SRB == fault-free; 2: RW == fault-free > SRB;
///  3: RW ~= SRB < fault-free ... mapped per the paper's descriptions.
int categorize(double ff, double srb, double rw) {
  const double eps = 1e-9;
  const bool rw_is_ff = rw <= ff + eps;
  const bool srb_is_ff = srb <= ff + eps;
  const bool rw_eq_srb = std::abs(rw - srb) <= 0.02;
  if (rw_is_ff && srb_is_ff) return 1;
  if (rw_is_ff) return 2;
  if (rw_eq_srb) return 3;
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec_path =
      argc > 1 ? argv[1] : PWCET_SPECS_DIR "/normalized_pwcet.json";

  SpecDocument doc;
  try {
    doc = load_spec_for_mechanism_tables(spec_path);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const CampaignSpec& spec = doc.spec;

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  std::printf("Fig. 4 — normalized pWCET @ %s, pfail = %s\n",
              fmt_prob(spec.target_exceedance).c_str(),
              fmt_prob(spec.pfails[0]).c_str());
  std::printf("(values normalized to the no-protection pWCET)\n\n");

  TextTable table({"benchmark", "fault-free", "SRB", "RW", "gain-SRB%",
                   "gain-RW%", "category"});
  std::vector<double> gains_rw, gains_srb;

  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    const JobResult& none = campaign.at(t, 0, 0, 0);
    const JobResult& srb = campaign.at(t, 0, 0, 1);
    const JobResult& rw = campaign.at(t, 0, 0, 2);

    const double base = none.pwcet;
    const double ff = static_cast<double>(none.fault_free_wcet) / base;
    const double n_rw = rw.pwcet / base;
    const double n_srb = srb.pwcet / base;

    gains_rw.push_back(1.0 - n_rw);
    gains_srb.push_back(1.0 - n_srb);

    table.add_row({spec.tasks[t], fmt_double(ff, 3), fmt_double(n_srb, 3),
                   fmt_double(n_rw, 3), fmt_double(100.0 * (1.0 - n_srb), 1),
                   fmt_double(100.0 * (1.0 - n_rw), 1),
                   std::to_string(categorize(ff, n_srb, n_rw))});
  }

  std::printf("%s\n", table.to_string().c_str());

  const SampleSummary rw_summary = summarize(gains_rw);
  const SampleSummary srb_summary = summarize(gains_srb);
  std::printf("average gain RW : %5.1f %%   (paper: 48 %%, min 26 %%)\n",
              100.0 * rw_summary.mean);
  std::printf("minimum gain RW : %5.1f %%\n", 100.0 * rw_summary.min);
  std::printf("average gain SRB: %5.1f %%   (paper: 40 %%, min 25 %%)\n",
              100.0 * srb_summary.mean);
  std::printf("minimum gain SRB: %5.1f %%\n", 100.0 * srb_summary.min);

  if (!write_report_files(campaign, "fig4_normalized_pwcet")) {
    std::fprintf(stderr,
                 "error: failed to write fig4_normalized_pwcet.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — full grid in "
      "fig4_normalized_pwcet.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
