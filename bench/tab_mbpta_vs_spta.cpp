// Extension E6: static probabilistic timing analysis (this paper) vs a
// measurement-based EVT pipeline (the DTM-style alternative of related
// work [7]).
//
// For each benchmark and mechanism: sample a population of degraded chips,
// run the worst structural path on each, fit a Gumbel tail to the observed
// times, and compare the measurement-based pWCET@1e-15 against the static
// bound. The static bound must dominate every observation; the
// measurement-based estimate may undercut the true worst case (it has no
// path guarantee and the sampled population may miss rare whole-set
// failures) — which is the paper's argument for SPTA.
#include <cstdio>

#include "core/pwcet_analyzer.hpp"
#include "mbpta/mbpta.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/malardalen.hpp"

int main() {
  using namespace pwcet;
  const CacheConfig config = CacheConfig::paper_default();
  // MBPTA observes the chip population: at pfail = 1e-4 whole-set failures
  // (prob ~2.6e-8) never appear in a few hundred chips. Use the low-voltage
  // regime of [5] (pfail = 1e-3) where degradation is observable.
  const FaultModel faults(1e-3);
  const double target = 1e-15;

  MbptaOptions options;
  options.chips = 400;
  options.block_size = 20;

  std::printf(
      "E6 — static (SPTA) vs measurement-based (MBPTA/EVT) pWCET@1e-15\n"
      "pfail = 1e-3, %zu chips per benchmark/mechanism\n\n",
      options.chips);

  TextTable table({"benchmark", "mech", "obs-max", "mbpta@1e-15",
                   "spta@1e-15", "spta/mbpta", "sound"});
  for (const char* name : {"fibcall", "bs", "matmult", "crc", "fft", "ud"}) {
    const Program program = workloads::build(name);
    const PwcetAnalyzer analyzer(program, config);
    for (const Mechanism m : {Mechanism::kNone, Mechanism::kReliableWay,
                              Mechanism::kSharedReliableBuffer}) {
      const auto spta = analyzer.analyze(faults, m);
      const auto mbpta = run_mbpta(program, config, faults, m, options);
      const double spta_pwcet = static_cast<double>(spta.pwcet(target));
      const double mbpta_pwcet = mbpta.pwcet(target);
      table.add_row(
          {name, mechanism_name(m), fmt_double(mbpta.observed_max, 0),
           fmt_double(mbpta_pwcet, 0), fmt_double(spta_pwcet, 0),
           fmt_double(spta_pwcet / mbpta_pwcet, 2),
           spta_pwcet >= mbpta.observed_max ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "'sound' checks spta >= max observed time. spta/mbpta > 1 quantifies\n"
      "the conservatism the static guarantee costs; spta/mbpta < 1 would\n"
      "flag MBPTA overshoot from the Gumbel extrapolation.\n");
  return 0;
}
