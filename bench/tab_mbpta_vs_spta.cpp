// Extension E6: static probabilistic timing analysis (this paper) vs a
// measurement-based EVT pipeline (the DTM-style alternative of related
// work [7]).
//
// For each benchmark and mechanism: sample a population of degraded chips,
// run the worst structural path on each, fit a Gumbel tail to the observed
// times, and compare the measurement-based pWCET@1e-15 against the static
// bound. The static bound must dominate every observation; the
// measurement-based estimate may undercut the true worst case (it has no
// path guarantee and the sampled population may miss rare whole-set
// failures) — which is the paper's argument for SPTA.
//
// Both kinds run as one campaign: each (benchmark, mechanism) cell expands
// into an SPTA job and an MBPTA job with its own derived RNG stream, so
// the table is reproducible at any thread count (PWCET_THREADS workers).
#include <cstdio>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "support/table.hpp"

int main() {
  using namespace pwcet;
  const double target = 1e-15;

  CampaignSpec spec;
  spec.tasks = {"fibcall", "bs", "matmult", "crc", "fft", "ud"};
  spec.geometries = {CacheConfig::paper_default()};
  // MBPTA observes the chip population: at pfail = 1e-4 whole-set failures
  // (prob ~2.6e-8) never appear in a few hundred chips. Use the low-voltage
  // regime of [5] (pfail = 1e-3) where degradation is observable.
  spec.pfails = {1e-3};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kReliableWay,
                     Mechanism::kSharedReliableBuffer};
  spec.kinds = {AnalysisKind::kSpta, AnalysisKind::kMbpta};
  spec.target_exceedance = target;
  spec.mbpta.chips = 400;
  spec.mbpta.block_size = 20;

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  std::printf(
      "E6 — static (SPTA) vs measurement-based (MBPTA/EVT) pWCET@1e-15\n"
      "pfail = 1e-3, %zu chips per benchmark/mechanism\n\n",
      spec.mbpta.chips);

  TextTable table({"benchmark", "mech", "obs-max", "mbpta@1e-15",
                   "spta@1e-15", "spta/mbpta", "sound"});
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    for (std::size_t m = 0; m < spec.mechanisms.size(); ++m) {
      const JobResult& spta = campaign.at(t, 0, 0, m, 0, 0);
      const JobResult& mbpta = campaign.at(t, 0, 0, m, 0, 1);
      table.add_row({spec.tasks[t], mechanism_name(spec.mechanisms[m]),
                     fmt_double(mbpta.observed_max, 0),
                     fmt_double(mbpta.pwcet, 0), fmt_double(spta.pwcet, 0),
                     fmt_double(spta.pwcet / mbpta.pwcet, 2),
                     spta.pwcet >= mbpta.observed_max ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "'sound' checks spta >= max observed time. spta/mbpta > 1 quantifies\n"
      "the conservatism the static guarantee costs; spta/mbpta < 1 would\n"
      "flag MBPTA overshoot from the Gumbel extrapolation.\n");

  if (!write_report_files(campaign, "tab_mbpta_vs_spta")) {
    std::fprintf(stderr, "error: failed to write tab_mbpta_vs_spta.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — full grid in "
      "tab_mbpta_vs_spta.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
