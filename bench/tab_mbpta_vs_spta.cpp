// Extension E6: static probabilistic timing analysis (this paper) vs a
// measurement-based EVT pipeline (the DTM-style alternative of related
// work [7]).
//
// For each benchmark and mechanism: sample a population of degraded chips,
// run the worst structural path on each, fit a Gumbel tail to the observed
// times, and compare the measurement-based pWCET@1e-15 against the static
// bound. The static bound must dominate every observation; the
// measurement-based estimate may undercut the true worst case (it has no
// path guarantee and the sampled population may miss rare whole-set
// failures) — which is the paper's argument for SPTA.
//
// The campaign itself is declared in specs/mbpta_vs_spta.json — this
// binary is a thin wrapper that loads the spec (pass a path as argv[1] to
// run a variant) and pivots the SPTA/MBPTA job pairs into the comparison
// table. Running `pwcet run specs/mbpta_vs_spta.json` produces the
// byte-identical machine-readable report.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "support/table.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

int main(int argc, char** argv) {
  using namespace pwcet;
  const std::string spec_path =
      argc > 1 ? argv[1] : PWCET_SPECS_DIR "/mbpta_vs_spta.json";

  SpecDocument doc;
  try {
    doc = load_spec(spec_path);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const CampaignSpec& spec = doc.spec;
  // The pivot below pairs kind index 0 (static) with kind index 1
  // (measurement-based); a variant spec with another kind shape still runs
  // via `pwcet run`, but this presentation layer refuses it rather than
  // aborting on a missing index or mislabeling columns.
  if (spec.kinds !=
      std::vector<AnalysisKind>{AnalysisKind::kSpta, AnalysisKind::kMbpta}) {
    std::fprintf(stderr,
                 "%s: this table needs kinds [\"spta\", \"mbpta\"] in that "
                 "order; use `pwcet run` for other shapes\n",
                 spec_path.c_str());
    return 1;
  }

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  if (spec.geometries.size() > 1 || spec.pfails.size() > 1 ||
      spec.engines.size() > 1)
    std::fprintf(stderr,
                 "note: this table pivots only the first geometry/pfail/"
                 "engine; the full grid is in tab_mbpta_vs_spta.{csv,jsonl}\n");

  std::printf(
      "E6 — static (SPTA) vs measurement-based (MBPTA/EVT) pWCET@%s\n"
      "pfail = %s, %zu chips per benchmark/mechanism\n\n",
      fmt_prob(spec.target_exceedance).c_str(),
      fmt_prob(spec.pfails[0]).c_str(), spec.mbpta.chips);

  const std::string target_label = fmt_prob(spec.target_exceedance);
  TextTable table({"benchmark", "mech", "obs-max", "mbpta@" + target_label,
                   "spta@" + target_label, "spta/mbpta", "sound"});
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    for (std::size_t m = 0; m < spec.mechanisms.size(); ++m) {
      const JobResult& spta = campaign.at(t, 0, 0, m, 0, 0);
      const JobResult& mbpta = campaign.at(t, 0, 0, m, 0, 1);
      table.add_row({spec.tasks[t], mechanism_name(spec.mechanisms[m]),
                     fmt_double(mbpta.observed_max, 0),
                     fmt_double(mbpta.pwcet, 0), fmt_double(spta.pwcet, 0),
                     fmt_double(spta.pwcet / mbpta.pwcet, 2),
                     spta.pwcet >= mbpta.observed_max ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "'sound' checks spta >= max observed time. spta/mbpta > 1 quantifies\n"
      "the conservatism the static guarantee costs; spta/mbpta < 1 would\n"
      "flag MBPTA overshoot from the Gumbel extrapolation.\n");

  if (!write_report_files(campaign, "tab_mbpta_vs_spta")) {
    std::fprintf(stderr, "error: failed to write tab_mbpta_vs_spta.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — full grid in "
      "tab_mbpta_vs_spta.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
