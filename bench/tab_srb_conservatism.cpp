// Ablation E5: the cost of the SRB analysis' conservative reload
// assumption (paper §III-B.2 explicitly leaves a more precise SRB analysis
// for future work and illustrates the conservatism with the stream
// a1 a2 b1 b2 a1 a2).
//
// With every set of the cache fully faulty (the regime where the SRB
// serves all fetches), the analysis bounds the misses of each executed
// line reference by 1 unless it is SRB-always-hit (then 0). The simulator
// gives the misses the hardware actually takes on the same path: fewer,
// whenever the SRB happens to retain a line across an interleaving the
// static analysis had to assume reloads it. The gap — plus a breakdown of
// where the SRB's benefit comes from (intra-line spatial hits) — is what a
// flow-sensitive SRB analysis could reclaim.
#include <cstdio>

#include "cache/references.hpp"
#include "core/pwcet_analyzer.hpp"
#include "icache/srb_analysis.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/table.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/tree_engine.hpp"
#include "workloads/malardalen.hpp"

int main() {
  using namespace pwcet;
  const CacheConfig config = CacheConfig::paper_default();

  std::printf("E5 — SRB analysis conservatism (all sets fully faulty)\n\n");
  TextTable table({"benchmark", "fetches", "spatial-hits", "misses-sim",
                   "misses-static", "slack%"});

  double worst_slack = 0.0;
  for (const std::string& name : workloads::names()) {
    const Program program = workloads::build(name);
    const auto refs = extract_references(program.cfg(), config);
    const SrbHitMap static_hits = analyze_srb(program.cfg(), refs);

    // Worst fault-free path (the path the pWCET bound is built around).
    const auto cls = classify_fault_free(program.cfg(), refs, config);
    const CostModel time_model =
        build_time_cost_model(program.cfg(), refs, cls, config);
    const auto path = tree_worst_path(program, time_model);

    // All sets fully faulty: every fetch goes through the SRB.
    FaultMap all_faulty(config.sets, config.ways);
    for (SetIndex s = 0; s < config.sets; ++s)
      for (std::uint32_t w = 0; w < config.ways; ++w)
        all_faulty.set_faulty(s, w, true);

    CacheSimulator sim(config, all_faulty,
                       Mechanism::kSharedReliableBuffer);
    std::uint64_t static_miss_bound = 0;  // 1 per executed non-AH reference
    for (BlockId blk : path) {
      const auto& block_refs = refs[size_t(blk)];
      for (std::size_t i = 0; i < block_refs.size(); ++i) {
        const LineRef& r = block_refs[i];
        static_miss_bound += static_hits[size_t(blk)][i] ? 0 : 1;
        for (std::uint32_t k = 0; k < r.fetches; ++k)
          sim.fetch(r.line * config.line_bytes + 4 * k);
      }
    }
    const SimStats& st = sim.stats();
    const double slack =
        static_miss_bound == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(static_miss_bound) -
                   static_cast<double>(st.misses)) /
                  static_cast<double>(static_miss_bound);
    worst_slack = std::max(worst_slack, slack);
    table.add_row({name, std::to_string(st.fetches),
                   std::to_string(st.srb_hits),
                   std::to_string(st.misses),
                   std::to_string(static_miss_bound),
                   fmt_double(slack, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "spatial-hits: SRB hits from intra-line locality — the benefit the\n"
      "analysis *does* credit (a reference costs 1 miss, not k fetch\n"
      "misses). slack%% = (static miss bound - simulated misses) / bound.\n"
      "With ALL sets faulty the hardware really does reload the SRB at\n"
      "every reference, so the conservative assumption is exact (%.1f%%).\n\n",
      worst_slack);

  // Part 2 — a SINGLE fully faulty set: references to healthy sets do not
  // touch the SRB, so the hardware retains the faulty set's line across
  // them (the a1 a2 b1 b2 a1 a2 situation of §III-B.2 with b healthy);
  // the analysis must still assume a reload. This is where the paper's
  // conservatism actually bites.
  std::printf("single fully faulty set (set 0): misses charged to set 0\n\n");
  TextTable single({"benchmark", "set0-refs", "misses-sim", "misses-static",
                    "slack%"});
  double worst_single = 0.0;
  for (const std::string& name : workloads::names()) {
    const Program program = workloads::build(name);
    const auto refs = extract_references(program.cfg(), config);
    const SrbHitMap static_hits = analyze_srb(program.cfg(), refs);
    const auto cls = classify_fault_free(program.cfg(), refs, config);
    const CostModel time_model =
        build_time_cost_model(program.cfg(), refs, cls, config);
    const auto path = tree_worst_path(program, time_model);

    FaultMap one_set(config.sets, config.ways);
    for (std::uint32_t w = 0; w < config.ways; ++w)
      one_set.set_faulty(0, w, true);

    CacheSimulator sim(config, one_set, Mechanism::kSharedReliableBuffer);
    std::uint64_t set0_refs = 0;
    std::uint64_t static_bound = 0;
    for (BlockId blk : path) {
      const auto& block_refs = refs[size_t(blk)];
      for (std::size_t i = 0; i < block_refs.size(); ++i) {
        const LineRef& r = block_refs[i];
        if (r.set == 0) {
          ++set0_refs;
          static_bound += static_hits[size_t(blk)][i] ? 0 : 1;
        }
        for (std::uint32_t k = 0; k < r.fetches; ++k)
          sim.fetch(r.line * config.line_bytes + 4 * k);
      }
    }
    const std::uint64_t sim_misses = sim.stats().misses_per_set[0];
    const double slack =
        static_bound == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(static_bound) -
                   static_cast<double>(sim_misses)) /
                  static_cast<double>(static_bound);
    worst_single = std::max(worst_single, slack);
    single.add_row({name, std::to_string(set0_refs),
                    std::to_string(sim_misses),
                    std::to_string(static_bound), fmt_double(slack, 1)});
  }
  std::printf("%s\n", single.to_string().c_str());
  std::printf(
      "here the hardware retains lines across healthy-set interleavings\n"
      "that the reload assumption discards: up to %.1f%% of the bounded\n"
      "misses never happen. A flow-sensitive SRB analysis (the paper's\n"
      "future work) could reclaim exactly this gap.\n",
      worst_single);
  return 0;
}
