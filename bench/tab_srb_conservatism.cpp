// Ablation E5: the cost of the SRB analysis' conservative reload
// assumption (paper §III-B.2 explicitly leaves a more precise SRB analysis
// for future work and illustrates the conservatism with the stream
// a1 a2 b1 b2 a1 a2), paired with the RW's exact one-way degraded-cache
// analysis as the contrast.
//
// The campaign itself is declared in specs/srb_conservatism.json — this
// binary is a thin wrapper that loads the spec (pass a path as argv[1] to
// run a variant), executes its slack jobs on the thread pool
// (PWCET_THREADS workers) and pivots the two regimes into the paper-style
// tables. Running `pwcet run specs/srb_conservatism.json` produces the
// byte-identical machine-readable report. The slack semantics live in
// engine/runner.cpp (compute_slack).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "support/table.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

namespace {

using namespace pwcet;

double slack_pct(std::uint64_t bound, std::uint64_t sim) {
  if (bound == 0) return 0.0;
  return 100.0 * (static_cast<double>(bound) - static_cast<double>(sim)) /
         static_cast<double>(bound);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec_path =
      argc > 1 ? argv[1] : PWCET_SPECS_DIR "/srb_conservatism.json";

  SpecDocument doc;
  try {
    doc = load_spec(spec_path);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const CampaignSpec& spec = doc.spec;
  if (spec.kinds != std::vector<AnalysisKind>{AnalysisKind::kSlack} ||
      spec.mechanisms.empty() ||
      spec.mechanisms[0] != Mechanism::kSharedReliableBuffer) {
    std::fprintf(stderr,
                 "%s: these tables need kinds [\"slack\"] with \"SRB\" as "
                 "the first mechanism; use `pwcet run` for other shapes\n",
                 spec_path.c_str());
    return 1;
  }

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  std::printf("E5 — SRB analysis conservatism (all sets fully faulty)\n\n");
  TextTable table({"benchmark", "fetches", "spatial-hits", "misses-sim",
                   "misses-static", "slack%"});
  double worst_slack = 0.0;
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    const JobResult& r = campaign.at(t, 0, 0, 0);
    const double slack = slack_pct(r.bound_misses, r.sim_misses);
    worst_slack = std::max(worst_slack, slack);
    table.add_row({spec.tasks[t], std::to_string(r.fetches),
                   std::to_string(r.srb_hits), std::to_string(r.sim_misses),
                   std::to_string(r.bound_misses), fmt_double(slack, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "spatial-hits: SRB hits from intra-line locality — the benefit the\n"
      "analysis *does* credit (a reference costs 1 miss, not k fetch\n"
      "misses). slack%% = (static miss bound - simulated misses) / bound.\n"
      "With ALL sets faulty the hardware really does reload the SRB at\n"
      "every reference, so the conservative assumption is exact (%.1f%%).\n\n",
      worst_slack);

  // Part 2 — a SINGLE fully faulty set: references to healthy sets do not
  // touch the SRB, so the hardware retains the faulty set's line across
  // them (the a1 a2 b1 b2 a1 a2 situation of §III-B.2 with b healthy);
  // the analysis must still assume a reload. This is where the paper's
  // conservatism actually bites.
  std::printf("single fully faulty set (set 0): misses charged to set 0\n\n");
  TextTable single({"benchmark", "misses-sim", "misses-static", "slack%"});
  double worst_single = 0.0;
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    const JobResult& r = campaign.at(t, 0, 0, 0);
    const double slack = slack_pct(r.bound_misses_1, r.sim_misses_1);
    worst_single = std::max(worst_single, slack);
    single.add_row({spec.tasks[t], std::to_string(r.sim_misses_1),
                    std::to_string(r.bound_misses_1), fmt_double(slack, 1)});
  }
  std::printf("%s\n", single.to_string().c_str());
  std::printf(
      "here the hardware retains lines across healthy-set interleavings\n"
      "that the reload assumption discards: up to %.1f%% of the bounded\n"
      "misses never happen. A flow-sensitive SRB analysis (the paper's\n"
      "future work) could reclaim exactly this gap.\n",
      worst_single);

  // The pairing: the same two regimes under the RW, whose static side is
  // the exact must-analysis of the degraded one-way cache — the slack
  // that remains is pure path/interleaving context, a floor for what any
  // flow-insensitive analysis leaves on the table.
  for (std::size_t m = 1; m < spec.mechanisms.size(); ++m) {
    if (spec.mechanisms[m] != Mechanism::kReliableWay) continue;
    std::printf("\nRW pairing (degraded sets keep the hardened way)\n\n");
    TextTable rw_table({"benchmark", "sim-all", "static-all", "slack%",
                        "sim-set0", "static-set0", "slack0%"});
    for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
      const JobResult& r = campaign.at(t, 0, 0, m);
      rw_table.add_row(
          {spec.tasks[t], std::to_string(r.sim_misses),
           std::to_string(r.bound_misses),
           fmt_double(slack_pct(r.bound_misses, r.sim_misses), 1),
           std::to_string(r.sim_misses_1), std::to_string(r.bound_misses_1),
           fmt_double(slack_pct(r.bound_misses_1, r.sim_misses_1), 1)});
    }
    std::printf("%s", rw_table.to_string().c_str());
  }

  if (!write_report_files(campaign, "tab_srb_conservatism")) {
    std::fprintf(stderr,
                 "error: failed to write tab_srb_conservatism.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — full grid in "
      "tab_srb_conservatism.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
