// Ablation E3: sensitivity of the pWCET estimates to the cell failure
// probability pfail, reproducing the observation motivating the paper
// (§I, quoting [1]): "pWCET estimates increase rapidly with the
// probability of faults as compared to fault-free WCET estimates", and
// showing how the RW/SRB mechanisms flatten that growth.
//
// Sweeps pfail over the range discussed in the introduction (6.1e-13 at
// 45 nm up to 1e-3 at low voltage / 12 nm-class nodes) for a representative
// subset of benchmarks; reports pWCET@1e-15 normalized to the fault-free
// WCET. Runs as a campaign on the thread pool (PWCET_THREADS workers);
// the machine-readable grid lands in tab_pfail_sweep.{csv,jsonl}.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "support/table.hpp"

int main() {
  using namespace pwcet;

  CampaignSpec spec;
  spec.tasks = {"adpcm", "fibcall", "matmult", "crc", "fft", "ud"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {6.1e-13, 1e-9, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.target_exceedance = 1e-15;

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  std::printf("E3 — pWCET@1e-15 / fault-free WCET vs pfail\n\n");
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    const double ff =
        static_cast<double>(campaign.at(t, 0, 0, 0).fault_free_wcet);
    TextTable table({"pfail", "none", "SRB", "RW"});
    for (std::size_t p = 0; p < spec.pfails.size(); ++p) {
      table.add_row({fmt_prob(spec.pfails[p]),
                     fmt_double(campaign.at(t, 0, p, 0).pwcet / ff, 3),
                     fmt_double(campaign.at(t, 0, p, 1).pwcet / ff, 3),
                     fmt_double(campaign.at(t, 0, p, 2).pwcet / ff, 3)});
    }
    std::printf("%s (fault-free WCET = %.0f cycles)\n%s\n",
                spec.tasks[t].c_str(), ff, table.to_string().c_str());
  }
  std::printf(
      "expected shape: 'none' grows rapidly once whole-set failures enter\n"
      "the 1e-15 budget; RW stays near 1.0 longest (no f = W column), SRB\n"
      "in between — the motivation for the paper's mechanisms.\n");

  if (!write_report_files(campaign, "tab_pfail_sweep")) {
    std::fprintf(stderr, "error: failed to write tab_pfail_sweep.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — full grid in "
      "tab_pfail_sweep.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
