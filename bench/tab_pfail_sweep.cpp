// Ablation E3: sensitivity of the pWCET estimates to the cell failure
// probability pfail, reproducing the observation motivating the paper
// (§I, quoting [1]): "pWCET estimates increase rapidly with the
// probability of faults as compared to fault-free WCET estimates", and
// showing how the RW/SRB mechanisms flatten that growth.
//
// The campaign itself is declared in specs/pfail_sweep.json — this binary
// is a thin wrapper that loads the spec (pass a path as argv[1] to run a
// variant), executes it on the thread pool (PWCET_THREADS workers) and
// pivots the grid into the normalized tables. Running
// `pwcet run specs/pfail_sweep.json` produces the byte-identical
// machine-readable report.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "support/table.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

int main(int argc, char** argv) {
  using namespace pwcet;
  const std::string spec_path =
      argc > 1 ? argv[1] : PWCET_SPECS_DIR "/pfail_sweep.json";

  SpecDocument doc;
  try {
    doc = load_spec_for_mechanism_tables(spec_path);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const CampaignSpec& spec = doc.spec;

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  if (spec.geometries.size() > 1 || spec.engines.size() > 1 ||
      spec.kinds.size() > 1)
    std::fprintf(stderr,
                 "note: these tables pivot only the first geometry/engine/"
                 "kind; the full grid is in tab_pfail_sweep.{csv,jsonl}\n");

  std::printf("E3 — pWCET@%s / fault-free WCET vs pfail\n\n",
              fmt_prob(spec.target_exceedance).c_str());
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    const double ff =
        static_cast<double>(campaign.at(t, 0, 0, 0).fault_free_wcet);
    TextTable table({"pfail", "none", "SRB", "RW"});
    for (std::size_t p = 0; p < spec.pfails.size(); ++p) {
      table.add_row({fmt_prob(spec.pfails[p]),
                     fmt_double(campaign.at(t, 0, p, 0).pwcet / ff, 3),
                     fmt_double(campaign.at(t, 0, p, 1).pwcet / ff, 3),
                     fmt_double(campaign.at(t, 0, p, 2).pwcet / ff, 3)});
    }
    std::printf("%s (fault-free WCET = %.0f cycles)\n%s\n",
                spec.tasks[t].c_str(), ff, table.to_string().c_str());
  }
  std::printf(
      "expected shape: 'none' grows rapidly once whole-set failures enter\n"
      "the 1e-15 budget; RW stays near 1.0 longest (no f = W column), SRB\n"
      "in between — the motivation for the paper's mechanisms.\n");

  if (!write_report_files(campaign, "tab_pfail_sweep")) {
    std::fprintf(stderr, "error: failed to write tab_pfail_sweep.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — full grid in "
      "tab_pfail_sweep.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
