// Ablation E3: sensitivity of the pWCET estimates to the cell failure
// probability pfail, reproducing the observation motivating the paper
// (§I, quoting [1]): "pWCET estimates increase rapidly with the
// probability of faults as compared to fault-free WCET estimates", and
// showing how the RW/SRB mechanisms flatten that growth.
//
// Sweeps pfail over the range discussed in the introduction (6.1e-13 at
// 45 nm up to 1e-3 at low voltage / 12 nm-class nodes) for a representative
// subset of benchmarks; reports pWCET@1e-15 normalized to the fault-free
// WCET.
#include <cstdio>
#include <string>
#include <vector>

#include "core/pwcet_analyzer.hpp"
#include "support/table.hpp"
#include "workloads/malardalen.hpp"

int main() {
  using namespace pwcet;
  const CacheConfig config = CacheConfig::paper_default();
  const double target = 1e-15;
  const std::vector<double> pfails{6.1e-13, 1e-9, 1e-7, 1e-6, 1e-5,
                                   1e-4,    1e-3};
  const std::vector<std::string> names{"adpcm", "fibcall", "matmult", "crc",
                                       "fft",   "ud"};

  std::printf("E3 — pWCET@1e-15 / fault-free WCET vs pfail\n\n");
  for (const std::string& name : names) {
    const Program program = workloads::build(name);
    const PwcetAnalyzer analyzer(program, config);
    const double ff = static_cast<double>(analyzer.fault_free_wcet());

    TextTable table({"pfail", "none", "SRB", "RW"});
    for (double pfail : pfails) {
      const FaultModel faults(pfail);
      const auto none = analyzer.analyze(faults, Mechanism::kNone);
      const auto srb =
          analyzer.analyze(faults, Mechanism::kSharedReliableBuffer);
      const auto rw = analyzer.analyze(faults, Mechanism::kReliableWay);
      table.add_row({fmt_prob(pfail),
                     fmt_double(none.pwcet(target) / ff, 3),
                     fmt_double(srb.pwcet(target) / ff, 3),
                     fmt_double(rw.pwcet(target) / ff, 3)});
    }
    std::printf("%s (fault-free WCET = %.0f cycles)\n%s\n", name.c_str(), ff,
                table.to_string().c_str());
  }
  std::printf(
      "expected shape: 'none' grows rapidly once whole-set failures enter\n"
      "the 1e-15 budget; RW stays near 1.0 longest (no f = W column), SRB\n"
      "in between — the motivation for the paper's mechanisms.\n");
  return 0;
}
