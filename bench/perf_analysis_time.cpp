// E7: cost of the analysis toolchain itself.
//
// The paper's toolchain ran Heptane + CPLEX offline; this bench documents
// that the from-scratch reproduction is interactive-speed. It is a thin
// wrapper over src/benchlib: four statistically sampled scenarios
// (PWCET_BENCH_WARMUP discarded + PWCET_BENCH_REPS recorded repetitions
// each, median/min/p90/MAD derived per metric) around the geometry-sweep
// campaign of benchlib::geometry_sweep_spec():
//
//   serial           1 thread, fresh in-memory store, unobserved
//   serial.observed  the same run with the metrics registry armed — its
//                    samples carry the per-phase breakdown, and its median
//                    against `serial` bounds the enabled-obs overhead
//   wide             N >= 4 worker threads, fresh store (scaling)
//   store            cold + warm run on one shared store per repetition
//                    (memo hit-rate, warm speedup)
//   pfail_sweep      the 126-job pfail sweep (pfail_sweep_spec()), serial
//                    + cold — the shared re-weighting bundle's workload
//   shard_merge      the same sweep as 3 serial shard runs into per-shard
//                    cache dirs + `merge` with store union; the merged
//                    report must be byte-identical to pfail_sweep's
//
// Every run's report is byte-identity-checked against the first serial
// report on the spot (the determinism acceptance check; a drift fails the
// process). The campaign numbers are emitted as machine-readable JSON
// (BENCH_perf_analysis_time.json at the repo root, where it is committed,
// and stdout): every pre-benchlib field is kept (values are now medians)
// and a "metrics" block adds the per-scenario robust statistics. For
// scenario-level micro benches and the regression gate, use `pwcet bench
// run` / `pwcet bench diff` (docs/benchmarking.md).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/harness.hpp"
#include "benchlib/report.hpp"
#include "benchlib/scenario.hpp"
#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/shard.hpp"
#include "obs/phase.hpp"
#include "obs/tracer.hpp"
#include "store/analysis_store.hpp"

namespace {

using namespace pwcet;

std::size_t env_count(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return static_cast<std::size_t>(parsed);
}

/// Deterministic campaign facts captured from the most recent repetition
/// (identical across repetitions by the determinism contract, so "last
/// wins" is exact, not approximate).
struct Captured {
  std::size_t jobs = 0;
  std::size_t wide_threads = 0;
  StoreStats cold;
  StoreStats warm;
};

/// Byte-identity across every run of every scenario: the first serial
/// report is the baseline. Records (rather than throws) so the JSON still
/// documents the failure before the process exits non-zero.
struct Identity {
  std::string baseline_csv;
  std::string baseline_jsonl;
  bool identical = true;
  void check(const CampaignResult& result) {
    const std::string csv = report_csv(result);
    const std::string jsonl = report_jsonl(result);
    if (baseline_csv.empty()) {
      baseline_csv = csv;
      baseline_jsonl = jsonl;
      return;
    }
    identical = identical && csv == baseline_csv && jsonl == baseline_jsonl;
  }
};

double median_ms(const benchlib::ScenarioReport& scenario,
                 const std::string& metric) {
  const auto it = scenario.stats.find(metric);
  return it == scenario.stats.end() ? 0.0 : it->second.median / 1e6;
}

/// The per-scenario robust statistics as one nested JSON object,
/// "scenario/metric" -> {count, median_ms, min_ms, p90_ms, mad_ms}.
std::string metrics_json(const std::vector<benchlib::ScenarioReport>& all) {
  std::string out = "{";
  for (const benchlib::ScenarioReport& scenario : all) {
    for (const auto& [metric, stats] : scenario.stats) {
      char cell[256];
      std::snprintf(cell, sizeof cell,
                    "%s\"%s/%s\":{\"count\":%zu,\"median_ms\":%.3f,"
                    "\"min_ms\":%.3f,\"p90_ms\":%.3f,\"mad_ms\":%.3f}",
                    out.size() > 1 ? "," : "", scenario.name.c_str(),
                    metric.c_str(), stats.count, stats.median / 1e6,
                    stats.min / 1e6, stats.p90 / 1e6, stats.mad / 1e6);
      out += cell;
    }
  }
  out += '}';
  return out;
}

}  // namespace

int main() {
  const CampaignSpec spec = benchlib::geometry_sweep_spec();
  benchlib::BenchOptions options;
  options.repetitions = env_count("PWCET_BENCH_REPS", 3);
  if (options.repetitions == 0) options.repetitions = 1;
  options.warmup = env_count("PWCET_BENCH_WARMUP", 1);

  // Clamped to the machine: oversubscribing a pure-CPU workload only adds
  // scheduling churn (the committed artifact once ran 4 workers on a
  // 1-thread machine and reported speedup 0.775 — a measurement of the
  // oversubscription penalty, not of scaling). An explicit PWCET_THREADS
  // still wins, so the penalty remains measurable on purpose.
  std::size_t wide_threads = threads_from_env();
  if (wide_threads == 0)
    wide_threads = std::max(1u, std::thread::hardware_concurrency());

  Captured captured;
  captured.wide_threads = wide_threads;
  Identity identity;

  // Every timing run gets its own explicit in-memory store: were the runs
  // to resolve store options from the environment, a PWCET_CACHE_DIR
  // artifact dir would let the first run disk-warm all later ones and
  // corrupt every speedup and cold-vs-warm number below.
  const auto campaign_once = [&](std::size_t threads) {
    AnalysisStore store;
    RunnerOptions runner;
    runner.threads = threads;
    runner.shared_store = &store;
    const CampaignResult result = run_campaign(spec, runner);
    captured.jobs = result.results.size();
    identity.check(result);
  };

  benchlib::BenchOptions unobserved = options;
  unobserved.capture_metrics = false;
  const benchlib::ScenarioReport serial =
      benchlib::summarize_scenario(benchlib::run_scenario(
          "serial", unobserved,
          [&](benchlib::Recorder&) { campaign_once(1); }));

  // Per-phase attribution (the observability layer's point): the same
  // serial run with the registry armed by the harness. Its report must
  // still be byte-identical — metrics are observation-only — and its
  // median against `serial` bounds the *enabled* collection overhead (the
  // disabled case is two relaxed loads per probe and is not measurable at
  // this granularity).
  const benchlib::ScenarioReport observed =
      benchlib::summarize_scenario(benchlib::run_scenario(
          "serial.observed", options,
          [&](benchlib::Recorder&) { campaign_once(1); }));

  const benchlib::ScenarioReport wide =
      benchlib::summarize_scenario(benchlib::run_scenario(
          "wide", unobserved,
          [&](benchlib::Recorder&) { campaign_once(wide_threads); }));

  // Store effect: the same campaign cold (fresh shared store) and warm
  // (second run on the same store, every analyzer core / penalty result
  // already memoized) inside one repetition, split on the monotonic
  // clock. The warm report must not drift by a byte.
  const benchlib::ScenarioReport store_effect =
      benchlib::summarize_scenario(benchlib::run_scenario(
          "store", unobserved, [&](benchlib::Recorder& recorder) {
            AnalysisStore store;
            RunnerOptions runner;
            runner.threads = wide_threads;
            runner.shared_store = &store;
            const std::uint64_t t0 = obs::monotonic_ns();
            const CampaignResult cold = run_campaign(spec, runner);
            const std::uint64_t t1 = obs::monotonic_ns();
            const CampaignResult warm = run_campaign(spec, runner);
            const std::uint64_t t2 = obs::monotonic_ns();
            recorder.record_ns("cold_ns", t1 - t0);
            recorder.record_ns("warm_ns", t2 - t1);
            identity.check(cold);
            identity.check(warm);
            captured.cold = cold.store_stats;
            captured.warm = warm.store_stats;
          }));

  // The pfail sweep (specs/pfail_sweep.json's grid, 126 jobs with 7
  // pfail-siblings per group): the workload the shared re-weighting
  // bundle exists for. Serial + cold so the number is comparable across
  // machines and PRs. Its reports are a different campaign, so it gets
  // its own identity baseline.
  const CampaignSpec pfail_spec = benchlib::pfail_sweep_spec();
  Identity pfail_identity;
  std::size_t pfail_jobs = 0;
  const benchlib::ScenarioReport pfail_sweep =
      benchlib::summarize_scenario(benchlib::run_scenario(
          "pfail_sweep", unobserved, [&](benchlib::Recorder&) {
            AnalysisStore store;
            RunnerOptions runner;
            runner.threads = 1;
            runner.shared_store = &store;
            const CampaignResult result = run_campaign(pfail_spec, runner);
            pfail_jobs = result.results.size();
            pfail_identity.check(result);
          }));

  // The same pfail sweep distributed: 3 shard runs into per-shard cache
  // directories + the merge with store union, timed end to end (fragment
  // I/O and union copies included — the real cost of distributing this
  // campaign across 3 workers, minus the wall-clock win of actually
  // running them concurrently). The merged report shares pfail_identity's
  // baseline: merge output must be byte-identical to the single-process
  // pfail sweep, checked on every repetition.
  std::size_t shard_merge_jobs = 0;
  const benchlib::ScenarioReport shard_merge =
      benchlib::summarize_scenario(benchlib::run_scenario(
          "shard_merge", unobserved, [&](benchlib::Recorder&) {
            namespace fs = std::filesystem;
            const fs::path root =
                fs::temp_directory_path() /
                ("pwcet_perf_shard_" + std::to_string(::getpid()));
            std::error_code ec;
            fs::remove_all(root, ec);  // cold per repetition
            ShardMergeOptions merge;
            merge.shard_count = 3;
            for (std::size_t i = 0; i < merge.shard_count; ++i) {
              const std::string dir =
                  (root / ("shard" + std::to_string(i))).string();
              ShardSelector shard;
              shard.index = i;
              shard.count = merge.shard_count;
              RunnerOptions runner;
              runner.threads = 1;
              run_campaign_shard(pfail_spec, shard, runner, dir);
              merge.from_dirs.push_back(dir);
            }
            merge.into_dir = (root / "union").string();
            const ShardMergeOutcome merged =
                merge_campaign_shards(pfail_spec, merge);
            shard_merge_jobs = merged.campaign.results.size();
            pfail_identity.check(merged.campaign);
            fs::remove_all(root, ec);
          }));

  const char* phase_names[] = {
      obs::phase_name::kCore,     obs::phase_name::kExtract,
      obs::phase_name::kClassify, obs::phase_name::kMaximize,
      obs::phase_name::kFmm,      obs::phase_name::kAnalyze,
      obs::phase_name::kPwf,      obs::phase_name::kBundle,
      obs::phase_name::kPenalty,  obs::phase_name::kConvolve,
  };
  std::string phases = "{";
  for (const char* name : phase_names) {
    char cell[96];
    std::snprintf(cell, sizeof cell, "%s\"%s\":%.3f",
                  phases.size() > 1 ? "," : "", name,
                  median_ms(observed, name));
    phases += cell;
  }
  phases += '}';

  const double serial_s = median_ms(serial, "wall_ns") / 1e3;
  const double observed_s = median_ms(observed, "wall_ns") / 1e3;
  const double wide_s = median_ms(wide, "wall_ns") / 1e3;
  const double cold_s = median_ms(store_effect, "cold_ns") / 1e3;
  const double warm_s = median_ms(store_effect, "warm_ns") / 1e3;
  const double pfail_s = median_ms(pfail_sweep, "wall_ns") / 1e3;
  const double shard_merge_s = median_ms(shard_merge, "wall_ns") / 1e3;
  const std::string metrics = metrics_json(
      {serial, observed, wide, store_effect, pfail_sweep, shard_merge});

  std::string line(2048 + metrics.size(), '\0');
  const int written = std::snprintf(
      line.data(), line.size(),
      "{\"name\":\"geometry_sweep_campaign\",\"jobs\":%zu,"
      "\"threads\":%zu,\"hardware_threads\":%u,"
      "\"repetitions\":%zu,\"warmup\":%zu,"
      "\"wall_seconds_1_thread\":%.6f,\"wall_seconds_n_threads\":%.6f,"
      "\"speedup\":%.3f,"
      "\"wall_seconds_cold_store\":%.6f,\"wall_seconds_warm_store\":%.6f,"
      "\"warm_speedup\":%.3f,"
      "\"store_cold_hits\":%llu,\"store_cold_misses\":%llu,"
      "\"store_warm_hits\":%llu,\"store_warm_misses\":%llu,"
      "\"store_warm_hit_rate\":%.3f,\"store_memo_entries\":%llu,"
      "\"pfail_sweep_jobs\":%zu,\"wall_seconds_pfail_sweep\":%.6f,"
      "\"shard_merge_jobs\":%zu,\"wall_seconds_shard_merge\":%.6f,"
      "\"phases_ms\":%s,\"obs_overhead_ratio\":%.3f,"
      "\"metrics\":%s,"
      "\"reports_identical\":%s}\n",
      captured.jobs, captured.wide_threads,
      std::thread::hardware_concurrency(), options.repetitions,
      options.warmup, serial_s, wide_s,
      wide_s > 0.0 ? serial_s / wide_s : 0.0, cold_s, warm_s,
      warm_s > 0.0 ? cold_s / warm_s : 0.0,
      static_cast<unsigned long long>(captured.cold.hits),
      static_cast<unsigned long long>(captured.cold.misses),
      static_cast<unsigned long long>(captured.warm.hits),
      static_cast<unsigned long long>(captured.warm.misses),
      captured.warm.hit_rate(),
      static_cast<unsigned long long>(captured.warm.entries), pfail_jobs,
      pfail_s, shard_merge_jobs, shard_merge_s, phases.c_str(),
      serial_s > 0.0 ? observed_s / serial_s : 0.0,
      metrics.c_str(),
      identity.identical && pfail_identity.identical ? "true" : "false");
  line.resize(written > 0 ? static_cast<std::size_t>(written) : 0);

  std::fputs(line.c_str(), stdout);
  // Repo root, not cwd: the JSON is committed as the perf trajectory
  // tracked across PRs (stdout carries the same line for ad-hoc runs).
  std::FILE* json =
      std::fopen(PWCET_REPO_ROOT "/BENCH_perf_analysis_time.json", "w");
  if (json != nullptr) {
    std::fputs(line.c_str(), json);
    std::fclose(json);
  }
  // A determinism regression must fail the process, not just print false.
  return identity.identical && pfail_identity.identical ? 0 : 1;
}
