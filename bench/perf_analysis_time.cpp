// E7: cost of the analysis toolchain itself (google-benchmark).
//
// The paper's toolchain ran Heptane + CPLEX offline; this bench documents
// that the from-scratch reproduction is interactive-speed: cache analysis,
// IPET construction + solve, FMM bundle, and the full pWCET pipeline.
#include <benchmark/benchmark.h>

#include "core/pwcet_analyzer.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/ipet.hpp"
#include "wcet/tree_engine.hpp"
#include "workloads/malardalen.hpp"

namespace {

using namespace pwcet;

void BM_BuildProgram(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(workloads::build("adpcm"));
}
BENCHMARK(BM_BuildProgram);

void BM_ClassifyFaultFree(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  for (auto _ : state)
    benchmark::DoNotOptimize(classify_fault_free(p.cfg(), refs, c));
}
BENCHMARK(BM_ClassifyFaultFree);

void BM_IpetConstructAndSolve(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel m = build_time_cost_model(p.cfg(), refs, cls, c);
  for (auto _ : state) {
    IpetCalculator ipet(p);
    benchmark::DoNotOptimize(ipet.maximize(m));
  }
}
BENCHMARK(BM_IpetConstructAndSolve);

void BM_IpetReoptimize(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel m = build_time_cost_model(p.cfg(), refs, cls, c);
  IpetCalculator ipet(p);
  for (auto _ : state) benchmark::DoNotOptimize(ipet.maximize(m));
}
BENCHMARK(BM_IpetReoptimize);

void BM_TreeEngine(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel m = build_time_cost_model(p.cfg(), refs, cls, c);
  for (auto _ : state) benchmark::DoNotOptimize(tree_maximize(p, m));
}
BENCHMARK(BM_TreeEngine);

void BM_FmmBundleTree(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr));
  }
}
BENCHMARK(BM_FmmBundleTree);

void BM_FmmBundleIlp(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  for (auto _ : state) {
    IpetCalculator ipet(p);
    benchmark::DoNotOptimize(
        compute_fmm_bundle(p, c, refs, WcetEngine::kIlp, &ipet));
  }
}
BENCHMARK(BM_FmmBundleIlp);

void BM_FullPwcetPipeline(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const FaultModel faults(1e-4);
  for (auto _ : state) {
    const PwcetAnalyzer analyzer(p, c);
    benchmark::DoNotOptimize(analyzer.analyze(faults, Mechanism::kNone));
    benchmark::DoNotOptimize(
        analyzer.analyze(faults, Mechanism::kReliableWay));
    benchmark::DoNotOptimize(
        analyzer.analyze(faults, Mechanism::kSharedReliableBuffer));
  }
}
BENCHMARK(BM_FullPwcetPipeline);

void BM_AnalyzePerMechanism(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const PwcetAnalyzer analyzer(p, c);
  const FaultModel faults(1e-4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.analyze(faults, Mechanism::kSharedReliableBuffer));
  }
}
BENCHMARK(BM_AnalyzePerMechanism);

}  // namespace

BENCHMARK_MAIN();
