// E7: cost of the analysis toolchain itself.
//
// The paper's toolchain ran Heptane + CPLEX offline; this bench documents
// that the from-scratch reproduction is interactive-speed: cache analysis,
// IPET construction + solve, FMM bundle, and the full pWCET pipeline
// (google-benchmark micro benches), plus the campaign engine's scenario
// throughput: a geometry-sweep campaign timed at 1 thread and at N
// threads, with the byte-identity of the two reports checked on the spot,
// and the content-addressed store's effect: the same campaign re-run warm
// on a shared store (memo hit-rate, entries, warm vs cold wall-clock, and
// byte-identity of the warm report), plus a per-phase wall-time breakdown
// from the obs metrics registry (src/obs/) with the enabled-collection
// overhead ratio. The campaign numbers are emitted as
// machine-readable JSON (BENCH_perf_analysis_time.json at the repo root,
// where it is committed, and stdout) so the perf trajectory can be
// tracked across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "core/pwcet_analyzer.hpp"
#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "obs/phase.hpp"
#include "store/analysis_store.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/ipet.hpp"
#include "wcet/tree_engine.hpp"
#include "workloads/malardalen.hpp"

namespace {

using namespace pwcet;

void BM_BuildProgram(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(workloads::build("adpcm"));
}
BENCHMARK(BM_BuildProgram);

void BM_ClassifyFaultFree(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  for (auto _ : state)
    benchmark::DoNotOptimize(classify_fault_free(p.cfg(), refs, c));
}
BENCHMARK(BM_ClassifyFaultFree);

void BM_IpetConstructAndSolve(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel m = build_time_cost_model(p.cfg(), refs, cls, c);
  for (auto _ : state) {
    IpetCalculator ipet(p);
    benchmark::DoNotOptimize(ipet.maximize(m));
  }
}
BENCHMARK(BM_IpetConstructAndSolve);

void BM_IpetReoptimize(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel m = build_time_cost_model(p.cfg(), refs, cls, c);
  IpetCalculator ipet(p);
  for (auto _ : state) benchmark::DoNotOptimize(ipet.maximize(m));
}
BENCHMARK(BM_IpetReoptimize);

void BM_TreeEngine(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  const auto cls = classify_fault_free(p.cfg(), refs, c);
  const CostModel m = build_time_cost_model(p.cfg(), refs, cls, c);
  for (auto _ : state) benchmark::DoNotOptimize(tree_maximize(p, m));
}
BENCHMARK(BM_TreeEngine);

void BM_FmmBundleTree(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compute_fmm_bundle(p, c, refs, WcetEngine::kTree, nullptr));
  }
}
BENCHMARK(BM_FmmBundleTree);

void BM_FmmBundleIlp(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const auto refs = extract_references(p.cfg(), c);
  for (auto _ : state) {
    IpetCalculator ipet(p);
    benchmark::DoNotOptimize(
        compute_fmm_bundle(p, c, refs, WcetEngine::kIlp, &ipet));
  }
}
BENCHMARK(BM_FmmBundleIlp);

void BM_FullPwcetPipeline(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const FaultModel faults(1e-4);
  for (auto _ : state) {
    const PwcetAnalyzer analyzer(p, c);
    benchmark::DoNotOptimize(analyzer.analyze(faults, Mechanism::kNone));
    benchmark::DoNotOptimize(
        analyzer.analyze(faults, Mechanism::kReliableWay));
    benchmark::DoNotOptimize(
        analyzer.analyze(faults, Mechanism::kSharedReliableBuffer));
  }
}
BENCHMARK(BM_FullPwcetPipeline);

void BM_AnalyzePerMechanism(benchmark::State& state) {
  const Program p = workloads::build("adpcm");
  const CacheConfig c = CacheConfig::paper_default();
  const PwcetAnalyzer analyzer(p, c);
  const FaultModel faults(1e-4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.analyze(faults, Mechanism::kSharedReliableBuffer));
  }
}
BENCHMARK(BM_AnalyzePerMechanism);

/// Campaign throughput: the geometry sweep of tab_geometry_sweep run
/// serially and on the pool, reports verified byte-identical. Returns
/// whether the byte-identity held (the determinism acceptance check).
bool run_campaign_scaling(std::FILE* json) {
  CampaignSpec spec;
  spec.tasks = {"adpcm", "matmult", "crc", "fft"};
  for (const auto& [sets, ways, line] :
       {std::tuple{32u, 2u, 16u}, std::tuple{16u, 4u, 16u},
        std::tuple{8u, 8u, 16u}, std::tuple{32u, 4u, 8u},
        std::tuple{8u, 4u, 32u}}) {
    CacheConfig config;
    config.sets = sets;
    config.ways = ways;
    config.line_bytes = line;
    spec.geometries.push_back(config);
  }
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};

  // The acceptance bar is N >= 4: run with at least 4 workers even on
  // narrower machines (oversubscription is harmless for the identity
  // check; the speedup column then simply reports ~1).
  std::size_t threads = threads_from_env();
  if (threads == 0)
    threads = std::max(4u, std::thread::hardware_concurrency());
  threads = std::max<std::size_t>(4, threads);

  // Every timing run gets its own explicit in-memory store: were the
  // runs to resolve store options from the environment, a PWCET_CACHE_DIR
  // artifact dir would let the first run disk-warm all later ones and
  // corrupt every speedup and cold-vs-warm number below.
  AnalysisStore base_store, wide_store, reuse_store;
  RunnerOptions serial;
  serial.threads = 1;
  serial.shared_store = &base_store;
  RunnerOptions parallel;
  parallel.threads = threads;
  parallel.shared_store = &wide_store;

  const CampaignResult base = run_campaign(spec, serial);
  const CampaignResult wide = run_campaign(spec, parallel);

  // Store effect: the same campaign cold (fresh shared store) and warm
  // (second run on the same store, every analyzer core / penalty result
  // already memoized). The warm report must not drift by a byte.
  RunnerOptions stored = parallel;
  stored.shared_store = &reuse_store;
  const CampaignResult cold = run_campaign(spec, stored);
  const CampaignResult warm = run_campaign(spec, stored);

  // Per-phase attribution (the observability layer's point): one more cold
  // serial run with the metrics registry armed. Its report must still be
  // byte-identical — metrics are observation-only — and its wall-clock
  // against the unobserved serial run bounds the *enabled* collection
  // overhead (the disabled case is two relaxed loads per probe and is not
  // measurable at this granularity).
  AnalysisStore obs_store;
  RunnerOptions instrumented = serial;
  instrumented.shared_store = &obs_store;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.clear();
  registry.enable();
  const CampaignResult observed = run_campaign(spec, instrumented);
  registry.disable();

  const char* phase_names[] = {
      obs::phase_name::kCore,     obs::phase_name::kExtract,
      obs::phase_name::kClassify, obs::phase_name::kMaximize,
      obs::phase_name::kFmm,      obs::phase_name::kAnalyze,
      obs::phase_name::kPwf,      obs::phase_name::kPenalty,
      obs::phase_name::kConvolve,
  };
  std::string phases = "{";
  for (const char* name : phase_names) {
    double total_ms = 0.0;
    for (const auto& h : registry.histograms())
      if (h.name == name) total_ms = h.snapshot.sum_ns / 1e6;
    char cell[96];
    std::snprintf(cell, sizeof cell, "%s\"%s\":%.3f",
                  phases.size() > 1 ? "," : "", name, total_ms);
    phases += cell;
  }
  phases += '}';
  registry.clear();

  const std::string base_csv = report_csv(base);
  const bool identical = base_csv == report_csv(wide) &&
                         report_jsonl(base) == report_jsonl(wide) &&
                         base_csv == report_csv(cold) &&
                         base_csv == report_csv(warm) &&
                         base_csv == report_csv(observed);

  char line[2048];
  std::snprintf(
      line, sizeof line,
      "{\"name\":\"geometry_sweep_campaign\",\"jobs\":%zu,"
      "\"threads\":%zu,\"hardware_threads\":%u,"
      "\"wall_seconds_1_thread\":%.6f,\"wall_seconds_n_threads\":%.6f,"
      "\"speedup\":%.3f,"
      "\"wall_seconds_cold_store\":%.6f,\"wall_seconds_warm_store\":%.6f,"
      "\"warm_speedup\":%.3f,"
      "\"store_cold_hits\":%llu,\"store_cold_misses\":%llu,"
      "\"store_warm_hits\":%llu,\"store_warm_misses\":%llu,"
      "\"store_warm_hit_rate\":%.3f,\"store_memo_entries\":%llu,"
      "\"phases_ms\":%s,\"obs_overhead_ratio\":%.3f,"
      "\"reports_identical\":%s}\n",
      base.results.size(), wide.threads_used,
      std::thread::hardware_concurrency(), base.wall_seconds,
      wide.wall_seconds, base.wall_seconds / wide.wall_seconds,
      cold.wall_seconds, warm.wall_seconds,
      cold.wall_seconds / warm.wall_seconds,
      static_cast<unsigned long long>(cold.store_stats.hits),
      static_cast<unsigned long long>(cold.store_stats.misses),
      static_cast<unsigned long long>(warm.store_stats.hits),
      static_cast<unsigned long long>(warm.store_stats.misses),
      warm.store_stats.hit_rate(),
      static_cast<unsigned long long>(warm.store_stats.entries),
      phases.c_str(), observed.wall_seconds / base.wall_seconds,
      identical ? "true" : "false");
  std::fputs(line, stdout);
  if (json != nullptr) std::fputs(line, json);
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  // --benchmark_list_tests is a pure query; don't run the campaign (and
  // don't clobber the JSON from a real run) just to enumerate benches.
  // Scanned before Initialize, which strips the flags it recognizes.
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmark_list_tests", 0) != 0) continue;
    // Bare flag or any truthy spelling google-benchmark accepts.
    const std::string value = arg.size() > 22 && arg[22] == '='
                                  ? arg.substr(23)
                                  : "true";
    list_only = value == "true" || value == "1" || value == "yes" ||
                value == "on";
  }

  // Flag validation next, so a typo'd invocation fails fast instead of
  // paying for two full campaign runs.
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  bool identical = true;
  if (!list_only) {
    // Repo root, not cwd: the JSON is committed as the perf trajectory
    // tracked across PRs (stdout carries the same line for ad-hoc runs).
    std::FILE* json =
        std::fopen(PWCET_REPO_ROOT "/BENCH_perf_analysis_time.json", "w");
    identical = run_campaign_scaling(json);
    if (json != nullptr) std::fclose(json);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // A determinism regression must fail the process, not just print false.
  return identical ? 0 : 1;
}
