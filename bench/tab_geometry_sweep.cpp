// Ablation E4: the RW/SRB trade-off across cache geometries (§III-A notes
// the mechanisms differ in hardware cost and in how much locality they
// preserve; §IV-A fixes 1 KB 4-way/16 B because it minimized pWCET in [1]).
//
// Sweeps associativity, set count and line size around the paper point at
// constant 1 KB capacity and reports pWCET@1e-15 normalized to the
// no-protection pWCET of the same geometry, plus absolute values — showing
// where each mechanism pays off and how the RW's reserved way interacts
// with low associativity.
//
// The sweep is a campaign (engine/campaign.hpp) run on the thread pool
// (PWCET_THREADS workers; default one per hardware thread); the full
// machine-readable grid lands in tab_geometry_sweep.{csv,jsonl}.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "support/table.hpp"

int main() {
  using namespace pwcet;
  const double target = 1e-15;

  CampaignSpec spec;
  spec.tasks = {"adpcm", "matmult", "crc", "fft", "fibcall", "ud"};
  // Constant 1 KB capacity: sets * ways * line = 1024.
  for (const auto& [sets, ways, line] :
       {std::tuple{32u, 2u, 16u},   // low associativity
        std::tuple{16u, 4u, 16u},   // paper configuration
        std::tuple{8u, 8u, 16u},    // high associativity
        std::tuple{32u, 4u, 8u},    // small lines
        std::tuple{8u, 4u, 32u}}) {  // large lines (more bits => higher pbf)
    CacheConfig config;
    config.sets = sets;
    config.ways = ways;
    config.line_bytes = line;
    spec.geometries.push_back(config);
  }
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.target_exceedance = target;

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  std::printf("E4 — geometry sweep at 1 KB, pfail = 1e-4, target 1e-15\n");
  std::printf("(normalized: pWCET / no-protection pWCET of same geometry)\n\n");
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    TextTable table({"geometry", "WCET_ff", "none(abs)", "SRB", "RW"});
    for (std::size_t g = 0; g < spec.geometries.size(); ++g) {
      const JobResult& none = campaign.at(t, g, 0, 0);
      const JobResult& srb = campaign.at(t, g, 0, 1);
      const JobResult& rw = campaign.at(t, g, 0, 2);
      const CacheConfig& geometry = spec.geometries[g];
      char label[32];
      std::snprintf(label, sizeof label, "%ux%uw x %uB", geometry.sets,
                    geometry.ways, geometry.line_bytes);
      table.add_row({label, std::to_string(none.fault_free_wcet),
                     fmt_double(none.pwcet, 0),
                     fmt_double(srb.pwcet / none.pwcet, 3),
                     fmt_double(rw.pwcet / none.pwcet, 3)});
    }
    std::printf("%s\n%s\n", spec.tasks[t].c_str(),
                table.to_string().c_str());
  }
  std::printf(
      "expected: at 2-way the RW halves the usable cache (weakest RW case);\n"
      "larger lines raise pbf (Eq. 1: more bits per block) and penalize the\n"
      "unprotected cache hardest.\n");

  if (!write_report_files(campaign, "tab_geometry_sweep")) {
    std::fprintf(stderr, "error: failed to write tab_geometry_sweep.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — full grid in "
      "tab_geometry_sweep.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
