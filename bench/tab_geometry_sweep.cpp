// Ablation E4: the RW/SRB trade-off across cache geometries (§III-A notes
// the mechanisms differ in hardware cost and in how much locality they
// preserve; §IV-A fixes 1 KB 4-way/16 B because it minimized pWCET in [1]).
//
// Sweeps associativity, set count and line size around the paper point at
// constant 1 KB capacity and reports pWCET@1e-15 normalized to the
// no-protection pWCET of the same geometry, plus absolute values — showing
// where each mechanism pays off and how the RW's reserved way interacts
// with low associativity.
#include <cstdio>
#include <string>
#include <vector>

#include "core/pwcet_analyzer.hpp"
#include "support/table.hpp"
#include "workloads/malardalen.hpp"

namespace {

struct Geometry {
  std::uint32_t sets;
  std::uint32_t ways;
  std::uint32_t line_bytes;
};

}  // namespace

int main() {
  using namespace pwcet;
  const FaultModel faults(1e-4);
  const double target = 1e-15;
  // Constant 1 KB capacity: sets * ways * line = 1024.
  const std::vector<Geometry> geometries{
      {32, 2, 16},  // low associativity
      {16, 4, 16},  // paper configuration
      {8, 8, 16},   // high associativity
      {32, 4, 8},   // small lines
      {8, 4, 32},   // large lines (more bits per block => higher pbf)
  };
  const std::vector<std::string> names{"adpcm", "matmult", "crc", "fft",
                                       "fibcall", "ud"};

  std::printf("E4 — geometry sweep at 1 KB, pfail = 1e-4, target 1e-15\n");
  std::printf("(normalized: pWCET / no-protection pWCET of same geometry)\n\n");
  for (const std::string& name : names) {
    const Program program = workloads::build(name);
    TextTable table({"geometry", "WCET_ff", "none(abs)", "SRB", "RW"});
    for (const Geometry& g : geometries) {
      CacheConfig config;
      config.sets = g.sets;
      config.ways = g.ways;
      config.line_bytes = g.line_bytes;
      const PwcetAnalyzer analyzer(program, config);
      const auto none = analyzer.analyze(faults, Mechanism::kNone);
      const auto srb =
          analyzer.analyze(faults, Mechanism::kSharedReliableBuffer);
      const auto rw = analyzer.analyze(faults, Mechanism::kReliableWay);
      const double base = static_cast<double>(none.pwcet(target));
      char label[32];
      std::snprintf(label, sizeof label, "%ux%uw x %uB", g.sets, g.ways,
                    g.line_bytes);
      table.add_row({label, std::to_string(analyzer.fault_free_wcet()),
                     std::to_string(none.pwcet(target)),
                     fmt_double(srb.pwcet(target) / base, 3),
                     fmt_double(rw.pwcet(target) / base, 3)});
    }
    std::printf("%s\n%s\n", name.c_str(), table.to_string().c_str());
  }
  std::printf(
      "expected: at 2-way the RW halves the usable cache (weakest RW case);\n"
      "larger lines raise pbf (Eq. 1: more bits per block) and penalize the\n"
      "unprotected cache hardest.\n");
  return 0;
}
