// Ablation E4: the RW/SRB trade-off across cache geometries (§III-A notes
// the mechanisms differ in hardware cost and in how much locality they
// preserve; §IV-A fixes 1 KB 4-way/16 B because it minimized pWCET in [1]).
//
// The campaign itself is declared in specs/geometry_sweep.json — this
// binary is a thin wrapper that loads the spec (pass a path as argv[1] to
// run a variant), executes it on the thread pool (PWCET_THREADS workers)
// and pivots the grid into the paper-style normalized tables. Running
// `pwcet run specs/geometry_sweep.json` produces the byte-identical
// machine-readable report.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "support/table.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

int main(int argc, char** argv) {
  using namespace pwcet;
  const std::string spec_path =
      argc > 1 ? argv[1] : PWCET_SPECS_DIR "/geometry_sweep.json";

  SpecDocument doc;
  try {
    doc = load_spec_for_mechanism_tables(spec_path);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const CampaignSpec& spec = doc.spec;

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  if (spec.pfails.size() > 1 || spec.engines.size() > 1 ||
      spec.kinds.size() > 1)
    std::fprintf(stderr,
                 "note: these tables pivot only the first pfail/engine/kind; "
                 "the full grid is in tab_geometry_sweep.{csv,jsonl}\n");

  std::printf("E4 — geometry sweep at 1 KB, pfail = %s, target %s\n",
              fmt_prob(spec.pfails[0]).c_str(),
              fmt_prob(spec.target_exceedance).c_str());
  std::printf("(normalized: pWCET / no-protection pWCET of same geometry)\n\n");
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    TextTable table({"geometry", "WCET_ff", "none(abs)", "SRB", "RW"});
    for (std::size_t g = 0; g < spec.geometries.size(); ++g) {
      const JobResult& none = campaign.at(t, g, 0, 0);
      const JobResult& srb = campaign.at(t, g, 0, 1);
      const JobResult& rw = campaign.at(t, g, 0, 2);
      const CacheConfig& geometry = spec.geometries[g];
      char label[32];
      std::snprintf(label, sizeof label, "%ux%uw x %uB", geometry.sets,
                    geometry.ways, geometry.line_bytes);
      table.add_row({label, std::to_string(none.fault_free_wcet),
                     fmt_double(none.pwcet, 0),
                     fmt_double(srb.pwcet / none.pwcet, 3),
                     fmt_double(rw.pwcet / none.pwcet, 3)});
    }
    std::printf("%s\n%s\n", spec.tasks[t].c_str(),
                table.to_string().c_str());
  }
  std::printf(
      "expected: at 2-way the RW halves the usable cache (weakest RW case);\n"
      "larger lines raise pbf (Eq. 1: more bits per block) and penalize the\n"
      "unprotected cache hardest.\n");

  if (!write_report_files(campaign, "tab_geometry_sweep")) {
    std::fprintf(stderr, "error: failed to write tab_geometry_sweep.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — full grid in "
      "tab_geometry_sweep.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
