// Extension E8 (paper §VI future work): data-cache deployment study.
//
// For table/scalar-load kernels, compares pWCET@1e-15 across mechanism
// deployments on a split 1 KB I / 512 B D cache: no protection, SRB on
// both, RW on both, and the cost-conscious mixed option (RW on the
// I-cache, SRB on the D-cache).
//
// The campaign itself is declared in specs/dcache_extension.json — this
// binary is a thin wrapper that loads the spec (pass a path as argv[1] to
// run a variant), executes it on the thread pool (PWCET_THREADS workers)
// and pivots the mechanisms x dcache_mechanisms product into the
// deployment table. Running `pwcet run specs/dcache_extension.json`
// produces the byte-identical machine-readable report.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/spec_io.hpp"
#include "support/table.hpp"

#ifndef PWCET_SPECS_DIR
#define PWCET_SPECS_DIR "specs"
#endif

int main(int argc, char** argv) {
  using namespace pwcet;
  const std::string spec_path =
      argc > 1 ? argv[1] : PWCET_SPECS_DIR "/dcache_extension.json";

  SpecDocument doc;
  try {
    doc = load_spec_for_mechanism_tables(spec_path);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const CampaignSpec& spec = doc.spec;
  // This table additionally pivots the data-cache pairing: one enabled
  // dcache geometry, with the uniform ("same") and mixed ("SRB")
  // deployments on the dcache-mechanism axis.
  if (spec.dcaches.size() != 1 || !spec.dcaches[0].enabled ||
      spec.dcache_mechanisms !=
          std::vector<DcacheMechanism>{DcacheMechanism::kSame,
                                       DcacheMechanism::kSharedReliableBuffer}) {
    std::fprintf(stderr,
                 "%s: this table needs one enabled \"dcaches\" geometry and "
                 "dcache_mechanisms [\"same\", \"SRB\"]; use `pwcet run` "
                 "for other shapes\n",
                 spec_path.c_str());
    return 1;
  }

  RunnerOptions options;
  options.threads = threads_from_env();
  const CampaignResult campaign = run_campaign(spec, options);

  const CacheConfig& icache = spec.geometries[0];
  const CacheConfig& dcache = spec.dcaches[0].geometry;
  std::printf(
      "E8 — data-cache extension (paper §VI future work)\n"
      "I-cache %ux%ux%uB, D-cache %ux%ux%uB, pfail = %s, @%s\n\n",
      icache.sets, icache.ways, icache.line_bytes, dcache.sets, dcache.ways,
      dcache.line_bytes, fmt_prob(spec.pfails[0]).c_str(),
      fmt_prob(spec.target_exceedance).c_str());

  TextTable table({"task", "fault-free", "none", "SRB/SRB", "RW/SRB",
                   "RW/RW"});
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    // mechanisms [none, SRB, RW] x dcache_mechanisms [same, SRB]: the four
    // deployments of the E8 table; (none, SRB) and (SRB, SRB-dup) cells
    // stay in the report files only.
    const JobResult& none = campaign.at(t, 0, 0, 0, 0, 0, 0, 0);
    const JobResult& srb = campaign.at(t, 0, 0, 1, 0, 0, 0, 0);
    const JobResult& rw = campaign.at(t, 0, 0, 2, 0, 0, 0, 0);
    const JobResult& mixed = campaign.at(t, 0, 0, 2, 0, 0, 0, 1);
    const double base = none.pwcet;
    table.add_row({spec.tasks[t],
                   fmt_double(static_cast<double>(none.fault_free_wcet) / base,
                              3),
                   "1.000", fmt_double(srb.pwcet / base, 3),
                   fmt_double(mixed.pwcet / base, 3),
                   fmt_double(rw.pwcet / base, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "normalized to the unprotected I+D pWCET. The mixed RW/SRB row is\n"
      "the cost-conscious deployment: a hardened way on the I-cache plus a\n"
      "single hardened buffer on the D-cache; it sits between the uniform\n"
      "deployments at a fraction of the hardened-bit budget.\n");

  if (!write_report_files(campaign, "tab_dcache_extension")) {
    std::fprintf(stderr,
                 "error: failed to write tab_dcache_extension.{csv,jsonl}\n");
    return 1;
  }
  std::printf(
      "\n[%zu jobs on %zu threads in %.2fs — full grid in "
      "tab_dcache_extension.{csv,jsonl}]\n",
      campaign.results.size(), campaign.threads_used, campaign.wall_seconds);
  return 0;
}
