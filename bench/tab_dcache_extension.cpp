// Extension E8 (paper §VI future work): data-cache deployment study.
//
// For table/scalar-load kernels, compares pWCET@1e-15 across mechanism
// deployments on a split 1 KB I / 512 B D cache: no protection, SRB on
// both, RW on both, and the cost-conscious mixed option (RW on the
// I-cache, SRB on the D-cache).
#include <cstdio>

#include "dcache/dcache_analysis.hpp"
#include "support/table.hpp"

namespace {

using namespace pwcet;

/// Interpolation kernel: scalar state + a walked coefficient table.
Program interp_kernel() {
  ProgramBuilder b("interp");
  std::vector<Address> body_loads;
  for (Address i = 0; i < 6; ++i) body_loads.push_back(0x4000 + 4 * i);
  for (Address i = 0; i < 8; ++i) body_loads.push_back(0x5000 + 16 * i);
  b.add_function("main",
                 b.seq({
                     b.code_with_loads(40, {0x4000, 0x4010, 0x4020}),
                     b.loop(1, 48, b.code_with_loads(36, body_loads)),
                     b.code(12),
                 }));
  return b.build(0);
}

/// State machine with a dispatch table and per-state scalar loads.
Program dispatch_kernel() {
  ProgramBuilder b("dispatch");
  std::vector<Address> dispatch;
  for (Address i = 0; i < 12; ++i) dispatch.push_back(0x6000 + 8 * i);
  const StmtId body = b.seq({
      b.code_with_loads(10, dispatch),
      b.if_else(2, b.code_with_loads(18, {0x7000, 0x7004, 0x7010}),
                b.code_with_loads(22, {0x7040, 0x7044})),
  });
  b.add_function("main", b.seq({
                             b.code_with_loads(30, {0x7000}),
                             b.loop(1, 40, body),
                         }));
  return b.build(0);
}

}  // namespace

int main() {
  const CacheConfig icache = CacheConfig::paper_default();  // 1 KB
  CacheConfig dcache;  // 512 B: 8 sets x 4 ways x 16 B
  dcache.sets = 8;
  const FaultModel faults(1e-4);
  const double target = 1e-15;

  std::printf(
      "E8 — data-cache extension (paper §VI future work)\n"
      "I-cache 1 KB 4-way, D-cache 512 B 4-way, pfail = 1e-4, @1e-15\n\n");

  TextTable table({"task", "fault-free", "none", "SRB/SRB", "RW/SRB",
                   "RW/RW"});
  for (Program (*make)() : {&interp_kernel, &dispatch_kernel}) {
    const Program program = make();
    const CombinedPwcetAnalyzer a(program, icache, dcache);
    const auto none = a.analyze(faults, Mechanism::kNone);
    const auto srb = a.analyze(faults, Mechanism::kSharedReliableBuffer);
    const auto rw = a.analyze(faults, Mechanism::kReliableWay);
    const auto mixed = a.analyze_mixed(faults, Mechanism::kReliableWay,
                                       Mechanism::kSharedReliableBuffer);
    const auto base = static_cast<double>(none.pwcet(target));
    table.add_row({program.name(),
                   fmt_double(a.fault_free_wcet() / base, 3), "1.000",
                   fmt_double(srb.pwcet(target) / base, 3),
                   fmt_double(mixed.pwcet(target) / base, 3),
                   fmt_double(rw.pwcet(target) / base, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "normalized to the unprotected I+D pWCET. The mixed RW/SRB row is\n"
      "the cost-conscious deployment: a hardened way on the I-cache plus a\n"
      "single hardened buffer on the D-cache; it sits between the uniform\n"
      "deployments at a fraction of the hardened-bit budget.\n");
  return 0;
}
