// Top-level probabilistic WCET analysis (the paper's contribution).
//
// Given a task, a cache configuration, a cell failure probability and a
// reliability mechanism, produces the pWCET distribution:
//
//   1. fault-free WCET via static cache analysis + IPET (§II-B);
//   2. FMM via per-(set, fault-count) delta maximization (§II-C, §III-B);
//   3. per-set penalty distributions {(miss_penalty * FMM[s][f], pwf(f))}
//      with pwf from Eq. (2) (none/SRB) or Eq. (3) (RW);
//   4. convolution across independent sets (Fig. 1.b) with conservative
//      support coalescing;
//   5. pWCET(p) = fault-free WCET + penalty quantile at exceedance p.
//
// The result's exceedance function is the complementary cumulative
// distribution plotted in the paper's Fig. 3; the 1e-15 quantile is the
// pWCET estimate reported in Fig. 4.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/references.hpp"
#include "cfg/program.hpp"
#include "fault/fault_model.hpp"
#include "prob/discrete_distribution.hpp"
#include "store/key.hpp"
#include "wcet/fmm.hpp"
#include "wcet/ipet.hpp"

namespace pwcet {

class AnalysisStore;
class ThreadPool;

struct PwcetOptions {
  /// Engine for the fault-free WCET and the FMM delta maximizations.
  WcetEngine engine = WcetEngine::kIlp;
  /// Max support points kept between set convolutions (conservative
  /// coalescing; larger = tighter, slower).
  std::size_t max_distribution_points = 2048;
  /// Optional worker pool (engine/thread_pool.hpp). When set, the
  /// independent per-set work — penalty-distribution construction, the
  /// pairwise convolution rounds, and (tree engine only) the FMM rows —
  /// fans out across the pool. Results are identical with and without a
  /// pool, at any thread count: work is partitioned by set index and the
  /// convolution tree has a fixed shape. The pool must outlive the
  /// analyzer; nullptr runs everything on the calling thread.
  ThreadPool* pool = nullptr;
  /// Optional content-addressed store (store/analysis_store.hpp), which
  /// memoizes three layers: the analyzer core (fault-free WCET + FMM
  /// bundle, including the tree engine's per-set rows), per-set penalty
  /// distributions (content-addressed on the FMM row itself, so identical
  /// rows share across sets, mechanisms and even tasks), and whole
  /// per-(mechanism, pfail) results — the latter also persisted to disk
  /// when the store has an artifact tier. Every key captures all inputs
  /// of the computation it names and every computation is deterministic,
  /// so results with a store are byte-identical to cold recomputation at
  /// any thread count (asserted by tests/store_test.cpp). The store must
  /// outlive the analyzer; nullptr computes everything from scratch.
  AnalysisStore* store = nullptr;
};

/// One (exceedance probability, pWCET) point of the CCDF.
struct CcdfPoint {
  Cycles wcet = 0;
  Probability exceedance = 0.0;
};

/// Full result of one mechanism analysis.
struct PwcetResult {
  Mechanism mechanism = Mechanism::kNone;
  Cycles fault_free_wcet = 0;
  DiscreteDistribution penalty;  ///< fault-induced penalty (cycles)
  FaultMissMap fmm;

  /// pWCET at exceedance probability p: the value the WCET random variable
  /// exceeds with probability at most p (e.g. p = 1e-15 for Fig. 4).
  Cycles pwcet(Probability p) const {
    return fault_free_wcet + penalty.quantile_exceedance(p);
  }

  /// Exceedance probability of a given WCET value (Fig. 3 y-axis).
  Probability exceedance(Cycles wcet) const {
    return penalty.exceedance(wcet - fault_free_wcet);
  }

  /// The CCDF as explicit points (one per penalty support atom).
  std::vector<CcdfPoint> ccdf() const;
};

/// Store key of a single-cache analyzer core: program content x cache
/// config x engine. Defined here (not inline in the constructor) because
/// the combined I+D analyzer (dcache/dcache_analysis.hpp) derives its
/// icache FMM-row prefix from the *same* recipe so the two analyzer
/// flavours share memoized rows — one definition, no silent drift.
StoreKey pwcet_core_key(const Program& program, const CacheConfig& config,
                        WcetEngine engine);

/// Per-set penalty-distribution pipeline shared by the single-cache
/// analyzer below and the combined I+D analyzer
/// (dcache/dcache_analysis.hpp): builds one distribution per set (atom
/// value = miss_penalty * ceil(FMM[s][f]), probability pwf[f]) and
/// combines the independent sets with the fixed-shape pairwise convolution
/// tree. With a store, each set's distribution is memoized under a content
/// key (FMM row, pwf, miss penalty) so identical rows share across sets,
/// mechanisms, caches and even tasks. Deterministic: identical bits at any
/// thread count, store on or off.
DiscreteDistribution build_penalty_distribution(
    const FaultMissMap& fmm, const CacheConfig& config,
    const std::vector<Probability>& pwf, std::size_t max_points,
    ThreadPool* pool, AnalysisStore* store);

/// Analyzer bound to one (program, cache) pair. The expensive shared work
/// (reference extraction, fault-free classification, IPET phase 1, FMM
/// bundle) is done once and reused across mechanisms and pfail values.
class PwcetAnalyzer {
 public:
  PwcetAnalyzer(const Program& program, const CacheConfig& config,
                const PwcetOptions& options = {});

  /// Fault-free (deterministic) WCET in cycles.
  Cycles fault_free_wcet() const { return fault_free_wcet_; }

  /// pWCET analysis for one mechanism at one cell failure probability.
  PwcetResult analyze(const FaultModel& faults, Mechanism mechanism) const;

  const FmmBundle& fmm_bundle() const { return fmm_; }
  const CacheConfig& config() const { return config_; }
  const Program& program() const { return program_; }

  /// Store key of the analyzer core: program content x cache config x
  /// engine — the prefix every per-result key chains from.
  const StoreKey& core_key() const { return core_key_; }

 private:
  const Program& program_;
  CacheConfig config_;
  PwcetOptions options_;
  std::unique_ptr<IpetCalculator> ipet_;
  Cycles fault_free_wcet_ = 0;
  FmmBundle fmm_;
  StoreKey core_key_;
};

}  // namespace pwcet
