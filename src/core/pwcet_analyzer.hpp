/// \file
/// Single-cache pWCET analyzer — a thin facade over the domain-pluggable
/// pipeline (analysis/pipeline.hpp) composing exactly one IcacheDomain.
///
/// The analysis flow itself — classification, FMM, pwf weighting, per-set
/// penalty construction, convolution, the three memoization layers — lives
/// once, in PwcetPipeline; this class only preserves the historical
/// construction-site API (and, via the pipeline's compatibility contract,
/// the historical "pwcet-core-v1"/"pwcet-result-v1" store keys bit for
/// bit). PwcetOptions, PwcetResult, CcdfPoint and pwcet_core_key are
/// re-exported from the analysis layer for source compatibility.
#pragma once

#include "analysis/icache_domain.hpp"
#include "analysis/pipeline.hpp"

namespace pwcet {

/// Analyzer bound to one (program, instruction-cache) pair. The expensive
/// shared work (reference extraction, fault-free classification, IPET
/// phase 1, FMM bundle) is done once and reused across mechanisms and
/// pfail values.
class PwcetAnalyzer {
 public:
  PwcetAnalyzer(const Program& program, const CacheConfig& config,
                const PwcetOptions& options = {});

  /// Fault-free (deterministic) WCET in cycles.
  Cycles fault_free_wcet() const { return pipeline_.fault_free_wcet(); }

  /// pWCET analysis for one mechanism at one cell failure probability.
  PwcetResult analyze(const FaultModel& faults, Mechanism mechanism) const {
    return pipeline_.analyze(faults, mechanism);
  }

  const FmmBundle& fmm_bundle() const { return pipeline_.fmm(0); }
  const CacheConfig& config() const { return pipeline_.domain(0).config(); }
  const Program& program() const { return pipeline_.program(); }

  /// Store key of the analyzer core: program content x cache config x
  /// engine — the prefix every per-result key chains from.
  const StoreKey& core_key() const { return pipeline_.core_key(); }

 private:
  PwcetPipeline pipeline_;
};

}  // namespace pwcet
