#include "core/pwcet_analyzer.hpp"

namespace pwcet {

PwcetAnalyzer::PwcetAnalyzer(const Program& program,
                             const CacheConfig& config,
                             const PwcetOptions& options)
    : pipeline_(program, {std::make_shared<const IcacheDomain>(config)},
                options) {}

}  // namespace pwcet
