#include "core/pwcet_analyzer.hpp"

#include <cmath>

#include "engine/thread_pool.hpp"
#include "support/contracts.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {

PwcetAnalyzer::PwcetAnalyzer(const Program& program,
                             const CacheConfig& config,
                             const PwcetOptions& options)
    : program_(program), config_(config), options_(options) {
  config_.validate();
  refs_ = extract_references(program.cfg(), config_);

  if (options_.engine == WcetEngine::kIlp)
    ipet_ = std::make_unique<IpetCalculator>(program_);

  const ClassificationMap classification =
      classify_fault_free(program.cfg(), refs_, config_);
  const CostModel time_model =
      build_time_cost_model(program.cfg(), refs_, classification, config_);

  double wcet = 0.0;
  if (options_.engine == WcetEngine::kIlp)
    wcet = ipet_->maximize(time_model).objective;
  else
    wcet = tree_maximize(program_, time_model);
  // The time model is integral; ceil absorbs LP round-off soundly.
  fault_free_wcet_ = static_cast<Cycles>(std::ceil(wcet - 1e-6));

  fmm_ = compute_fmm_bundle(program_, config_, refs_, options_.engine,
                            ipet_.get(), options_.pool);
}

PwcetResult PwcetAnalyzer::analyze(const FaultModel& faults,
                                   Mechanism mechanism) const {
  const FaultMissMap& fmm = fmm_.of(mechanism);
  const std::vector<Probability> pwf =
      faults.way_failure_pmf(config_, mechanism);

  // Per-set penalty distribution: one atom per possible fault count
  // (paper Fig. 1.b), value = miss_penalty * FMM[s][f].
  auto build_set = [&](std::size_t s) {
    std::vector<ProbabilityAtom> atoms;
    atoms.reserve(pwf.size());
    for (std::size_t f = 0; f < pwf.size(); ++f) {
      const double misses = fmm.at(static_cast<SetIndex>(s),
                                   static_cast<std::uint32_t>(f));
      const auto penalty = static_cast<Cycles>(
          std::ceil(misses - 1e-6) * static_cast<double>(config_.miss_penalty));
      atoms.push_back({penalty, pwf[f]});
    }
    return DiscreteDistribution::from_atoms(std::move(atoms));
  };

  PwcetResult result;
  result.mechanism = mechanism;
  result.fault_free_wcet = fault_free_wcet_;
  result.fmm = fmm;

  // Sets are independent (Fig. 1.b): combine by convolution, pairwise so
  // the rounds parallelize and the coalescing error stacks O(log S) deep
  // instead of O(S). Pooled and serial paths produce identical bits.
  std::vector<DiscreteDistribution> per_set;
  if (options_.pool != nullptr) {
    per_set = options_.pool->map_indexed(config_.sets, build_set);
  } else {
    per_set.reserve(config_.sets);
    for (SetIndex s = 0; s < config_.sets; ++s)
      per_set.push_back(build_set(s));
  }
  result.penalty = convolve_all_tree(
      per_set, options_.max_distribution_points, options_.pool);
  return result;
}

std::vector<CcdfPoint> PwcetResult::ccdf() const {
  std::vector<CcdfPoint> points;
  points.reserve(penalty.size());
  for (const ProbabilityAtom& atom : penalty.atoms()) {
    // P[WCET > fault_free + value] is the tail strictly above the atom;
    // report the exceedance just below it, i.e. including the atom itself.
    points.push_back({fault_free_wcet + atom.value,
                      penalty.exceedance(atom.value - 1)});
  }
  return points;
}

}  // namespace pwcet
