#include "core/pwcet_analyzer.hpp"

#include <cmath>
#include <utility>

#include "engine/thread_pool.hpp"
#include "store/analysis_store.hpp"
#include "support/contracts.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {
namespace {

/// Memo value of the analyzer-core layer: everything expensive the
/// constructor produces. Cached all-or-nothing so the ILP engine's shared
/// simplex sees the exact same maximize() sequence on every miss (partial
/// reuse would perturb LP round-off; see wcet/fmm.hpp).
struct AnalyzerCore {
  Cycles fault_free_wcet = 0;
  FmmBundle fmm;
};

}  // namespace

StoreKey pwcet_core_key(const Program& program, const CacheConfig& config,
                        WcetEngine engine) {
  return KeyHasher("pwcet-core-v1")
      .mix_key(hash_program(program))
      .mix_key(hash_cache_config(config))
      .mix_u64(static_cast<std::uint64_t>(engine))
      .finish();
}

DiscreteDistribution build_penalty_distribution(
    const FaultMissMap& fmm, const CacheConfig& config,
    const std::vector<Probability>& pwf, std::size_t max_points,
    ThreadPool* pool, AnalysisStore* store) {
  // Per-set penalty distribution: one atom per possible fault count
  // (paper Fig. 1.b), value = miss_penalty * FMM[s][f].
  auto build_set_cold = [&](std::size_t s) {
    std::vector<ProbabilityAtom> atoms;
    atoms.reserve(pwf.size());
    for (std::size_t f = 0; f < pwf.size(); ++f) {
      const double misses = fmm.at(static_cast<SetIndex>(s),
                                   static_cast<std::uint32_t>(f));
      const auto penalty = static_cast<Cycles>(
          std::ceil(misses - 1e-6) * static_cast<double>(config.miss_penalty));
      atoms.push_back({penalty, pwf[f]});
    }
    return DiscreteDistribution::from_atoms(std::move(atoms));
  };

  // Per-set layer: keyed by the *content* the atoms are built from (FMM
  // row, pwf, miss penalty), not by set index or task — so the many sets
  // that share a row (untouched sets, symmetric layouts) build it once,
  // across mechanisms, geometries with equal rows, caches and analyzers.
  auto build_set = [&](std::size_t s) {
    if (store == nullptr) return build_set_cold(s);
    const StoreKey key = KeyHasher("set-penalty-v1")
                             .mix_i64(config.miss_penalty)
                             .mix_doubles(pwf)
                             .mix_doubles(fmm.misses[s])
                             .finish();
    return *store->memo().get_or_compute<DiscreteDistribution>(
        key, [&] { return build_set_cold(s); });
  };

  // Sets are independent (Fig. 1.b): combine by convolution, pairwise so
  // the rounds parallelize and the coalescing error stacks O(log S) deep
  // instead of O(S). Pooled and serial paths produce identical bits.
  std::vector<DiscreteDistribution> per_set;
  if (pool != nullptr) {
    per_set = pool->map_indexed(config.sets, build_set);
  } else {
    per_set.reserve(config.sets);
    for (SetIndex s = 0; s < config.sets; ++s)
      per_set.push_back(build_set(s));
  }
  return convolve_all_tree(per_set, max_points, pool);
}

PwcetAnalyzer::PwcetAnalyzer(const Program& program,
                             const CacheConfig& config,
                             const PwcetOptions& options)
    : program_(program), config_(config), options_(options) {
  config_.validate();
  core_key_ = pwcet_core_key(program, config_, options_.engine);

  // Everything below lives inside the compute path on purpose: on a core
  // memo hit the constructor does no analysis work at all — not even the
  // reference extraction — just the structural hash above.
  auto compute_core = [&] {
    const ReferenceMap refs = extract_references(program.cfg(), config_);
    if (options_.engine == WcetEngine::kIlp)
      ipet_ = std::make_unique<IpetCalculator>(program_);

    const ClassificationMap classification =
        classify_fault_free(program.cfg(), refs, config_);
    const CostModel time_model =
        build_time_cost_model(program.cfg(), refs, classification, config_);

    double wcet = 0.0;
    if (options_.engine == WcetEngine::kIlp)
      wcet = ipet_->maximize(time_model).objective;
    else
      wcet = tree_maximize(program_, time_model);

    AnalyzerCore core;
    // The time model is integral; ceil absorbs LP round-off soundly.
    core.fault_free_wcet = static_cast<Cycles>(std::ceil(wcet - 1e-6));
    core.fmm = compute_fmm_bundle(program_, config_, refs, options_.engine,
                                  ipet_.get(), options_.pool, options_.store,
                                  &core_key_);
    return core;
  };

  if (options_.store != nullptr) {
    const std::shared_ptr<const AnalyzerCore> core =
        options_.store->memo().get_or_compute<AnalyzerCore>(core_key_,
                                                            compute_core);
    fault_free_wcet_ = core->fault_free_wcet;
    fmm_ = core->fmm;
  } else {
    AnalyzerCore core = compute_core();
    fault_free_wcet_ = core.fault_free_wcet;
    fmm_ = std::move(core.fmm);
  }
}

PwcetResult PwcetAnalyzer::analyze(const FaultModel& faults,
                                   Mechanism mechanism) const {
  const FaultMissMap& fmm = fmm_.of(mechanism);
  const std::vector<Probability> pwf =
      faults.way_failure_pmf(config_, mechanism);

  AnalysisStore* store = options_.store;

  // Whole-analysis layer: one key per (core, mechanism, pfail, coalescing
  // budget) — everything analyze() reads.
  StoreKey result_key;
  if (store != nullptr) {
    result_key = KeyHasher("pwcet-result-v1")
                     .mix_key(core_key_)
                     .mix_u64(static_cast<std::uint64_t>(mechanism))
                     .mix_double(faults.pfail())
                     .mix_u64(options_.max_distribution_points)
                     .finish();
    if (const std::shared_ptr<const void> hit =
            store->memo().get(result_key))
      return *std::static_pointer_cast<const PwcetResult>(hit);
  }

  PwcetResult result;
  result.mechanism = mechanism;
  result.fault_free_wcet = fault_free_wcet_;
  result.fmm = fmm;

  // Artifact tier: the penalty distribution (the only expensive part of
  // the result — fmm and the fault-free WCET come from the core layer)
  // may survive from an earlier process.
  if (store != nullptr && store->artifacts() != nullptr) {
    if (std::optional<DiscreteDistribution> penalty =
            store->artifacts()->load_distribution(result_key)) {
      result.penalty = *std::move(penalty);
      store->memo().put(result_key,
                        std::make_shared<const PwcetResult>(result));
      return result;
    }
  }

  result.penalty =
      build_penalty_distribution(fmm, config_, pwf,
                                 options_.max_distribution_points,
                                 options_.pool, store);

  if (store != nullptr) {
    if (store->artifacts() != nullptr)
      store->artifacts()->store_distribution(result_key, result.penalty);
    store->memo().put(result_key,
                      std::make_shared<const PwcetResult>(result));
  }
  return result;
}

std::vector<CcdfPoint> PwcetResult::ccdf() const {
  std::vector<CcdfPoint> points;
  points.reserve(penalty.size());
  for (const ProbabilityAtom& atom : penalty.atoms()) {
    // P[WCET > fault_free + value] is the tail strictly above the atom;
    // report the exceedance just below it, i.e. including the atom itself.
    points.push_back({fault_free_wcet + atom.value,
                      penalty.exceedance(atom.value - 1)});
  }
  return points;
}

}  // namespace pwcet
