// Discrete probability distributions over integer cycle penalties.
//
// The pWCET analysis represents the fault-induced penalty of each cache set
// as a small discrete distribution (paper Fig. 1.b) and combines independent
// sets by convolution. Supports are exact 64-bit integers; probabilities are
// doubles. To keep the support size bounded across 10s of convolutions, a
// *conservative coalescing* step merges points by moving probability mass
// onto the larger value only, so the complementary CDF (exceedance function)
// of the stored distribution is always a pointwise upper bound of the exact
// one — the sound direction for WCET estimation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/types.hpp"

namespace pwcet {

/// One atom of a discrete distribution.
struct ProbabilityAtom {
  Cycles value = 0;
  Probability probability = 0.0;

  friend bool operator==(const ProbabilityAtom&,
                         const ProbabilityAtom&) = default;
};

/// Discrete distribution with integer support, kept sorted by value.
class DiscreteDistribution {
 public:
  /// The distribution concentrated at zero (neutral element of convolution).
  DiscreteDistribution();

  /// Builds from atoms; merges duplicate values, drops zero-probability
  /// atoms, and checks the total mass is 1 within `mass_tolerance`.
  static DiscreteDistribution from_atoms(std::vector<ProbabilityAtom> atoms);

  /// Single-point distribution.
  static DiscreteDistribution degenerate(Cycles value);

  /// Rebuilds a distribution from atoms already in canonical form
  /// (strictly increasing values, all probabilities positive) without
  /// merging or mass checking — the exact-round-trip constructor used by
  /// the artifact store (store/artifact_store.hpp), where the atoms are a
  /// verbatim copy of a previously stored canonical distribution and any
  /// renormalization would break the byte-identity contract. Canonical
  /// form is a precondition (aborts on violation); untrusted input must
  /// be validated by the caller first.
  static DiscreteDistribution from_canonical_atoms(
      std::vector<ProbabilityAtom> atoms);

  const std::vector<ProbabilityAtom>& atoms() const { return atoms_; }
  std::size_t size() const { return atoms_.size(); }
  Cycles min_value() const;
  Cycles max_value() const;

  /// Total probability mass (should be ~1; convolution preserves it).
  Probability total_mass() const;

  /// Mean of the distribution.
  double mean() const;

  /// P[X > value] (complementary CDF, the exceedance function of Fig. 3).
  Probability exceedance(Cycles value) const;

  /// Smallest value v such that P[X > v] <= p. This is the pWCET query:
  /// "the value the random variable exceeds with probability at most p".
  Cycles quantile_exceedance(Probability p) const;

  /// Convolution with an independent distribution (sum of the variables).
  DiscreteDistribution convolve(const DiscreteDistribution& other) const;

  /// Conservatively reduces the support to at most `max_points` atoms by
  /// merging adjacent atoms into the one with the *larger* value. The result
  /// stochastically dominates the original (exceedance is >= pointwise).
  DiscreteDistribution coalesce_up(std::size_t max_points) const;

  /// Scales every support value by a non-negative factor (e.g. converting a
  /// miss count distribution into cycles via the miss penalty).
  DiscreteDistribution scale_values(Cycles factor) const;

  /// Shifts every support value by a constant (e.g. adding the fault-free
  /// WCET to a penalty distribution).
  DiscreteDistribution shift(Cycles offset) const;

  /// True if `this` stochastically dominates `other`:
  /// exceedance_this(v) >= exceedance_other(v) - tolerance for all v.
  bool dominates(const DiscreteDistribution& other,
                 Probability tolerance = 1e-12) const;

  friend bool operator==(const DiscreteDistribution&,
                         const DiscreteDistribution&) = default;

 private:
  explicit DiscreteDistribution(std::vector<ProbabilityAtom> atoms)
      : atoms_(std::move(atoms)) {}

  // Sorted by value, strictly increasing, all probabilities > 0.
  std::vector<ProbabilityAtom> atoms_;
};

/// Convolves a whole collection, coalescing intermediate results to
/// `max_points` after each step (the per-set penalty pipeline of Fig. 1.b).
DiscreteDistribution convolve_all(
    const std::vector<DiscreteDistribution>& parts, std::size_t max_points);

class ThreadPool;

/// Pairwise (tree-shaped) variant of convolve_all: each round convolves
/// fixed neighbour pairs (0,1), (2,3), ... and coalesces, halving the list
/// until one distribution remains. Two advantages over the left fold:
/// each round's pairings are independent, so with a `pool`
/// (engine/thread_pool.hpp) they run concurrently — bit-identical to the
/// serial result at any thread count, since the tree shape is fixed; and
/// only O(log n) coalescing steps stack up on any leaf-to-root path (vs
/// O(n) on the fold's spine), so the accumulated upper-bound slack is
/// smaller. Every merge only moves probability mass onto larger values, so
/// the result still stochastically dominates the exact convolution.
DiscreteDistribution convolve_all_tree(
    const std::vector<DiscreteDistribution>& parts, std::size_t max_points,
    ThreadPool* pool = nullptr);

/// Deduplicating variant of convolve_all_tree for inputs given as
/// (distinct distributions, per-leaf id) — the shape the re-weighting
/// bundle produces, where many cache sets share one penalty distribution.
/// The tree has exactly the same shape as convolve_all_tree applied to the
/// expanded leaf list `distinct[ids[0]], distinct[ids[1]], ...`, but each
/// *distinct* (left id, right id) pair per round is convolved only once
/// and the result shared by every position holding that pair. Convolution
/// and coalescing are deterministic, so equal id pairs produce equal
/// results and the output is bit-identical to the non-deduplicating tree.
DiscreteDistribution convolve_all_tree_shared(
    const std::vector<DiscreteDistribution>& distinct,
    const std::vector<std::uint32_t>& ids, std::size_t max_points,
    ThreadPool* pool = nullptr);

}  // namespace pwcet
