#include "prob/binomial.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace pwcet {

double log_binomial_coefficient(unsigned n, unsigned k) {
  PWCET_EXPECTS(k <= n);
  // Use the symmetric smaller half to limit the number of terms.
  if (k > n - k) k = n - k;
  double log_c = 0.0;
  for (unsigned i = 0; i < k; ++i) {
    log_c += std::log(static_cast<double>(n - i));
    log_c -= std::log(static_cast<double>(i + 1));
  }
  return log_c;
}

Probability binomial_pmf(unsigned n, unsigned k, Probability p) {
  PWCET_EXPECTS(k <= n);
  PWCET_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  // log1p(-p) keeps (1-p)^(n-k) accurate for tiny p.
  const double log_pmf = log_binomial_coefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

std::vector<Probability> binomial_pmf_vector(unsigned n, Probability p) {
  std::vector<Probability> pmf(n + 1);
  for (unsigned k = 0; k <= n; ++k) pmf[k] = binomial_pmf(n, k, p);
  return pmf;
}

Probability binomial_tail_geq(unsigned n, unsigned k, Probability p) {
  PWCET_EXPECTS(k <= n + 1);
  // Sum from k = n downwards: terms are increasing for the fault regime
  // (p < 0.5), so the smallest magnitudes are accumulated first.
  Probability tail = 0.0;
  for (unsigned i = n + 1; i-- > k;) tail += binomial_pmf(n, i, p);
  return tail > 1.0 ? 1.0 : tail;
}

}  // namespace pwcet
