#include "prob/discrete_distribution.hpp"

#include <algorithm>
#include <cmath>

#include "engine/thread_pool.hpp"
#include "support/contracts.hpp"

namespace pwcet {
namespace {

constexpr Probability kMassTolerance = 1e-9;

std::vector<ProbabilityAtom> normalize_atoms(
    std::vector<ProbabilityAtom> atoms) {
  std::sort(atoms.begin(), atoms.end(),
            [](const ProbabilityAtom& a, const ProbabilityAtom& b) {
              return a.value < b.value;
            });
  std::vector<ProbabilityAtom> merged;
  merged.reserve(atoms.size());
  for (const auto& atom : atoms) {
    PWCET_EXPECTS(atom.probability >= 0.0);
    if (atom.probability == 0.0) continue;
    if (!merged.empty() && merged.back().value == atom.value) {
      merged.back().probability += atom.probability;
    } else {
      merged.push_back(atom);
    }
  }
  return merged;
}

}  // namespace

DiscreteDistribution::DiscreteDistribution()
    : atoms_{{/*value=*/0, /*probability=*/1.0}} {}

DiscreteDistribution DiscreteDistribution::from_atoms(
    std::vector<ProbabilityAtom> atoms) {
  auto merged = normalize_atoms(std::move(atoms));
  PWCET_EXPECTS(!merged.empty());
  Probability mass = 0.0;
  for (const auto& a : merged) mass += a.probability;
  PWCET_EXPECTS(std::abs(mass - 1.0) <= kMassTolerance);
  return DiscreteDistribution(std::move(merged));
}

DiscreteDistribution DiscreteDistribution::degenerate(Cycles value) {
  return DiscreteDistribution({{value, 1.0}});
}

DiscreteDistribution DiscreteDistribution::from_canonical_atoms(
    std::vector<ProbabilityAtom> atoms) {
  PWCET_EXPECTS(!atoms.empty());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    PWCET_EXPECTS(atoms[i].probability > 0.0);
    PWCET_EXPECTS(i == 0 || atoms[i - 1].value < atoms[i].value);
  }
  return DiscreteDistribution(std::move(atoms));
}

Cycles DiscreteDistribution::min_value() const { return atoms_.front().value; }

Cycles DiscreteDistribution::max_value() const { return atoms_.back().value; }

Probability DiscreteDistribution::total_mass() const {
  Probability mass = 0.0;
  for (const auto& a : atoms_) mass += a.probability;
  return mass;
}

double DiscreteDistribution::mean() const {
  double m = 0.0;
  for (const auto& a : atoms_)
    m += static_cast<double>(a.value) * a.probability;
  return m;
}

Probability DiscreteDistribution::exceedance(Cycles value) const {
  // Sum the tail from the largest value down so tiny tail atoms are not
  // absorbed by a large head mass.
  Probability tail = 0.0;
  for (auto it = atoms_.rbegin(); it != atoms_.rend(); ++it) {
    if (it->value <= value) break;
    tail += it->probability;
  }
  return tail;
}

Cycles DiscreteDistribution::quantile_exceedance(Probability p) const {
  PWCET_EXPECTS(p >= 0.0);
  // Let tail_k = P[X >= value_k]. The smallest v with P[X > v] <= p is
  // value_k for the largest k with tail_k > p: exceedance(value_k) drops to
  // tail_{k+1} <= p while any v < value_k still has exceedance >= tail_k.
  // Walk from the top accumulating tail mass until it first exceeds p.
  Probability tail = 0.0;
  for (auto it = atoms_.rbegin(); it != atoms_.rend(); ++it) {
    tail += it->probability;
    if (tail > p) return it->value;
  }
  // Total mass <= p: every value (even below the minimum) is exceeded with
  // probability <= p; the minimum of the support is a well-defined answer.
  return atoms_.front().value;
}

DiscreteDistribution DiscreteDistribution::convolve(
    const DiscreteDistribution& other) const {
  // Hot loop of the whole analysis (every set pair of every penalty
  // distribution funnels through here): two flat reserved buffers instead
  // of a node-per-value ordered map. The pair products are generated
  // a-major/b-minor, stable-sorted by value and accumulated left to right,
  // so each value's probabilities sum in exactly the generation order —
  // the same order the map-based version inserted them — keeping results
  // bit-identical while eliminating the per-node allocations.
  std::vector<ProbabilityAtom> products;
  products.reserve(atoms_.size() * other.atoms_.size());
  for (const auto& a : atoms_)
    for (const auto& b : other.atoms_)
      products.push_back({a.value + b.value, a.probability * b.probability});
  std::stable_sort(products.begin(), products.end(),
                   [](const ProbabilityAtom& x, const ProbabilityAtom& y) {
                     return x.value < y.value;
                   });
  std::vector<ProbabilityAtom> atoms;
  atoms.reserve(products.size());
  for (const auto& product : products) {
    if (!atoms.empty() && atoms.back().value == product.value)
      atoms.back().probability += product.probability;
    else
      atoms.push_back(product);
  }
  std::erase_if(atoms,
                [](const ProbabilityAtom& a) { return a.probability == 0.0; });
  return DiscreteDistribution(std::move(atoms));
}

DiscreteDistribution DiscreteDistribution::coalesce_up(
    std::size_t max_points) const {
  PWCET_EXPECTS(max_points >= 2);
  if (atoms_.size() <= max_points) return *this;

  // Each atom i (except the last) can be merged into its upward neighbour
  // at cost probability(i) * (value(i+1) - value(i)) — the probability mass
  // transported upward. Select the (n - max_points) cheapest merges, then
  // sweep once: runs of marked atoms roll their mass up into the next
  // unmarked atom. Mass only ever moves to larger values, so the result
  // stochastically dominates the input (sound for WCET exceedance bounds).
  const std::size_t n = atoms_.size();
  const std::size_t to_remove = n - max_points;

  std::vector<std::size_t> order(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double cost_a =
        atoms_[a].probability *
        static_cast<double>(atoms_[a + 1].value - atoms_[a].value);
    const double cost_b =
        atoms_[b].probability *
        static_cast<double>(atoms_[b + 1].value - atoms_[b].value);
    return cost_a < cost_b;
  });

  std::vector<bool> merged_up(n, false);
  for (std::size_t i = 0; i < to_remove; ++i) merged_up[order[i]] = true;

  std::vector<ProbabilityAtom> atoms;
  atoms.reserve(max_points);
  Probability carried = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (merged_up[i]) {
      carried += atoms_[i].probability;
    } else {
      atoms.push_back({atoms_[i].value, atoms_[i].probability + carried});
      carried = 0.0;
    }
  }
  PWCET_ASSERT(carried == 0.0);  // the last atom is never marked
  return DiscreteDistribution(std::move(atoms));
}

DiscreteDistribution DiscreteDistribution::scale_values(Cycles factor) const {
  PWCET_EXPECTS(factor >= 0);
  std::vector<ProbabilityAtom> atoms = atoms_;
  for (auto& a : atoms) a.value *= factor;
  return DiscreteDistribution(normalize_atoms(std::move(atoms)));
}

DiscreteDistribution DiscreteDistribution::shift(Cycles offset) const {
  std::vector<ProbabilityAtom> atoms = atoms_;
  for (auto& a : atoms) a.value += offset;
  return DiscreteDistribution(std::move(atoms));
}

bool DiscreteDistribution::dominates(const DiscreteDistribution& other,
                                     Probability tolerance) const {
  // Check at every support point of either distribution (the exceedance
  // functions are right-continuous step functions, so support points and
  // the points just before them cover all discontinuities).
  std::vector<Cycles> checkpoints;
  for (const auto& a : atoms_) {
    checkpoints.push_back(a.value);
    checkpoints.push_back(a.value - 1);
  }
  for (const auto& a : other.atoms_) {
    checkpoints.push_back(a.value);
    checkpoints.push_back(a.value - 1);
  }
  for (Cycles v : checkpoints)
    if (exceedance(v) + tolerance < other.exceedance(v)) return false;
  return true;
}

DiscreteDistribution convolve_all(
    const std::vector<DiscreteDistribution>& parts, std::size_t max_points) {
  DiscreteDistribution acc;
  for (const auto& part : parts)
    acc = acc.convolve(part).coalesce_up(max_points);
  return acc;
}

DiscreteDistribution convolve_all_tree(
    const std::vector<DiscreteDistribution>& parts, std::size_t max_points,
    ThreadPool* pool) {
  if (parts.empty()) return DiscreteDistribution();
  std::vector<DiscreteDistribution> level = parts;
  while (level.size() > 1) {
    const std::size_t pairs = level.size() / 2;
    auto reduce_pair = [&](std::size_t i) {
      return level[2 * i].convolve(level[2 * i + 1]).coalesce_up(max_points);
    };
    std::vector<DiscreteDistribution> next;
    if (pool != nullptr) {
      next = pool->map_indexed(pairs, reduce_pair);
    } else {
      next.reserve(pairs + 1);
      for (std::size_t i = 0; i < pairs; ++i)
        next.push_back(reduce_pair(i));
    }
    if (level.size() % 2 != 0) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  // A single oversized input must still honour the budget.
  return level.front().coalesce_up(max_points);
}

}  // namespace pwcet
