#include "prob/discrete_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <queue>
#include <utility>

#include "engine/thread_pool.hpp"
#include "support/contracts.hpp"

namespace pwcet {
namespace {

constexpr Probability kMassTolerance = 1e-9;

/// Upper bound on the dense accumulator of `convolve` (doubles, so 32 MiB
/// at the cap). Above it — or when the support is too sparse for a dense
/// array to pay off — convolution falls back to the streaming k-way merge.
constexpr std::uint64_t kDenseBucketCap = std::uint64_t{1} << 22;

std::vector<ProbabilityAtom> normalize_atoms(
    std::vector<ProbabilityAtom> atoms) {
  std::sort(atoms.begin(), atoms.end(),
            [](const ProbabilityAtom& a, const ProbabilityAtom& b) {
              return a.value < b.value;
            });
  std::vector<ProbabilityAtom> merged;
  merged.reserve(atoms.size());
  for (const auto& atom : atoms) {
    PWCET_EXPECTS(atom.probability >= 0.0);
    if (atom.probability == 0.0) continue;
    if (!merged.empty() && merged.back().value == atom.value) {
      merged.back().probability += atom.probability;
    } else {
      merged.push_back(atom);
    }
  }
  return merged;
}

}  // namespace

DiscreteDistribution::DiscreteDistribution()
    : atoms_{{/*value=*/0, /*probability=*/1.0}} {}

DiscreteDistribution DiscreteDistribution::from_atoms(
    std::vector<ProbabilityAtom> atoms) {
  auto merged = normalize_atoms(std::move(atoms));
  PWCET_EXPECTS(!merged.empty());
  Probability mass = 0.0;
  for (const auto& a : merged) mass += a.probability;
  PWCET_EXPECTS(std::abs(mass - 1.0) <= kMassTolerance);
  return DiscreteDistribution(std::move(merged));
}

DiscreteDistribution DiscreteDistribution::degenerate(Cycles value) {
  return DiscreteDistribution({{value, 1.0}});
}

DiscreteDistribution DiscreteDistribution::from_canonical_atoms(
    std::vector<ProbabilityAtom> atoms) {
  PWCET_EXPECTS(!atoms.empty());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    PWCET_EXPECTS(atoms[i].probability > 0.0);
    PWCET_EXPECTS(i == 0 || atoms[i - 1].value < atoms[i].value);
  }
  return DiscreteDistribution(std::move(atoms));
}

Cycles DiscreteDistribution::min_value() const { return atoms_.front().value; }

Cycles DiscreteDistribution::max_value() const { return atoms_.back().value; }

Probability DiscreteDistribution::total_mass() const {
  Probability mass = 0.0;
  for (const auto& a : atoms_) mass += a.probability;
  return mass;
}

double DiscreteDistribution::mean() const {
  double m = 0.0;
  for (const auto& a : atoms_)
    m += static_cast<double>(a.value) * a.probability;
  return m;
}

Probability DiscreteDistribution::exceedance(Cycles value) const {
  // Sum the tail from the largest value down so tiny tail atoms are not
  // absorbed by a large head mass.
  Probability tail = 0.0;
  for (auto it = atoms_.rbegin(); it != atoms_.rend(); ++it) {
    if (it->value <= value) break;
    tail += it->probability;
  }
  return tail;
}

Cycles DiscreteDistribution::quantile_exceedance(Probability p) const {
  PWCET_EXPECTS(p >= 0.0);
  // Let tail_k = P[X >= value_k]. The smallest v with P[X > v] <= p is
  // value_k for the largest k with tail_k > p: exceedance(value_k) drops to
  // tail_{k+1} <= p while any v < value_k still has exceedance >= tail_k.
  // Walk from the top accumulating tail mass until it first exceeds p.
  Probability tail = 0.0;
  for (auto it = atoms_.rbegin(); it != atoms_.rend(); ++it) {
    tail += it->probability;
    if (tail > p) return it->value;
  }
  // Total mass <= p: every value (even below the minimum) is exceeded with
  // probability <= p; the minimum of the support is a well-defined answer.
  return atoms_.front().value;
}

DiscreteDistribution DiscreteDistribution::convolve(
    const DiscreteDistribution& other) const {
  // Hot loop of the whole analysis (every set pair of every penalty
  // distribution funnels through here). Penalty supports live on a coarse
  // lattice — every atom value is a multiple of the domain's miss penalty
  // — so the n*m pair products collapse onto few distinct sums. The fast
  // path exploits that: accumulate products directly into a dense bucket
  // array indexed by (value - base) / stride, where stride is the gcd of
  // all support offsets. No product buffer, no sort — O(n*m) fused
  // multiply-adds plus one scan over the buckets.
  //
  // Bit-identity contract: the historical implementation generated the
  // products a-major/b-minor, stable-sorted them by value and accumulated
  // left to right, so each value's probabilities summed in generation
  // order. Both paths below preserve exactly that per-value order — the
  // dense path because products are added to their bucket the moment they
  // are generated (a-major/b-minor), the merge path because the heap
  // breaks value ties by row index — so results are bit-identical to the
  // historical ones at every probability.
  const std::vector<ProbabilityAtom>& a = atoms_;
  const std::vector<ProbabilityAtom>& b = other.atoms_;
  const std::size_t n = a.size();
  const std::size_t m = b.size();

  // Lattice stride: gcd of every offset from the first atom, both inputs.
  Cycles stride = 0;
  for (std::size_t i = 1; i < n; ++i)
    stride = std::gcd(stride, a[i].value - a[0].value);
  for (std::size_t j = 1; j < m; ++j)
    stride = std::gcd(stride, b[j].value - b[0].value);
  if (stride == 0) stride = 1;  // both inputs degenerate
  const Cycles base = a.front().value + b.front().value;
  const std::uint64_t buckets =
      static_cast<std::uint64_t>(
          (a.back().value + b.back().value - base) / stride) +
      1;

  // Checked pair count: the product can overflow size_t for adversarially
  // wide inputs (the old code reserved n*m elements unchecked — an absurd
  // or wrapping allocation). Neither path below materializes the products,
  // so an overflowing count only steers the path choice.
  const bool pairs_overflow = n > std::numeric_limits<std::size_t>::max() / m;
  const std::uint64_t pairs =
      pairs_overflow ? std::numeric_limits<std::uint64_t>::max()
                     : static_cast<std::uint64_t>(n) * m;

  // Dense only when the bucket array is small in absolute terms and not
  // wastefully sparse relative to the work (a handful of atoms spread
  // over a huge gcd-1 range would scan mostly zeros).
  if (buckets <= kDenseBucketCap &&
      (buckets <= 4096 || buckets <= 4 * pairs)) {
    std::vector<double> acc(static_cast<std::size_t>(buckets), 0.0);
    std::vector<double> pb(m);
    for (std::size_t j = 0; j < m; ++j) pb[j] = b[j].probability;
    // When b occupies every lattice point its bucket offsets are 0..m-1
    // and the inner loop is a contiguous fused multiply-add the compiler
    // vectorizes; otherwise scatter through precomputed offsets.
    const bool contiguous =
        b.back().value - b.front().value == stride * Cycles(m - 1);
    std::vector<std::size_t> off_b;
    if (!contiguous) {
      off_b.resize(m);
      for (std::size_t j = 0; j < m; ++j)
        off_b[j] =
            static_cast<std::size_t>((b[j].value - b[0].value) / stride);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double pa = a[i].probability;
      double* row =
          acc.data() + static_cast<std::size_t>((a[i].value - a[0].value) /
                                                stride);
      if (contiguous) {
        for (std::size_t j = 0; j < m; ++j) row[j] += pa * pb[j];
      } else {
        for (std::size_t j = 0; j < m; ++j) row[off_b[j]] += pa * pb[j];
      }
    }
    std::vector<ProbabilityAtom> atoms;
    atoms.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
        buckets, pairs)));
    for (std::uint64_t k = 0; k < buckets; ++k)
      if (acc[static_cast<std::size_t>(k)] != 0.0)
        atoms.push_back({base + static_cast<Cycles>(k) * stride,
                         acc[static_cast<std::size_t>(k)]});
    return DiscreteDistribution(std::move(atoms));
  }

  // Streaming fallback: k-way merge of the n sorted rows {a_i + b_j : j}.
  // Within a row values are strictly increasing (b is), so each row has
  // one live head; ties across rows pop in row order = generation order.
  // O(n + output) memory regardless of n*m — this is the chunk-free
  // answer to the old unchecked reserve(n*m).
  struct Head {
    Cycles value;
    std::uint32_t row;
    std::uint32_t col;
  };
  const auto later = [](const Head& x, const Head& y) {
    return x.value != y.value ? x.value > y.value : x.row > y.row;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heap(later);
  for (std::size_t i = 0; i < n; ++i)
    heap.push({a[i].value + b[0].value, static_cast<std::uint32_t>(i), 0});
  std::vector<ProbabilityAtom> atoms;
  while (!heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    const double p = a[head.row].probability * b[head.col].probability;
    if (!atoms.empty() && atoms.back().value == head.value)
      atoms.back().probability += p;
    else
      atoms.push_back({head.value, p});
    if (head.col + 1 < m)
      heap.push({a[head.row].value + b[head.col + 1].value, head.row,
                 head.col + 1});
  }
  std::erase_if(atoms,
                [](const ProbabilityAtom& a) { return a.probability == 0.0; });
  return DiscreteDistribution(std::move(atoms));
}

DiscreteDistribution DiscreteDistribution::coalesce_up(
    std::size_t max_points) const {
  PWCET_EXPECTS(max_points >= 2);
  if (atoms_.size() <= max_points) return *this;

  // Each atom i (except the last) can be merged into its upward neighbour
  // at cost probability(i) * (value(i+1) - value(i)) — the probability mass
  // transported upward. Select the (n - max_points) cheapest merges, then
  // sweep once: runs of marked atoms roll their mass up into the next
  // unmarked atom. Mass only ever moves to larger values, so the result
  // stochastically dominates the input (sound for WCET exceedance bounds).
  const std::size_t n = atoms_.size();
  const std::size_t to_remove = n - max_points;

  std::vector<std::size_t> order(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double cost_a =
        atoms_[a].probability *
        static_cast<double>(atoms_[a + 1].value - atoms_[a].value);
    const double cost_b =
        atoms_[b].probability *
        static_cast<double>(atoms_[b + 1].value - atoms_[b].value);
    return cost_a < cost_b;
  });

  std::vector<bool> merged_up(n, false);
  for (std::size_t i = 0; i < to_remove; ++i) merged_up[order[i]] = true;

  std::vector<ProbabilityAtom> atoms;
  atoms.reserve(max_points);
  Probability carried = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (merged_up[i]) {
      carried += atoms_[i].probability;
    } else {
      atoms.push_back({atoms_[i].value, atoms_[i].probability + carried});
      carried = 0.0;
    }
  }
  PWCET_ASSERT(carried == 0.0);  // the last atom is never marked
  return DiscreteDistribution(std::move(atoms));
}

DiscreteDistribution DiscreteDistribution::scale_values(Cycles factor) const {
  PWCET_EXPECTS(factor >= 0);
  std::vector<ProbabilityAtom> atoms = atoms_;
  for (auto& a : atoms) a.value *= factor;
  return DiscreteDistribution(normalize_atoms(std::move(atoms)));
}

DiscreteDistribution DiscreteDistribution::shift(Cycles offset) const {
  std::vector<ProbabilityAtom> atoms = atoms_;
  for (auto& a : atoms) a.value += offset;
  return DiscreteDistribution(std::move(atoms));
}

bool DiscreteDistribution::dominates(const DiscreteDistribution& other,
                                     Probability tolerance) const {
  // Check at every support point of either distribution (the exceedance
  // functions are right-continuous step functions, so support points and
  // the points just before them cover all discontinuities).
  std::vector<Cycles> checkpoints;
  for (const auto& a : atoms_) {
    checkpoints.push_back(a.value);
    checkpoints.push_back(a.value - 1);
  }
  for (const auto& a : other.atoms_) {
    checkpoints.push_back(a.value);
    checkpoints.push_back(a.value - 1);
  }
  for (Cycles v : checkpoints)
    if (exceedance(v) + tolerance < other.exceedance(v)) return false;
  return true;
}

DiscreteDistribution convolve_all(
    const std::vector<DiscreteDistribution>& parts, std::size_t max_points) {
  DiscreteDistribution acc;
  for (const auto& part : parts)
    acc = acc.convolve(part).coalesce_up(max_points);
  return acc;
}

DiscreteDistribution convolve_all_tree(
    const std::vector<DiscreteDistribution>& parts, std::size_t max_points,
    ThreadPool* pool) {
  if (parts.empty()) return DiscreteDistribution();
  std::vector<DiscreteDistribution> level = parts;
  while (level.size() > 1) {
    const std::size_t pairs = level.size() / 2;
    auto reduce_pair = [&](std::size_t i) {
      return level[2 * i].convolve(level[2 * i + 1]).coalesce_up(max_points);
    };
    std::vector<DiscreteDistribution> next;
    if (pool != nullptr) {
      next = pool->map_indexed(pairs, reduce_pair);
    } else {
      next.reserve(pairs + 1);
      for (std::size_t i = 0; i < pairs; ++i)
        next.push_back(reduce_pair(i));
    }
    if (level.size() % 2 != 0) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  // A single oversized input must still honour the budget.
  return level.front().coalesce_up(max_points);
}

DiscreteDistribution convolve_all_tree_shared(
    const std::vector<DiscreteDistribution>& distinct,
    const std::vector<std::uint32_t>& ids, std::size_t max_points,
    ThreadPool* pool) {
  if (ids.empty()) return DiscreteDistribution();
  for (const std::uint32_t id : ids) PWCET_EXPECTS(id < distinct.size());
  // Mirror convolve_all_tree exactly, but carry ids instead of values:
  // each round pairs positions (0,1), (2,3), ..., and positions holding
  // the same (left, right) id pair share one convolution. Work items are
  // numbered in first-occurrence order so the pooled map stays a pure
  // function of the input (deterministic at any thread count).
  std::vector<DiscreteDistribution> values = distinct;
  std::vector<std::uint32_t> level = ids;
  while (level.size() > 1) {
    const std::size_t pairs = level.size() / 2;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> seen;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> work;
    std::vector<std::uint32_t> next(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      const std::pair<std::uint32_t, std::uint32_t> key{level[2 * i],
                                                        level[2 * i + 1]};
      const auto [it, inserted] =
          seen.emplace(key, static_cast<std::uint32_t>(work.size()));
      if (inserted) work.push_back(key);
      next[i] = it->second;
    }
    auto reduce_pair = [&](std::size_t w) {
      return values[work[w].first]
          .convolve(values[work[w].second])
          .coalesce_up(max_points);
    };
    std::vector<DiscreteDistribution> next_values;
    if (pool != nullptr) {
      next_values = pool->map_indexed(work.size(), reduce_pair);
    } else {
      next_values.reserve(work.size() + 1);
      for (std::size_t w = 0; w < work.size(); ++w)
        next_values.push_back(reduce_pair(w));
    }
    // An odd trailing position passes through unchanged, as a fresh id.
    if (level.size() % 2 != 0) {
      next.push_back(static_cast<std::uint32_t>(next_values.size()));
      next_values.push_back(std::move(values[level.back()]));
    }
    values = std::move(next_values);
    level = std::move(next);
  }
  return values[level.front()].coalesce_up(max_points);
}

}  // namespace pwcet
