// Binomial probability computations for the fault model (paper Eq. 1-3).
// Evaluated in log-space so that extreme tails (e.g. pbf^W with pbf ~ 1e-10)
// stay accurate long past where naive products would round to zero.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace pwcet {

/// log(n choose k), exact summation of logs (n is small in this domain).
double log_binomial_coefficient(unsigned n, unsigned k);

/// P[X = k] for X ~ Binomial(n, p).
Probability binomial_pmf(unsigned n, unsigned k, Probability p);

/// The full pmf vector {P[X = 0], ..., P[X = n]}.
std::vector<Probability> binomial_pmf_vector(unsigned n, Probability p);

/// P[X >= k] for X ~ Binomial(n, p), summed from the small tail side.
Probability binomial_tail_geq(unsigned n, unsigned k, Probability p);

}  // namespace pwcet
