#include "fault/fault_map.hpp"

namespace pwcet {

FaultMap FaultMap::sample(const CacheConfig& config, Probability pbf,
                          Rng& rng) {
  FaultMap map(config.sets, config.ways);
  for (SetIndex s = 0; s < config.sets; ++s)
    for (std::uint32_t w = 0; w < config.ways; ++w)
      if (rng.next_bernoulli(pbf)) map.set_faulty(s, w, true);
  return map;
}

FaultMap FaultMap::with_faulty_ways(const CacheConfig& config, SetIndex s,
                                    std::uint32_t faulty_ways) {
  PWCET_EXPECTS(faulty_ways <= config.ways);
  FaultMap map(config.sets, config.ways);
  for (std::uint32_t w = 0; w < faulty_ways; ++w)
    map.set_faulty(s, w, true);
  return map;
}

std::uint32_t FaultMap::faulty_count(SetIndex s) const {
  std::uint32_t count = 0;
  for (std::uint32_t w = 0; w < ways_; ++w) count += is_faulty(s, w);
  return count;
}

}  // namespace pwcet
