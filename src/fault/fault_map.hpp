// Concrete assignments of permanent faults to cache blocks, used by the
// cycle-accurate simulator and the Monte-Carlo validation/MBPTA pipelines.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_config.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace pwcet {

/// Which physical blocks of the cache are permanently faulty. The map is
/// mechanism-agnostic: hardware semantics (RW masking way 0, SRB lookups)
/// are applied by the simulator.
class FaultMap {
 public:
  FaultMap(std::uint32_t sets, std::uint32_t ways)
      : sets_(sets), ways_(ways), faulty_(std::size_t{sets} * ways, 0) {}

  /// Fault-free map.
  static FaultMap none(const CacheConfig& config) {
    return FaultMap(config.sets, config.ways);
  }

  /// Independent Bernoulli(pbf) faults per block (paper: random uncorrelated
  /// cell faults => random block faults).
  static FaultMap sample(const CacheConfig& config, Probability pbf,
                         Rng& rng);

  /// Map with exactly `faulty_ways` faulty blocks in set `s` (positions are
  /// irrelevant under LRU, §II-A; the first ways are used).
  static FaultMap with_faulty_ways(const CacheConfig& config, SetIndex s,
                                   std::uint32_t faulty_ways);

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }

  bool is_faulty(SetIndex s, std::uint32_t way) const {
    return faulty_[index(s, way)] != 0;
  }
  void set_faulty(SetIndex s, std::uint32_t way, bool faulty) {
    faulty_[index(s, way)] = faulty ? 1 : 0;
  }

  /// Number of faulty blocks in a set.
  std::uint32_t faulty_count(SetIndex s) const;

  /// Usable associativity of a set given the mechanism-independent map.
  std::uint32_t usable_ways(SetIndex s) const {
    return ways_ - faulty_count(s);
  }

 private:
  std::size_t index(SetIndex s, std::uint32_t way) const {
    PWCET_EXPECTS(s < sets_ && way < ways_);
    return std::size_t{s} * ways_ + way;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<std::uint8_t> faulty_;
};

}  // namespace pwcet
