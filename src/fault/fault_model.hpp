// Permanent-fault model of the paper (§II-A) and the reliability mechanisms
// (§III-A): per-bit failure probability pfail, block failure probability
// pbf = 1 - (1-pfail)^K (Eq. 1), and the per-set faulty-way distribution
// pwf: Binomial(W, pbf) without protection / with SRB (Eq. 2) and
// Binomial(W-1, pbf) with the reliable way (Eq. 3).
#pragma once

#include <string>
#include <vector>

#include "cache/cache_config.hpp"
#include "prob/binomial.hpp"
#include "support/types.hpp"

namespace pwcet {

/// Hardware configuration under analysis (paper §III-A).
enum class Mechanism {
  kNone,                  ///< unprotected cache (baseline of [1])
  kReliableWay,           ///< RW: way 0 of every set is hardened
  kSharedReliableBuffer,  ///< SRB: one hardened line-sized buffer, used
                          ///< only when the referenced set is fully faulty
};

/// Human-readable mechanism name ("none" / "RW" / "SRB").
std::string mechanism_name(Mechanism m);

/// Fault model parameterized by the SRAM cell failure probability.
class FaultModel {
 public:
  explicit FaultModel(Probability pfail) : pfail_(pfail) {
    PWCET_EXPECTS(pfail >= 0.0 && pfail <= 1.0);
  }

  Probability pfail() const { return pfail_; }

  /// Eq. (1): probability that a block of K bits has at least one faulty
  /// cell. Computed via expm1/log1p to stay accurate for tiny pfail.
  Probability block_failure_probability(const CacheConfig& config) const;

  /// pwf(w) for w = 0..W (Eq. 2) or w = 0..W-1 (Eq. 3, RW).
  /// With RW the returned vector has W entries (a fully faulty set is
  /// impossible); otherwise W+1 entries.
  std::vector<Probability> way_failure_pmf(const CacheConfig& config,
                                           Mechanism mechanism) const;

 private:
  Probability pfail_;
};

}  // namespace pwcet
