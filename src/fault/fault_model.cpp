#include "fault/fault_model.hpp"

#include <cmath>

namespace pwcet {

// mechanism_name() is defined in engine/names.cpp: all axis-value
// spellings live in one registry so a new value cannot be added
// inconsistently across reports, spec parsing and the CLI.

Probability FaultModel::block_failure_probability(
    const CacheConfig& config) const {
  // 1 - (1-p)^K = -expm1(K * log1p(-p)): exact to double precision even for
  // pfail ~ 1e-13 where the naive form loses all significant digits.
  const double k = static_cast<double>(config.block_bits());
  return -std::expm1(k * std::log1p(-pfail_));
}

std::vector<Probability> FaultModel::way_failure_pmf(
    const CacheConfig& config, Mechanism mechanism) const {
  const Probability pbf = block_failure_probability(config);
  const unsigned trials = (mechanism == Mechanism::kReliableWay)
                              ? config.ways - 1
                              : config.ways;
  return binomial_pmf_vector(trials, pbf);
}

}  // namespace pwcet
