#include "benchlib/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/json.hpp"
#include "support/json_doc.hpp"
#include "support/stats.hpp"

namespace pwcet::benchlib {

MetricStats compute_metric_stats(const std::vector<double>& samples) {
  MetricStats stats;
  if (samples.empty()) return stats;
  stats.count = samples.size();
  stats.median = pwcet::median(samples);
  stats.min = *std::min_element(samples.begin(), samples.end());
  stats.p90 = empirical_quantile(samples, 0.9);
  stats.mad = median_abs_deviation(samples);
  return stats;
}

ScenarioReport summarize_scenario(ScenarioSamples samples) {
  ScenarioReport report;
  report.name = std::move(samples.name);
  report.samples = std::move(samples.samples);

  // Collect per-metric sample vectors: wall_ns from every repetition,
  // each named metric from the repetitions that carry it.
  std::map<std::string, std::vector<double>> columns;
  for (const RepetitionSample& sample : report.samples) {
    columns["wall_ns"].push_back(static_cast<double>(sample.wall_ns));
    for (const auto& [metric, ns] : sample.metrics)
      columns[metric].push_back(static_cast<double>(ns));
  }
  for (const auto& [metric, values] : columns)
    report.stats[metric] = compute_metric_stats(values);
  return report;
}

namespace {

void append_u64_object(
    std::string& out,
    const std::vector<std::pair<std::string, std::uint64_t>>& entries) {
  char buffer[48];
  out += '{';
  bool first = true;
  for (const auto& [name, value] : entries) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name);
    std::snprintf(buffer, sizeof buffer, ":%" PRIu64, value);
    out += buffer;
  }
  out += '}';
}

}  // namespace

std::string bench_report_json(const BenchReport& report) {
  char buffer[192];
  std::string out = "{\n";
  out += "\"schema\":";
  out += json_quote(report.schema);
  out += ",\n\"environment\":{";
  bool first = true;
  for (const auto& [key, value] : report.environment) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += json_quote(key);
    out += ':';
    out += json_quote(value);
  }
  out += "\n},\n\"scenarios\":[";
  first = true;
  for (const ScenarioReport& scenario : report.scenarios) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    out += json_quote(scenario.name);
    out += ",\n\"samples\":[";
    bool first_sample = true;
    for (const RepetitionSample& sample : scenario.samples) {
      if (!first_sample) out += ',';
      first_sample = false;
      std::snprintf(buffer, sizeof buffer, "\n{\"wall_ns\":%" PRIu64
                    ",\"metrics\":", sample.wall_ns);
      out += buffer;
      append_u64_object(out, sample.metrics);
      out += ",\"counters\":";
      append_u64_object(out, sample.counters);
      out += '}';
    }
    out += "],\n\"stats\":{";
    bool first_stat = true;
    for (const auto& [metric, stats] : scenario.stats) {
      if (!first_stat) out += ',';
      first_stat = false;
      out += '\n';
      out += json_quote(metric);
      std::snprintf(buffer, sizeof buffer,
                    ":{\"count\":%zu,\"median\":%.3f,\"min\":%.3f,"
                    "\"p90\":%.3f,\"mad\":%.3f}",
                    stats.count, stats.median, stats.min, stats.p90,
                    stats.mad);
      out += buffer;
    }
    out += "\n}}";
  }
  out += "\n]\n}\n";
  return out;
}

bool write_bench_report(const BenchReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bench_report_json(report);
  out.close();
  return !out.fail();
}

namespace {

[[noreturn]] void shape_error(const std::string& path,
                              const std::string& problem) {
  throw BenchError(path + ": not a BenchReport: " + problem);
}

const Json& require(const Json* value, const std::string& path,
                    const std::string& what, Json::Type type) {
  if (value == nullptr) shape_error(path, "missing " + what);
  if (value->type != type)
    shape_error(path, what + " is " + value->type_name());
  return *value;
}

std::uint64_t require_u64(const Json& value, const std::string& path,
                          const std::string& what) {
  if (value.type != Json::Type::kNumber || !value.integral)
    shape_error(path, what + " is not a non-negative integer");
  return value.integer;
}

double require_number(const Json* value, const std::string& path,
                      const std::string& what) {
  if (value == nullptr) shape_error(path, "missing " + what);
  if (value->type != Json::Type::kNumber)
    shape_error(path, what + " is " + value->type_name());
  return value->number;
}

std::vector<std::pair<std::string, std::uint64_t>> load_u64_object(
    const Json& object, const std::string& path, const std::string& what) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(object.object.size());
  for (const auto& [name, value] : object.object)
    out.emplace_back(name, require_u64(value, path, what + "." + name));
  return out;
}

}  // namespace

BenchReport load_bench_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw BenchError("cannot read bench report " + path);
  std::ostringstream text;
  text << in.rdbuf();

  BenchReport report;
  try {
    const Json doc = parse_json(text.str(), path);
    if (doc.type != Json::Type::kObject)
      shape_error(path, "document is " + std::string(doc.type_name()));
    report.schema =
        require(doc.find("schema"), path, "\"schema\"", Json::Type::kString)
            .string;
    const Json& environment = require(doc.find("environment"), path,
                                      "\"environment\"", Json::Type::kObject);
    for (const auto& [key, value] : environment.object) {
      if (value.type != Json::Type::kString)
        shape_error(path, "environment." + key + " is not a string");
      report.environment.emplace_back(key, value.string);
    }
    const Json& scenarios = require(doc.find("scenarios"), path,
                                    "\"scenarios\"", Json::Type::kArray);
    for (const Json& entry : scenarios.array) {
      if (entry.type != Json::Type::kObject)
        shape_error(path, "scenario entry is not an object");
      ScenarioReport scenario;
      scenario.name =
          require(entry.find("name"), path, "scenario \"name\"",
                  Json::Type::kString)
              .string;
      const std::string where = "scenario " + scenario.name;
      const Json& samples = require(entry.find("samples"), path,
                                    where + " \"samples\"", Json::Type::kArray);
      for (const Json& sample_json : samples.array) {
        if (sample_json.type != Json::Type::kObject)
          shape_error(path, where + " sample is not an object");
        RepetitionSample sample;
        sample.wall_ns = require_u64(
            require(sample_json.find("wall_ns"), path, where + " wall_ns",
                    Json::Type::kNumber),
            path, where + " wall_ns");
        sample.metrics = load_u64_object(
            require(sample_json.find("metrics"), path, where + " metrics",
                    Json::Type::kObject),
            path, where + " metrics");
        sample.counters = load_u64_object(
            require(sample_json.find("counters"), path, where + " counters",
                    Json::Type::kObject),
            path, where + " counters");
        scenario.samples.push_back(std::move(sample));
      }
      const Json& stats = require(entry.find("stats"), path,
                                  where + " \"stats\"", Json::Type::kObject);
      for (const auto& [metric, block] : stats.object) {
        if (block.type != Json::Type::kObject)
          shape_error(path, where + " stats." + metric + " is not an object");
        MetricStats ms;
        ms.count = static_cast<std::size_t>(require_u64(
            require(block.find("count"), path, where + " stats count",
                    Json::Type::kNumber),
            path, where + " stats count"));
        ms.median = require_number(block.find("median"), path,
                                   where + " stats median");
        ms.min = require_number(block.find("min"), path, where + " stats min");
        ms.p90 = require_number(block.find("p90"), path, where + " stats p90");
        ms.mad = require_number(block.find("mad"), path, where + " stats mad");
        scenario.stats.emplace(metric, ms);
      }
      report.scenarios.push_back(std::move(scenario));
    }
  } catch (const JsonParseError& e) {
    throw BenchError(e.what());
  }
  return report;
}

}  // namespace pwcet::benchlib
