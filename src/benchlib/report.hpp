/// \file
/// Versioned BenchReport artifact: the JSON document `pwcet bench run`
/// writes and `pwcet bench diff` consumes.
///
/// Schema (`pwcet-bench-report-v1`):
/// ```json
/// {
///   "schema": "pwcet-bench-report-v1",
///   "environment": {"threads": "1", "build_type": "release", ...},
///   "scenarios": [
///     {"name": "campaign.geometry_sweep.cold",
///      "samples": [
///        {"wall_ns": 2693714000,
///         "metrics": {"phase.convolve": 2375976000, ...},
///         "counters": {"engine.jobs": 60, ...}}, ...],
///      "stats": {
///        "wall_ns": {"count": 5, "median": 2693714000.0, "min": ...,
///                    "p90": ..., "mad": ...}, ...}}
///   ]
/// }
/// ```
/// Every sample embeds its own MetricsRegistry snapshot (per-phase
/// nanosecond totals + store/engine counters), so a diff can attribute a
/// regression to a phase, not just to a scenario. The `stats` block is
/// derived (median/min/p90 location, MAD dispersion) and is what the
/// diff's noise-aware verdicts read. The document carries no timestamps
/// or hostnames: two runs under identical conditions produce
/// structurally comparable artifacts.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/harness.hpp"

namespace pwcet::benchlib {

/// Error loading or interpreting a BenchReport artifact. what() is a
/// ready-to-print diagnostic naming the file and problem.
class BenchError : public std::runtime_error {
 public:
  explicit BenchError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Robust summary of one metric's samples: median/min/p90 location plus
/// MAD (median absolute deviation) dispersion. MAD, not stddev — one
/// preempted repetition must not widen the noise band enough to hide a
/// real regression (nor shrink a real one into "noise").
struct MetricStats {
  std::size_t count = 0;
  double median = 0.0;
  double min = 0.0;
  double p90 = 0.0;
  double mad = 0.0;
};

/// Computes MetricStats over raw samples (empty input -> all zeros).
MetricStats compute_metric_stats(const std::vector<double>& samples);

/// One scenario's samples plus derived per-metric statistics. `stats`
/// always contains "wall_ns" and one entry per metric present in any
/// sample (computed over the samples that carry it).
struct ScenarioReport {
  std::string name;
  std::vector<RepetitionSample> samples;
  std::map<std::string, MetricStats> stats;
};

/// Builds a ScenarioReport from harness samples (derives `stats`).
ScenarioReport summarize_scenario(ScenarioSamples samples);

struct BenchReport {
  static constexpr const char* kSchema = "pwcet-bench-report-v1";

  std::string schema = kSchema;
  /// Measurement-environment capture, insertion-ordered string pairs:
  /// threads, hardware_threads, store mode, build type, obs on/off,
  /// warmup, repetitions. Diffs warn when the two sides differ.
  std::vector<std::pair<std::string, std::string>> environment;
  std::vector<ScenarioReport> scenarios;

  const ScenarioReport* find(const std::string& name) const {
    for (const ScenarioReport& scenario : scenarios)
      if (scenario.name == name) return &scenario;
    return nullptr;
  }
};

/// Serializes the report as its versioned JSON document.
std::string bench_report_json(const BenchReport& report);

/// Writes bench_report_json to `path`; false on I/O failure.
bool write_bench_report(const BenchReport& report, const std::string& path);

/// Loads a BenchReport artifact via support/json_doc. Accepts any schema
/// string (the diff enforces version agreement) but requires the
/// structural shape above.
/// \throws BenchError on unreadable files, malformed JSON or wrong shape.
BenchReport load_bench_report(const std::string& path);

}  // namespace pwcet::benchlib
