/// \file
/// Differential comparison of two BenchReport artifacts with noise-aware
/// verdicts — the library behind `pwcet bench diff` and the CI
/// perf-regression gate.
///
/// Scenarios are aligned by name, metrics within a scenario by metric
/// name. For each aligned metric the verdict compares the median shift
/// against a noise band that is the *widest* of three guards:
///
///   band = max( threshold x before.median,          // relative floor
///               noise_mult x 1.4826 x max(MAD_a, MAD_b),  // dispersion
///               min_band_ns )                        // clock-resolution
///
/// delta = after.median - before.median; delta > band is `regressed`,
/// delta < -band is `improved`, anything inside the band is `unchanged`.
/// The MAD term widens the band automatically on noisy hosts (the
/// committed BENCH history shows scheduler noise dominating 1-hardware-
/// thread boxes), while the relative threshold keeps tiny absolute
/// wobbles on microsecond metrics from reading as regressions.
///
/// Scenario/metric additions and removals are reported but are not
/// regressions; a schema-version mismatch between the two artifacts is a
/// hard error (BenchError) — verdicts across schemas would be
/// meaningless.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "benchlib/report.hpp"

namespace pwcet::benchlib {

struct DiffOptions {
  /// Relative regression threshold against the baseline median
  /// (`--threshold`); 0.25 = a metric must move 25% to be a verdict.
  double threshold = 0.25;
  /// Multiplier on the normal-consistent MAD sigma (1.4826 x MAD).
  double noise_mult = 4.0;
  /// Absolute floor in nanoseconds, below which a shift is never a
  /// verdict (clock resolution + scheduler jitter).
  double min_band_ns = 1000.0;
};

enum class Verdict { kUnchanged, kImproved, kRegressed };

const char* verdict_name(Verdict verdict);

/// One aligned (scenario, metric) comparison.
struct MetricDelta {
  std::string scenario;
  std::string metric;
  MetricStats before;
  MetricStats after;
  double delta_ns = 0.0;  ///< after.median - before.median
  double band_ns = 0.0;   ///< noise band the delta was judged against
  Verdict verdict = Verdict::kUnchanged;
};

struct BenchDiff {
  std::vector<MetricDelta> deltas;  ///< aligned metrics, report order
  std::vector<std::string> added_scenarios;    ///< only in the new report
  std::vector<std::string> removed_scenarios;  ///< only in the baseline
  /// Metrics present on one side only, as "scenario/metric".
  std::vector<std::string> added_metrics;
  std::vector<std::string> removed_metrics;
  /// Environment keys whose values differ, as "key: old -> new".
  std::vector<std::string> environment_changes;

  std::size_t count(Verdict verdict) const {
    std::size_t n = 0;
    for (const MetricDelta& delta : deltas) n += delta.verdict == verdict;
    return n;
  }
  bool has_regression() const { return count(Verdict::kRegressed) > 0; }
};

/// Aligns and judges `after` against the `before` baseline.
/// \throws BenchError when the two artifacts carry different schema
/// versions (their stats are not comparable).
BenchDiff diff_reports(const BenchReport& before, const BenchReport& after,
                       const DiffOptions& options = {});

/// Human-readable rendering: per-metric table (medians in ms, delta %,
/// noise band, verdict), alignment notes, and a one-line summary naming
/// every regressed scenario/metric.
void render_diff(const BenchDiff& diff, const DiffOptions& options,
                 std::ostream& out);

}  // namespace pwcet::benchlib
