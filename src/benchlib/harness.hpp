/// \file
/// Statistics-driven benchmark harness: configurable warmup + repetition
/// measurement of a scenario body on the monotonic clock, with a
/// MetricsRegistry snapshot captured per repetition so every sample
/// carries its own per-phase breakdown and store counters.
///
/// The harness is the *active* measurement layer on top of the passive
/// src/obs/ collectors: it arms the process-wide MetricsRegistry around
/// each timed repetition (cleared between repetitions, so samples do not
/// bleed into each other) and disarms + clears it afterwards — like every
/// obs consumer it is observation-only, so campaign reports stay
/// byte-identical with benchlib linked in or actively measuring.
///
/// Sampling discipline: `warmup` repetitions run first and are discarded
/// (page cache, allocator, CPU-frequency settling), then `repetitions`
/// samples are recorded. Downstream statistics are median/min/p90 with
/// MAD dispersion (benchlib/report.hpp) — robust location and spread, so
/// one scheduler preemption cannot masquerade as a perf regression.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace pwcet::benchlib {

/// Harness knobs for one `run_scenario` call.
struct BenchOptions {
  /// Discarded settling repetitions before sampling starts.
  std::size_t warmup = 1;
  /// Recorded repetitions; every derived statistic is over these.
  std::size_t repetitions = 5;
  /// Arm the obs MetricsRegistry around each repetition and embed its
  /// snapshot (histogram totals + non-zero counters) in the sample. Off
  /// for pure wall-clock timing runs (e.g. measuring the enabled-obs
  /// overhead itself needs an unobserved twin).
  bool capture_metrics = true;
  /// Fault-injection self-test knob: scale every recorded sample of the
  /// named metric ("wall_ns", a phase histogram name, or a custom
  /// recorder metric) by the factor. This deliberately corrupts the
  /// *measurements*, never the computation — it exists so CI can prove
  /// the `bench diff` regression gate actually fires (a ~2x injected
  /// slowdown must be flagged and named). Documented in
  /// docs/benchmarking.md; never set it for real measurements.
  std::vector<std::pair<std::string, double>> inject_slowdown;
};

/// Per-repetition channel a scenario body can push custom sub-metrics
/// into (e.g. the store scenario records "cold_ns" and "warm_ns" from one
/// body that runs both). Harness-owned; cleared between repetitions.
class Recorder {
 public:
  /// Records one named nanosecond measurement for the current repetition.
  /// Names share the namespace of the automatic metrics ("wall_ns", phase
  /// histogram names); later records of the same name overwrite.
  void record_ns(const std::string& metric, std::uint64_t ns);

 private:
  friend struct HarnessAccess;
  std::vector<std::pair<std::string, std::uint64_t>> extra_;
};

/// One recorded repetition: the body's wall time, the per-metric
/// nanosecond breakdown (histogram totals from the armed MetricsRegistry
/// — phase sums, queue waits — merged with Recorder entries), and the
/// registry's non-zero counters (store hits/misses, job counts).
struct RepetitionSample {
  std::uint64_t wall_ns = 0;
  std::vector<std::pair<std::string, std::uint64_t>> metrics;   ///< sorted
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< sorted
};

/// All samples of one measured scenario, in recording order.
struct ScenarioSamples {
  std::string name;
  std::vector<RepetitionSample> samples;
};

/// Runs `body` warmup + repetitions times and returns the recorded
/// samples. The MetricsRegistry is cleared/armed per repetition when
/// `capture_metrics` is set, and left disabled and empty on return
/// (whatever its prior state). Exceptions from the body propagate —
/// scenarios use them to fail loudly when a determinism check breaks.
ScenarioSamples run_scenario(const std::string& name,
                             const BenchOptions& options,
                             const std::function<void(Recorder&)>& body);

}  // namespace pwcet::benchlib
