#include "benchlib/harness.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace pwcet::benchlib {

void Recorder::record_ns(const std::string& metric, std::uint64_t ns) {
  for (auto& [name, value] : extra_) {
    if (name == metric) {
      value = ns;
      return;
    }
  }
  extra_.emplace_back(metric, ns);
}

/// Internal access to Recorder state without widening its public surface.
struct HarnessAccess {
  static std::vector<std::pair<std::string, std::uint64_t>> take(
      Recorder& recorder) {
    return std::move(recorder.extra_);
  }
};

namespace {

/// Applies the inject_slowdown factors to one metric value. Exact-name
/// match only; the factor scales the measured nanoseconds.
std::uint64_t maybe_inject(const BenchOptions& options,
                           const std::string& metric, std::uint64_t ns) {
  for (const auto& [name, factor] : options.inject_slowdown)
    if (name == metric)
      return static_cast<std::uint64_t>(
          std::llround(static_cast<double>(ns) * factor));
  return ns;
}

}  // namespace

ScenarioSamples run_scenario(const std::string& name,
                             const BenchOptions& options,
                             const std::function<void(Recorder&)>& body) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  // The harness owns the registry for the duration of the run: snapshots
  // must attribute to exactly one repetition, so any previously collected
  // data is cleared and the registry is left disabled + empty on return.
  registry.disable();
  registry.clear();

  ScenarioSamples out;
  out.name = name;
  out.samples.reserve(options.repetitions);

  const std::size_t total = options.warmup + options.repetitions;
  for (std::size_t rep = 0; rep < total; ++rep) {
    const bool measured = rep >= options.warmup;
    if (options.capture_metrics) {
      registry.clear();
      registry.enable();
    }
    Recorder recorder;
    const std::uint64_t start_ns = obs::monotonic_ns();
    try {
      body(recorder);
    } catch (...) {
      registry.disable();
      registry.clear();
      throw;
    }
    const std::uint64_t wall_ns = obs::monotonic_ns() - start_ns;
    if (options.capture_metrics) registry.disable();
    if (!measured) continue;

    RepetitionSample sample;
    sample.wall_ns = maybe_inject(options, "wall_ns", wall_ns);
    if (options.capture_metrics) {
      for (const obs::MetricsRegistry::NamedHistogram& h :
           registry.histograms()) {
        if (h.snapshot.count == 0) continue;
        sample.metrics.emplace_back(
            h.name, maybe_inject(options, h.name, h.snapshot.sum_ns));
      }
      for (const auto& [counter, value] : registry.counters())
        if (value != 0) sample.counters.emplace_back(counter, value);
    }
    for (auto& [metric, ns] : HarnessAccess::take(recorder))
      sample.metrics.emplace_back(metric, maybe_inject(options, metric, ns));
    std::sort(sample.metrics.begin(), sample.metrics.end());
    out.samples.push_back(std::move(sample));
  }

  registry.disable();
  registry.clear();
  return out;
}

}  // namespace pwcet::benchlib
