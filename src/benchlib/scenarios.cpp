#include "benchlib/scenario.hpp"

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <stdexcept>
#include <tuple>

#include "analysis/dcache_domain.hpp"
#include "analysis/icache_domain.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/tlb_domain.hpp"
#include "core/pwcet_analyzer.hpp"
#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/shard.hpp"
#include "store/analysis_store.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/ipet.hpp"
#include "wcet/tree_engine.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet::benchlib {

CampaignSpec geometry_sweep_spec() {
  CampaignSpec spec;
  spec.tasks = {"adpcm", "matmult", "crc", "fft"};
  for (const auto& [sets, ways, line] :
       {std::tuple{32u, 2u, 16u}, std::tuple{16u, 4u, 16u},
        std::tuple{8u, 8u, 16u}, std::tuple{32u, 4u, 8u},
        std::tuple{8u, 4u, 32u}}) {
    CacheConfig config;
    config.sets = sets;
    config.ways = ways;
    config.line_bytes = line;
    spec.geometries.push_back(config);
  }
  spec.pfails = {1e-4};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  return spec;
}

CampaignSpec pfail_sweep_spec() {
  // Mirrors specs/pfail_sweep.json (E3): the paper's geometry, the full
  // pfail ladder from the 45 nm literature value to the low-voltage
  // regime. Kept in lockstep with the JSON spec by tests/benchlib_test.
  CampaignSpec spec;
  spec.tasks = {"adpcm", "fibcall", "matmult", "crc", "fft", "ud"};
  spec.geometries = {CacheConfig::paper_default()};
  spec.pfails = {6.1e-13, 1e-9, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3};
  spec.mechanisms = {Mechanism::kNone, Mechanism::kSharedReliableBuffer,
                     Mechanism::kReliableWay};
  spec.target_exceedance = 1e-15;
  return spec;
}

namespace {

/// Checks campaign-report identity across repetitions: the first
/// rendering is the baseline, later ones must match byte for byte (the
/// engine's determinism contract — a drift here means measurement and
/// correctness can no longer be trusted together).
struct IdentityCheck {
  std::string baseline;
  void check(const std::string& csv, const char* scenario) {
    if (baseline.empty()) {
      baseline = csv;
    } else if (baseline != csv) {
      throw std::runtime_error(std::string(scenario) +
                               ": campaign report drifted between "
                               "repetitions (determinism violation)");
    }
  }
};

/// Shared fixture for the micro scenarios: the adpcm task against the
/// paper-default geometry, with the derived stages precomputed so each
/// scenario times exactly one stage.
struct AdpcmFixture {
  Program program = workloads::build("adpcm");
  CacheConfig config = CacheConfig::paper_default();
  ReferenceMap refs = extract_references(program.cfg(), config);
  ClassificationMap classification =
      classify_fault_free(program.cfg(), refs, config);
  CostModel model =
      build_time_cost_model(program.cfg(), refs, classification, config);
};

/// Keeps the compiler from discarding a computed value (the benchlib
/// equivalent of benchmark::DoNotOptimize, without the dependency).
template <typename T>
void keep(T&& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

}  // namespace

std::vector<Scenario> builtin_scenarios() {
  std::vector<Scenario> scenarios;

  // ---- macro: the geometry-sweep campaign --------------------------------
  {
    auto identity = std::make_shared<IdentityCheck>();
    scenarios.push_back(
        {"campaign.geometry_sweep.cold",
         "geometry-sweep campaign (60 jobs), fresh in-memory store per "
         "repetition",
         {},
         [identity](Recorder&, const ScenarioOptions& options) {
           AnalysisStore store;
           RunnerOptions runner;
           runner.threads = options.threads;
           runner.shared_store = &store;
           const CampaignResult result =
               run_campaign(geometry_sweep_spec(), runner);
           identity->check(report_csv(result),
                           "campaign.geometry_sweep.cold");
         }});
  }
  {
    auto store = std::make_shared<AnalysisStore>();
    auto identity = std::make_shared<IdentityCheck>();
    scenarios.push_back(
        {"campaign.geometry_sweep.warm",
         "same campaign answered from an already-hot shared store (memo "
         "hit path)",
         [store, identity](const ScenarioOptions& options) {
           RunnerOptions runner;
           runner.threads = options.threads;
           runner.shared_store = store.get();
           identity->check(
               report_csv(run_campaign(geometry_sweep_spec(), runner)),
               "campaign.geometry_sweep.warm");
         },
         [store, identity](Recorder&, const ScenarioOptions& options) {
           RunnerOptions runner;
           runner.threads = options.threads;
           runner.shared_store = store.get();
           const CampaignResult result =
               run_campaign(geometry_sweep_spec(), runner);
           identity->check(report_csv(result),
                           "campaign.geometry_sweep.warm");
         }});
  }

  // ---- macro: the pfail-sweep campaign -----------------------------------
  // The re-weighting stress case: 7 pfail points per (task, mechanism)
  // group share one bundle, so this scenario is dominated by phase.pwf +
  // the convolution fold — exactly the phases the CI gate injects into.
  {
    auto identity = std::make_shared<IdentityCheck>();
    scenarios.push_back(
        {"campaign.pfail_sweep.cold",
         "pfail-sweep campaign (126 jobs, 7 pfails/group), fresh in-memory "
         "store per repetition",
         {},
         [identity](Recorder&, const ScenarioOptions& options) {
           AnalysisStore store;
           RunnerOptions runner;
           runner.threads = options.threads;
           runner.shared_store = &store;
           const CampaignResult result =
               run_campaign(pfail_sweep_spec(), runner);
           identity->check(report_csv(result), "campaign.pfail_sweep.cold");
         }});
  }
  {
    auto store = std::make_shared<AnalysisStore>();
    auto identity = std::make_shared<IdentityCheck>();
    scenarios.push_back(
        {"campaign.pfail_sweep.warm",
         "same pfail sweep answered from an already-hot shared store (memo "
         "hit path)",
         [store, identity](const ScenarioOptions& options) {
           RunnerOptions runner;
           runner.threads = options.threads;
           runner.shared_store = store.get();
           identity->check(
               report_csv(run_campaign(pfail_sweep_spec(), runner)),
               "campaign.pfail_sweep.warm");
         },
         [store, identity](Recorder&, const ScenarioOptions& options) {
           RunnerOptions runner;
           runner.threads = options.threads;
           runner.shared_store = store.get();
           const CampaignResult result =
               run_campaign(pfail_sweep_spec(), runner);
           identity->check(report_csv(result),
                           "campaign.pfail_sweep.warm");
         }});
  }

  // ---- macro: distributed shard runs + merge ------------------------------
  // The pfail sweep split into 3 shard runs (each writing its fragment
  // into its own cache directory) plus the merge that reassembles and
  // unions them — the end-to-end cost of distributing this campaign.
  // Setup computes the single-process baseline once; every repetition's
  // merged report must reproduce those bytes exactly (the sharding
  // determinism contract, checked in the loop, not just in tests).
  {
    auto identity = std::make_shared<IdentityCheck>();
    scenarios.push_back(
        {"campaign.shard_merge",
         "pfail-sweep campaign as 3 shard runs into per-shard cache dirs "
         "+ merge with store union; merged report byte-checked against "
         "the single-process baseline",
         [identity](const ScenarioOptions& options) {
           AnalysisStore store;
           RunnerOptions runner;
           runner.threads = options.threads;
           runner.shared_store = &store;
           identity->check(
               report_csv(run_campaign(pfail_sweep_spec(), runner)),
               "campaign.shard_merge");
         },
         [identity](Recorder&, const ScenarioOptions& options) {
           namespace fs = std::filesystem;
           const fs::path root =
               fs::temp_directory_path() /
               ("pwcet_bench_shard_" + std::to_string(::getpid()));
           std::error_code ec;
           fs::remove_all(root, ec);  // cold cache dirs every repetition
           const CampaignSpec spec = pfail_sweep_spec();
           ShardMergeOptions merge;
           merge.shard_count = 3;
           for (std::size_t i = 0; i < merge.shard_count; ++i) {
             const std::string dir =
                 (root / ("shard" + std::to_string(i))).string();
             ShardSelector shard;
             shard.index = i;
             shard.count = merge.shard_count;
             RunnerOptions runner;
             runner.threads = options.threads;
             run_campaign_shard(spec, shard, runner, dir);
             merge.from_dirs.push_back(dir);
           }
           merge.into_dir = (root / "union").string();
           const ShardMergeOutcome merged =
               merge_campaign_shards(spec, merge);
           identity->check(report_csv(merged.campaign),
                           "campaign.shard_merge");
           fs::remove_all(root, ec);
         }});
  }

  // ---- pipeline: full analysis below campaign granularity ----------------
  {
    auto fixture = std::make_shared<AdpcmFixture>();
    scenarios.push_back(
        {"pipeline.full",
         "fresh analyzer + all three mechanisms on adpcm (3 iterations); "
         "samples carry the phase.* breakdown",
         {},
         [fixture](Recorder&, const ScenarioOptions&) {
           const FaultModel faults(1e-4);
           for (int i = 0; i < 3; ++i) {
             const PwcetAnalyzer analyzer(fixture->program, fixture->config);
             keep(analyzer.analyze(faults, Mechanism::kNone));
             keep(analyzer.analyze(faults, Mechanism::kReliableWay));
             keep(analyzer.analyze(faults, Mechanism::kSharedReliableBuffer));
           }
         }});
  }

  // ---- pipeline: three-domain composition (icache + dcache + TLB) --------
  {
    scenarios.push_back(
        {"pipeline.tlb",
         "3-domain pipeline (icache + dcache + tlb) + all three mechanisms "
         "on interp (3 iterations); exercises the ncore composition path",
         {},
         [](Recorder&, const ScenarioOptions&) {
           const Program program = workloads::build("interp");
           const CacheConfig icache = CacheConfig::paper_default();
           CacheConfig dcache = CacheConfig::paper_default();
           dcache.sets = 8;
           CacheConfig tlb;
           tlb.sets = 8;  // 16 entries, 2-way
           tlb.ways = 2;
           tlb.line_bytes = 64;  // page size
           tlb.hit_latency = 0;
           tlb.miss_penalty = 30;
           const FaultModel faults(1e-4);
           for (int i = 0; i < 3; ++i) {
             const PwcetPipeline pipeline(
                 program, {std::make_shared<IcacheDomain>(icache),
                           std::make_shared<DcacheDomain>(dcache),
                           std::make_shared<TlbDomain>(tlb)});
             for (const Mechanism mech :
                  {Mechanism::kNone, Mechanism::kReliableWay,
                   Mechanism::kSharedReliableBuffer}) {
               keep(pipeline.analyze(
                   faults, std::vector<Mechanism>{mech, mech, mech}));
             }
           }
         }});
  }

  // ---- micro: one stage each, fixed iteration counts ---------------------
  {
    auto fixture = std::make_shared<AdpcmFixture>();
    scenarios.push_back({"micro.extract",
                         "reference extraction on adpcm (100 iterations)",
                         {},
                         [fixture](Recorder&, const ScenarioOptions&) {
                           for (int i = 0; i < 100; ++i)
                             keep(extract_references(fixture->program.cfg(),
                                                     fixture->config));
                         }});
    scenarios.push_back(
        {"micro.classify",
         "fault-free CHMC classification on adpcm (100 iterations)",
         {},
         [fixture](Recorder&, const ScenarioOptions&) {
           for (int i = 0; i < 100; ++i)
             keep(classify_fault_free(fixture->program.cfg(), fixture->refs,
                                      fixture->config));
         }});
    scenarios.push_back({"micro.maximize.tree",
                         "loop-tree WCET maximization on adpcm (100 "
                         "iterations)",
                         {},
                         [fixture](Recorder&, const ScenarioOptions&) {
                           for (int i = 0; i < 100; ++i)
                             keep(tree_maximize(fixture->program,
                                                fixture->model));
                         }});
    scenarios.push_back({"micro.maximize.ilp",
                         "IPET construction + simplex solve on adpcm (10 "
                         "iterations)",
                         {},
                         [fixture](Recorder&, const ScenarioOptions&) {
                           for (int i = 0; i < 10; ++i) {
                             IpetCalculator ipet(fixture->program);
                             keep(ipet.maximize(fixture->model));
                           }
                         }});
    scenarios.push_back(
        {"micro.fmm.tree",
         "per-set FMM bundle, tree engine, on adpcm (10 iterations)",
         {},
         [fixture](Recorder&, const ScenarioOptions&) {
           for (int i = 0; i < 10; ++i)
             keep(compute_fmm_bundle(fixture->program, fixture->config,
                                     fixture->refs, WcetEngine::kTree,
                                     nullptr));
         }});
  }

  return scenarios;
}

}  // namespace pwcet::benchlib
