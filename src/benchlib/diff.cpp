#include "benchlib/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/table.hpp"

namespace pwcet::benchlib {

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kUnchanged: return "unchanged";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "regressed";
  }
  return "?";
}

namespace {

/// MAD of a normal sample underestimates sigma by this constant factor.
constexpr double kMadToSigma = 1.4826;

MetricDelta judge(const std::string& scenario, const std::string& metric,
                  const MetricStats& before, const MetricStats& after,
                  const DiffOptions& options) {
  MetricDelta delta;
  delta.scenario = scenario;
  delta.metric = metric;
  delta.before = before;
  delta.after = after;
  delta.delta_ns = after.median - before.median;
  delta.band_ns = std::max(
      {options.threshold * before.median,
       options.noise_mult * kMadToSigma * std::max(before.mad, after.mad),
       options.min_band_ns});
  if (delta.delta_ns > delta.band_ns) {
    delta.verdict = Verdict::kRegressed;
  } else if (delta.delta_ns < -delta.band_ns) {
    delta.verdict = Verdict::kImproved;
  }
  return delta;
}

}  // namespace

BenchDiff diff_reports(const BenchReport& before, const BenchReport& after,
                       const DiffOptions& options) {
  if (before.schema != after.schema)
    throw BenchError("schema version mismatch: baseline is \"" +
                     before.schema + "\", candidate is \"" + after.schema +
                     "\" — regenerate the baseline with this build");
  if (before.schema != BenchReport::kSchema)
    throw BenchError("unsupported schema \"" + before.schema +
                     "\" (this build reads \"" +
                     std::string(BenchReport::kSchema) + "\")");

  BenchDiff diff;
  for (const auto& [key, value] : before.environment) {
    for (const auto& [other_key, other_value] : after.environment)
      if (key == other_key && value != other_value)
        diff.environment_changes.push_back(key + ": " + value + " -> " +
                                           other_value);
  }

  for (const ScenarioReport& base : before.scenarios) {
    const ScenarioReport* candidate = after.find(base.name);
    if (candidate == nullptr) {
      diff.removed_scenarios.push_back(base.name);
      continue;
    }
    for (const auto& [metric, stats] : base.stats) {
      const auto it = candidate->stats.find(metric);
      if (it == candidate->stats.end()) {
        diff.removed_metrics.push_back(base.name + "/" + metric);
        continue;
      }
      diff.deltas.push_back(
          judge(base.name, metric, stats, it->second, options));
    }
    for (const auto& [metric, stats] : candidate->stats) {
      (void)stats;
      if (base.stats.find(metric) == base.stats.end())
        diff.added_metrics.push_back(base.name + "/" + metric);
    }
  }
  for (const ScenarioReport& candidate : after.scenarios)
    if (before.find(candidate.name) == nullptr)
      diff.added_scenarios.push_back(candidate.name);
  return diff;
}

namespace {

std::string fmt_ms(double ns) { return fmt_double(ns / 1e6, 3); }

std::string fmt_delta_percent(const MetricDelta& delta) {
  if (delta.before.median <= 0.0) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%+.1f%%",
                100.0 * delta.delta_ns / delta.before.median);
  return buffer;
}

}  // namespace

void render_diff(const BenchDiff& diff, const DiffOptions& options,
                 std::ostream& out) {
  out << "bench diff (threshold " << fmt_double(100.0 * options.threshold, 0)
      << "%, noise band " << fmt_double(options.noise_mult, 1)
      << " x MAD sigma, floor " << fmt_double(options.min_band_ns / 1e6, 3)
      << " ms)\n";

  TextTable table({"scenario", "metric", "old ms", "new ms", "delta",
                   "band ms", "verdict"});
  for (const MetricDelta& delta : diff.deltas)
    table.add_row({delta.scenario, delta.metric, fmt_ms(delta.before.median),
                   fmt_ms(delta.after.median), fmt_delta_percent(delta),
                   fmt_ms(delta.band_ns), verdict_name(delta.verdict)});
  out << table.to_string();

  for (const std::string& change : diff.environment_changes)
    out << "note: environment differs — " << change << "\n";
  for (const std::string& name : diff.added_scenarios)
    out << "note: scenario added (no baseline): " << name << "\n";
  for (const std::string& name : diff.removed_scenarios)
    out << "note: scenario removed (baseline only): " << name << "\n";
  for (const std::string& name : diff.added_metrics)
    out << "note: metric added (no baseline): " << name << "\n";
  for (const std::string& name : diff.removed_metrics)
    out << "note: metric removed (baseline only): " << name << "\n";

  out << "verdict: " << diff.count(Verdict::kRegressed) << " regressed, "
      << diff.count(Verdict::kImproved) << " improved, "
      << diff.count(Verdict::kUnchanged) << " unchanged\n";
  for (const MetricDelta& delta : diff.deltas)
    if (delta.verdict == Verdict::kRegressed)
      out << "regressed: " << delta.scenario << "/" << delta.metric << " ("
          << fmt_delta_percent(delta) << ", band " << fmt_ms(delta.band_ns)
          << " ms)\n";
}

}  // namespace pwcet::benchlib
