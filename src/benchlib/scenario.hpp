/// \file
/// Named benchmark scenarios for `pwcet bench run`.
///
/// Two families:
///   - `campaign.*` macro scenarios run the paper's geometry-sweep
///     campaign end to end (cold store / warm store); their samples carry
///     the full per-phase breakdown from the obs span taxonomy
///     (obs/phase.hpp) plus store counters, because the harness arms the
///     MetricsRegistry around every repetition.
///   - `pipeline.*` / `micro.*` scenarios time one pipeline stage in a
///     fixed-iteration loop (reference extraction, classification,
///     maximization, FMM, the full per-mechanism analysis) so a diff can
///     localize a regression below campaign granularity.
///
/// Every scenario self-checks determinism where it applies (campaign
/// reports must not drift between repetitions — the body throws on
/// drift, failing the bench run loudly). Scenario state lives in the
/// returned closures: call `builtin_scenarios()` once per measurement
/// run so warm-store state never leaks between runs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "benchlib/harness.hpp"
#include "engine/campaign.hpp"

namespace pwcet::benchlib {

/// Execution knobs shared by all scenarios of one `bench run`.
struct ScenarioOptions {
  /// Worker threads for campaign scenarios (1 = deterministic serial
  /// timing, the comparable default).
  std::size_t threads = 1;
};

struct Scenario {
  std::string name;
  std::string description;
  /// Untimed one-shot preparation (build programs, warm the store).
  /// Runs before the first repetition; may be empty.
  std::function<void(const ScenarioOptions&)> setup;
  /// The timed body, run warmup + repetitions times.
  std::function<void(Recorder&, const ScenarioOptions&)> body;
};

/// A fresh set of the built-in scenarios (state captured per call).
std::vector<Scenario> builtin_scenarios();

/// The geometry-sweep campaign the macro scenarios and the perf bench
/// measure: 4 tasks x 5 geometries x 1 pfail x 3 mechanisms = 60 jobs,
/// identical to the grid tracked in BENCH_perf_analysis_time.json.
CampaignSpec geometry_sweep_spec();

/// The pfail-sweep campaign (specs/pfail_sweep.json's grid): 6 tasks x
/// 1 geometry x 7 pfails x 3 mechanisms = 126 jobs. The stress case for
/// the shared re-weighting bundle — every group holds 7 pfail-siblings
/// per mechanism — tracked in BENCH_perf_analysis_time.json and gated in
/// CI via campaign.pfail_sweep.cold.
CampaignSpec pfail_sweep_spec();

}  // namespace pwcet::benchlib
