// Plain-text table formatting used by the benchmark harnesses so that every
// reproduced paper table/figure prints in a uniform, diff-friendly layout.
#pragma once

#include <string>
#include <vector>

namespace pwcet {

/// Column-aligned ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with right-aligned numeric-looking cells.
  std::string to_string() const;

  /// Renders as RFC-4180-style CSV (header row first; cells containing
  /// commas, quotes or newlines are quoted). Used by the campaign report
  /// sink so every table the engine emits is also machine-readable.
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing stream state games).
std::string fmt_double(double value, int precision);

/// Formats a probability in scientific notation (e.g. "1.0e-15").
std::string fmt_prob(double value);

}  // namespace pwcet
