// Fundamental scalar types shared across the pWCET toolchain.
#pragma once

#include <cstdint>

namespace pwcet {

/// Byte address in the (instruction) address space of the analyzed task.
using Address = std::uint64_t;

/// Execution time / penalty expressed in processor cycles.
using Cycles = std::int64_t;

/// Identifier of a cache set.
using SetIndex = std::uint32_t;

/// Cache tag (line address = address / line_size).
using LineAddress = std::uint64_t;

/// Probability value in [0, 1]. Double precision is sufficient for the
/// exceedance levels used in this domain (down to ~1e-300 before underflow,
/// far below the 1e-15 certification targets).
using Probability = double;

}  // namespace pwcet
