#include "support/rng.hpp"

#include "support/contracts.hpp"

namespace pwcet {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& word : state_) word = splitmix64(seed);
  // All-zero state is the single forbidden state of xoshiro; SplitMix64
  // cannot produce four zero outputs in a row, but keep the guard explicit.
  PWCET_ENSURES(state_[0] | state_[1] | state_[2] | state_[3]);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 top bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Condense the 256-bit state into 64 bits (rotations decorrelate the
  // words) and mix in the stream id; the child reseeds through SplitMix64
  // as usual, so children of distinct ids — and of distinct parent states —
  // start from well-separated states.
  const std::uint64_t digest = state_[0] ^ rotl(state_[1], 13) ^
                               rotl(state_[2], 27) ^ rotl(state_[3], 41);
  return Rng(derive_seed(digest, stream_id));
}

std::uint64_t Rng::derive_seed(std::uint64_t base_seed,
                               std::uint64_t stream_id) {
  // Offset by the golden-ratio increment per stream, then finalize; the
  // +1 keeps stream 0 from collapsing to a plain splitmix64(base_seed)
  // that a caller might also be using directly.
  std::uint64_t x = base_seed + 0x9e3779b97f4a7c15ULL * (stream_id + 1);
  return splitmix64(x);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PWCET_EXPECTS(bound > 0);
  const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace pwcet
