#include "support/json_doc.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace pwcet {
namespace {

/// Containers (objects/arrays) may nest at most this deep. The parser is
/// recursive-descent, so unbounded nesting would turn hostile input into
/// a stack overflow; 256 levels is far beyond any document this tree
/// reads or writes, and rejecting with a diagnostic beats crashing.
constexpr int kMaxNestingDepth = 256;

[[noreturn]] void fail(const std::string& source, int line,
                       const std::string& message) {
  std::string out = source;
  out += ':';
  out += std::to_string(line);
  out += ": ";
  out += message;
  throw JsonParseError(out);
}

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& source)
      : text_(text), source_(source) {}

  Json parse_document() {
    Json value = parse_value("document");
    skip_ws();
    if (pos_ != text_.size())
      fail(source_, line_, "trailing content after the document");
    return value;
  }

 private:
  [[noreturn]] void syntax(const std::string& message) {
    fail(source_, line_, message);
  }

  bool eof() const { return pos_ >= text_.size(); }

  char peek() const { return text_[pos_]; }

  char get() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        get();
      } else {
        break;
      }
    }
  }

  void expect(char wanted, const char* what) {
    skip_ws();
    if (eof() || peek() != wanted) syntax(std::string("expected ") + what);
    get();
  }

  Json parse_value(const char* what) {
    skip_ws();
    if (eof()) syntax(std::string("unexpected end of input, expected ") + what);
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    if (c == 't' || c == 'f' || c == 'n') return parse_keyword();
    syntax(std::string("unexpected character '") + c + "', expected " + what);
  }

  /// RAII nesting guard entered by parse_object / parse_array.
  struct DepthGuard {
    explicit DepthGuard(JsonParser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxNestingDepth)
        parser_.syntax("nesting deeper than " +
                       std::to_string(kMaxNestingDepth) +
                       " levels (document rejected)");
    }
    ~DepthGuard() { --parser_.depth_; }
    JsonParser& parser_;
  };

  Json parse_object() {
    const DepthGuard depth(*this);
    Json out;
    out.type = Json::Type::kObject;
    skip_ws();
    out.line = line_;
    expect('{', "'{'");
    skip_ws();
    if (!eof() && peek() == '}') {
      get();
      return out;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') syntax("expected a quoted object key");
      Json key = parse_string();
      expect(':', "':' after object key");
      Json value = parse_value("a value");
      for (const auto& [existing, unused] : out.object) {
        (void)unused;
        if (existing == key.string)
          fail(source_, key.line, "duplicate key \"" + key.string + "\"");
      }
      out.object.emplace_back(std::move(key.string), std::move(value));
      skip_ws();
      if (!eof() && peek() == ',') {
        get();
        continue;
      }
      expect('}', "',' or '}' in object");
      return out;
    }
  }

  Json parse_array() {
    const DepthGuard depth(*this);
    Json out;
    out.type = Json::Type::kArray;
    skip_ws();
    out.line = line_;
    expect('[', "'['");
    skip_ws();
    if (!eof() && peek() == ']') {
      get();
      return out;
    }
    while (true) {
      out.array.push_back(parse_value("an array element"));
      skip_ws();
      if (!eof() && peek() == ',') {
        get();
        continue;
      }
      expect(']', "',' or ']' in array");
      return out;
    }
  }

  Json parse_string() {
    Json out;
    out.type = Json::Type::kString;
    skip_ws();
    out.line = line_;
    expect('"', "'\"'");
    while (true) {
      if (eof()) syntax("unterminated string");
      const char c = get();
      if (c == '"') return out;
      if (c == '\n') syntax("raw newline in string");
      if (c != '\\') {
        out.string += c;
        continue;
      }
      if (eof()) syntax("unterminated escape");
      const char esc = get();
      switch (esc) {
        case '"': out.string += '"'; break;
        case '\\': out.string += '\\'; break;
        case '/': out.string += '/'; break;
        case 'b': out.string += '\b'; break;
        case 'f': out.string += '\f'; break;
        case 'n': out.string += '\n'; break;
        case 'r': out.string += '\r'; break;
        case 't': out.string += '\t'; break;
        case 'u': out.string += parse_unicode_escape(); break;
        default: syntax(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  std::string parse_unicode_escape() {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // Surrogate pair: the low half must follow immediately.
      if (eof() || get() != '\\' || eof() || get() != 'u')
        syntax("high surrogate not followed by \\u low surrogate");
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) syntax("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      syntax("unpaired low surrogate");
    }
    std::string utf8;
    if (code < 0x80) {
      utf8 += static_cast<char>(code);
    } else if (code < 0x800) {
      utf8 += static_cast<char>(0xC0 | (code >> 6));
      utf8 += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      utf8 += static_cast<char>(0xE0 | (code >> 12));
      utf8 += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      utf8 += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      utf8 += static_cast<char>(0xF0 | (code >> 18));
      utf8 += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      utf8 += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      utf8 += static_cast<char>(0x80 | (code & 0x3F));
    }
    return utf8;
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) syntax("unterminated \\u escape");
      const char c = get();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        syntax("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  Json parse_number() {
    Json out;
    out.type = Json::Type::kNumber;
    out.line = line_;
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') get();
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '+' ||
                      peek() == '-'))
      get();
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      syntax("malformed number \"" + token + "\"");
    // Overflow to infinity (e.g. 1e999) would silently poison every
    // arithmetic consumer downstream; underflow-to-zero is accepted as
    // the nearest representable value.
    if (std::isinf(out.number))
      syntax("number \"" + token + "\" overflows a double");
    if (token.find_first_of(".eE") == std::string::npos && token[0] != '-') {
      errno = 0;
      const unsigned long long exact = std::strtoull(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size()) {
        if (errno == 0) {
          out.integral = true;
          out.integer = exact;
        } else {
          out.integer_overflow = true;
        }
      }
    }
    return out;
  }

  Json parse_keyword() {
    Json out;
    out.line = line_;
    auto matches = [&](const char* word) {
      const std::size_t n = std::char_traits<char>::length(word);
      return text_.compare(pos_, n, word) == 0;
    };
    if (matches("true")) {
      out.type = Json::Type::kBool;
      out.boolean = true;
      pos_ += 4;
    } else if (matches("false")) {
      out.type = Json::Type::kBool;
      out.boolean = false;
      pos_ += 5;
    } else if (matches("null")) {
      out.type = Json::Type::kNull;
      pos_ += 4;
    } else {
      syntax("unexpected token");
    }
    return out;
  }

  const std::string& text_;
  const std::string& source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int depth_ = 0;
};

}  // namespace

Json parse_json(const std::string& text, const std::string& source) {
  return JsonParser(text, source).parse_document();
}

}  // namespace pwcet
