/// \file
/// Minimal JSON document model + strict recursive-descent parser, shared
/// by every JSON *reader* in the tree (engine/spec_io.cpp's campaign-spec
/// loader, the CLI's `cache stats --metrics` renderer, tests validating
/// trace/metrics exports) so the accepted grammar cannot drift between
/// them.
///
/// Values remember the line their first token started on, which is what
/// lets semantic diagnostics downstream ("bad enum value", "must be
/// positive") point at the offending line rather than just the offending
/// key. Numbers keep both the double and, when the token is a plain
/// integer that fits, the exact 64-bit value — so values larger than 2^53
/// (e.g. campaign seeds) survive without rounding.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pwcet {

/// Error raised for malformed JSON text. what() is a ready-to-print,
/// single-line diagnostic of the form `<source>:<line>: <problem>`.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& message)
      : std::runtime_error(message) {}
};

/// One parsed JSON value (a whole document is just the root value).
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  bool integral = false;      ///< token was plain digits and fits uint64
  bool integer_overflow = false;  ///< token was plain digits but > 2^64-1
  std::uint64_t integer = 0;      ///< meaningful only when `integral`
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;  ///< insertion order
  int line = 1;

  const char* type_name() const {
    switch (type) {
      case Type::kNull: return "null";
      case Type::kBool: return "a boolean";
      case Type::kNumber: return "a number";
      case Type::kString: return "a string";
      case Type::kArray: return "an array";
      case Type::kObject: return "an object";
    }
    return "?";
  }

  /// Object member by key, or nullptr when `this` is not an object or has
  /// no such key. Convenience for read-only consumers (the schema-mapping
  /// loaders keep their own stricter walkers).
  const Json* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [name, value] : object)
      if (name == key) return &value;
    return nullptr;
  }
};

/// Parses one JSON document (rejecting trailing content). `source` names
/// the origin in diagnostics (a file path, or "<inline>" for tests).
/// Duplicate object keys are rejected — every reader here treats objects
/// as maps, and a silently-dropped duplicate would hide user error.
/// Containers nesting deeper than 256 levels and numbers overflowing a
/// double (e.g. `1e999`) are rejected with a diagnostic rather than
/// risking a parser stack overflow or a silent infinity downstream.
/// \throws JsonParseError on any syntax problem.
Json parse_json(const std::string& text, const std::string& source);

}  // namespace pwcet
