/// \file
/// Shared JSON string escaping, used by every JSON writer in the tree
/// (engine/report.cpp's JSONL rows, engine/spec_io.cpp's spec serializer)
/// so the escape table cannot drift between them.
#pragma once

#include <string>

namespace pwcet {

/// Full RFC 8259 string escaping. Control characters matter most here:
/// an unescaped newline in a label would split a JSONL row in two and
/// break every byte-identity check downstream.
std::string json_escape(const std::string& s);

/// `json_escape` wrapped in double quotes — a ready-to-emit JSON string.
std::string json_quote(const std::string& s);

}  // namespace pwcet
