#include "support/json.hpp"

#include <cstdio>

namespace pwcet {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  // Built via += (not "\"" + escaped + "\""): g++ 12's -Wrestrict misfires
  // on the literal+temporary operator+ chain at -O2 (GCC PR105329), and
  // the CI warnings-as-errors job builds Release.
  std::string out = "\"";
  out += json_escape(s);
  out += '"';
  return out;
}

}  // namespace pwcet
