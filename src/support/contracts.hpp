// Lightweight contract checking. Violations indicate programming errors in
// the toolchain (not bad user input) and abort with a diagnostic, matching
// the "fail fast on broken invariants" policy used throughout the library.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pwcet::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line) {
  std::fprintf(stderr, "pwcet: %s failed: %s (%s:%d)\n", kind, cond, file,
               line);
  std::abort();
}

}  // namespace pwcet::detail

#define PWCET_EXPECTS(cond)                                              \
  ((cond) ? (void)0                                                      \
          : ::pwcet::detail::contract_failure("precondition", #cond,     \
                                              __FILE__, __LINE__))

#define PWCET_ENSURES(cond)                                              \
  ((cond) ? (void)0                                                      \
          : ::pwcet::detail::contract_failure("postcondition", #cond,    \
                                              __FILE__, __LINE__))

#define PWCET_ASSERT(cond)                                               \
  ((cond) ? (void)0                                                      \
          : ::pwcet::detail::contract_failure("invariant", #cond,        \
                                              __FILE__, __LINE__))
