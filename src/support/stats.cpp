#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace pwcet {

SampleSummary summarize(std::span<const double> sample) {
  SampleSummary s;
  if (sample.empty()) return s;
  s.count = sample.size();
  s.min = sample.front();
  s.max = sample.front();
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t n = 0;
  for (double x : sample) {
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = mean;
  s.variance = (n > 1) ? m2 / static_cast<double>(n - 1) : 0.0;
  return s;
}

double empirical_quantile(std::span<const double> sample, double q) {
  PWCET_EXPECTS(!sample.empty());
  PWCET_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> v = sorted(sample);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double empirical_exceedance(std::span<const double> sample, double threshold) {
  PWCET_EXPECTS(!sample.empty());
  std::size_t above = 0;
  for (double x : sample) above += (x > threshold) ? 1 : 0;
  return static_cast<double>(above) / static_cast<double>(sample.size());
}

std::vector<double> sorted(std::span<const double> sample) {
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  return v;
}

double median(std::span<const double> sample) {
  return empirical_quantile(sample, 0.5);
}

double median_abs_deviation(std::span<const double> sample) {
  PWCET_EXPECTS(!sample.empty());
  const double center = median(sample);
  std::vector<double> deviations;
  deviations.reserve(sample.size());
  for (double x : sample) deviations.push_back(std::abs(x - center));
  return median(deviations);
}

double geometric_mean(std::span<const double> sample) {
  PWCET_EXPECTS(!sample.empty());
  double log_sum = 0.0;
  for (double x : sample) {
    PWCET_EXPECTS(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

}  // namespace pwcet
