#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/contracts.hpp"

namespace pwcet {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PWCET_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  PWCET_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto pad = [](const std::string& s, std::size_t w) {
    return std::string(w - s.size(), ' ') + s;
  };

  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += pad(header_[c], width[c]);
    out += (c + 1 == header_.size()) ? "\n" : "  ";
  }
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += std::string(width[c], '-');
    out += (c + 1 == header_.size()) ? "\n" : "  ";
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c], width[c]);
      out += (c + 1 == row.size()) ? "\n" : "  ";
    }
  }
  return out;
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& cell) {
    // \r included: a bare carriage return would survive unquoted and make
    // the emitted line ambiguous for CRLF-aware CSV readers.
    if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += escape(row[c]);
      line += (c + 1 == row.size()) ? "\n" : ",";
    }
    return line;
  };
  std::string out = emit_row(header_);
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_prob(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1e", value);
  return buf;
}

}  // namespace pwcet
