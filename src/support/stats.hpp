// Small numeric statistics helpers shared by the MBPTA module, the
// validation tests, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pwcet {

/// Summary statistics of a sample.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/variance/min/max in one pass (Welford).
SampleSummary summarize(std::span<const double> sample);

/// Empirical quantile with linear interpolation, q in [0, 1].
/// The input does not need to be sorted.
double empirical_quantile(std::span<const double> sample, double q);

/// Empirical exceedance probability P(X > threshold).
double empirical_exceedance(std::span<const double> sample, double threshold);

/// Returns a sorted copy of the sample.
std::vector<double> sorted(std::span<const double> sample);

/// Sample median (empirical_quantile at 0.5): the location estimate the
/// benchmark harness reports, robust to scheduler-noise outliers.
double median(std::span<const double> sample);

/// Median absolute deviation around the median — the harness's robust
/// dispersion estimate. Multiply by 1.4826 for a normal-consistent sigma.
double median_abs_deviation(std::span<const double> sample);

/// Geometric mean; all inputs must be strictly positive.
double geometric_mean(std::span<const double> sample);

}  // namespace pwcet
