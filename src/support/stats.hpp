// Small numeric statistics helpers shared by the MBPTA module, the
// validation tests, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pwcet {

/// Summary statistics of a sample.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/variance/min/max in one pass (Welford).
SampleSummary summarize(std::span<const double> sample);

/// Empirical quantile with linear interpolation, q in [0, 1].
/// The input does not need to be sorted.
double empirical_quantile(std::span<const double> sample, double q);

/// Empirical exceedance probability P(X > threshold).
double empirical_exceedance(std::span<const double> sample, double threshold);

/// Returns a sorted copy of the sample.
std::vector<double> sorted(std::span<const double> sample);

/// Geometric mean; all inputs must be strictly positive.
double geometric_mean(std::span<const double> sample);

}  // namespace pwcet
