// Deterministic pseudo-random number generation for fault-map sampling and
// Monte-Carlo validation. xoshiro256** is small, fast, and has no global
// state, so experiments are reproducible from a single seed.
#pragma once

#include <array>
#include <cstdint>

namespace pwcet {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Bernoulli trial with success probability p.
  bool next_bernoulli(double p) { return next_double() < p; }

  /// Forks an independent, reproducible substream keyed by `stream_id`.
  /// Does not advance `this`: the same (state, stream_id) pair always
  /// yields the same child, so parallel jobs can derive their generators
  /// from a shared parent in any order — the fix for the nondeterminism a
  /// shared sequential generator would introduce under a thread pool.
  Rng split(std::uint64_t stream_id) const;

  /// Mixes a stream identifier into a base seed (SplitMix64 finalizer).
  /// Chain it over the fields of a job key to get one seed per job that is
  /// stable under re-ordering or extension of the surrounding sweep.
  static std::uint64_t derive_seed(std::uint64_t base_seed,
                                   std::uint64_t stream_id);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pwcet
