// Deterministic pseudo-random number generation for fault-map sampling and
// Monte-Carlo validation. xoshiro256** is small, fast, and has no global
// state, so experiments are reproducible from a single seed.
#pragma once

#include <array>
#include <cstdint>

namespace pwcet {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Bernoulli trial with success probability p.
  bool next_bernoulli(double p) { return next_double() < p; }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pwcet
