// Hand-rolled extreme-value statistics.
//
// The paper's method is *static* probabilistic timing analysis; the main
// measurement-based alternative in its related work (Slijepcevic et al.,
// DTM [7]) derives pWCET estimates by fitting extreme-value distributions
// to observed execution times. This module provides that comparator:
// block-maxima + Gumbel (MLE via Newton) and peaks-over-threshold +
// generalized Pareto (probability-weighted moments), plus a
// Kolmogorov-Smirnov distance for fit quality. No external statistics
// package is used.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace pwcet {

/// Gumbel (EV type I) distribution: CDF F(x) = exp(-exp(-(x-mu)/beta)).
struct GumbelFit {
  double mu = 0.0;    ///< location
  double beta = 1.0;  ///< scale (> 0)
  bool converged = false;

  double cdf(double x) const;
  /// P[X > x], computed in a cancellation-free form (accurate even where
  /// 1 - cdf(x) would lose all significant digits, e.g. at 1e-15 tails).
  double exceedance(double x) const;
  /// Value exceeded with probability p: F^-1(1 - p).
  double quantile_exceedance(double p) const;
};

/// Maximum-likelihood Gumbel fit (Newton iteration on the scale profile
/// likelihood). Requires at least two distinct sample values.
GumbelFit fit_gumbel_mle(std::span<const double> sample);

/// Generalized Pareto distribution over a threshold u:
/// F(z) = 1 - (1 + xi * z / sigma)^(-1/xi), z = x - u >= 0.
struct GpdFit {
  double threshold = 0.0;
  double sigma = 1.0;  ///< scale (> 0)
  double xi = 0.0;     ///< shape
  double exceed_rate = 0.0;  ///< fraction of the sample above the threshold

  /// P[X > x] for x >= threshold, unconditional (includes exceed_rate).
  double exceedance(double x) const;
  /// Value exceeded with probability p (p < exceed_rate).
  double quantile_exceedance(double p) const;
};

/// Peaks-over-threshold GPD fit by probability-weighted moments.
/// `quantile` in (0, 1) picks the threshold as that empirical quantile.
GpdFit fit_gpd_pot(std::span<const double> sample, double quantile);

/// Per-block maxima of consecutive windows (tail samples for Gumbel).
std::vector<double> block_maxima(std::span<const double> sample,
                                 std::size_t block_size);

/// Kolmogorov-Smirnov statistic of the sample against a model CDF.
double ks_statistic(std::span<const double> sample,
                    const std::function<double(double)>& cdf);

}  // namespace pwcet
