// Measurement-based probabilistic timing analysis over a fault population.
//
// Protocol (mirroring what DTM-style MBPTA [7] would do on real degraded
// chips): sample N "chips" (fault maps drawn from the cell failure model),
// execute the task's worst structural path on each chip's cache simulator,
// and fit an extreme-value tail to the observed execution times. The
// resulting pWCET estimate is *not* guaranteed conservative — which is
// precisely the paper's argument for static analysis; the comparison bench
// (tab_mbpta_vs_spta) puts the two side by side.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_config.hpp"
#include "cfg/program.hpp"
#include "fault/fault_model.hpp"
#include "mbpta/evt.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace pwcet {

struct MbptaOptions {
  std::size_t chips = 400;          ///< fault maps sampled
  std::size_t block_size = 20;      ///< block-maxima window
  std::uint64_t seed = 0x5eed;
};

struct MbptaResult {
  std::vector<double> times;  ///< observed cycles, one per chip
  GumbelFit gumbel;           ///< fit on block maxima
  double observed_max = 0.0;

  /// Measurement-based pWCET estimate at exceedance probability p.
  double pwcet(Probability p) const { return gumbel.quantile_exceedance(p); }
};

/// Runs the measurement protocol for one mechanism.
MbptaResult run_mbpta(const Program& program, const CacheConfig& config,
                      const FaultModel& faults, Mechanism mechanism,
                      const MbptaOptions& options = {});

}  // namespace pwcet
