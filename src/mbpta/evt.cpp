#include "mbpta/evt.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/stats.hpp"

namespace pwcet {

double GumbelFit::cdf(double x) const {
  return std::exp(-std::exp(-(x - mu) / beta));
}

double GumbelFit::exceedance(double x) const {
  // 1 - exp(-t) = -expm1(-t) with t = exp(-(x-mu)/beta).
  return -std::expm1(-std::exp(-(x - mu) / beta));
}

double GumbelFit::quantile_exceedance(double p) const {
  PWCET_EXPECTS(p > 0.0 && p < 1.0);
  // Solve exp(-exp(-(x-mu)/beta)) = 1 - p. For tiny p, -log1p(-p) ~ p keeps
  // full precision where naive log(1-p) underflows to 0.
  return mu - beta * std::log(-std::log1p(-p));
}

GumbelFit fit_gumbel_mle(std::span<const double> sample) {
  PWCET_EXPECTS(sample.size() >= 2);
  const SampleSummary s = summarize(sample);
  GumbelFit fit;
  if (s.max == s.min) {
    fit.mu = s.mean;
    fit.beta = 1e-12;
    fit.converged = false;
    return fit;
  }

  // Profile MLE: beta solves  g(beta) = mean - beta - S1(beta)/S0(beta) = 0
  // with S0 = sum exp(-x/beta), S1 = sum x exp(-x/beta). Newton with the
  // moment estimator beta0 = sqrt(6 Var)/pi as the start.
  const double n = static_cast<double>(sample.size());
  double beta = std::sqrt(6.0 * s.variance) / 3.14159265358979323846;
  if (beta <= 0.0) beta = 1e-9;
  bool converged = false;
  for (int iter = 0; iter < 100; ++iter) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (double x : sample) {
      // Shift by the max for numerical stability of the exponentials.
      const double e = std::exp(-(x - s.max) / beta);
      s0 += e;
      s1 += x * e;
      s2 += x * x * e;
    }
    const double ratio = s1 / s0;
    const double g = s.mean - beta - ratio;
    // dg/dbeta = -1 - d(ratio)/dbeta;  d(ratio)/dbeta = (s2*s0 - s1^2) /
    // (s0^2 * beta^2)  (variance of x under the e^{-x/beta} weights).
    const double weighted_var = (s2 * s0 - s1 * s1) / (s0 * s0);
    const double dg = -1.0 - weighted_var / (beta * beta);
    const double step = g / dg;
    double next = beta - step;
    if (next <= 0.0) next = beta / 2.0;  // keep the scale positive
    if (std::abs(next - beta) < 1e-10 * std::max(1.0, beta)) {
      beta = next;
      converged = true;
      break;
    }
    beta = next;
  }
  double s0 = 0.0;
  for (double x : sample) s0 += std::exp(-(x - s.max) / beta);
  fit.beta = beta;
  fit.mu = s.max - beta * std::log(s0 / n);
  fit.converged = converged;
  return fit;
}

double GpdFit::exceedance(double x) const {
  if (x <= threshold) return exceed_rate;
  const double z = x - threshold;
  if (std::abs(xi) < 1e-12) return exceed_rate * std::exp(-z / sigma);
  const double base = 1.0 + xi * z / sigma;
  if (base <= 0.0) return 0.0;  // beyond the finite right endpoint (xi < 0)
  return exceed_rate * std::pow(base, -1.0 / xi);
}

double GpdFit::quantile_exceedance(double p) const {
  PWCET_EXPECTS(p > 0.0 && p < exceed_rate);
  const double ratio = exceed_rate / p;
  if (std::abs(xi) < 1e-12) return threshold + sigma * std::log(ratio);
  return threshold + sigma / xi * (std::pow(ratio, xi) - 1.0);
}

GpdFit fit_gpd_pot(std::span<const double> sample, double quantile) {
  PWCET_EXPECTS(sample.size() >= 10);
  PWCET_EXPECTS(quantile > 0.0 && quantile < 1.0);
  const std::vector<double> v = sorted(sample);
  const auto cut = static_cast<std::size_t>(
      quantile * static_cast<double>(v.size()));
  const std::size_t idx = std::min(cut, v.size() - 2);
  const double u = v[idx];

  std::vector<double> excess;
  for (double x : v)
    if (x > u) excess.push_back(x - u);
  GpdFit fit;
  fit.threshold = u;
  fit.exceed_rate =
      static_cast<double>(excess.size()) / static_cast<double>(v.size());
  if (excess.size() < 2) {
    fit.sigma = 1e-9;
    fit.xi = 0.0;
    return fit;
  }

  // Probability-weighted moments (Hosking & Wallis): with b0 the mean and
  // b1 = sum((i)/(n-1) * z_(i+1)) / n over sorted excesses,
  //   xi = 2 - b0 / (b0 - 2 b1),  sigma = 2 b0 b1 / (b0 - 2 b1).
  std::sort(excess.begin(), excess.end());
  const double m = static_cast<double>(excess.size());
  double b0 = 0.0, b1 = 0.0;
  for (std::size_t i = 0; i < excess.size(); ++i) {
    b0 += excess[i];
    b1 += (static_cast<double>(i) / (m - 1.0)) * excess[i];
  }
  b0 /= m;
  b1 /= m;
  const double denom = b0 - 2.0 * b1;
  if (std::abs(denom) < 1e-15) {
    fit.xi = 0.0;
    fit.sigma = b0;
    return fit;
  }
  fit.xi = 2.0 - b0 / denom;
  fit.sigma = 2.0 * b0 * b1 / denom;
  if (fit.sigma <= 0.0) {  // degenerate; fall back to exponential tail
    fit.xi = 0.0;
    fit.sigma = b0;
  }
  return fit;
}

std::vector<double> block_maxima(std::span<const double> sample,
                                 std::size_t block_size) {
  PWCET_EXPECTS(block_size >= 1);
  std::vector<double> maxima;
  maxima.reserve(sample.size() / block_size);
  for (std::size_t start = 0; start + block_size <= sample.size();
       start += block_size) {
    double m = sample[start];
    for (std::size_t i = 1; i < block_size; ++i)
      m = std::max(m, sample[start + i]);
    maxima.push_back(m);
  }
  return maxima;
}

double ks_statistic(std::span<const double> sample,
                    const std::function<double(double)>& cdf) {
  PWCET_EXPECTS(!sample.empty());
  const std::vector<double> v = sorted(sample);
  const double n = static_cast<double>(v.size());
  double d = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double f = cdf(v[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  return d;
}

}  // namespace pwcet
