#include "mbpta/mbpta.hpp"

#include <algorithm>

#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/contracts.hpp"

namespace pwcet {

MbptaResult run_mbpta(const Program& program, const CacheConfig& config,
                      const FaultModel& faults, Mechanism mechanism,
                      const MbptaOptions& options) {
  PWCET_EXPECTS(options.chips >= 2 * options.block_size);
  const Probability pbf = faults.block_failure_probability(config);

  // One fixed input path (the heavy structural path): MBPTA observes timing
  // variation across the chip population, not across inputs.
  const std::vector<Address> trace =
      fetch_trace(program.cfg(), heavy_walk(program));

  Rng rng(options.seed);
  MbptaResult result;
  result.times.reserve(options.chips);
  for (std::size_t chip = 0; chip < options.chips; ++chip) {
    const FaultMap map = FaultMap::sample(config, pbf, rng);
    const SimStats stats = simulate_trace(config, map, mechanism, trace);
    result.times.push_back(static_cast<double>(stats.cycles));
  }
  result.observed_max =
      *std::max_element(result.times.begin(), result.times.end());

  const std::vector<double> maxima =
      block_maxima(result.times, options.block_size);
  result.gumbel = fit_gumbel_mle(maxima);
  return result;
}

}  // namespace pwcet
