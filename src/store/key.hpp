/// \file
/// Stable 128-bit structural hashing for the content-addressed analysis
/// store (src/store/).
///
/// Keys must be *stable*: the same analysis inputs hash to the same key in
/// every process, on every platform, forever — on-disk artifacts written by
/// one run are looked up by later runs, and a silent drift would turn every
/// cache into a miss (or worse, a wrong hit under a colliding scheme). The
/// mixer is therefore defined here bit for bit: no std::hash, no pointer
/// values, no iteration over unordered containers; strings are mixed as a
/// length prefix plus little-endian 64-bit chunks, doubles by their
/// IEEE-754 bit pattern. tests/store_test.cpp pins golden key values so any
/// accidental change to the algorithm fails loudly.
///
/// Collisions: keys are 128 bits of a well-mixed (splitmix64-based) state,
/// so accidental collisions are negligible (~2^-64 at a billion entries);
/// the store treats equal keys as equal inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.hpp"

namespace pwcet {

class Program;
struct CacheConfig;

/// A 128-bit content key. Ordered lexicographically (hi, lo) so keys can
/// drive deterministic orderings (e.g. the runner's cache-aware group
/// order) as well as hash-map lookups.
struct StoreKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex digits, `hi` first (used as artifact file names).
  std::string hex() const;

  friend bool operator==(const StoreKey&, const StoreKey&) = default;
  friend auto operator<=>(const StoreKey&, const StoreKey&) = default;
};

/// Parses the 32-hex-digit spelling produced by StoreKey::hex() (artifact
/// file names) back into a key; false on any other input. Lets tooling
/// that scans a cache directory (pwcet merge) recover the key of an
/// artifact from its file name and re-validate the file through the
/// ArtifactStore header check.
bool store_key_from_hex(std::string_view hex, StoreKey& key);

/// Hash functor for unordered containers. `lo` is already uniformly mixed,
/// so it serves as the bucket hash directly.
struct StoreKeyHash {
  std::size_t operator()(const StoreKey& key) const {
    return static_cast<std::size_t>(key.lo);
  }
};

/// Incremental mixer producing a StoreKey. Every key starts from a domain
/// tag so values of different kinds ("fmm-rows" vs "pwcet-result") can
/// never alias even if their field streams coincide.
class KeyHasher {
 public:
  explicit KeyHasher(std::string_view domain);

  KeyHasher& mix_u64(std::uint64_t value);
  KeyHasher& mix_i64(std::int64_t value);
  /// IEEE-754 bit pattern; distinguishes -0.0 from 0.0 by design (the
  /// inputs hashed here never produce either from the other).
  KeyHasher& mix_double(double value);
  /// Length-prefixed, so consecutive strings cannot alias across their
  /// boundary ("ab","c" != "a","bc").
  KeyHasher& mix_string(std::string_view value);
  KeyHasher& mix_doubles(const std::vector<double>& values);
  /// Chains a previously computed key (prefix-key composition).
  KeyHasher& mix_key(const StoreKey& key);

  StoreKey finish() const;

 private:
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
  std::uint64_t count_ = 0;  ///< mixed words, folded into finish()
};

/// Structural content hash of a built task: CFG blocks (addresses,
/// instruction counts, data addresses), edges, loop metadata (bounds,
/// membership, back/entry edges) and the structure tree. The task *name*
/// is deliberately excluded — two differently named but structurally
/// identical programs analyze identically, and content addressing lets
/// them share every cached sub-result.
StoreKey hash_program(const Program& program);

/// All geometry and timing fields of a cache configuration.
StoreKey hash_cache_config(const CacheConfig& config);

/// The fault model's sole parameter (cell failure probability), by bits.
StoreKey hash_fault_model(Probability pfail);

/// Key of the shared re-weighting bundle ("pwcet-bundle-v1"): the
/// pfail-independent penalty scaffolding of one (pipeline core, per-domain
/// mechanism assignment) pair — deliberately *without* the fault
/// probability, so every pfail point of a sweep resolves to the same
/// bundle and pays only the pwf re-weighting + convolution.
StoreKey pwcet_bundle_key(const StoreKey& core_key,
                          const std::vector<std::uint64_t>& mechanisms);

}  // namespace pwcet
