/// \file
/// Union of on-disk artifact-store directories (the store half of
/// `pwcet merge`).
///
/// The artifact tier is content-addressed — a file's path is
/// `<kind>/<key>.jsonl` and the key names the computation's inputs — so
/// merging the stores of N campaign shards is a key-union: every artifact
/// is copied into the destination unless an artifact with the same
/// (kind, key) already exists there, in which case the two files must be
/// byte-identical (the determinism contract says equal keys mean equal
/// bytes). A same-key-different-bytes pair is *not* resolvable by picking
/// one: it means two runs disagreed about a deterministic computation
/// (corruption, or a version skew between shard binaries), so it is a
/// hard StoreMergeError naming the key and both files.
///
/// Writer-crash debris (`*.jsonl.tmp*`) is never copied; anything that is
/// not an artifact file is left alone, mirroring `pwcet cache clear`'s
/// "only touch what is ours" rule.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace pwcet {

/// A store union that cannot be completed correctly: an unreadable source
/// directory, an I/O failure, or a same-key-different-bytes collision.
class StoreMergeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct StoreMergeStats {
  std::size_t copied = 0;     ///< artifacts newly copied into the destination
  std::size_t identical = 0;  ///< already present, byte-identical (skipped)
};

/// Unions the artifact files of every `from` directory into `into`
/// (created if missing; copies are atomic temp-file + rename, so a reader
/// of `into` never sees a partial artifact). A source directory that does
/// not exist contributes nothing — a shard that wrote no artifacts is not
/// an error at this layer; fragment completeness is checked by
/// engine/shard.cpp. Throws StoreMergeError on collisions and I/O errors.
StoreMergeStats merge_artifact_dirs(const std::vector<std::string>& from,
                                    const std::string& into);

}  // namespace pwcet
