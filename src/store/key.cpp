#include "store/key.hpp"

#include <bit>

#include "cache/cache_config.hpp"
#include "cfg/program.hpp"

namespace pwcet {
namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit permutation. The store's
/// stability contract rests on this exact function; do not "improve" it
/// without migrating the artifact format version.
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

std::uint64_t rotl(std::uint64_t x, int k) { return std::rotl(x, k); }

// Fractional bits of sqrt(2) and sqrt(3): nothing-up-my-sleeve initial
// lanes, distinct so the two halves of the key decorrelate immediately.
constexpr std::uint64_t kLaneA = 0x6a09e667f3bcc908ULL;
constexpr std::uint64_t kLaneB = 0xbb67ae8584caa73bULL;
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

}  // namespace

std::string StoreKey::hex() const {
  static const char digits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i)
    out[size_t(15 - i)] = digits[(hi >> (4 * i)) & 0xf];
  for (int i = 0; i < 16; ++i)
    out[size_t(31 - i)] = digits[(lo >> (4 * i)) & 0xf];
  return out;
}

bool store_key_from_hex(std::string_view hex, StoreKey& key) {
  if (hex.size() != 32) return false;
  std::uint64_t words[2] = {0, 0};
  for (std::size_t i = 0; i < 32; ++i) {
    const char c = hex[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;  // uppercase is rejected: hex() never emits it
    }
    words[i / 16] = (words[i / 16] << 4) | digit;
  }
  key.hi = words[0];
  key.lo = words[1];
  return true;
}

KeyHasher::KeyHasher(std::string_view domain) : a_(kLaneA), b_(kLaneB) {
  mix_string(domain);
}

KeyHasher& KeyHasher::mix_u64(std::uint64_t value) {
  a_ = mix64(a_ ^ value);
  b_ = mix64(b_ + rotl(value, 32) + kGolden);
  ++count_;
  return *this;
}

KeyHasher& KeyHasher::mix_i64(std::int64_t value) {
  return mix_u64(static_cast<std::uint64_t>(value));
}

KeyHasher& KeyHasher::mix_double(double value) {
  return mix_u64(std::bit_cast<std::uint64_t>(value));
}

KeyHasher& KeyHasher::mix_string(std::string_view value) {
  mix_u64(value.size());
  // Little-endian 8-byte chunks assembled byte by byte, so the stream is
  // identical on any host endianness; the trailing partial chunk is
  // zero-padded (safe because the length prefix disambiguates).
  std::uint64_t chunk = 0;
  int filled = 0;
  for (const char c : value) {
    chunk |= std::uint64_t(static_cast<unsigned char>(c)) << (8 * filled);
    if (++filled == 8) {
      mix_u64(chunk);
      chunk = 0;
      filled = 0;
    }
  }
  if (filled != 0) mix_u64(chunk);
  return *this;
}

KeyHasher& KeyHasher::mix_doubles(const std::vector<double>& values) {
  mix_u64(values.size());
  for (const double v : values) mix_double(v);
  return *this;
}

KeyHasher& KeyHasher::mix_key(const StoreKey& key) {
  mix_u64(key.hi);
  return mix_u64(key.lo);
}

StoreKey KeyHasher::finish() const {
  StoreKey key;
  key.hi = mix64(a_ + rotl(b_, 32) + count_ * kGolden);
  key.lo = mix64(b_ ^ rotl(a_, 17) ^ mix64(count_));
  return key;
}

StoreKey hash_program(const Program& program) {
  KeyHasher h("pwcet-program-v1");
  const ControlFlowGraph& cfg = program.cfg();

  h.mix_u64(cfg.block_count());
  for (const BasicBlock& block : cfg.blocks()) {
    h.mix_i64(block.id);
    h.mix_u64(block.first_address);
    h.mix_u64(block.instruction_count);
    h.mix_u64(block.data_addresses.size());
    for (const Address a : block.data_addresses) h.mix_u64(a);
    // Store addresses are mixed only when present, behind a marker word:
    // programs without stores keep their pre-store hash bit-for-bit, so
    // every artifact persisted before the write-back extension stays warm.
    if (!block.store_addresses.empty()) {
      h.mix_u64(0x5701e5u);  // store-list marker
      h.mix_u64(block.store_addresses.size());
      for (const Address a : block.store_addresses) h.mix_u64(a);
    }
    // Adjacency is recoverable from the edge list; hashing it here too
    // would only re-encode the same structure.
  }

  h.mix_u64(cfg.edge_count());
  for (const CfgEdge& edge : cfg.edges()) {
    h.mix_i64(edge.source);
    h.mix_i64(edge.target);
  }
  h.mix_i64(cfg.entry());
  h.mix_i64(cfg.exit());

  h.mix_u64(cfg.loops().size());
  for (const LoopInfo& loop : cfg.loops()) {
    h.mix_i64(loop.id);
    h.mix_i64(loop.parent);
    h.mix_i64(loop.header);
    h.mix_i64(loop.bound);
    h.mix_u64(loop.blocks.size());
    for (const BlockId b : loop.blocks) h.mix_i64(b);
    h.mix_u64(loop.back_edges.size());
    for (const EdgeId e : loop.back_edges) h.mix_i64(e);
    h.mix_u64(loop.entry_edges.size());
    for (const EdgeId e : loop.entry_edges) h.mix_i64(e);
  }

  // The structure tree drives the loop-tree WCET engine; same-CFG programs
  // with a different tree decomposition are different analysis inputs.
  h.mix_u64(program.tree().size());
  for (const TreeNode& node : program.tree()) {
    h.mix_u64(static_cast<std::uint64_t>(node.kind));
    h.mix_i64(node.block);
    h.mix_i64(node.bound);
    h.mix_i64(node.loop);
    h.mix_u64(node.children.size());
    for (const TreeId t : node.children) h.mix_i64(t);
  }
  h.mix_i64(program.tree_root());
  return h.finish();
}

StoreKey hash_cache_config(const CacheConfig& config) {
  KeyHasher h("pwcet-cache-config-v1");
  h.mix_u64(config.sets);
  h.mix_u64(config.ways);
  h.mix_u64(config.line_bytes);
  h.mix_i64(config.hit_latency);
  h.mix_i64(config.miss_penalty);
  return h.finish();
}

StoreKey hash_fault_model(Probability pfail) {
  KeyHasher h("pwcet-fault-model-v1");
  h.mix_double(pfail);
  return h.finish();
}

StoreKey pwcet_bundle_key(const StoreKey& core_key,
                          const std::vector<std::uint64_t>& mechanisms) {
  KeyHasher h("pwcet-bundle-v1");
  h.mix_key(core_key);
  h.mix_u64(mechanisms.size());
  for (const std::uint64_t mechanism : mechanisms) h.mix_u64(mechanism);
  return h.finish();
}

}  // namespace pwcet
