#include "store/artifact_store.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "obs/metrics.hpp"

namespace pwcet {
namespace {

namespace fs = std::filesystem;

/// Kinds become path components; restrict them to a safe alphabet so a
/// creative kind string cannot escape the cache directory.
bool valid_kind(std::string_view kind) {
  if (kind.empty()) return false;
  for (const char c : kind) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::atomic<std::uint64_t> temp_counter{0};

/// Content hash of the payload, carried in the header so value-level
/// corruption (bitrot, truncation past the header, hand edits) reads as
/// a miss — the structural validation in load_distribution cannot catch
/// a flipped digit that still parses.
std::string payload_hash_hex(std::string_view payload) {
  return KeyHasher("artifact-payload-v1").mix_string(payload).finish().hex();
}

}  // namespace

ArtifactStore::ArtifactStore(Options options)
    : options_(std::move(options)) {}

std::string ArtifactStore::path_of(std::string_view kind,
                                   const StoreKey& key) const {
  std::string path = options_.directory;
  path += '/';
  path += kind;
  path += '/';
  path += key.hex();
  path += ".jsonl";
  return path;
}

std::string ArtifactStore::header_line(std::string_view kind,
                                       const StoreKey& key,
                                       std::string_view payload) const {
  std::string header = "{\"magic\":\"pwcet-artifact\",\"version\":";
  header += std::to_string(kFormatVersion);
  header += ",\"kind\":\"";
  header += kind;
  header += "\",\"key\":\"";
  header += key.hex();
  header += "\",\"payload\":\"";
  header += payload_hash_hex(payload);
  header += "\"}";
  return header;
}

std::optional<std::string> ArtifactStore::load_text(
    std::string_view kind, const StoreKey& key) const {
  if (!valid_kind(kind)) return std::nullopt;
  std::ifstream in(path_of(kind, key), std::ios::binary);
  if (!in) {
    disk_misses_.fetch_add(1, std::memory_order_relaxed);
    obs::count_store("disk", kind, "misses");
    return std::nullopt;
  }
  std::string header;
  std::ostringstream rest;
  if (std::getline(in, header)) rest << in.rdbuf();
  const std::string payload = rest.str();
  // Rebuilding the expected header from the payload checks everything at
  // once: magic, version, kind, key, and the payload's content hash.
  // Stale format, foreign file, key/kind mismatch, or corruption anywhere
  // in the payload all read as a miss.
  if (in.bad() || header != header_line(kind, key, payload)) {
    disk_misses_.fetch_add(1, std::memory_order_relaxed);
    obs::count_store("disk", kind, "misses");
    return std::nullopt;
  }
  disk_hits_.fetch_add(1, std::memory_order_relaxed);
  obs::count_store("disk", kind, "hits");
  return payload;
}

bool ArtifactStore::store_text(std::string_view kind, const StoreKey& key,
                               std::string_view payload) const {
  if (!valid_kind(kind)) return false;
  const std::string path = path_of(kind, key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return false;

  // Unique temp name per writer, renamed into place: readers never see a
  // half-written artifact, and concurrent writers of the same key (which
  // by the determinism contract write identical bytes) race benignly.
  // The pid makes the name unique across *processes* sharing a cache dir
  // — the counter alone would make two processes scribble over the same
  // ".tmp0" file.
  std::string temp = path;
  temp += ".tmp";
  temp += std::to_string(::getpid());
  temp += '.';
  temp += std::to_string(temp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    out << header_line(kind, key, payload) << '\n' << payload;
    out.close();
    if (out.fail()) {
      fs::remove(temp, ec);
      return false;
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return false;
  }
  disk_writes_.fetch_add(1, std::memory_order_relaxed);
  obs::count_store("disk", kind, "writes");
  return true;
}

std::size_t ArtifactStore::sweep_orphans(std::chrono::seconds min_age) const {
  std::error_code ec;
  fs::recursive_directory_iterator walk(options_.directory, ec);
  if (ec) return 0;
  const fs::file_time_type cutoff = fs::file_time_type::clock::now() - min_age;
  std::size_t removed = 0;
  for (const fs::directory_entry& entry : walk) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".jsonl.tmp") == std::string::npos) continue;
    const fs::file_time_type written = entry.last_write_time(ec);
    if (ec || written > cutoff) continue;  // a live writer's file: keep it
    if (fs::remove(entry.path(), ec)) ++removed;
  }
  return removed;
}

bool ArtifactStore::store_distribution(
    const StoreKey& key, const DiscreteDistribution& distribution) const {
  std::string payload;
  payload.reserve(distribution.size() * 48);
  char line[96];
  for (const ProbabilityAtom& atom : distribution.atoms()) {
    std::snprintf(line, sizeof line, "{\"value\":%" PRId64 ",\"p\":%.17g}\n",
                  static_cast<std::int64_t>(atom.value), atom.probability);
    payload += line;
  }
  return store_text("distribution", key, payload);
}

std::optional<DiscreteDistribution> ArtifactStore::load_distribution(
    const StoreKey& key) const {
  const std::optional<std::string> payload = load_text("distribution", key);
  if (!payload) return std::nullopt;

  // Validate everything *before* constructing: from_canonical_atoms treats
  // violations as programming errors (abort), but a damaged cache file is
  // an environmental condition that must degrade to a recompute.
  std::vector<ProbabilityAtom> atoms;
  std::istringstream lines(*payload);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::int64_t value = 0;
    double p = 0.0;
    if (std::sscanf(line.c_str(), "{\"value\":%" SCNd64 ",\"p\":%lf}", &value,
                    &p) != 2)
      return std::nullopt;
    if (!(p > 0.0)) return std::nullopt;
    if (!atoms.empty() && atoms.back().value >= value) return std::nullopt;
    atoms.push_back({static_cast<Cycles>(value), p});
  }
  if (atoms.empty()) return std::nullopt;
  return DiscreteDistribution::from_canonical_atoms(std::move(atoms));
}

}  // namespace pwcet
