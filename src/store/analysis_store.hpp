/// \file
/// Facade over the two store tiers, shared by the analyzer and the
/// campaign engine.
///
/// One AnalysisStore instance serves a whole campaign (and, if the caller
/// keeps it alive, any number of campaigns — that is how warm re-runs are
/// measured in bench/perf_analysis_time.cpp). All methods are thread-safe;
/// pool workers use the store concurrently.
///
/// Determinism: the store only ever returns bits some earlier invocation
/// of the *same deterministic computation on the same inputs* produced, so
/// enabling it cannot change a single byte of any report — enforced by
/// tests/store_test.cpp (store on vs off, single- vs multi-threaded, cold
/// vs warm disk cache).
#pragma once

#include <memory>
#include <string>

#include "store/artifact_store.hpp"
#include "store/memo_cache.hpp"

namespace pwcet {

struct StoreOptions {
  /// Master switch; disabled means no store object exists at all.
  bool enabled = true;
  std::size_t capacity = 4096;  ///< memo entries kept (LRU beyond that)
  std::size_t shards = 8;       ///< memo lock partitions
  /// Cache directory for the on-disk artifact tier; empty keeps the store
  /// purely in-memory (no file I/O).
  std::string artifact_dir;
};

/// Environment overrides, applied by run_campaign so the stock bench and
/// example binaries can be driven cold/warm without code changes:
/// `PWCET_STORE=0` disables the store, `PWCET_CACHE_DIR=<dir>` enables the
/// artifact tier (only when `base` did not already name a directory).
/// An explicitly disabled `base` stays disabled regardless of environment.
StoreOptions store_options_from_env(StoreOptions base = {});

class AnalysisStore {
 public:
  explicit AnalysisStore(const StoreOptions& options = {});

  MemoCache& memo() { return memo_; }

  /// nullptr when the artifact tier is off (no cache directory).
  ArtifactStore* artifacts() { return artifacts_.get(); }

  /// Combined counters of both tiers.
  StoreStats stats() const;

 private:
  MemoCache memo_;
  std::unique_ptr<ArtifactStore> artifacts_;
};

}  // namespace pwcet
