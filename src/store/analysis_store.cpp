#include "store/analysis_store.hpp"

#include <cstdlib>

namespace pwcet {

StoreOptions store_options_from_env(StoreOptions base) {
  const char* toggle = std::getenv("PWCET_STORE");
  if (toggle != nullptr && std::string(toggle) == "0") base.enabled = false;
  if (base.enabled && base.artifact_dir.empty()) {
    const char* dir = std::getenv("PWCET_CACHE_DIR");
    if (dir != nullptr && *dir != '\0') base.artifact_dir = dir;
  }
  return base;
}

AnalysisStore::AnalysisStore(const StoreOptions& options)
    : memo_(MemoCache::Config{options.capacity, options.shards}) {
  if (!options.artifact_dir.empty())
    artifacts_ = std::make_unique<ArtifactStore>(
        ArtifactStore::Options{options.artifact_dir});
}

StoreStats AnalysisStore::stats() const {
  StoreStats stats = memo_.stats();
  if (artifacts_ != nullptr) {
    stats.disk_hits = artifacts_->disk_hits();
    stats.disk_misses = artifacts_->disk_misses();
    stats.disk_writes = artifacts_->disk_writes();
  }
  return stats;
}

}  // namespace pwcet
