#include "store/merge.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace pwcet {
namespace {

namespace fs = std::filesystem;

std::atomic<std::uint64_t> merge_temp_counter{0};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw StoreMergeError("cannot read artifact file " + path.string());
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad())
    throw StoreMergeError("cannot read artifact file " + path.string());
  return text.str();
}

/// Copies one artifact into place atomically (same temp-name scheme as
/// ArtifactStore::store_text, so a crash here leaves only debris the
/// orphan sweep recognizes).
void copy_artifact(const fs::path& source, const fs::path& destination,
                   const std::string& bytes) {
  std::error_code ec;
  fs::create_directories(destination.parent_path(), ec);
  if (ec)
    throw StoreMergeError("cannot create " +
                          destination.parent_path().string() + ": " +
                          ec.message());
  std::string temp = destination.string();
  temp += ".tmp";
  temp += std::to_string(::getpid());
  temp += '.';
  temp += std::to_string(
      merge_temp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    out << bytes;
    out.close();
    if (out.fail()) {
      fs::remove(temp, ec);
      throw StoreMergeError("cannot write " + destination.string() +
                            " (from " + source.string() + ")");
    }
  }
  fs::rename(temp, destination, ec);
  if (ec) {
    std::error_code cleanup;
    fs::remove(temp, cleanup);
    throw StoreMergeError("cannot write " + destination.string() + ": " +
                          ec.message());
  }
}

}  // namespace

StoreMergeStats merge_artifact_dirs(const std::vector<std::string>& from,
                                    const std::string& into) {
  StoreMergeStats stats;
  std::error_code ec;
  const fs::path destination_root = fs::path(into);
  for (const std::string& source_dir : from) {
    if (!fs::exists(source_dir, ec)) continue;
    // Artifacts live exactly one level deep: <kind>/<key>.jsonl. A flat
    // two-level walk (rather than a recursive one) keeps foreign files in
    // creatively nested directories out of the union.
    fs::directory_iterator kinds(source_dir, ec);
    if (ec)
      throw StoreMergeError("cannot read store directory " + source_dir +
                            ": " + ec.message());
    for (const fs::directory_entry& kind_entry : kinds) {
      if (!kind_entry.is_directory(ec)) continue;
      fs::directory_iterator files(kind_entry.path(), ec);
      if (ec)
        throw StoreMergeError("cannot read " + kind_entry.path().string() +
                              ": " + ec.message());
      for (const fs::directory_entry& file : files) {
        if (!file.is_regular_file(ec)) continue;
        const std::string name = file.path().filename().string();
        if (file.path().extension() != ".jsonl" ||
            name.find(".jsonl.tmp") != std::string::npos)
          continue;  // writer-crash debris or foreign file
        const fs::path destination =
            destination_root / kind_entry.path().filename() / name;
        const std::string bytes = read_file(file.path());
        // Resolving to the same file (merging a directory into itself) is
        // a no-op, not a self-collision.
        if (fs::exists(destination, ec) &&
            !fs::equivalent(file.path(), destination, ec)) {
          if (read_file(destination) == bytes) {
            ++stats.identical;
          } else {
            throw StoreMergeError(
                "store collision for key " +
                file.path().stem().string() + " (kind " +
                kind_entry.path().filename().string() + "): " +
                file.path().string() + " and " + destination.string() +
                " differ — equal keys must hold equal bytes");
          }
          continue;
        }
        if (fs::equivalent(file.path(), destination, ec)) continue;
        copy_artifact(file.path(), destination, bytes);
        ++stats.copied;
      }
    }
  }
  return stats;
}

}  // namespace pwcet
