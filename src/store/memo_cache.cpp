#include "store/memo_cache.hpp"

#include <algorithm>
#include <list>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "support/contracts.hpp"

namespace pwcet {

struct MemoCache::Shard {
  struct Entry {
    StoreKey key;
    std::shared_ptr<const void> value;
    // Layer tag for metrics attribution; call sites pass string literals,
    // so storing the pointer is enough.
    const char* layer;
  };

  std::mutex mutex;
  std::size_t capacity = 0;
  std::list<Entry> lru;  ///< front = most recently used
  std::unordered_map<StoreKey, std::list<Entry>::iterator, StoreKeyHash>
      index;
  std::uint64_t hits = 0, misses = 0, evictions = 0;
};

MemoCache::MemoCache() : MemoCache(Config{}) {}

MemoCache::MemoCache(Config config) {
  PWCET_EXPECTS(config.capacity >= 1);
  PWCET_EXPECTS(config.shards >= 1);
  const std::size_t shards = std::min(config.shards, config.capacity);
  // Round the per-shard share up so the configured total is a floor, not
  // a ceiling an unlucky key distribution could undershoot.
  const std::size_t share = (config.capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = share;
  }
}

MemoCache::~MemoCache() = default;

MemoCache::Shard& MemoCache::shard_of(const StoreKey& key) {
  // hi is uniformly mixed; lo indexes unordered_map buckets, so using the
  // other word here keeps the two partitions independent.
  return *shards_[static_cast<std::size_t>(key.hi) % shards_.size()];
}

std::shared_ptr<const void> MemoCache::get(const StoreKey& key,
                                           const char* layer) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    obs::count_store("memo", layer, "misses");
    return nullptr;
  }
  ++shard.hits;
  obs::count_store("memo", layer, "hits");
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void MemoCache::put(const StoreKey& key, std::shared_ptr<const void> value,
                    const char* layer) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Benign compute race: a sibling inserted first. Its value is
    // bit-identical by the determinism contract; keep it and just
    // refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(Shard::Entry{key, std::move(value), layer});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    obs::count_store("memo", shard.lru.back().layer, "evictions");
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

StoreStats MemoCache::stats() const {
  StoreStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.entries += shard->lru.size();
  }
  return total;
}

void MemoCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace pwcet
