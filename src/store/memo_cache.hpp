/// \file
/// Sharded in-memory LRU memoization cache, the hot tier of the
/// content-addressed analysis store.
///
/// Values are immutable (shared_ptr<const void>), so a hit hands back the
/// exact bits a previous computation produced — which is what makes
/// memoization invisible to the engine's byte-identity contract: a key
/// captures *every* input of the computation it names, and the computation
/// is deterministic, so recomputing could only reproduce the cached value.
///
/// Concurrency: the key space is split across independently locked shards
/// (by key bits, so the mapping is stable); campaign workers hammer the
/// cache from many threads without a global lock. Two threads racing on
/// the same missing key may both compute; both produce identical bits and
/// the losing insert is dropped, so the race is benign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "store/key.hpp"

namespace pwcet {

/// Counters of the whole store (memo tier + artifact tier). Deltas of two
/// snapshots describe one campaign run (see CampaignResult::store_stats).
struct StoreStats {
  std::uint64_t hits = 0;       ///< memo lookups served from memory
  std::uint64_t misses = 0;     ///< memo lookups that had to compute
  std::uint64_t evictions = 0;  ///< entries dropped by the LRU bound
  std::uint64_t entries = 0;    ///< entries currently resident
  std::uint64_t disk_hits = 0;    ///< artifact loads that validated
  std::uint64_t disk_misses = 0;  ///< artifact loads that found nothing
  std::uint64_t disk_writes = 0;  ///< artifacts persisted

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(lookups);
  }

  /// Counter delta (entries stays absolute: it is a level, not a flow).
  StoreStats since(const StoreStats& before) const {
    StoreStats d = *this;
    d.hits -= before.hits;
    d.misses -= before.misses;
    d.evictions -= before.evictions;
    d.disk_hits -= before.disk_hits;
    d.disk_misses -= before.disk_misses;
    d.disk_writes -= before.disk_writes;
    return d;
  }
};

/// Type-erased sharded LRU cache. Each domain tag (see KeyHasher) is used
/// with exactly one value type, so the static_pointer_cast in
/// get_or_compute is safe by construction.
class MemoCache {
 public:
  struct Config {
    std::size_t capacity = 4096;  ///< total entries across all shards
    std::size_t shards = 8;       ///< independently locked partitions
  };

  MemoCache();  ///< default Config
  explicit MemoCache(Config config);
  ~MemoCache();

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// Looks up a key; a hit refreshes its LRU position. `layer` is an
  /// observability-only attribution tag ("core", "set-penalty", ...) for
  /// the per-layer metrics counters — it never affects lookup.
  std::shared_ptr<const void> get(const StoreKey& key,
                                  const char* layer = "other");

  /// Inserts (or refreshes) a value, evicting least-recently-used entries
  /// of the same shard beyond its capacity share. Evictions are attributed
  /// to the *evicted* entry's layer, which each entry remembers.
  void put(const StoreKey& key, std::shared_ptr<const void> value,
           const char* layer = "other");

  /// Memoized evaluation: returns the cached value for `key` or computes,
  /// inserts and returns it. The computation runs outside any lock.
  template <typename V, typename Fn>
  std::shared_ptr<const V> get_or_compute(const StoreKey& key, Fn&& compute,
                                          const char* layer = "other") {
    if (std::shared_ptr<const void> hit = get(key, layer))
      return std::static_pointer_cast<const V>(std::move(hit));
    auto value = std::make_shared<const V>(compute());
    put(key, value, layer);
    return value;
  }

  StoreStats stats() const;
  void clear();

 private:
  struct Shard;
  Shard& shard_of(const StoreKey& key);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pwcet
