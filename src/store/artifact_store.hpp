/// \file
/// On-disk artifact tier of the content-addressed analysis store.
///
/// Artifacts are versioned JSONL files under a cache directory, one file
/// per (kind, key): the first line is a header object naming the format
/// version, kind, key and the payload's content hash; payload lines
/// follow. Loads validate all of it and return nothing on any mismatch
/// (missing file, version bump, kind or key collision, truncation, or
/// value-level corruption anywhere in the payload) — a corrupt or stale
/// cache degrades to a recompute, never to a wrong answer.
///
/// Byte-identity contract: what store_distribution writes, load_distribution
/// reconstructs *exactly* (values are 64-bit integers; probabilities are
/// printed with "%.17g", which round-trips IEEE doubles bit for bit through
/// strtod). tests/store_test.cpp asserts the round-trip.
///
/// Writes go to a unique temp file in the cache directory and are renamed
/// into place, so concurrent writers (pool threads, parallel processes)
/// race benignly: both write identical bytes and the last rename wins.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "prob/discrete_distribution.hpp"
#include "store/key.hpp"

namespace pwcet {

class ArtifactStore {
 public:
  /// Bump when the header or any payload schema changes; old files then
  /// read as misses instead of being misparsed.
  static constexpr int kFormatVersion = 1;

  struct Options {
    std::string directory = ".pwcet-cache";
  };

  explicit ArtifactStore(Options options);

  const std::string& directory() const { return options_.directory; }

  /// Payload of artifact (kind, key), or nothing if absent/invalid.
  std::optional<std::string> load_text(std::string_view kind,
                                       const StoreKey& key) const;

  /// Persists a payload; false on I/O failure (callers treat the store as
  /// best-effort and continue).
  bool store_text(std::string_view kind, const StoreKey& key,
                  std::string_view payload) const;

  /// Load-or-compute semantics: returns the cached payload if present,
  /// otherwise computes, persists and returns it.
  template <typename Fn>
  std::string load_or_compute_text(std::string_view kind, const StoreKey& key,
                                   Fn&& compute) const {
    if (std::optional<std::string> cached = load_text(kind, key))
      return *std::move(cached);
    std::string payload = compute();
    store_text(kind, key, payload);
    return payload;
  }

  /// pWCET distributions, one atom per payload line. Invalid payloads
  /// (unparsable line, non-increasing values, non-positive probability)
  /// load as nothing.
  std::optional<DiscreteDistribution> load_distribution(
      const StoreKey& key) const;
  bool store_distribution(const StoreKey& key,
                          const DiscreteDistribution& distribution) const;

  /// Removes "<key>.jsonl.tmp*" temp files older than `min_age` — the
  /// debris of writers that died between creating their temp file and
  /// renaming it into place. Live writers are protected by the age floor
  /// (a write is milliseconds; the default floor is an hour), so the sweep
  /// is safe to run while other processes — e.g. concurrent campaign
  /// shards sharing one cache directory — are still writing. Returns the
  /// number of orphans removed; a missing directory sweeps zero.
  std::size_t sweep_orphans(
      std::chrono::seconds min_age = std::chrono::seconds(3600)) const;

  std::uint64_t disk_hits() const { return disk_hits_.load(); }
  std::uint64_t disk_misses() const { return disk_misses_.load(); }
  std::uint64_t disk_writes() const { return disk_writes_.load(); }

 private:
  std::string path_of(std::string_view kind, const StoreKey& key) const;
  std::string header_line(std::string_view kind, const StoreKey& key,
                          std::string_view payload) const;

  Options options_;
  mutable std::atomic<std::uint64_t> disk_hits_{0};
  mutable std::atomic<std::uint64_t> disk_misses_{0};
  mutable std::atomic<std::uint64_t> disk_writes_{0};
};

}  // namespace pwcet
