/// \file
/// Combined I+D pWCET analyzer — a thin facade over the domain-pluggable
/// pipeline (analysis/pipeline.hpp) composing [IcacheDomain, DcacheDomain].
///
/// The data-cache extension's scope, semantics and store-key sub-domain
/// are documented on DcacheDomain (analysis/dcache_domain.hpp), which also
/// hosts extract_data_references/block_loads; the shared analysis flow —
/// classification, FMM, penalty construction, cross-domain convolution,
/// the three memoization layers — lives once, in PwcetPipeline. This class
/// only preserves the historical construction-site API (and, via the
/// pipeline's compatibility contract, the historical "pwcet-dcore-v1"/
/// "pwcet-dresult-v1" store keys bit for bit): the icache FMM rows share
/// the exact row keys a plain PwcetAnalyzer of the same (program, icache,
/// engine) would use, the dcache rows keep their own domain, and results
/// are byte-identical at any thread count, store on/off, cold or warm.
#pragma once

#include "analysis/dcache_domain.hpp"
#include "analysis/icache_domain.hpp"
#include "analysis/pipeline.hpp"

namespace pwcet {

/// Combined I+D pWCET analysis. The instruction and data caches may have
/// different geometries; each gets its own FMM bundle; penalties convolve.
class CombinedPwcetAnalyzer {
 public:
  CombinedPwcetAnalyzer(const Program& program, const CacheConfig& icache,
                        const CacheConfig& dcache,
                        const PwcetOptions& options = {});

  /// Fault-free WCET including both caches' miss contributions.
  Cycles fault_free_wcet() const { return pipeline_.fault_free_wcet(); }

  /// pWCET with the same mechanism deployed on both caches.
  PwcetResult analyze(const FaultModel& faults, Mechanism mechanism) const {
    return analyze_mixed(faults, mechanism, mechanism);
  }

  /// pWCET with distinct mechanisms per cache (e.g. RW on the I-cache,
  /// SRB on the D-cache — a cost-conscious mixed deployment).
  PwcetResult analyze_mixed(const FaultModel& faults, Mechanism icache_mech,
                            Mechanism dcache_mech) const {
    return pipeline_.analyze(faults, {icache_mech, dcache_mech});
  }

  const FmmBundle& icache_fmm() const { return pipeline_.fmm(0); }
  const FmmBundle& dcache_fmm() const { return pipeline_.fmm(1); }

  /// Store key of the combined analyzer core: program content x both cache
  /// configs x engine — the prefix every per-result key chains from.
  const StoreKey& core_key() const { return pipeline_.core_key(); }

 private:
  PwcetPipeline pipeline_;
};

}  // namespace pwcet
