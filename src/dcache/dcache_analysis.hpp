// Data-cache extension (paper §VI future work: "transpose the hardware and
// corresponding analyses to data caches").
//
// Scope: loads from *statically known* addresses — scalars, constant
// tables, spill slots — recorded per basic block by the program builder.
// Input-dependent accesses are outside this extension's scope (sound
// treatment would classify them not-classified; they simply cannot be
// expressed). Stores are not modeled (read-only data, or write-through /
// no-allocate semantics).
//
// Under these restrictions the data cache is formally identical to the
// instruction cache — an address stream per block — so the Must/May/
// persistence analyses, the SRB analysis, the FMM delta machinery and the
// penalty-distribution pipeline are reused as-is on a *data* reference
// map. Both caches fail independently (disjoint SRAM arrays), so the
// combined penalty is the convolution of the two penalty distributions and
// the combined fault-free WCET is a single IPET/tree maximization over the
// summed cost models.
//
// Like the single-cache analyzer, the combined analyzer participates in
// the campaign engine's memoized group flow (PwcetOptions.store): the
// expensive core (fault-free WCET + both FMM bundles) is cached
// all-or-nothing under a combined core key, the icache FMM rows share the
// exact row keys a plain PwcetAnalyzer of the same (program, icache,
// engine) would use, the dcache rows get their own domain (a data
// reference map must never alias an instruction one), per-set penalty
// distributions share the content-addressed "set-penalty" layer across
// both caches, and whole per-(imech, dmech, pfail) results are memoized
// and disk-persisted. Per-set work fans out on PwcetOptions.pool. Results
// are byte-identical at any thread count, store on/off, cold or warm.
#pragma once

#include <optional>

#include "cache/cache_config.hpp"
#include "cache/references.hpp"
#include "core/pwcet_analyzer.hpp"
#include "cfg/program.hpp"
#include "fault/fault_model.hpp"
#include "prob/discrete_distribution.hpp"
#include "wcet/fmm.hpp"

namespace pwcet {

/// Extracts the per-block *data* line references (analogue of
/// extract_references for instruction fetches). Consecutive same-line
/// loads within a block merge, mirroring spatial locality.
ReferenceMap extract_data_references(const ControlFlowGraph& cfg,
                                     const CacheConfig& dcache);

/// Total data accesses recorded for a block.
std::uint64_t block_loads(const ControlFlowGraph& cfg, BlockId b);

/// Combined I+D pWCET analysis. The instruction and data caches may have
/// different geometries; each gets its own FMM bundle; penalties convolve.
class CombinedPwcetAnalyzer {
 public:
  CombinedPwcetAnalyzer(const Program& program, const CacheConfig& icache,
                        const CacheConfig& dcache,
                        const PwcetOptions& options = {});

  /// Fault-free WCET including both caches' miss contributions.
  Cycles fault_free_wcet() const { return fault_free_wcet_; }

  /// pWCET with the same mechanism deployed on both caches.
  PwcetResult analyze(const FaultModel& faults, Mechanism mechanism) const;

  /// pWCET with distinct mechanisms per cache (e.g. RW on the I-cache,
  /// SRB on the D-cache — a cost-conscious mixed deployment).
  PwcetResult analyze_mixed(const FaultModel& faults, Mechanism icache_mech,
                            Mechanism dcache_mech) const;

  const FmmBundle& icache_fmm() const { return ifmm_; }
  const FmmBundle& dcache_fmm() const { return dfmm_; }

  /// Store key of the combined analyzer core: program content x both cache
  /// configs x engine — the prefix every per-result key chains from.
  const StoreKey& core_key() const { return core_key_; }

 private:
  const Program& program_;
  CacheConfig icache_;
  CacheConfig dcache_;
  PwcetOptions options_;
  Cycles fault_free_wcet_ = 0;
  FmmBundle ifmm_;
  FmmBundle dfmm_;
  StoreKey core_key_;
};

}  // namespace pwcet
