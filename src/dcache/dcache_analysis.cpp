#include "dcache/dcache_analysis.hpp"

namespace pwcet {

CombinedPwcetAnalyzer::CombinedPwcetAnalyzer(const Program& program,
                                             const CacheConfig& icache,
                                             const CacheConfig& dcache,
                                             const PwcetOptions& options)
    : pipeline_(program,
                {std::make_shared<const IcacheDomain>(icache),
                 std::make_shared<const DcacheDomain>(dcache)},
                options) {}

}  // namespace pwcet
