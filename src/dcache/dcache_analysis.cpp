#include "dcache/dcache_analysis.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "store/analysis_store.hpp"
#include "support/contracts.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/ipet.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {
namespace {

/// Data-side time model: loads contribute miss penalties only (the load
/// instruction's execution cycle is already charged as an instruction
/// fetch by the I-side model).
CostModel build_data_time_cost_model(const ControlFlowGraph& cfg,
                                     const ReferenceMap& drefs,
                                     const ClassificationMap& classification,
                                     const CacheConfig& dcache) {
  CostModel model = CostModel::zero(cfg);
  const auto miss = static_cast<double>(dcache.miss_penalty);
  for (const BasicBlock& block : cfg.blocks()) {
    for (std::size_t i = 0; i < drefs[size_t(block.id)].size(); ++i) {
      const RefClass& cls = classification[size_t(block.id)][i];
      switch (cls.chmc) {
        case Chmc::kAlwaysHit:
          break;
        case Chmc::kAlwaysMiss:
        case Chmc::kNotClassified:
          model.block_cost[size_t(block.id)] += miss;
          break;
        case Chmc::kFirstMiss:
          if (cls.scope == kNoLoop)
            model.root_entry_cost += miss;
          else
            model.loop_entry_cost[size_t(cls.scope)] += miss;
          break;
      }
    }
  }
  return model;
}

CostModel sum_models(const CostModel& a, const CostModel& b) {
  CostModel out = a;
  for (std::size_t i = 0; i < out.block_cost.size(); ++i)
    out.block_cost[i] += b.block_cost[i];
  for (std::size_t i = 0; i < out.loop_entry_cost.size(); ++i)
    out.loop_entry_cost[i] += b.loop_entry_cost[i];
  out.root_entry_cost += b.root_entry_cost;
  return out;
}

/// Memo value of the combined analyzer-core layer. Cached all-or-nothing
/// for the same reason as the single-cache core: the ILP engine's shared
/// simplex must see the exact same maximize() sequence on every miss.
struct CombinedCore {
  Cycles fault_free_wcet = 0;
  FmmBundle ifmm;
  FmmBundle dfmm;
};

}  // namespace

ReferenceMap extract_data_references(const ControlFlowGraph& cfg,
                                     const CacheConfig& dcache) {
  dcache.validate();
  ReferenceMap refs(cfg.block_count());
  for (const BasicBlock& b : cfg.blocks()) {
    auto& seq = refs[size_t(b.id)];
    for (Address a : b.data_addresses) {
      const LineAddress line = dcache.line_of(a);
      if (!seq.empty() && seq.back().line == line) {
        ++seq.back().fetches;
      } else {
        seq.push_back({line, dcache.set_of_line(line), 1});
      }
    }
  }
  return refs;
}

std::uint64_t block_loads(const ControlFlowGraph& cfg, BlockId b) {
  return cfg.block(b).data_addresses.size();
}

CombinedPwcetAnalyzer::CombinedPwcetAnalyzer(const Program& program,
                                             const CacheConfig& icache,
                                             const CacheConfig& dcache,
                                             const PwcetOptions& options)
    : program_(program),
      icache_(icache),
      dcache_(dcache),
      options_(options) {
  icache_.validate();
  dcache_.validate();
  core_key_ = KeyHasher("pwcet-dcore-v1")
                  .mix_key(hash_program(program))
                  .mix_key(hash_cache_config(icache_))
                  .mix_key(hash_cache_config(dcache_))
                  .mix_u64(static_cast<std::uint64_t>(options_.engine))
                  .finish();

  // As in the single-cache analyzer, everything expensive lives inside the
  // compute path: on a core memo hit the constructor does no analysis work
  // beyond the structural hash above.
  auto compute_core = [&] {
    const ReferenceMap irefs = extract_references(program.cfg(), icache_);
    const ReferenceMap drefs = extract_data_references(program.cfg(), dcache_);

    const ClassificationMap icls =
        classify_fault_free(program.cfg(), irefs, icache_);
    const ClassificationMap dcls =
        classify_fault_free(program.cfg(), drefs, dcache_);
    const CostModel combined = sum_models(
        build_time_cost_model(program.cfg(), irefs, icls, icache_),
        build_data_time_cost_model(program.cfg(), drefs, dcls, dcache_));

    std::unique_ptr<IpetCalculator> ipet;
    double wcet = 0.0;
    if (options_.engine == WcetEngine::kIlp) {
      ipet = std::make_unique<IpetCalculator>(program_);
      wcet = ipet->maximize(combined).objective;
    } else {
      wcet = tree_maximize(program_, combined);
    }

    CombinedCore core;
    // The time model is integral; ceil absorbs LP round-off soundly.
    core.fault_free_wcet = static_cast<Cycles>(std::ceil(wcet - 1e-6));

    // The icache rows are computed from the same reference map, config and
    // engine a plain PwcetAnalyzer of this program would use, so their row
    // prefix is the plain analyzer's core key and the two analyzer
    // flavours share memoized rows. The dcache rows get a distinct domain:
    // a data reference map must never alias an instruction one even when
    // the two cache configs coincide.
    const StoreKey irow_prefix =
        pwcet_core_key(program, icache_, options_.engine);
    const StoreKey drow_prefix =
        KeyHasher("pwcet-dcache-rows-v1")
            .mix_key(hash_program(program))
            .mix_key(hash_cache_config(dcache_))
            .mix_u64(static_cast<std::uint64_t>(options_.engine))
            .finish();
    core.ifmm = compute_fmm_bundle(program_, icache_, irefs, options_.engine,
                                   ipet.get(), options_.pool, options_.store,
                                   &irow_prefix);
    core.dfmm = compute_fmm_bundle(program_, dcache_, drefs, options_.engine,
                                   ipet.get(), options_.pool, options_.store,
                                   &drow_prefix);
    return core;
  };

  if (options_.store != nullptr) {
    const std::shared_ptr<const CombinedCore> core =
        options_.store->memo().get_or_compute<CombinedCore>(core_key_,
                                                            compute_core);
    fault_free_wcet_ = core->fault_free_wcet;
    ifmm_ = core->ifmm;
    dfmm_ = core->dfmm;
  } else {
    CombinedCore core = compute_core();
    fault_free_wcet_ = core.fault_free_wcet;
    ifmm_ = std::move(core.ifmm);
    dfmm_ = std::move(core.dfmm);
  }
}

PwcetResult CombinedPwcetAnalyzer::analyze(const FaultModel& faults,
                                           Mechanism mechanism) const {
  return analyze_mixed(faults, mechanism, mechanism);
}

PwcetResult CombinedPwcetAnalyzer::analyze_mixed(const FaultModel& faults,
                                                 Mechanism icache_mech,
                                                 Mechanism dcache_mech) const {
  AnalysisStore* store = options_.store;

  // Whole-analysis layer: one key per (core, imech, dmech, pfail,
  // coalescing budget) — everything this function reads.
  StoreKey result_key;
  if (store != nullptr) {
    result_key = KeyHasher("pwcet-dresult-v1")
                     .mix_key(core_key_)
                     .mix_u64(static_cast<std::uint64_t>(icache_mech))
                     .mix_u64(static_cast<std::uint64_t>(dcache_mech))
                     .mix_double(faults.pfail())
                     .mix_u64(options_.max_distribution_points)
                     .finish();
    if (const std::shared_ptr<const void> hit =
            store->memo().get(result_key))
      return *std::static_pointer_cast<const PwcetResult>(hit);
  }

  PwcetResult result;
  result.mechanism = icache_mech;
  result.fault_free_wcet = fault_free_wcet_;
  result.fmm = ifmm_.of(icache_mech);

  // Artifact tier: the combined penalty distribution may survive from an
  // earlier process.
  if (store != nullptr && store->artifacts() != nullptr) {
    if (std::optional<DiscreteDistribution> penalty =
            store->artifacts()->load_distribution(result_key)) {
      result.penalty = *std::move(penalty);
      store->memo().put(result_key,
                        std::make_shared<const PwcetResult>(result));
      return result;
    }
  }

  // The two caches are physically disjoint SRAM arrays: their fault counts
  // are independent, so the combined penalty is the convolution. Each
  // cache's penalty runs through the shared per-set pipeline (content-
  // addressed set distributions, fixed-shape convolution tree).
  const DiscreteDistribution ipenalty = build_penalty_distribution(
      ifmm_.of(icache_mech), icache_,
      faults.way_failure_pmf(icache_, icache_mech),
      options_.max_distribution_points, options_.pool, store);
  const DiscreteDistribution dpenalty = build_penalty_distribution(
      dfmm_.of(dcache_mech), dcache_,
      faults.way_failure_pmf(dcache_, dcache_mech),
      options_.max_distribution_points, options_.pool, store);
  result.penalty = ipenalty.convolve(dpenalty)
                       .coalesce_up(options_.max_distribution_points);

  if (store != nullptr) {
    if (store->artifacts() != nullptr)
      store->artifacts()->store_distribution(result_key, result.penalty);
    store->memo().put(result_key,
                      std::make_shared<const PwcetResult>(result));
  }
  return result;
}

}  // namespace pwcet
