#include "dcache/dcache_analysis.hpp"

#include <cmath>

#include "support/contracts.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/ipet.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {
namespace {

/// Data-side time model: loads contribute miss penalties only (the load
/// instruction's execution cycle is already charged as an instruction
/// fetch by the I-side model).
CostModel build_data_time_cost_model(const ControlFlowGraph& cfg,
                                     const ReferenceMap& drefs,
                                     const ClassificationMap& classification,
                                     const CacheConfig& dcache) {
  CostModel model = CostModel::zero(cfg);
  const auto miss = static_cast<double>(dcache.miss_penalty);
  for (const BasicBlock& block : cfg.blocks()) {
    for (std::size_t i = 0; i < drefs[size_t(block.id)].size(); ++i) {
      const RefClass& cls = classification[size_t(block.id)][i];
      switch (cls.chmc) {
        case Chmc::kAlwaysHit:
          break;
        case Chmc::kAlwaysMiss:
        case Chmc::kNotClassified:
          model.block_cost[size_t(block.id)] += miss;
          break;
        case Chmc::kFirstMiss:
          if (cls.scope == kNoLoop)
            model.root_entry_cost += miss;
          else
            model.loop_entry_cost[size_t(cls.scope)] += miss;
          break;
      }
    }
  }
  return model;
}

CostModel sum_models(const CostModel& a, const CostModel& b) {
  CostModel out = a;
  for (std::size_t i = 0; i < out.block_cost.size(); ++i)
    out.block_cost[i] += b.block_cost[i];
  for (std::size_t i = 0; i < out.loop_entry_cost.size(); ++i)
    out.loop_entry_cost[i] += b.loop_entry_cost[i];
  out.root_entry_cost += b.root_entry_cost;
  return out;
}

}  // namespace

ReferenceMap extract_data_references(const ControlFlowGraph& cfg,
                                     const CacheConfig& dcache) {
  dcache.validate();
  ReferenceMap refs(cfg.block_count());
  for (const BasicBlock& b : cfg.blocks()) {
    auto& seq = refs[size_t(b.id)];
    for (Address a : b.data_addresses) {
      const LineAddress line = dcache.line_of(a);
      if (!seq.empty() && seq.back().line == line) {
        ++seq.back().fetches;
      } else {
        seq.push_back({line, dcache.set_of_line(line), 1});
      }
    }
  }
  return refs;
}

std::uint64_t block_loads(const ControlFlowGraph& cfg, BlockId b) {
  return cfg.block(b).data_addresses.size();
}

CombinedPwcetAnalyzer::CombinedPwcetAnalyzer(const Program& program,
                                             const CacheConfig& icache,
                                             const CacheConfig& dcache,
                                             const PwcetOptions& options)
    : program_(program),
      icache_(icache),
      dcache_(dcache),
      options_(options) {
  icache_.validate();
  dcache_.validate();
  irefs_ = extract_references(program.cfg(), icache_);
  drefs_ = extract_data_references(program.cfg(), dcache_);

  const ClassificationMap icls =
      classify_fault_free(program.cfg(), irefs_, icache_);
  const ClassificationMap dcls =
      classify_fault_free(program.cfg(), drefs_, dcache_);
  const CostModel combined = sum_models(
      build_time_cost_model(program.cfg(), irefs_, icls, icache_),
      build_data_time_cost_model(program.cfg(), drefs_, dcls, dcache_));

  std::unique_ptr<IpetCalculator> ipet;
  double wcet = 0.0;
  if (options_.engine == WcetEngine::kIlp) {
    ipet = std::make_unique<IpetCalculator>(program_);
    wcet = ipet->maximize(combined).objective;
  } else {
    wcet = tree_maximize(program_, combined);
  }
  fault_free_wcet_ = static_cast<Cycles>(std::ceil(wcet - 1e-6));

  ifmm_ = compute_fmm_bundle(program_, icache_, irefs_, options_.engine,
                             ipet.get());
  dfmm_ = compute_fmm_bundle(program_, dcache_, drefs_, options_.engine,
                             ipet.get());
}

DiscreteDistribution CombinedPwcetAnalyzer::penalty_of(
    const FmmBundle& fmm, const CacheConfig& config, const FaultModel& faults,
    Mechanism mechanism) const {
  const std::vector<Probability> pwf =
      faults.way_failure_pmf(config, mechanism);
  std::vector<DiscreteDistribution> per_set;
  per_set.reserve(config.sets);
  for (SetIndex s = 0; s < config.sets; ++s) {
    std::vector<ProbabilityAtom> atoms;
    for (std::size_t f = 0; f < pwf.size(); ++f) {
      const double misses =
          fmm.of(mechanism).at(s, static_cast<std::uint32_t>(f));
      atoms.push_back({static_cast<Cycles>(std::ceil(misses - 1e-6)) *
                           config.miss_penalty,
                       pwf[f]});
    }
    per_set.push_back(DiscreteDistribution::from_atoms(std::move(atoms)));
  }
  return convolve_all(per_set, options_.max_distribution_points);
}

PwcetResult CombinedPwcetAnalyzer::analyze(const FaultModel& faults,
                                           Mechanism mechanism) const {
  return analyze_mixed(faults, mechanism, mechanism);
}

PwcetResult CombinedPwcetAnalyzer::analyze_mixed(const FaultModel& faults,
                                                 Mechanism icache_mech,
                                                 Mechanism dcache_mech) const {
  // The two caches are physically disjoint SRAM arrays: their fault counts
  // are independent, so the combined penalty is the convolution.
  const DiscreteDistribution ipenalty =
      penalty_of(ifmm_, icache_, faults, icache_mech);
  const DiscreteDistribution dpenalty =
      penalty_of(dfmm_, dcache_, faults, dcache_mech);

  PwcetResult result;
  result.mechanism = icache_mech;
  result.fault_free_wcet = fault_free_wcet_;
  result.fmm = ifmm_.of(icache_mech);
  result.penalty = ipenalty.convolve(dpenalty)
                       .coalesce_up(options_.max_distribution_points);
  return result;
}

}  // namespace pwcet
