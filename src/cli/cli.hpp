/// \file
/// The `pwcet` command-line driver.
///
/// Thin, stream-parameterized entry point so the whole CLI — argument
/// parsing, subcommand dispatch, error rendering — is unit-testable
/// in-process (tests/cli_test.cpp runs it against string streams and
/// asserts byte-identity with the programmatic API). The installed binary
/// (tools/pwcet/main.cpp) is a three-line wrapper around run().
///
/// Subcommands:
///   - `run <spec.json>`       execute a campaign spec and emit its report
///   - `describe <spec.json>`  print the expanded job grid without running
///   - `list`                  built-in tasks / mechanisms / engines / kinds
///   - `cache stats|clear`     inspect or empty an artifact cache directory
///   - `bench run|list|diff`   statistical benchmark harness + regression
///                             gate (src/benchlib, docs/benchmarking.md)
///
/// Exit codes: 0 on success, 1 for runtime failures (malformed spec,
/// unreadable file, I/O error — always with a diagnostic naming the
/// offending field on stderr), 2 for usage errors, 3 when `bench diff`
/// finds a performance regression beyond the noise band.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pwcet::cli {

/// Executes one CLI invocation. `args` is argv without the program name;
/// machine-readable output (reports, listings) goes to `out`, diagnostics
/// and progress summaries to `err`.
/// \return the process exit code (0 success, 1 failure, 2 usage error,
/// 3 bench-diff regression).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace pwcet::cli
