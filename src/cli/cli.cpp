#include "cli/cli.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "benchlib/diff.hpp"
#include "benchlib/harness.hpp"
#include "benchlib/report.hpp"
#include "benchlib/scenario.hpp"
#include "engine/names.hpp"
#include "engine/report.hpp"
#include "engine/runner.hpp"
#include "engine/shard.hpp"
#include "engine/spec_io.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "support/json_doc.hpp"
#include "support/table.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet::cli {
namespace {

constexpr const char* kUsage =
    "usage: pwcet <command> [options]\n"
    "\n"
    "commands:\n"
    "  run <spec.json>       execute a campaign spec and emit its report\n"
    "      --threads N       worker threads (0 = one per hardware thread)\n"
    "      --store on|off    content-addressed analysis store (default on)\n"
    "      --cache-dir DIR   enable the on-disk artifact tier under DIR\n"
    "      --format FMT      stdout report format: csv (default), jsonl,\n"
    "                        table; dist-csv, dist-jsonl, dist-table print\n"
    "                        the distribution sink (specs with\n"
    "                        ccdf_exceedances) instead\n"
    "      --output BASE     write BASE.csv and BASE.jsonl (plus\n"
    "                        BASE.dist.{csv,jsonl} for distribution\n"
    "                        campaigns) instead of printing the report\n"
    "      --shard i/N       run only shard i of an N-way partition\n"
    "                        (whole analyzer groups, spec-key-stable) and\n"
    "                        write a fragment artifact into the cache dir\n"
    "                        (requires --cache-dir or PWCET_CACHE_DIR);\n"
    "                        reassemble with pwcet merge\n"
    "      --trace-out FILE  record phase/engine spans and write them as\n"
    "                        Chrome trace-event JSON (open in Perfetto)\n"
    "      --metrics-out FILE\n"
    "                        record counters + duration histograms and\n"
    "                        write them as a JSON snapshot\n"
    "      --profile         print a per-phase wall-time and counter\n"
    "                        profile on stderr after the run\n"
    "      --progress        live completed/total counter with ETA on\n"
    "                        stderr (only when stderr is a terminal;\n"
    "                        --progress=force overrides)\n"
    "  merge <spec.json>     combine the per-shard outputs of a sharded\n"
    "                        campaign into the byte-identical\n"
    "                        single-process report\n"
    "      --from DIR        a shard's cache directory (repeatable; also\n"
    "                        accepts a comma-separated list)\n"
    "      --into DIR        union the shards' artifact stores into DIR\n"
    "                        and publish the merged campaign artifacts\n"
    "                        there (same-key-different-bytes collisions\n"
    "                        are hard errors)\n"
    "      --shards N        expected shard count (default: inferred;\n"
    "                        required when the directories hold fragments\n"
    "                        of several partitions)\n"
    "      --format FMT      stdout report format (as for run)\n"
    "      --output BASE     write report files (as for run)\n"
    "  describe <spec.json>  print the expanded job grid without running\n"
    "      --shards N        also show each job's shard under an N-way\n"
    "                        partition (deterministic, spec-key-stable)\n"
    "  list                  built-in tasks, mechanisms, engines, kinds\n"
    "  cache stats|clear     inspect or empty an artifact cache directory\n"
    "      --cache-dir DIR   cache directory (default: $PWCET_CACHE_DIR)\n"
    "      --metrics FILE    (stats) also render the per-layer store\n"
    "                        counters and histogram percentiles of a\n"
    "                        --metrics-out snapshot\n"
    "  bench run             execute benchmark scenarios, emit a versioned\n"
    "                        BenchReport JSON (docs/benchmarking.md)\n"
    "      --output FILE     write the report to FILE (default: stdout)\n"
    "      --repetitions N   measured repetitions per scenario (default 5)\n"
    "      --warmup N        discarded settling repetitions (default 1)\n"
    "      --threads N       campaign-scenario worker threads (default 1)\n"
    "      --scenarios SUB   only scenarios whose name contains SUB\n"
    "      --inject-slowdown METRIC=FACTOR\n"
    "                        scale recorded METRIC samples (regression-\n"
    "                        gate self-test; recorded in the artifact)\n"
    "  bench list            list benchmark scenarios\n"
    "  bench diff <A> <B>    compare two BenchReports (A = baseline);\n"
    "                        exits 3 when a metric regressed beyond the\n"
    "                        noise band\n"
    "      --threshold FRAC  relative regression threshold (default 0.25)\n"
    "\n"
    "Spec files are documented in docs/campaign-spec.md; ready-made paper\n"
    "campaigns ship under specs/.\n";

/// One parsed `--flag value` option (both `--flag value` and `--flag=value`
/// spellings are accepted).
struct Flag {
  std::string name;
  std::string value;
};

/// Flags that stand alone (`--profile`), though `--flag=value` still
/// attaches a value (`--progress=force`).
bool boolean_flag(const std::string& name) {
  return name == "--profile" || name == "--progress";
}

/// Splits args into positionals and flags. Returns false (after printing a
/// diagnostic) when a flag is missing its value.
bool split_args(const std::vector<std::string>& args,
                std::vector<std::string>& positionals, std::vector<Flag>& flags,
                std::ostream& err) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positionals.push_back(arg);
      continue;
    }
    const std::size_t equals = arg.find('=');
    if (equals != std::string::npos) {
      flags.push_back({arg.substr(0, equals), arg.substr(equals + 1)});
      continue;
    }
    if (boolean_flag(arg)) {
      flags.push_back({arg, ""});
      continue;
    }
    if (i + 1 >= args.size()) {
      err << "pwcet: " << arg << " requires a value\n";
      return false;
    }
    flags.push_back({arg, args[++i]});
  }
  return true;
}

bool parse_threads(const std::string& text, std::size_t& threads,
                   std::ostream& err) {
  if (parse_thread_count(text, threads)) return true;
  err << "pwcet: --threads wants an integer in 0.." << kMaxCampaignThreads
      << ", got '" << text << "'\n";
  return false;
}

/// Parses `--shards N` (describe, merge): an integer in 1..kMaxShardCount.
bool parse_shard_count(const Flag& flag, std::size_t& count,
                       std::ostream& err) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed =
      std::strtoull(flag.value.c_str(), &end, 10);
  if (flag.value.empty() || errno != 0 || end == nullptr || *end != '\0' ||
      parsed == 0 || parsed > kMaxShardCount) {
    err << "pwcet: --shards wants an integer in 1.." << kMaxShardCount
        << ", got '" << flag.value << "'\n";
    return false;
  }
  count = static_cast<std::size_t>(parsed);
  return true;
}

std::string geometry_label(const CacheConfig& g) {
  return std::to_string(g.sets) + "x" + std::to_string(g.ways) + "x" +
         std::to_string(g.line_bytes) + "B";
}

// ---- pwcet run ------------------------------------------------------------

/// Arms the process-wide tracer/metrics for one run and guarantees both
/// are disarmed again on every exit path (including exceptions), so a CLI
/// invocation can never leak an enabled collector into the next one —
/// cli::run is a library entry point called repeatedly in-process by the
/// tests. Collected data survives disarming for the post-run export.
struct ObsSession {
  bool tracing = false;
  bool metering = false;

  void arm(bool trace, bool meter) {
    tracing = trace;
    metering = meter;
    if (tracing) {
      obs::Tracer::instance().clear();
      obs::Tracer::instance().enable();
    }
    if (metering) {
      obs::MetricsRegistry::instance().clear();
      obs::MetricsRegistry::instance().enable();
    }
  }

  ~ObsSession() {
    if (tracing) obs::Tracer::instance().disable();
    if (metering) obs::MetricsRegistry::instance().disable();
  }
};

std::string fmt_ms(std::uint64_t ns) { return fmt_double(ns / 1e6, 3); }

/// The --profile table: wall time per span name (from the duration
/// histograms) plus every non-zero counter. Durations are wall-clock and
/// vary run to run; the counter section is deterministic for a fixed
/// single-threaded cold-store spec.
void render_profile(std::ostream& err) {
  const obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();

  TextTable spans({"span", "count", "total ms", "mean ms", "min ms",
                   "max ms", "p50 ms", "p90 ms", "p99 ms"});
  for (const obs::MetricsRegistry::NamedHistogram& h :
       registry.histograms()) {
    const auto& s = h.snapshot;
    if (s.count == 0) continue;
    spans.add_row({h.name, std::to_string(s.count), fmt_ms(s.sum_ns),
                   fmt_ms(s.count == 0 ? 0 : s.sum_ns / s.count),
                   fmt_ms(s.min_ns), fmt_ms(s.max_ns),
                   fmt_double(s.quantile_ns(0.5) / 1e6, 3),
                   fmt_double(s.quantile_ns(0.9) / 1e6, 3),
                   fmt_double(s.quantile_ns(0.99) / 1e6, 3)});
  }
  err << "\nprofile: wall time per span\n" << spans.to_string();

  TextTable counters({"counter", "value"});
  for (const auto& [name, value] : registry.counters())
    if (value != 0) counters.add_row({name, std::to_string(value)});
  err << "\nprofile: counters\n" << counters.to_string();
}

int cmd_run(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::vector<std::string> positionals;
  std::vector<Flag> flags;
  if (!split_args(args, positionals, flags, err)) return 2;
  if (positionals.size() != 1) {
    err << "pwcet: run wants exactly one spec file\n" << kUsage;
    return 2;
  }

  RunnerOptions options;
  std::string format = "csv";
  bool format_set = false;
  std::string output;
  std::string trace_out;
  std::string metrics_out;
  bool profile = false;
  bool progress = false;
  bool progress_force = false;
  ShardSelector shard;       // {0, 1} = the whole campaign
  bool shard_given = false;  // --shard 1/1 still writes its fragment
  enum class StoreFlag { kDefault, kOn, kOff };
  StoreFlag store_flag = StoreFlag::kDefault;  // last --store wins
  for (const Flag& flag : flags) {
    if (flag.name == "--threads") {
      if (!parse_threads(flag.value, options.threads, err)) return 2;
    } else if (flag.name == "--shard") {
      if (!parse_shard_selector(flag.value, shard)) {
        err << "pwcet: --shard wants i/N with 1 <= i <= N <= "
            << kMaxShardCount << ", got '" << flag.value << "'\n";
        return 2;
      }
      shard_given = true;
    } else if (flag.name == "--store") {
      if (flag.value == "on") {
        store_flag = StoreFlag::kOn;
      } else if (flag.value == "off") {
        store_flag = StoreFlag::kOff;
      } else {
        err << "pwcet: --store wants on|off, got '" << flag.value << "'\n";
        return 2;
      }
    } else if (flag.name == "--cache-dir") {
      options.store.artifact_dir = flag.value;
    } else if (flag.name == "--format") {
      if (flag.value != "csv" && flag.value != "jsonl" &&
          flag.value != "table" && flag.value != "dist-csv" &&
          flag.value != "dist-jsonl" && flag.value != "dist-table") {
        err << "pwcet: --format wants csv|jsonl|table|dist-csv|dist-jsonl|"
               "dist-table, got '"
            << flag.value << "'\n";
        return 2;
      }
      format = flag.value;
      format_set = true;
    } else if (flag.name == "--output") {
      output = flag.value;
    } else if (flag.name == "--trace-out") {
      trace_out = flag.value;
    } else if (flag.name == "--metrics-out") {
      metrics_out = flag.value;
    } else if (flag.name == "--profile") {
      if (!flag.value.empty()) {
        err << "pwcet: --profile takes no value\n";
        return 2;
      }
      profile = true;
    } else if (flag.name == "--progress") {
      if (flag.value == "force") {
        progress_force = true;
      } else if (!flag.value.empty()) {
        err << "pwcet: --progress takes no value (or '=force')\n";
        return 2;
      }
      progress = true;
    } else {
      err << "pwcet: unknown option '" << flag.name << "' for run\n" << kUsage;
      return 2;
    }
  }
  if (format_set && !output.empty()) {
    err << "pwcet: --format and --output are mutually exclusive (--output "
           "always writes BASE.csv and BASE.jsonl)\n";
    return 2;
  }

  // Oversubscription warning: more workers than hardware threads never
  // helps this workload (pure CPU, no blocking I/O) — the committed bench
  // once ran 4 workers on a 1-thread machine and *lost* (speedup 0.775).
  // The default (0 = one per hardware thread) cannot oversubscribe.
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware != 0 && options.threads > hardware)
    err << "pwcet: warning: --threads " << options.threads
        << " oversubscribes the " << hardware
        << " hardware thread(s); expect a slowdown, not a speedup\n";

  // An explicit `--store on` must win over a PWCET_STORE=0 left in the
  // environment (that knob exists to drive the spec-less bench binaries).
  // run_campaign applies the env override only when it constructs the
  // store itself, so build one here and hand it over — after the usual
  // env pass, so a PWCET_CACHE_DIR fallback still applies.
  std::unique_ptr<AnalysisStore> forced_store;
  if (store_flag == StoreFlag::kOff) {
    options.store.enabled = false;  // env can only disable further
  } else if (store_flag == StoreFlag::kOn) {
    StoreOptions store_options = options.store;
    store_options.enabled = true;
    // The PWCET_CACHE_DIR fallback is applied by hand rather than via
    // store_options_from_env: that helper skips the fallback whenever
    // PWCET_STORE=0 disabled the store first — exactly the case the
    // explicit flag is overriding here.
    if (store_options.artifact_dir.empty()) {
      const char* env_dir = std::getenv("PWCET_CACHE_DIR");
      if (env_dir != nullptr && *env_dir != '\0')
        store_options.artifact_dir = env_dir;
    }
    forced_store = std::make_unique<AnalysisStore>(store_options);
    options.shared_store = forced_store.get();
  }

  // A shard run must land its fragment artifact somewhere `pwcet merge`
  // can find it; the memo store being off (--store off) does not lift
  // that requirement — the fragment travels independently.
  std::string shard_cache_dir = options.store.artifact_dir;
  if (shard_given && shard_cache_dir.empty()) {
    const char* env_dir = std::getenv("PWCET_CACHE_DIR");
    if (env_dir != nullptr && *env_dir != '\0') shard_cache_dir = env_dir;
    if (shard_cache_dir.empty()) {
      err << "pwcet: --shard needs a cache directory for its fragment "
             "artifact: pass --cache-dir or set PWCET_CACHE_DIR\n";
      return 2;
    }
  }

  const SpecDocument doc = load_spec(positionals[0]);
  if (format.rfind("dist-", 0) == 0 && doc.spec.ccdf_exceedances.empty()) {
    err << "pwcet: --format " << format << " needs a spec with "
        << "\"ccdf_exceedances\" (this one has no distribution sink)\n";
    return 1;
  }

  // Observability is armed only for this run and disarmed on every exit
  // path; the report below is byte-identical either way (observation-only
  // contract, obs/tracer.hpp).
  ObsSession obs_session;
  obs_session.arm(!trace_out.empty(), !metrics_out.empty() || profile);

  const std::vector<CampaignJob> jobs = expand_campaign(doc.spec);
  std::size_t expected_jobs = jobs.size();
  if (shard_given)
    expected_jobs =
        shard_job_slots(campaign_group_schedule(jobs), shard).size();

  // --progress animates on stderr, so it must stay off when stderr is not
  // a terminal (redirected runs, every test) unless forced.
  obs::ProgressMeter meter(
      expected_jobs, err,
      progress && (progress_force || ::isatty(STDERR_FILENO) != 0));
  if (progress)
    options.on_job_finished = [&meter] { meter.job_finished(); };

  CampaignResult campaign;
  if (shard_given) {
    campaign = shard_view(
        run_campaign_shard(doc.spec, shard, options, shard_cache_dir));
  } else {
    campaign = run_campaign(doc.spec, options);
  }
  meter.finish();

  if (obs_session.tracing) {
    obs::Tracer::instance().disable();
    if (!obs::Tracer::instance().write_json(trace_out)) {
      err << "pwcet: failed to write trace file " << trace_out << "\n";
      return 1;
    }
  }
  if (obs_session.metering) obs::MetricsRegistry::instance().disable();
  if (!metrics_out.empty() &&
      !obs::MetricsRegistry::instance().write_json(metrics_out)) {
    err << "pwcet: failed to write metrics file " << metrics_out << "\n";
    return 1;
  }

  if (!output.empty()) {
    if (!write_report_files(campaign, output)) {
      err << "pwcet: failed to write " << output << ".{csv,jsonl}\n";
      return 1;
    }
  } else if (format == "csv") {
    out << report_csv(campaign);
  } else if (format == "jsonl") {
    out << report_jsonl(campaign);
  } else if (format == "table") {
    out << report_table(campaign).to_string();
  } else if (format == "dist-csv") {
    out << report_dist_csv(campaign);
  } else if (format == "dist-jsonl") {
    out << report_dist_jsonl(campaign);
  } else {
    out << report_dist_table(campaign).to_string();
  }

  // Progress summary on stderr so stdout stays byte-clean for diffing.
  if (shard_given)
    err << "[shard " << (shard.index + 1) << "/" << shard.count << ": "
        << campaign.results.size() << " of " << jobs.size()
        << " jobs; fragment -> " << shard_cache_dir << "]\n";
  err << "[" << campaign.results.size() << " jobs on "
      << campaign.threads_used << " threads in " << fmt_double(
             campaign.wall_seconds, 2)
      << "s; store: " << campaign.store_stats.hits << " hits / "
      << campaign.store_stats.misses << " misses";
  // Disk loads that missed are real work too (each one fell through to a
  // recompute), so the aggregate names all three flows, not just the
  // successes.
  if (campaign.store_stats.disk_hits + campaign.store_stats.disk_misses +
          campaign.store_stats.disk_writes >
      0)
    err << "; disk: " << campaign.store_stats.disk_hits << " hits / "
        << campaign.store_stats.disk_misses << " misses / "
        << campaign.store_stats.disk_writes << " writes";
  err << "]\n";
  if (profile) render_profile(err);
  if (!output.empty()) {
    err << "wrote " << output << ".csv and " << output << ".jsonl";
    if (!doc.spec.ccdf_exceedances.empty())
      err << " (+ " << output << ".dist.{csv,jsonl})";
    err << "\n";
  }
  return 0;
}

// ---- pwcet merge ----------------------------------------------------------

int cmd_merge(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  std::vector<std::string> positionals;
  std::vector<Flag> flags;
  if (!split_args(args, positionals, flags, err)) return 2;
  if (positionals.size() != 1) {
    err << "pwcet: merge wants exactly one spec file\n" << kUsage;
    return 2;
  }

  ShardMergeOptions merge_options;
  std::string format = "csv";
  bool format_set = false;
  std::string output;
  for (const Flag& flag : flags) {
    if (flag.name == "--from") {
      // Repeatable, and each occurrence may carry a comma-separated list
      // (convenient in CI: --from "a,b,c" from a matrix variable).
      std::size_t start = 0;
      while (start <= flag.value.size()) {
        const std::size_t comma = flag.value.find(',', start);
        const std::string dir =
            comma == std::string::npos
                ? flag.value.substr(start)
                : flag.value.substr(start, comma - start);
        if (!dir.empty()) merge_options.from_dirs.push_back(dir);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (flag.name == "--into") {
      merge_options.into_dir = flag.value;
    } else if (flag.name == "--shards") {
      if (!parse_shard_count(flag, merge_options.shard_count, err)) return 2;
    } else if (flag.name == "--format") {
      if (flag.value != "csv" && flag.value != "jsonl" &&
          flag.value != "table" && flag.value != "dist-csv" &&
          flag.value != "dist-jsonl" && flag.value != "dist-table") {
        err << "pwcet: --format wants csv|jsonl|table|dist-csv|dist-jsonl|"
               "dist-table, got '"
            << flag.value << "'\n";
        return 2;
      }
      format = flag.value;
      format_set = true;
    } else if (flag.name == "--output") {
      output = flag.value;
    } else {
      err << "pwcet: unknown option '" << flag.name << "' for merge\n"
          << kUsage;
      return 2;
    }
  }
  if (format_set && !output.empty()) {
    err << "pwcet: --format and --output are mutually exclusive (--output "
           "always writes BASE.csv and BASE.jsonl)\n";
    return 2;
  }
  if (merge_options.from_dirs.empty()) {
    err << "pwcet: merge wants at least one --from directory\n";
    return 2;
  }

  const SpecDocument doc = load_spec(positionals[0]);
  if (format.rfind("dist-", 0) == 0 && doc.spec.ccdf_exceedances.empty()) {
    err << "pwcet: --format " << format << " needs a spec with "
        << "\"ccdf_exceedances\" (this one has no distribution sink)\n";
    return 1;
  }

  ShardMergeOutcome merged;
  try {
    merged = merge_campaign_shards(doc.spec, merge_options);
  } catch (const ShardMergeError& e) {
    err << "pwcet: " << e.what() << "\n";
    return 1;
  }
  const CampaignResult& campaign = merged.campaign;

  if (!output.empty()) {
    if (!write_report_files(campaign, output)) {
      err << "pwcet: failed to write " << output << ".{csv,jsonl}\n";
      return 1;
    }
  } else if (format == "csv") {
    out << report_csv(campaign);
  } else if (format == "jsonl") {
    out << report_jsonl(campaign);
  } else if (format == "table") {
    out << report_table(campaign).to_string();
  } else if (format == "dist-csv") {
    out << report_dist_csv(campaign);
  } else if (format == "dist-jsonl") {
    out << report_dist_jsonl(campaign);
  } else {
    out << report_dist_table(campaign).to_string();
  }

  // Same stderr/stdout split as run: the summary never lands in the report.
  err << "[merged " << merged.shard_count << " shards: "
      << campaign.results.size() << " jobs";
  if (!merge_options.into_dir.empty())
    err << "; store union -> " << merge_options.into_dir << ": "
        << merged.artifacts_copied << " copied / "
        << merged.artifacts_identical << " identical";
  err << "]\n";
  if (!output.empty()) {
    err << "wrote " << output << ".csv and " << output << ".jsonl";
    if (!doc.spec.ccdf_exceedances.empty())
      err << " (+ " << output << ".dist.{csv,jsonl})";
    err << "\n";
  }
  return 0;
}

// ---- pwcet describe -------------------------------------------------------

int cmd_describe(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  std::vector<std::string> positionals;
  std::vector<Flag> flags;
  if (!split_args(args, positionals, flags, err)) return 2;
  std::size_t shard_count = 0;  // 0 = no shard column
  for (const Flag& flag : flags) {
    if (flag.name == "--shards") {
      if (!parse_shard_count(flag, shard_count, err)) return 2;
    } else {
      err << "pwcet: unknown option '" << flag.name << "' for describe\n";
      return 2;
    }
  }
  if (positionals.size() != 1) {
    err << "pwcet: describe wants exactly one spec file\n" << kUsage;
    return 2;
  }

  const SpecDocument doc = load_spec(positionals[0]);
  const CampaignSpec& spec = doc.spec;
  const std::vector<CampaignJob> jobs = expand_campaign(spec);

  if (!doc.name.empty()) out << doc.name << "\n";
  if (!doc.notes.empty()) out << doc.notes << "\n";
  if (!doc.name.empty() || !doc.notes.empty()) out << "\n";

  out << "axes: " << spec.tasks.size() << " tasks x "
      << spec.geometries.size() << " geometries x " << spec.pfails.size()
      << " pfails x " << spec.mechanisms.size() << " mechanisms x "
      << spec.engines.size() << " engines x " << spec.kinds.size()
      << " kinds x " << spec.dcaches.size() << " dcaches x "
      << spec.tlbs.size() << " tlbs x " << spec.l2s.size() << " l2s x "
      << spec.dcache_mechanisms.size() << " dmechs x "
      << spec.sample_counts.size() << " samples = " << jobs.size()
      << " jobs\n";
  out << "target exceedance: " << fmt_prob(spec.target_exceedance) << "\n";
  if (!spec.ccdf_exceedances.empty())
    out << "distribution sink: " << spec.ccdf_exceedances.size()
        << " exceedance points per job\n";
  out << "spec key: " << campaign_spec_key(spec).hex() << "\n";
  // Capacity line (and an oversubscription warning when PWCET_THREADS
  // overrides past it) so a reader of `describe` can budget a run.
  const unsigned hardware = std::thread::hardware_concurrency();
  out << "hardware threads: " << hardware << "\n\n";
  const std::size_t env_threads = threads_from_env();
  if (hardware != 0 && env_threads > hardware)
    err << "pwcet: warning: PWCET_THREADS=" << env_threads
        << " oversubscribes the " << hardware
        << " hardware thread(s); expect a slowdown, not a speedup\n";

  // Each cache-domain axis gets its own geometry column so a grid mixing
  // TLB and L2 cells stays readable: the dcache label carries a "-wb<N>"
  // write-back marker, the TLB label spells entries/ways/page size.
  // --shards N appends each job's shard under the N-way partition —
  // the same spec-key-stable assignment `run --shard` executes.
  std::vector<std::string> headers = {"#",     "task", "geometry", "dcache",
                                      "tlb",   "l2",   "pfail",    "mech",
                                      "dmech", "engine", "kind", "samples",
                                      "seed"};
  if (shard_count > 0) headers.push_back("shard");
  std::vector<std::size_t> assignment;
  if (shard_count > 0)
    assignment = shard_assignment(campaign_group_schedule(jobs), jobs.size(),
                                  shard_count);
  TextTable table(std::move(headers));
  const auto dcache_label = [](const DcacheAxis& d) {
    if (!d.enabled) return std::string("-");
    std::string label = geometry_label(d.geometry);
    if (d.policy == WritePolicy::kWriteBack)
      label += "-wb" + std::to_string(d.writeback_penalty);
    return label;
  };
  const auto tlb_label = [](const TlbAxis& t) {
    if (!t.enabled) return std::string("-");
    return std::to_string(t.entries) + "e" + std::to_string(t.ways) + "w" +
           std::to_string(t.page_bytes) + "B";
  };
  for (const CampaignJob& job : jobs) {
    std::vector<std::string> row = {
        std::to_string(job.index), job.task, geometry_label(job.geometry),
        dcache_label(job.dcache), tlb_label(job.tlb),
        job.l2.enabled ? geometry_label(job.l2.geometry) : "-",
        fmt_prob(job.pfail), mechanism_name(job.mechanism),
        job.dcache.enabled ? dcache_mechanism_name(job.dmech) : "-",
        engine_name(job.engine), analysis_kind_name(job.kind),
        std::to_string(job.samples), std::to_string(job.seed)};
    if (shard_count > 0)
      row.push_back(std::to_string(assignment[job.index] + 1) + "/" +
                    std::to_string(shard_count));
    table.add_row(std::move(row));
  }
  out << table.to_string();
  return 0;
}

// ---- pwcet list -----------------------------------------------------------

int cmd_list(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (!args.empty()) {
    err << "pwcet: list takes no arguments\n";
    return 2;
  }
  // Axis values and their one-liners come from the single name registry
  // (engine/names.hpp) — the same tables the spec loader parses against.
  const auto section = [&out](const char* title, const auto& names) {
    std::size_t width = 0;
    for (const auto& entry : names)
      width = std::max(width, std::string(entry.name).size());
    out << "\n" << title << ":\n";
    for (const auto& entry : names) {
      out << "  " << entry.name
          << std::string(width - std::string(entry.name).size() + 2, ' ')
          << entry.description << "\n";
    }
  };
  out << "tasks (Malardalen-style structural counterparts):\n";
  for (const std::string& name : workloads::names()) out << "  " << name
                                                         << "\n";
  out << "\ntasks (extension kernels, data-cache study):\n";
  for (const std::string& name : workloads::extension_names())
    out << "  " << name << "\n";
  section("cache domains", cache_domain_listings());
  section("mechanisms", mechanism_names());
  section("dcache mechanisms", dcache_mechanism_names());
  section("write policies", write_policy_names());
  section("engines", engine_names());
  section("kinds", analysis_kind_names());
  return 0;
}

// ---- pwcet cache ----------------------------------------------------------

/// Renders the `store.<tier>.<layer>.<event>` counters of a --metrics-out
/// snapshot as one per-layer table: memo rows (core / set-penalty / result
/// / slack / fmm-rows) with hit/miss/eviction columns, disk rows (per
/// artifact kind) with hit/miss/write columns. Histograms follow as a
/// percentile table (the derived p50/p90/p99 fields, never the raw bucket
/// arrays). Returns false (after a diagnostic) when the file does not load
/// or parse.
bool render_store_counters(const std::string& path, std::ostream& out,
                           std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "pwcet: cannot read metrics file " << path << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();

  const char* events[] = {"hits", "misses", "evictions", "writes"};
  // (tier, layer) -> event -> count; std::map keeps row order stable.
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, std::uint64_t>>
      rows;
  // One row per histogram: name, count, then the derived ns fields
  // rendered as ms ("-" where an older snapshot lacks the field).
  std::vector<std::vector<std::string>> histogram_rows;
  try {
    const Json doc = parse_json(text.str(), path);
    if (doc.type != Json::Type::kObject)
      throw JsonParseError(path + ": not a metrics snapshot (want object)");
    const Json* counters = doc.find("counters");
    if (counters == nullptr || counters->type != Json::Type::kObject)
      throw JsonParseError(path +
                           ": not a metrics snapshot (no \"counters\")");
    for (const auto& [name, value] : counters->object) {
      if (name.rfind("store.", 0) != 0) continue;
      // store.<tier>.<layer>.<event> — layers may themselves contain dots
      // (artifact kinds do not today, but be permissive): split off the
      // first and last component, keep the middle as the layer.
      const std::size_t tier_end = name.find('.', 6);
      const std::size_t event_start = name.rfind('.');
      if (tier_end == std::string::npos || event_start <= tier_end) continue;
      if (value.type != Json::Type::kNumber || !value.integral) continue;
      rows[{name.substr(6, tier_end - 6),
            name.substr(tier_end + 1, event_start - tier_end - 1)}]
          [name.substr(event_start + 1)] = value.integer;
    }
    const Json* histograms = doc.find("histograms");
    if (histograms != nullptr && histograms->type == Json::Type::kObject) {
      const auto field_ms = [](const Json& snap, const char* field) {
        const Json* value = snap.find(field);
        if (value == nullptr || value->type != Json::Type::kNumber)
          return std::string("-");  // pre-percentile snapshot
        return fmt_double(value->number / 1e6, 3);
      };
      for (const auto& [name, snap] : histograms->object) {
        if (snap.type != Json::Type::kObject) continue;
        const Json* count = snap.find("count");
        const std::string count_text =
            count != nullptr && count->type == Json::Type::kNumber &&
                    count->integral
                ? std::to_string(count->integer)
                : "-";
        histogram_rows.push_back({name, count_text,
                                  field_ms(snap, "mean_ns"),
                                  field_ms(snap, "p50_ns"),
                                  field_ms(snap, "p90_ns"),
                                  field_ms(snap, "p99_ns")});
      }
    }
  } catch (const JsonParseError& e) {
    err << "pwcet: " << e.what() << "\n";
    return false;
  }

  TextTable table({"tier", "layer", "hits", "misses", "evictions",
                   "writes"});
  for (const auto& [key, counts] : rows) {
    std::vector<std::string> cells = {key.first, key.second};
    for (const char* event : events) {
      const auto it = counts.find(event);
      cells.push_back(it == counts.end() ? "-" : std::to_string(it->second));
    }
    table.add_row(std::move(cells));
  }
  out << "store counters (" << path << "):\n" << table.to_string();
  if (rows.empty())
    out << "  (no store.* counters in the snapshot — was the run recorded "
           "with --metrics-out while the store was enabled?)\n";
  if (!histogram_rows.empty()) {
    TextTable percentiles(
        {"histogram", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms"});
    for (auto& row : histogram_rows) percentiles.add_row(std::move(row));
    out << "\nhistogram percentiles (" << path << "):\n"
        << percentiles.to_string();
  }
  return true;
}

int cmd_cache(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  std::vector<std::string> positionals;
  std::vector<Flag> flags;
  if (!split_args(args, positionals, flags, err)) return 2;
  if (positionals.size() != 1 ||
      (positionals[0] != "stats" && positionals[0] != "clear")) {
    err << "pwcet: cache wants 'stats' or 'clear'\n" << kUsage;
    return 2;
  }
  std::string dir;
  std::string metrics_file;
  for (const Flag& flag : flags) {
    if (flag.name == "--cache-dir") {
      dir = flag.value;
    } else if (flag.name == "--metrics" && positionals[0] == "stats") {
      metrics_file = flag.value;
    } else {
      err << "pwcet: unknown option '" << flag.name << "' for cache "
          << positionals[0] << "\n";
      return 2;
    }
  }
  if (dir.empty()) {
    const char* env = std::getenv("PWCET_CACHE_DIR");
    if (env != nullptr) dir = env;
  }

  // A metrics snapshot is self-contained: render it even without a cache
  // directory (the counters describe the memo tier too, which never
  // touches disk).
  if (!metrics_file.empty() && dir.empty())
    return render_store_counters(metrics_file, out, err) ? 0 : 1;

  if (dir.empty()) {
    err << "pwcet: no cache directory: pass --cache-dir or set "
           "PWCET_CACHE_DIR\n";
    return 1;
  }

  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::exists(dir, ec)) {
    out << "cache directory " << dir
        << " does not exist (nothing cached; 0 artifacts)\n";
    if (!metrics_file.empty())
      return render_store_counters(metrics_file, out, err) ? 0 : 1;
    return 0;
  }

  // The artifact tier lays out one subdirectory per artifact kind with one
  // "<key>.jsonl" file per artifact (store/artifact_store.cpp). Anything
  // else in the directory is not ours and is left untouched.
  struct KindStats {
    std::string kind;
    std::uint64_t files = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<KindStats> kinds;
  const fs::directory_iterator top(dir, ec);
  if (ec) {
    err << "pwcet: cannot read cache directory " << dir << ": "
        << ec.message() << "\n";
    return 1;
  }
  for (const fs::directory_entry& entry : top) {
    if (!entry.is_directory(ec)) continue;
    const fs::directory_iterator kind_it(entry.path(), ec);
    if (ec) {
      err << "pwcet: cannot read " << entry.path().string() << ": "
          << ec.message() << "\n";
      return 1;
    }
    KindStats stats;
    stats.kind = entry.path().filename().string();
    for (const fs::directory_entry& file : kind_it) {
      if (!file.is_regular_file(ec) || file.path().extension() != ".jsonl")
        continue;
      // A file racing deletion by another process reads as an error here;
      // skip it rather than folding file_size's uintmax_t(-1) sentinel
      // into the byte total.
      const std::uintmax_t size = file.file_size(ec);
      if (ec) continue;
      ++stats.files;
      stats.bytes += static_cast<std::uint64_t>(size);
    }
    if (stats.files > 0) kinds.push_back(std::move(stats));
  }

  if (positionals[0] == "stats") {
    TextTable table({"kind", "artifacts", "bytes"});
    std::uint64_t total_files = 0, total_bytes = 0;
    for (const KindStats& stats : kinds) {
      table.add_row({stats.kind, std::to_string(stats.files),
                     std::to_string(stats.bytes)});
      total_files += stats.files;
      total_bytes += stats.bytes;
    }
    table.add_row({"total", std::to_string(total_files),
                   std::to_string(total_bytes)});
    out << "cache directory: " << dir << "\n" << table.to_string();
    if (!metrics_file.empty()) {
      out << "\n";
      if (!render_store_counters(metrics_file, out, err)) return 1;
    }
    return 0;
  }

  // clear: remove only artifact files — "<key>.jsonl" plus orphaned
  // "<key>.jsonl.tmp*" left by a writer that died before its rename —
  // and then-empty kind directories, so a mistyped --cache-dir cannot
  // wipe unrelated data. Walks the directory afresh rather than the
  // stats list, which skips kinds holding only orphans.
  std::uint64_t removed = 0;
  const fs::directory_iterator kind_dirs(dir, ec);
  if (ec) {
    err << "pwcet: cannot read cache directory " << dir << ": "
        << ec.message() << "\n";
    return 1;
  }
  for (const fs::directory_entry& entry : kind_dirs) {
    if (!entry.is_directory(ec)) continue;
    const fs::directory_iterator files(entry.path(), ec);
    if (ec) {
      err << "pwcet: cannot read " << entry.path().string() << ": "
          << ec.message() << "\n";
      return 1;
    }
    for (const fs::directory_entry& file : files) {
      if (!file.is_regular_file(ec)) continue;
      const std::string name = file.path().filename().string();
      const bool artifact = file.path().extension() == ".jsonl";
      const bool orphan = name.find(".jsonl.tmp") != std::string::npos;
      if (!artifact && !orphan) continue;
      if (fs::remove(file.path(), ec) && artifact) ++removed;
    }
    fs::remove(entry.path(), ec);  // succeeds only if now empty
  }
  out << "removed " << removed << " artifacts from " << dir << "\n";
  return 0;
}

// ---- pwcet bench ----------------------------------------------------------

bool parse_count_flag(const Flag& flag, std::size_t& value,
                      std::ostream& err) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed =
      std::strtoull(flag.value.c_str(), &end, 10);
  if (flag.value.empty() || errno != 0 || end == nullptr || *end != '\0') {
    err << "pwcet: " << flag.name << " wants a non-negative integer, got '"
        << flag.value << "'\n";
    return false;
  }
  value = static_cast<std::size_t>(parsed);
  return true;
}

/// Parses `--inject-slowdown METRIC=FACTOR` into the harness's injection
/// list. The knob exists so CI can prove the regression gate fires (see
/// docs/benchmarking.md); it is recorded in the artifact's environment so
/// a doctored report can never masquerade as a clean baseline.
bool parse_injection(const Flag& flag, benchlib::BenchOptions& options,
                     std::ostream& err) {
  const std::size_t equals = flag.value.find('=');
  double factor = 0.0;
  if (equals != std::string::npos && equals > 0) {
    errno = 0;
    char* end = nullptr;
    factor = std::strtod(flag.value.c_str() + equals + 1, &end);
    if (errno != 0 || end == nullptr || *end != '\0') factor = 0.0;
  }
  if (factor <= 0.0) {
    err << "pwcet: --inject-slowdown wants METRIC=FACTOR with FACTOR > 0, "
           "got '"
        << flag.value << "'\n";
    return false;
  }
  options.inject_slowdown.emplace_back(flag.value.substr(0, equals), factor);
  return true;
}

int cmd_bench_run(const std::vector<std::string>& positionals,
                  const std::vector<Flag>& flags, std::ostream& out,
                  std::ostream& err) {
  if (positionals.size() != 1) {
    err << "pwcet: bench run takes no positional arguments\n";
    return 2;
  }
  benchlib::BenchOptions bench;
  benchlib::ScenarioOptions scenario_options;
  std::string output;
  std::string filter;
  for (const Flag& flag : flags) {
    if (flag.name == "--output") {
      output = flag.value;
    } else if (flag.name == "--repetitions") {
      if (!parse_count_flag(flag, bench.repetitions, err)) return 2;
      if (bench.repetitions == 0) {
        err << "pwcet: --repetitions wants at least 1\n";
        return 2;
      }
    } else if (flag.name == "--warmup") {
      if (!parse_count_flag(flag, bench.warmup, err)) return 2;
    } else if (flag.name == "--threads") {
      if (!parse_threads(flag.value, scenario_options.threads, err)) return 2;
      if (scenario_options.threads == 0)
        scenario_options.threads =
            std::max(1u, std::thread::hardware_concurrency());
    } else if (flag.name == "--scenarios") {
      filter = flag.value;
    } else if (flag.name == "--inject-slowdown") {
      if (!parse_injection(flag, bench, err)) return 2;
    } else {
      err << "pwcet: unknown option '" << flag.name << "' for bench run\n"
          << kUsage;
      return 2;
    }
  }

  std::vector<benchlib::Scenario> scenarios = benchlib::builtin_scenarios();
  if (!filter.empty()) {
    std::erase_if(scenarios, [&filter](const benchlib::Scenario& s) {
      return s.name.find(filter) == std::string::npos;
    });
    if (scenarios.empty()) {
      err << "pwcet: no scenario matches '" << filter
          << "' (see pwcet bench list)\n";
      return 1;
    }
  }

  benchlib::BenchReport report;
  // No timestamps or hostnames: two reports from comparable runs must
  // differ only in samples, so a diff's environment notes stay meaningful.
  report.environment = {
      {"threads", std::to_string(scenario_options.threads)},
      {"hardware_threads",
       std::to_string(std::thread::hardware_concurrency())},
      {"store", "memory"},
#ifdef NDEBUG
      {"build_type", "release"},
#else
      {"build_type", "debug"},
#endif
      {"obs_metrics", bench.capture_metrics ? "on" : "off"},
      {"warmup", std::to_string(bench.warmup)},
      {"repetitions", std::to_string(bench.repetitions)},
  };
  if (!bench.inject_slowdown.empty()) {
    std::string injected;
    for (const auto& [metric, factor] : bench.inject_slowdown) {
      if (!injected.empty()) injected += ",";
      injected += metric + "=" + fmt_double(factor, 3);
    }
    report.environment.emplace_back("inject_slowdown", injected);
  }

  for (benchlib::Scenario& scenario : scenarios) {
    err << "bench: " << scenario.name << " (" << bench.warmup << "+"
        << bench.repetitions << " reps)..." << std::flush;
    if (scenario.setup) scenario.setup(scenario_options);
    benchlib::ScenarioSamples samples = benchlib::run_scenario(
        scenario.name, bench,
        [&scenario, &scenario_options](benchlib::Recorder& recorder) {
          scenario.body(recorder, scenario_options);
        });
    benchlib::ScenarioReport summary =
        benchlib::summarize_scenario(std::move(samples));
    const auto wall = summary.stats.find("wall_ns");
    if (wall != summary.stats.end())
      err << " median " << fmt_double(wall->second.median / 1e6, 3) << " ms";
    err << "\n";
    report.scenarios.push_back(std::move(summary));
  }

  const std::string json = benchlib::bench_report_json(report);
  if (output.empty()) {
    out << json;
    return 0;
  }
  if (!benchlib::write_bench_report(report, output)) {
    err << "pwcet: failed to write bench report " << output << "\n";
    return 1;
  }
  err << "wrote " << output << " (" << report.scenarios.size()
      << " scenarios)\n";
  return 0;
}

int cmd_bench_list(const std::vector<std::string>& positionals,
                   const std::vector<Flag>& flags, std::ostream& out,
                   std::ostream& err) {
  if (positionals.size() != 1 || !flags.empty()) {
    err << "pwcet: bench list takes no arguments\n";
    return 2;
  }
  TextTable table({"scenario", "description"});
  for (const benchlib::Scenario& scenario : benchlib::builtin_scenarios())
    table.add_row({scenario.name, scenario.description});
  out << table.to_string();
  return 0;
}

int cmd_bench_diff(const std::vector<std::string>& positionals,
                   const std::vector<Flag>& flags, std::ostream& out,
                   std::ostream& err) {
  if (positionals.size() != 3) {
    err << "pwcet: bench diff wants exactly two report files (baseline, "
           "candidate)\n";
    return 2;
  }
  benchlib::DiffOptions options;
  for (const Flag& flag : flags) {
    if (flag.name == "--threshold") {
      errno = 0;
      char* end = nullptr;
      options.threshold = std::strtod(flag.value.c_str(), &end);
      if (flag.value.empty() || errno != 0 || end == nullptr ||
          *end != '\0' || options.threshold <= 0.0) {
        err << "pwcet: --threshold wants a positive fraction, got '"
            << flag.value << "'\n";
        return 2;
      }
    } else {
      err << "pwcet: unknown option '" << flag.name << "' for bench diff\n"
          << kUsage;
      return 2;
    }
  }
  try {
    const benchlib::BenchReport before =
        benchlib::load_bench_report(positionals[1]);
    const benchlib::BenchReport after =
        benchlib::load_bench_report(positionals[2]);
    const benchlib::BenchDiff diff =
        benchlib::diff_reports(before, after, options);
    benchlib::render_diff(diff, options, out);
    // Exit 3 (not 1) so CI can tell "a metric regressed" apart from
    // "the artifacts could not be compared".
    return diff.has_regression() ? 3 : 0;
  } catch (const benchlib::BenchError& e) {
    err << "pwcet: " << e.what() << "\n";
    return 1;
  }
}

int cmd_bench(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  std::vector<std::string> positionals;
  std::vector<Flag> flags;
  if (!split_args(args, positionals, flags, err)) return 2;
  if (positionals.empty()) {
    err << "pwcet: bench wants 'run', 'list' or 'diff'\n" << kUsage;
    return 2;
  }
  if (positionals[0] == "run") return cmd_bench_run(positionals, flags, out, err);
  if (positionals[0] == "list")
    return cmd_bench_list(positionals, flags, out, err);
  if (positionals[0] == "diff")
    return cmd_bench_diff(positionals, flags, out, err);
  err << "pwcet: bench wants 'run', 'list' or 'diff', got '" << positionals[0]
      << "'\n"
      << kUsage;
  return 2;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help" ||
      args[0] == "-h") {
    (args.empty() ? err : out) << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "run") return cmd_run(rest, out, err);
    if (command == "merge") return cmd_merge(rest, out, err);
    if (command == "describe") return cmd_describe(rest, out, err);
    if (command == "list") return cmd_list(rest, out, err);
    if (command == "cache") return cmd_cache(rest, out, err);
    if (command == "bench") return cmd_bench(rest, out, err);
  } catch (const SpecError& e) {
    err << "pwcet: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "pwcet: error: " << e.what() << "\n";
    return 1;
  }
  err << "pwcet: unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace pwcet::cli
