#include "wcet/tree_engine.hpp"

#include <algorithm>
#include <limits>

#include "support/contracts.hpp"

namespace pwcet {
namespace {

/// Cost of one execution of the subtree (for a loop: one entry).
double subtree_cost(const Program& p, const CostModel& model, TreeId t,
                    std::vector<double>& memo) {
  double& slot = memo[size_t(t)];
  if (slot == slot) return slot;  // already computed (not NaN)
  const TreeNode& n = p.tree_node(t);
  double cost = 0.0;
  switch (n.kind) {
    case TreeKind::kLeaf:
      cost = model.block_cost[size_t(n.block)];
      break;
    case TreeKind::kSeq:
      for (TreeId c : n.children) cost += subtree_cost(p, model, c, memo);
      break;
    case TreeKind::kAlt: {
      double best = -std::numeric_limits<double>::infinity();
      for (TreeId c : n.children)
        best = std::max(best, subtree_cost(p, model, c, memo));
      cost = best;
      break;
    }
    case TreeKind::kLoop: {
      const double header = subtree_cost(p, model, n.children[0], memo);
      const double body = subtree_cost(p, model, n.children[1], memo);
      const auto b = static_cast<double>(n.bound);
      // k iterations cost header + k*(header+body); linear in k, so the
      // maximum over k in [0, bound] sits at an endpoint. Delta-miss models
      // can make header+body negative, in which case the worst path runs
      // the loop zero times (the IPET relaxation does the same).
      const double per_iter = header + body;
      cost = model.loop_entry_cost[size_t(n.loop)] + header +
             std::max(0.0, b * per_iter);
      break;
    }
  }
  slot = cost;
  return cost;
}

void emit_worst(const Program& p, const CostModel& model, TreeId t,
                const std::vector<double>& memo, std::vector<BlockId>& out) {
  const TreeNode& n = p.tree_node(t);
  switch (n.kind) {
    case TreeKind::kLeaf:
      out.push_back(n.block);
      return;
    case TreeKind::kSeq:
      for (TreeId c : n.children) emit_worst(p, model, c, memo, out);
      return;
    case TreeKind::kAlt: {
      TreeId best = n.children.front();
      for (TreeId c : n.children)
        if (memo[size_t(c)] > memo[size_t(best)]) best = c;
      emit_worst(p, model, best, memo, out);
      return;
    }
    case TreeKind::kLoop: {
      const double per_iter =
          memo[size_t(n.children[0])] + memo[size_t(n.children[1])];
      const std::int64_t iterations = per_iter > 0.0 ? n.bound : 0;
      emit_worst(p, model, n.children[0], memo, out);
      for (std::int64_t i = 0; i < iterations; ++i) {
        emit_worst(p, model, n.children[1], memo, out);
        emit_worst(p, model, n.children[0], memo, out);
      }
      return;
    }
  }
  PWCET_ASSERT(false);
}

std::vector<double> nan_memo(const Program& p) {
  return std::vector<double>(p.tree().size(),
                             std::numeric_limits<double>::quiet_NaN());
}

}  // namespace

double tree_maximize(const Program& program, const CostModel& model) {
  auto memo = nan_memo(program);
  return model.root_entry_cost +
         subtree_cost(program, model, program.tree_root(), memo);
}

std::vector<BlockId> tree_worst_path(const Program& program,
                                     const CostModel& model) {
  auto memo = nan_memo(program);
  subtree_cost(program, model, program.tree_root(), memo);
  std::vector<BlockId> path;
  emit_worst(program, model, program.tree_root(), memo, path);
  return path;
}

}  // namespace pwcet
