// Cost models consumed by the two WCET engines (IPET and loop-tree).
//
// A cost model assigns:
//  * `block_cost[b]`   — cost per execution of basic block b,
//  * `loop_entry_cost[l]` — cost per *entry* of loop l (first-miss
//    references with scope l contribute here, matching the IPET term
//    penalty * x_entry(l)),
//  * `root_entry_cost` — cost incurred once per run (first-miss references
//    persistent across the whole program).
//
// Two instantiations exist: the *time* model (cycles; fetch latencies plus
// miss penalties, used for the fault-free WCET) and the *delta-miss* model
// (fault-induced misses of one degraded set minus the fault-free misses of
// the same references, used for the FMM — paper §II-C "ILP system close to
// IPET"). Costs are doubles because delta models carry negative terms.
#pragma once

#include <vector>

#include "cache/cache_config.hpp"
#include "cache/references.hpp"
#include "cfg/cfg.hpp"
#include "icache/chmc.hpp"
#include "icache/set_analysis.hpp"
#include "icache/srb_analysis.hpp"

namespace pwcet {

struct CostModel {
  std::vector<double> block_cost;       // indexed by BlockId
  std::vector<double> loop_entry_cost;  // indexed by LoopId
  double root_entry_cost = 0.0;

  static CostModel zero(const ControlFlowGraph& cfg) {
    CostModel m;
    m.block_cost.assign(cfg.block_count(), 0.0);
    m.loop_entry_cost.assign(cfg.loops().size(), 0.0);
    return m;
  }
};

/// Fault-free time model (cycles): every fetch costs hit_latency; each
/// always-miss / not-classified reference adds miss_penalty per execution;
/// each first-miss reference adds miss_penalty per entry of its scope.
CostModel build_time_cost_model(const ControlFlowGraph& cfg,
                                const ReferenceMap& refs,
                                const ClassificationMap& classification,
                                const CacheConfig& config);

/// How the degraded set serves references when *all* its ways are faulty.
enum class FullFaultSemantics {
  kUnprotected,  ///< every fetch misses: k(r) misses per execution (kNone)
  kSrb,          ///< 0 misses if SRB-always-hit, else 1 per execution
};

/// Delta-miss model for `FMM[set][faulty_ways]` (unit: misses).
///
/// For every reference mapping to `set`, adds the miss expression under the
/// degraded classification and subtracts the fault-free miss expression —
/// the exact terms the corresponding IPET objectives use, so that
/// WCET_faulty(P) <= WCET_ff + penalty * delta(P) holds path-wise.
///
/// `faulty` must be the analysis of the same set at associativity W - f for
/// f < W; for f == W pass nullptr and choose the semantics (`kUnprotected`
/// counts every fetch, `kSrb` consults `srb_hits`).
CostModel build_delta_miss_model(const ControlFlowGraph& cfg,
                                 const ReferenceMap& refs, SetIndex set,
                                 const SetAnalysis& fault_free,
                                 const SetAnalysis* faulty,
                                 FullFaultSemantics semantics,
                                 const SrbHitMap* srb_hits);

/// Classification of every reference under a fault-free cache
/// (associativity W in every set).
ClassificationMap classify_fault_free(const ControlFlowGraph& cfg,
                                      const ReferenceMap& refs,
                                      const CacheConfig& config);

}  // namespace pwcet
