#include "wcet/cost_model.hpp"

#include "support/contracts.hpp"

namespace pwcet {
namespace {

/// Adds `amount` to the term matching one classified reference:
/// always-hit -> nothing; always-miss / not-classified -> per block
/// execution; first-miss -> per entry of its scope.
void add_miss_expression(CostModel& model, BlockId b, const RefClass& cls,
                         double amount) {
  switch (cls.chmc) {
    case Chmc::kAlwaysHit:
      return;
    case Chmc::kAlwaysMiss:
    case Chmc::kNotClassified:
      model.block_cost[size_t(b)] += amount;
      return;
    case Chmc::kFirstMiss:
      if (cls.scope == kNoLoop)
        model.root_entry_cost += amount;
      else
        model.loop_entry_cost[size_t(cls.scope)] += amount;
      return;
  }
}

}  // namespace

CostModel build_time_cost_model(const ControlFlowGraph& cfg,
                                const ReferenceMap& refs,
                                const ClassificationMap& classification,
                                const CacheConfig& config) {
  CostModel model = CostModel::zero(cfg);
  const auto hit = static_cast<double>(config.hit_latency);
  const auto miss = static_cast<double>(config.miss_penalty);
  for (const BasicBlock& block : cfg.blocks()) {
    const BlockId b = block.id;
    model.block_cost[size_t(b)] +=
        hit * static_cast<double>(block.instruction_count);
    const auto& block_refs = refs[size_t(b)];
    for (std::size_t i = 0; i < block_refs.size(); ++i)
      add_miss_expression(model, b, classification[size_t(b)][i], miss);
  }
  return model;
}

CostModel build_delta_miss_model(const ControlFlowGraph& cfg,
                                 const ReferenceMap& refs, SetIndex set,
                                 const SetAnalysis& fault_free,
                                 const SetAnalysis* faulty,
                                 FullFaultSemantics semantics,
                                 const SrbHitMap* srb_hits) {
  PWCET_EXPECTS(fault_free.set() == set);
  if (faulty != nullptr) PWCET_EXPECTS(faulty->set() == set);
  if (semantics == FullFaultSemantics::kSrb && faulty == nullptr)
    PWCET_EXPECTS(srb_hits != nullptr);

  CostModel model = CostModel::zero(cfg);
  for (const BasicBlock& block : cfg.blocks()) {
    const BlockId b = block.id;
    const auto& block_refs = refs[size_t(b)];
    for (std::size_t i = 0; i < block_refs.size(); ++i) {
      const LineRef& r = block_refs[i];
      if (r.set != set) continue;

      // Faulty-side misses (positive terms).
      if (faulty != nullptr) {
        // Partially degraded set: line granularity (spatial hits survive).
        add_miss_expression(model, b, faulty->classification(b, i), 1.0);
      } else if (semantics == FullFaultSemantics::kUnprotected) {
        // Fully faulty, no protection: every fetch of the reference misses.
        model.block_cost[size_t(b)] += static_cast<double>(r.fetches);
      } else {
        // Fully faulty with SRB: at most one miss per execution; none if
        // the SRB analysis guarantees the hit.
        if (!(*srb_hits)[size_t(b)][i]) model.block_cost[size_t(b)] += 1.0;
      }

      // Fault-free-side misses (negative terms — the exact expression the
      // fault-free IPET charged for this reference).
      add_miss_expression(model, b, fault_free.classification(b, i), -1.0);
    }
  }
  return model;
}

ClassificationMap classify_fault_free(const ControlFlowGraph& cfg,
                                      const ReferenceMap& refs,
                                      const CacheConfig& config) {
  ClassificationMap out(cfg.block_count());
  for (std::size_t b = 0; b < cfg.block_count(); ++b)
    out[b].assign(refs[b].size(), RefClass{});
  for (SetIndex s = 0; s < config.sets; ++s) {
    const SetAnalysis analysis(cfg, refs, s, config.ways);
    for (const BasicBlock& block : cfg.blocks()) {
      const auto& block_refs = refs[size_t(block.id)];
      for (std::size_t i = 0; i < block_refs.size(); ++i)
        if (block_refs[i].set == s)
          out[size_t(block.id)][i] = analysis.classification(block.id, i);
    }
  }
  return out;
}

}  // namespace pwcet
