// Structural (loop-tree) WCET engine.
//
// Computes max_path(cost) bottom-up over the structure tree: leaves cost
// their block, sequences add, alternatives take the max, and a loop entered
// once costs  entry_cost(l) + (bound+1)*header + bound*body.  For the
// reducible, structurally built CFGs of this repository the result equals
// the exact IPET optimum (asserted by the test suite); the engine also
// extracts an argmax block path used by the simulator and the MBPTA
// pipeline, and serves as a fast exact FMM backend.
#pragma once

#include <vector>

#include "cfg/program.hpp"
#include "wcet/cost_model.hpp"

namespace pwcet {

/// Maximum total cost over all structurally valid paths (including
/// root_entry_cost).
double tree_maximize(const Program& program, const CostModel& model);

/// An argmax path of `tree_maximize` as a concrete block sequence
/// (branches pick the costlier arm; loops run to their bound).
std::vector<BlockId> tree_worst_path(const Program& program,
                                     const CostModel& model);

}  // namespace pwcet
