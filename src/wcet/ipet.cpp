#include "wcet/ipet.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace pwcet {

IpetCalculator::IpetCalculator(const Program& program) : program_(program) {
  const ControlFlowGraph& cfg = program.cfg();

  edge_var_.resize(cfg.edge_count());
  for (const CfgEdge& e : cfg.edges()) {
    // Built via += (not "e" + to_string): g++ 12's -Wrestrict misfires on
    // the literal+temporary operator+ chain at -O2 (GCC PR105329), and the
    // CI warnings-as-errors job builds Release.
    std::string name = "e";
    name += std::to_string(e.id);
    edge_var_[size_t(e.id)] = lp_.add_variable(name, /*integral=*/true);
  }
  virtual_entry_ = lp_.add_variable("entry", /*integral=*/true);

  // Virtual entry executes exactly once.
  {
    LinearConstraint c;
    c.terms = {{virtual_entry_, 1.0}};
    c.sense = ConstraintSense::kEq;
    c.rhs = 1.0;
    lp_.add_constraint(std::move(c));
  }

  // Flow conservation: in-flow == out-flow for every block; the entry block
  // receives the virtual edge, the exit block emits an implicit edge whose
  // count equals the virtual entry (single run).
  for (const BasicBlock& b : cfg.blocks()) {
    LinearConstraint c;
    for (EdgeId e : b.in_edges) c.terms.push_back({edge_var_[size_t(e)], 1.0});
    if (b.id == cfg.entry()) c.terms.push_back({virtual_entry_, 1.0});
    for (EdgeId e : b.out_edges)
      c.terms.push_back({edge_var_[size_t(e)], -1.0});
    if (b.id == cfg.exit()) c.terms.push_back({virtual_entry_, -1.0});
    c.sense = ConstraintSense::kEq;
    c.rhs = 0.0;
    lp_.add_constraint(std::move(c));
  }

  // Loop bounds: sum(back edges) <= bound * sum(entry edges).
  for (const LoopInfo& loop : cfg.loops()) {
    LinearConstraint c;
    for (EdgeId e : loop.back_edges)
      c.terms.push_back({edge_var_[size_t(e)], 1.0});
    for (EdgeId e : loop.entry_edges)
      c.terms.push_back(
          {edge_var_[size_t(e)], -static_cast<double>(loop.bound)});
    c.sense = ConstraintSense::kLe;
    c.rhs = 0.0;
    lp_.add_constraint(std::move(c));
  }

  solver_ = std::make_unique<SimplexSolver>(lp_);
  PWCET_ASSERT(solver_->feasible());
}

std::vector<double> IpetCalculator::objective_vector(
    const CostModel& model) const {
  const ControlFlowGraph& cfg = program_.cfg();
  std::vector<double> obj(lp_.variable_count(), 0.0);

  // Block costs attach to every in-edge of the block (x_b == sum of
  // in-edges, incl. the virtual edge for the entry block).
  for (const BasicBlock& b : cfg.blocks()) {
    const double cost = model.block_cost[size_t(b.id)];
    if (cost == 0.0) continue;
    for (EdgeId e : b.in_edges) obj[size_t(edge_var_[size_t(e)])] += cost;
    if (b.id == cfg.entry()) obj[size_t(virtual_entry_)] += cost;
  }
  // First-miss entry terms attach to the loop entry edges.
  for (const LoopInfo& loop : cfg.loops()) {
    const double cost = model.loop_entry_cost[size_t(loop.id)];
    if (cost == 0.0) continue;
    for (EdgeId e : loop.entry_edges)
      obj[size_t(edge_var_[size_t(e)])] += cost;
  }
  // Whole-program-scope cost rides on the virtual entry (count 1).
  obj[size_t(virtual_entry_)] += model.root_entry_cost;
  return obj;
}

IpetSolution IpetCalculator::from_values(const CostModel& model,
                                         const std::vector<double>& values,
                                         double objective) const {
  const ControlFlowGraph& cfg = program_.cfg();
  IpetSolution sol;
  sol.objective = objective;
  sol.edge_counts.resize(cfg.edge_count());
  for (const CfgEdge& e : cfg.edges())
    sol.edge_counts[size_t(e.id)] = values[size_t(edge_var_[size_t(e.id)])];
  sol.block_counts.assign(cfg.block_count(), 0.0);
  for (const BasicBlock& b : cfg.blocks()) {
    double count = 0.0;
    for (EdgeId e : b.in_edges) count += sol.edge_counts[size_t(e)];
    if (b.id == cfg.entry()) count += 1.0;
    sol.block_counts[size_t(b.id)] = count;
  }
  (void)model;
  return sol;
}

IpetSolution IpetCalculator::maximize(const CostModel& model) {
  const auto obj = objective_vector(model);
  const LpSolution lp_sol = solver_->reoptimize(obj);
  PWCET_ASSERT(lp_sol.status == SolveStatus::kOptimal);
  return from_values(model, lp_sol.values, lp_sol.objective);
}

IpetSolution IpetCalculator::maximize_exact(const CostModel& model) const {
  LinearProgram lp = lp_;
  lp.set_objective_vector(objective_vector(model));
  const LpSolution sol = solve_ilp(lp);
  PWCET_ASSERT(sol.status == SolveStatus::kOptimal);
  IpetSolution out = from_values(model, sol.values, sol.objective);
  return out;
}

}  // namespace pwcet
