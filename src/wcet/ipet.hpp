// IPET (Implicit Path Enumeration Technique) WCET calculation (paper
// §II-B.2, Li & Malik).
//
// Variables are CFG edge execution counts plus one virtual entry edge fixed
// to 1. Constraints: flow conservation per block and one loop-bound
// constraint per loop (sum of back edges <= bound * sum of entry edges).
// The constraint system is built once per program; each cost model is then
// maximized by re-optimizing the shared simplex tableau (one phase-1 per
// program, one phase-2 per objective) — the moral equivalent of handing
// CPLEX a sequence of objectives over one model.
#pragma once

#include <memory>
#include <vector>

#include "cfg/program.hpp"
#include "ilp/ilp_solver.hpp"
#include "ilp/simplex.hpp"
#include "wcet/cost_model.hpp"

namespace pwcet {

/// Result of one IPET maximization.
struct IpetSolution {
  double objective = 0.0;               ///< incl. root entry cost
  std::vector<double> edge_counts;      ///< per CFG edge
  std::vector<double> block_counts;     ///< derived per block
};

class IpetCalculator {
 public:
  explicit IpetCalculator(const Program& program);

  /// Maximizes the cost model over all feasible flows. The LP relaxation
  /// optimum is returned: a sound upper bound on the integer optimum, and
  /// exact whenever the relaxation is integral (the common case for IPET;
  /// the test suite cross-checks against the exact loop-tree engine).
  IpetSolution maximize(const CostModel& model);

  /// Exact integer solve (fresh branch-and-bound; no warm start). Used by
  /// tests and available for certification-grade runs.
  IpetSolution maximize_exact(const CostModel& model) const;

  const LinearProgram& linear_program() const { return lp_; }

 private:
  std::vector<double> objective_vector(const CostModel& model) const;
  IpetSolution from_values(const CostModel& model,
                           const std::vector<double>& values,
                           double objective) const;

  const Program& program_;
  LinearProgram lp_;
  std::unique_ptr<SimplexSolver> solver_;
  VarId virtual_entry_ = -1;
  // lp variable id of each CFG edge (edge id == index).
  std::vector<VarId> edge_var_;
};

}  // namespace pwcet
