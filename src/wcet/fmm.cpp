#include "wcet/fmm.hpp"

#include <algorithm>
#include <cmath>

#include "engine/thread_pool.hpp"
#include "icache/set_analysis.hpp"
#include "icache/srb_analysis.hpp"
#include "store/analysis_store.hpp"
#include "support/contracts.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {
namespace {

double maximize_delta(const Program& program, const CostModel& model,
                      WcetEngine engine, IpetCalculator* ipet) {
  double value = 0.0;
  if (engine == WcetEngine::kIlp) {
    PWCET_EXPECTS(ipet != nullptr);
    value = ipet->maximize(model).objective;
  } else {
    value = tree_maximize(program, model);
  }
  // The maximum is usually >= 0 (degrading a set only adds misses), but it
  // can be genuinely negative in scope-mismatch corner cases: a reference
  // whose fault-free classification is first-miss in an OUTER loop and
  // whose degraded classification is first-miss in an inner loop reachable
  // only through a conditional arm. There, every path's
  // (degraded - fault-free) expression can be below zero because the
  // fault-free IPET over-charges those paths even more than the degraded
  // one. Clamping to zero is sound either way:
  //   time_faulty(P) <= base(P) + penalty*faulty_expr(P)
  //                  <= WCET_ff + penalty*max(0, max_Q delta(Q)).
  return std::max(0.0, value);
}

/// True if no reference of the program maps to `set` (its FMM row is 0).
bool set_unused(const ReferenceMap& refs, SetIndex set) {
  for (const auto& block_refs : refs)
    for (const LineRef& r : block_refs)
      if (r.set == set) return false;
  return true;
}

/// Raises entries so each row is non-decreasing in f over [1, last]
/// (monotonicity holds mathematically; this absorbs LP round-off and is in
/// the conservative direction).
void enforce_row_monotonicity(std::vector<double>& row, std::uint32_t last) {
  for (std::uint32_t f = 2; f <= last; ++f)
    row[size_t(f)] = std::max(row[size_t(f)], row[size_t(f - 1)]);
}

/// FMM rows of one set for all three mechanisms.
struct SetRows {
  std::vector<double> none, rw, srb;
};

/// Computes the three FMM rows of set `s`. Pure in (program, config, refs,
/// srb_hits) apart from the engine: the tree engine is stateless and may
/// run concurrently for different sets; the ILP engine mutates `ipet`.
SetRows compute_set_rows(const Program& program, const CacheConfig& config,
                         const ReferenceMap& refs, const SrbHitMap& srb_hits,
                         SetIndex s, WcetEngine engine,
                         IpetCalculator* ipet) {
  const ControlFlowGraph& cfg = program.cfg();
  const std::uint32_t ways = config.ways;
  SetRows rows{std::vector<double>(ways + 1, 0.0),
               std::vector<double>(ways + 1, 0.0),
               std::vector<double>(ways + 1, 0.0)};
  if (set_unused(refs, s)) return rows;  // all-zero rows

  const SetAnalysis fault_free(cfg, refs, s, ways);

  // Shared partial-fault columns f = 1 .. W-1 (line granularity).
  for (std::uint32_t f = 1; f < ways; ++f) {
    const SetAnalysis degraded(cfg, refs, s, ways - f);
    const CostModel model =
        build_delta_miss_model(cfg, refs, s, fault_free, &degraded,
                               FullFaultSemantics::kUnprotected, nullptr);
    const double bound = maximize_delta(program, model, engine, ipet);
    rows.none[size_t(f)] = bound;
    rows.rw[size_t(f)] = bound;
    rows.srb[size_t(f)] = bound;
  }

  // f == W, no protection: every fetch of the set misses.
  {
    const CostModel model =
        build_delta_miss_model(cfg, refs, s, fault_free, nullptr,
                               FullFaultSemantics::kUnprotected, nullptr);
    rows.none[size_t(ways)] = maximize_delta(program, model, engine, ipet);
  }
  // f == W, SRB: SRB-always-hit references removed (§III-B.2).
  {
    const CostModel model =
        build_delta_miss_model(cfg, refs, s, fault_free, nullptr,
                               FullFaultSemantics::kSrb, &srb_hits);
    rows.srb[size_t(ways)] = maximize_delta(program, model, engine, ipet);
  }
  // f == W, RW: unreachable (Eq. 3); the column stays 0 and is never
  // weighted (the RW pwf vector has no f == W entry).

  enforce_row_monotonicity(rows.none, ways);
  enforce_row_monotonicity(rows.rw, ways - 1);
  enforce_row_monotonicity(rows.srb, ways);
  return rows;
}

}  // namespace

FmmBundle compute_fmm_bundle(const Program& program,
                             const CacheConfig& config,
                             const ReferenceMap& refs, WcetEngine engine,
                             IpetCalculator* ipet, ThreadPool* pool,
                             AnalysisStore* store,
                             const StoreKey* row_key_prefix) {
  config.validate();
  const ControlFlowGraph& cfg = program.cfg();

  const SrbHitMap srb_hits = analyze_srb(cfg, refs);

  // Tree-engine rows are pure in (program, config, set), so they memoize
  // per set; see the header for why the ILP engine must not. This tier is
  // only probed while (re)computing a whole bundle — a bundle-level memo
  // hit at the analyzer-core layer short-circuits before reaching it —
  // so its job is recovery: concurrent constructions of the same core
  // share rows as they finish, and when the (large) bundle entry is
  // evicted from its LRU shard, row entries surviving in *their* shards
  // make the recomputation cheap. Unused sets are excluded: their
  // all-zero rows cost one reference scan, not an engine run, and
  // memoizing one entry per empty set would only crowd the cache.
  const bool memo_rows = store != nullptr && row_key_prefix != nullptr &&
                         engine == WcetEngine::kTree;
  auto set_rows = [&](SetIndex s, IpetCalculator* set_ipet) {
    if (!memo_rows || set_unused(refs, s))
      return compute_set_rows(program, config, refs, srb_hits, s, engine,
                              set_ipet);
    const StoreKey key =
        KeyHasher("fmm-rows-v1").mix_key(*row_key_prefix).mix_u64(s).finish();
    return *store->memo().get_or_compute<SetRows>(
        key,
        [&] {
          return compute_set_rows(program, config, refs, srb_hits, s, engine,
                                  set_ipet);
        },
        "fmm-rows");
  };

  std::vector<SetRows> rows;
  if (pool != nullptr && engine == WcetEngine::kTree) {
    // Warm the CFG's lazily built loop cache before sharing it read-only
    // across pool threads (the build is not synchronized).
    if (cfg.block_count() > 0) cfg.innermost_loop(cfg.entry());
    rows = pool->map_indexed(config.sets, [&](std::size_t s) {
      return set_rows(static_cast<SetIndex>(s), nullptr);
    });
  } else {
    rows.reserve(config.sets);
    for (SetIndex s = 0; s < config.sets; ++s)
      rows.push_back(set_rows(s, ipet));
  }

  FmmBundle bundle;
  bundle.none.misses.reserve(config.sets);
  bundle.rw.misses.reserve(config.sets);
  bundle.srb.misses.reserve(config.sets);
  for (SetRows& r : rows) {
    bundle.none.misses.push_back(std::move(r.none));
    bundle.rw.misses.push_back(std::move(r.rw));
    bundle.srb.misses.push_back(std::move(r.srb));
  }
  return bundle;
}

FaultMissMap compute_fmm(const Program& program, const CacheConfig& config,
                         const ReferenceMap& refs, Mechanism mechanism,
                         WcetEngine engine, IpetCalculator* ipet,
                         ThreadPool* pool) {
  return compute_fmm_bundle(program, config, refs, engine, ipet, pool)
      .of(mechanism);
}

}  // namespace pwcet
