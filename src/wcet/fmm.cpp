#include "wcet/fmm.hpp"

#include <algorithm>
#include <cmath>

#include "icache/set_analysis.hpp"
#include "icache/srb_analysis.hpp"
#include "support/contracts.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {
namespace {

double maximize_delta(const Program& program, const CostModel& model,
                      WcetEngine engine, IpetCalculator* ipet) {
  double value = 0.0;
  if (engine == WcetEngine::kIlp) {
    PWCET_EXPECTS(ipet != nullptr);
    value = ipet->maximize(model).objective;
  } else {
    value = tree_maximize(program, model);
  }
  // The maximum is usually >= 0 (degrading a set only adds misses), but it
  // can be genuinely negative in scope-mismatch corner cases: a reference
  // whose fault-free classification is first-miss in an OUTER loop and
  // whose degraded classification is first-miss in an inner loop reachable
  // only through a conditional arm. There, every path's
  // (degraded - fault-free) expression can be below zero because the
  // fault-free IPET over-charges those paths even more than the degraded
  // one. Clamping to zero is sound either way:
  //   time_faulty(P) <= base(P) + penalty*faulty_expr(P)
  //                  <= WCET_ff + penalty*max(0, max_Q delta(Q)).
  return std::max(0.0, value);
}

/// True if no reference of the program maps to `set` (its FMM row is 0).
bool set_unused(const ReferenceMap& refs, SetIndex set) {
  for (const auto& block_refs : refs)
    for (const LineRef& r : block_refs)
      if (r.set == set) return false;
  return true;
}

/// Raises entries so each row is non-decreasing in f over [1, last]
/// (monotonicity holds mathematically; this absorbs LP round-off and is in
/// the conservative direction).
void enforce_row_monotonicity(std::vector<double>& row, std::uint32_t last) {
  for (std::uint32_t f = 2; f <= last; ++f)
    row[size_t(f)] = std::max(row[size_t(f)], row[size_t(f - 1)]);
}

}  // namespace

FmmBundle compute_fmm_bundle(const Program& program,
                             const CacheConfig& config,
                             const ReferenceMap& refs, WcetEngine engine,
                             IpetCalculator* ipet) {
  config.validate();
  const ControlFlowGraph& cfg = program.cfg();
  const std::uint32_t ways = config.ways;

  auto empty_map = [&] {
    FaultMissMap m;
    m.misses.assign(config.sets, std::vector<double>(ways + 1, 0.0));
    return m;
  };
  FmmBundle bundle{empty_map(), empty_map(), empty_map()};

  const SrbHitMap srb_hits = analyze_srb(cfg, refs);

  for (SetIndex s = 0; s < config.sets; ++s) {
    if (set_unused(refs, s)) continue;  // all-zero row

    const SetAnalysis fault_free(cfg, refs, s, ways);

    // Shared partial-fault columns f = 1 .. W-1 (line granularity).
    for (std::uint32_t f = 1; f < ways; ++f) {
      const SetAnalysis degraded(cfg, refs, s, ways - f);
      const CostModel model = build_delta_miss_model(
          cfg, refs, s, fault_free, &degraded,
          FullFaultSemantics::kUnprotected, nullptr);
      const double bound = maximize_delta(program, model, engine, ipet);
      bundle.none.misses[size_t(s)][size_t(f)] = bound;
      bundle.rw.misses[size_t(s)][size_t(f)] = bound;
      bundle.srb.misses[size_t(s)][size_t(f)] = bound;
    }

    // f == W, no protection: every fetch of the set misses.
    {
      const CostModel model = build_delta_miss_model(
          cfg, refs, s, fault_free, nullptr,
          FullFaultSemantics::kUnprotected, nullptr);
      bundle.none.misses[size_t(s)][size_t(ways)] =
          maximize_delta(program, model, engine, ipet);
    }
    // f == W, SRB: SRB-always-hit references removed (§III-B.2).
    {
      const CostModel model =
          build_delta_miss_model(cfg, refs, s, fault_free, nullptr,
                                 FullFaultSemantics::kSrb, &srb_hits);
      bundle.srb.misses[size_t(s)][size_t(ways)] =
          maximize_delta(program, model, engine, ipet);
    }
    // f == W, RW: unreachable (Eq. 3); the column stays 0 and is never
    // weighted (the RW pwf vector has no f == W entry).

    enforce_row_monotonicity(bundle.none.misses[size_t(s)], ways);
    enforce_row_monotonicity(bundle.rw.misses[size_t(s)], ways - 1);
    enforce_row_monotonicity(bundle.srb.misses[size_t(s)], ways);
  }
  return bundle;
}

FaultMissMap compute_fmm(const Program& program, const CacheConfig& config,
                         const ReferenceMap& refs, Mechanism mechanism,
                         WcetEngine engine, IpetCalculator* ipet) {
  return compute_fmm_bundle(program, config, refs, engine, ipet).of(mechanism);
}

}  // namespace pwcet
