#include "wcet/fmm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>

#include "engine/thread_pool.hpp"
#include "icache/set_analysis.hpp"
#include "icache/srb_analysis.hpp"
#include "store/analysis_store.hpp"
#include "support/contracts.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {
namespace {

/// Escape hatch: PWCET_FMM_DEDUP=0 disables the signature dedup below
/// (A/B debugging, and the reference-equivalence test that pins dedup and
/// non-dedup bundles bitwise). Read per call, not cached, so in-process
/// tests can flip it with setenv.
bool fmm_dedup_enabled() {
  const char* env = std::getenv("PWCET_FMM_DEDUP");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

double maximize_delta(const Program& program, const CostModel& model,
                      WcetEngine engine, IpetCalculator* ipet) {
  double value = 0.0;
  if (engine == WcetEngine::kIlp) {
    PWCET_EXPECTS(ipet != nullptr);
    value = ipet->maximize(model).objective;
  } else {
    value = tree_maximize(program, model);
  }
  // The maximum is usually >= 0 (degrading a set only adds misses), but it
  // can be genuinely negative in scope-mismatch corner cases: a reference
  // whose fault-free classification is first-miss in an OUTER loop and
  // whose degraded classification is first-miss in an inner loop reachable
  // only through a conditional arm. There, every path's
  // (degraded - fault-free) expression can be below zero because the
  // fault-free IPET over-charges those paths even more than the degraded
  // one. Clamping to zero is sound either way:
  //   time_faulty(P) <= base(P) + penalty*faulty_expr(P)
  //                  <= WCET_ff + penalty*max(0, max_Q delta(Q)).
  return std::max(0.0, value);
}

/// Canonical reference signature of one set: the set's reference stream in
/// block-major order, each reference flattened to (block, first-occurrence
/// ordinal of its line within the stream, fetches, SRB-always-hit bit).
/// Everything the per-set row computation consumes is a function of this
/// signature: SetAnalysis touches line addresses only through equality
/// (Must/May abstract states and distinct-line counts), and
/// build_delta_miss_model reads only (block, classification, fetches, SRB
/// bit) — so equal signatures imply bit-identical cost models, built by the
/// identical sequence of identical floating-point adds, and hence
/// bit-identical rows. Two sets whose streams differ only in which concrete
/// lines they touch (the common case for straight-line code spread across a
/// cache) therefore share one row computation.
using SetSignature = std::vector<std::uint64_t>;

/// One pass over the reference map builds every set's signature (and, as a
/// byproduct, identifies unused sets: empty signature). Replaces the old
/// per-set "is this set unused" scans, which walked the whole map once per
/// set.
std::vector<SetSignature> build_set_signatures(const ReferenceMap& refs,
                                               const SrbHitMap& srb_hits,
                                               std::uint32_t sets) {
  std::vector<SetSignature> signatures(sets);
  // Per set: line -> ordinal of its first occurrence in the set's stream.
  std::vector<std::map<LineAddress, std::uint64_t>> ordinals(sets);
  for (std::size_t b = 0; b < refs.size(); ++b) {
    for (std::size_t i = 0; i < refs[b].size(); ++i) {
      const LineRef& r = refs[b][i];
      auto& ord = ordinals[r.set];
      const auto [it, inserted] = ord.emplace(r.line, ord.size());
      SetSignature& sig = signatures[r.set];
      sig.push_back(b);
      sig.push_back(it->second);
      sig.push_back(r.fetches);
      sig.push_back(srb_hits[b][i]);
    }
  }
  return signatures;
}

/// Raises entries so each row is non-decreasing in f over [1, last]
/// (monotonicity holds mathematically; this absorbs LP round-off and is in
/// the conservative direction).
void enforce_row_monotonicity(std::vector<double>& row, std::uint32_t last) {
  for (std::uint32_t f = 2; f <= last; ++f)
    row[size_t(f)] = std::max(row[size_t(f)], row[size_t(f - 1)]);
}

/// FMM rows of one set for all three mechanisms.
struct SetRows {
  std::vector<double> none, rw, srb;
};

SetRows zero_rows(std::uint32_t ways) {
  return SetRows{std::vector<double>(ways + 1, 0.0),
                 std::vector<double>(ways + 1, 0.0),
                 std::vector<double>(ways + 1, 0.0)};
}

/// The cost models of one set's row computation, in maximize order:
/// partial[f - 1] for f = 1..W-1, then the two full-fault objectives.
/// Pure in the set's signature (see SetSignature).
struct SetModels {
  std::vector<CostModel> partial;
  CostModel full_none;
  CostModel full_srb;
};

SetModels build_set_models(const Program& program, const CacheConfig& config,
                           const ReferenceMap& refs,
                           const SrbHitMap& srb_hits, SetIndex s) {
  const ControlFlowGraph& cfg = program.cfg();
  const std::uint32_t ways = config.ways;
  SetModels models;
  const SetAnalysis fault_free(cfg, refs, s, ways);

  // Shared partial-fault columns f = 1 .. W-1 (line granularity).
  models.partial.reserve(ways - 1);
  for (std::uint32_t f = 1; f < ways; ++f) {
    const SetAnalysis degraded(cfg, refs, s, ways - f);
    models.partial.push_back(
        build_delta_miss_model(cfg, refs, s, fault_free, &degraded,
                               FullFaultSemantics::kUnprotected, nullptr));
  }
  // f == W, no protection: every fetch of the set misses.
  models.full_none =
      build_delta_miss_model(cfg, refs, s, fault_free, nullptr,
                             FullFaultSemantics::kUnprotected, nullptr);
  // f == W, SRB: SRB-always-hit references removed (§III-B.2).
  models.full_srb =
      build_delta_miss_model(cfg, refs, s, fault_free, nullptr,
                             FullFaultSemantics::kSrb, &srb_hits);
  return models;
}

/// Maximizes the models into rows. The engine sees the exact objective
/// sequence of the pre-dedup code: f = 1..W-1, full none, full SRB.
/// (f == W RW is unreachable per Eq. 3; the column stays 0 and is never
/// weighted — the RW pwf vector has no f == W entry.)
SetRows rows_from_models(const Program& program, const SetModels& models,
                         std::uint32_t ways, WcetEngine engine,
                         IpetCalculator* ipet) {
  SetRows rows = zero_rows(ways);
  for (std::uint32_t f = 1; f < ways; ++f) {
    const double bound =
        maximize_delta(program, models.partial[size_t(f - 1)], engine, ipet);
    rows.none[size_t(f)] = bound;
    rows.rw[size_t(f)] = bound;
    rows.srb[size_t(f)] = bound;
  }
  rows.none[size_t(ways)] =
      maximize_delta(program, models.full_none, engine, ipet);
  rows.srb[size_t(ways)] =
      maximize_delta(program, models.full_srb, engine, ipet);

  enforce_row_monotonicity(rows.none, ways);
  enforce_row_monotonicity(rows.rw, ways - 1);
  enforce_row_monotonicity(rows.srb, ways);
  return rows;
}

/// Computes the three FMM rows of set `s` (which must be used). Pure in
/// (program, config, refs, srb_hits) apart from the engine: the tree
/// engine is stateless and may run concurrently for different sets; the
/// ILP engine mutates `ipet`.
SetRows compute_set_rows(const Program& program, const CacheConfig& config,
                         const ReferenceMap& refs, const SrbHitMap& srb_hits,
                         SetIndex s, WcetEngine engine,
                         IpetCalculator* ipet) {
  return rows_from_models(program,
                          build_set_models(program, config, refs, srb_hits, s),
                          config.ways, engine, ipet);
}

}  // namespace

FmmBundle compute_fmm_bundle(const Program& program,
                             const CacheConfig& config,
                             const ReferenceMap& refs, WcetEngine engine,
                             IpetCalculator* ipet, ThreadPool* pool,
                             AnalysisStore* store,
                             const StoreKey* row_key_prefix) {
  config.validate();
  const ControlFlowGraph& cfg = program.cfg();

  const SrbHitMap srb_hits = analyze_srb(cfg, refs);
  const std::vector<SetSignature> signatures =
      build_set_signatures(refs, srb_hits, config.sets);

  // Signature dedup: representative[s] is the lowest-indexed set with the
  // same signature; sets whose representative is another set skip their own
  // row computation. Tree rows are copied outright (tree_maximize is pure
  // in (program, model)). The ILP engine reuses the representative's cost
  // models but *replays every maximize() call*: skipping them would change
  // the shared simplex's warm-start sequence for the remaining objectives
  // and perturb LP round-off — with the replay, the call sequence and its
  // bit-identical inputs match the non-dedup run exactly, so the bundle
  // does too.
  const bool dedup = fmm_dedup_enabled();
  std::vector<SetIndex> representative(config.sets);
  std::vector<std::uint8_t> has_duplicate(config.sets, 0);
  {
    std::map<SetSignature, SetIndex> first_with;
    for (SetIndex s = 0; s < config.sets; ++s) {
      representative[s] = s;
      if (!dedup || signatures[size_t(s)].empty()) continue;
      const auto [it, inserted] = first_with.emplace(signatures[size_t(s)], s);
      representative[s] = it->second;
      if (!inserted) has_duplicate[size_t(it->second)] = 1;
    }
  }

  // Tree-engine rows are pure in (program, config, set), so they memoize
  // per set; see the header for why the ILP engine must not. This tier is
  // only probed while (re)computing a whole bundle — a bundle-level memo
  // hit at the analyzer-core layer short-circuits before reaching it —
  // so its job is recovery: concurrent constructions of the same core
  // share rows as they finish, and when the (large) bundle entry is
  // evicted from its LRU shard, row entries surviving in *their* shards
  // make the recomputation cheap. Unused sets are excluded: their
  // all-zero rows cost nothing, and memoizing one entry per empty set
  // would only crowd the cache. Duplicate sets are excluded too — they
  // copy their representative's rows and never probe.
  const bool memo_rows = store != nullptr && row_key_prefix != nullptr &&
                         engine == WcetEngine::kTree;
  auto set_rows = [&](SetIndex s, IpetCalculator* set_ipet) {
    if (!memo_rows)
      return compute_set_rows(program, config, refs, srb_hits, s, engine,
                              set_ipet);
    const StoreKey key =
        KeyHasher("fmm-rows-v1").mix_key(*row_key_prefix).mix_u64(s).finish();
    return *store->memo().get_or_compute<SetRows>(
        key,
        [&] {
          return compute_set_rows(program, config, refs, srb_hits, s, engine,
                                  set_ipet);
        },
        "fmm-rows");
  };

  std::vector<SetRows> rows;
  if (pool != nullptr && engine == WcetEngine::kTree) {
    // Warm the CFG's lazily built loop cache before sharing it read-only
    // across pool threads (the build is not synchronized).
    if (cfg.block_count() > 0) cfg.innermost_loop(cfg.entry());
    rows = pool->map_indexed(config.sets, [&](std::size_t s) {
      if (signatures[s].empty()) return zero_rows(config.ways);
      // A duplicate's representative may still be computing on another
      // worker; it is filled in after the barrier below.
      if (representative[s] != static_cast<SetIndex>(s)) return SetRows{};
      return set_rows(static_cast<SetIndex>(s), nullptr);
    });
    for (SetIndex s = 0; s < config.sets; ++s)
      if (representative[s] != s) rows[size_t(s)] = rows[size_t(representative[s])];
  } else {
    rows.reserve(config.sets);
    // ILP model reuse: a representative's models stay alive only while it
    // has duplicates left to serve.
    std::map<SetIndex, SetModels> models_by_rep;
    for (SetIndex s = 0; s < config.sets; ++s) {
      if (signatures[size_t(s)].empty()) {
        rows.push_back(zero_rows(config.ways));
        continue;
      }
      const SetIndex rep = representative[s];
      if (engine == WcetEngine::kTree) {
        rows.push_back(rep == s ? set_rows(s, ipet) : rows[size_t(rep)]);
        continue;
      }
      if (rep == s) {
        SetModels models =
            build_set_models(program, config, refs, srb_hits, s);
        rows.push_back(
            rows_from_models(program, models, config.ways, engine, ipet));
        if (has_duplicate[size_t(s)])
          models_by_rep.emplace(s, std::move(models));
      } else {
        rows.push_back(rows_from_models(program, models_by_rep.at(rep),
                                        config.ways, engine, ipet));
      }
    }
  }

  FmmBundle bundle;
  bundle.none.misses.reserve(config.sets);
  bundle.rw.misses.reserve(config.sets);
  bundle.srb.misses.reserve(config.sets);
  for (SetRows& r : rows) {
    bundle.none.misses.push_back(std::move(r.none));
    bundle.rw.misses.push_back(std::move(r.rw));
    bundle.srb.misses.push_back(std::move(r.srb));
  }
  return bundle;
}

FaultMissMap compute_fmm(const Program& program, const CacheConfig& config,
                         const ReferenceMap& refs, Mechanism mechanism,
                         WcetEngine engine, IpetCalculator* ipet,
                         ThreadPool* pool) {
  return compute_fmm_bundle(program, config, refs, engine, ipet, pool)
      .of(mechanism);
}

}  // namespace pwcet
