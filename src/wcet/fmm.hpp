// Fault Miss Map computation (paper §II-C, Fig. 1.a, and §III-B).
//
// FMM[s][f] upper-bounds the number of *fault-induced misses* when set s
// has f faulty (disabled) blocks, maximized over all feasible paths with an
// "ILP system close to IPET": the IPET constraint system with a delta-miss
// objective (misses under the degraded set minus the fault-free misses of
// the same references). Mechanisms change the f == W column only:
//   * no protection — every fetch of the set misses (spatial locality lost,
//     the catastrophic case motivating the paper);
//   * SRB — references classified always-hit by the SRB analysis are
//     removed (§III-B.2); the rest miss at most once per execution;
//   * RW  — the column is unreachable (Eq. 3 has no f == W point) and is
//     reported as 0 / unused.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/program.hpp"
#include "fault/fault_model.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/ipet.hpp"

namespace pwcet {

class AnalysisStore;
struct StoreKey;
class ThreadPool;

/// Which engine maximizes the delta objectives.
enum class WcetEngine : std::uint8_t {
  kIlp,   ///< IPET via the shared simplex (paper-faithful; LP bound)
  kTree,  ///< structural loop-tree engine (exact on structured CFGs, fast)
};

/// The fault miss map: misses[s][f], f = 0..W. Row entries are sound upper
/// bounds on fault-induced misses (unit: misses, not cycles).
struct FaultMissMap {
  std::vector<std::vector<double>> misses;

  double at(SetIndex s, std::uint32_t f) const {
    return misses[size_t(s)][size_t(f)];
  }
};

/// Computes the FMM for one mechanism.
///
/// The `ipet` calculator must belong to `program`; it is reused across all
/// (set, f) objectives (one phase-1 total). Pass nullptr with
/// `engine == kTree`.
///
/// With a `pool` and `engine == kTree`, the per-set rows (independent by
/// construction) are fanned out across the pool; results are identical to
/// the serial computation. The ILP engine always runs serially even with a
/// pool: its warm-started shared simplex is stateful, and fresh per-set
/// calculators would perturb LP round-off and break the byte-identity
/// guarantee between 1-thread and N-thread campaign runs.
///
/// With a `store` (store/analysis_store.hpp) and `engine == kTree`, each
/// used set's three rows are memoized under `row_key_prefix` (which must
/// cover program + config) chained with the set index — a recovery tier
/// for bundle recomputation (concurrent same-core constructions, shard
/// evictions of the bundle entry); a bundle-level memo hit never reaches
/// it. The ILP engine is *not* row-memoized on purpose: skipping some
/// maximize() calls would change the shared simplex's warm-start sequence
/// for the remaining ones and perturb LP round-off; ILP results are
/// instead cached all-or-nothing at the analyzer-core layer
/// (core/pwcet_analyzer.cpp), which preserves the exact call sequence on
/// every miss.
FaultMissMap compute_fmm(const Program& program, const CacheConfig& config,
                         const ReferenceMap& refs, Mechanism mechanism,
                         WcetEngine engine, IpetCalculator* ipet,
                         ThreadPool* pool = nullptr);

/// FMMs of all three mechanisms. The f < W columns are mechanism-
/// independent and computed once; only the f == W column differs
/// (none: per-fetch misses; SRB: SRB-analysis-filtered; RW: unreachable).
struct FmmBundle {
  FaultMissMap none;
  FaultMissMap rw;
  FaultMissMap srb;

  const FaultMissMap& of(Mechanism m) const {
    switch (m) {
      case Mechanism::kNone:
        return none;
      case Mechanism::kReliableWay:
        return rw;
      case Mechanism::kSharedReliableBuffer:
        return srb;
    }
    return none;
  }
};

FmmBundle compute_fmm_bundle(const Program& program,
                             const CacheConfig& config,
                             const ReferenceMap& refs, WcetEngine engine,
                             IpetCalculator* ipet, ThreadPool* pool = nullptr,
                             AnalysisStore* store = nullptr,
                             const StoreKey* row_key_prefix = nullptr);

}  // namespace pwcet
