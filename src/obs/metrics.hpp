/// \file
/// Process-wide metrics registry: named monotonic counters and duration
/// histograms, exportable as one deterministic-shaped JSON snapshot.
///
/// Same contracts as the tracer (obs/tracer.hpp): disabled by default and
/// a single relaxed atomic load when disabled; observation only, so every
/// campaign report is byte-identical with metrics on or off; thread-safe
/// (counters and histogram buckets are atomics, the name index is behind
/// a shared mutex and instruments are never removed, so returned
/// references stay valid for the registry's lifetime).
///
/// Naming convention (the full taxonomy lives in docs/observability.md):
/// dot-separated lowercase paths, coarse-to-fine —
/// `store.memo.<layer>.hits`, `engine.pool.steals`, `phase.convolve`.
/// *Counter* values for a fixed spec at one thread with a cold store are
/// deterministic (they count structural events: jobs, memo lookups,
/// pool tasks); histogram *durations* of course are not — consumers that
/// diff snapshots compare the counters section only.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pwcet::obs {

/// Monotonic counter. Additions are relaxed atomics: totals are exact,
/// cross-counter ordering is not promised.
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Duration histogram over nanoseconds: count/sum/min/max plus
/// power-of-two buckets (bucket i counts samples with bit_width(ns) == i,
/// i.e. ns in [2^(i-1), 2^i)), which spans 1 ns to ~584 years in 64
/// buckets — no configuration, no unbounded memory.
class DurationHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe_ns(std::uint64_t ns);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t min_ns = 0;  ///< 0 when count == 0
    std::uint64_t max_ns = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
    /// the power-of-two bucket holding the target rank, clamped to the
    /// exact [min_ns, max_ns] envelope (so a single-valued histogram
    /// returns that value exactly, and q=0 / q=1 return min / max).
    /// 0 when the histogram is empty. This is what the JSON snapshot's
    /// derived p50_ns/p90_ns/p99_ns fields, the --profile table and
    /// bench reports surface instead of raw bucket arrays.
    double quantile_ns(double q) const;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumentation site records into.
  static MetricsRegistry& instance();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Named instruments, created on first use. References stay valid for
  /// the registry's lifetime (instruments are never removed; clear() only
  /// zeroes values), so hot sites may cache them.
  Counter& counter(const std::string& name);
  DurationHistogram& histogram(const std::string& name);

  /// Enabled-gated convenience recorders — the form instrumentation
  /// sites use: a disabled registry costs one relaxed load, nothing else.
  void add(const char* name, std::uint64_t delta = 1) {
    if (enabled()) counter(name).add(delta);
  }
  void add(const std::string& name, std::uint64_t delta = 1) {
    if (enabled()) counter(name).add(delta);
  }
  void observe_ns(const char* name, std::uint64_t ns) {
    if (enabled()) histogram(name).observe_ns(ns);
  }

  /// All counters / histograms, sorted by name (deterministic order).
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  struct NamedHistogram {
    std::string name;
    DurationHistogram::Snapshot snapshot;
  };
  std::vector<NamedHistogram> histograms() const;

  /// One JSON document:
  /// `{"counters":{name:value,...},"histograms":{name:{"count":..,
  /// "sum_ns":..,"min_ns":..,"max_ns":..,"mean_ns":..,
  /// "buckets":[{"le_ns":..,"count":..},...]},...}}`
  /// Names sorted; only non-empty buckets are listed. Counter values are
  /// deterministic for a fixed single-threaded cold-store run; durations
  /// are wall-clock and are not.
  std::string json_snapshot() const;

  /// Writes json_snapshot() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Zeroes every instrument (names and references survive).
  void clear();

 private:
  MetricsRegistry() = default;

  std::atomic<bool> enabled_{false};
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<DurationHistogram>> histograms_;
};

/// Bumps `store.<...>` counters without the call site spelling the full
/// path: `count_store(\"memo\", layer, \"hits\")` →
/// `store.memo.<layer>.hits`. Builds the name only when enabled.
void count_store(std::string_view tier, std::string_view layer,
                 std::string_view event, std::uint64_t delta = 1);

}  // namespace pwcet::obs
