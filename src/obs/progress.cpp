#include "obs/progress.hpp"

#include <cstdio>
#include <ostream>
#include <string>

namespace pwcet::obs {

namespace {
constexpr auto kRenderInterval = std::chrono::milliseconds(100);
}  // namespace

ProgressMeter::ProgressMeter(std::size_t total, std::ostream& out,
                             bool enabled)
    : total_(total),
      enabled_(enabled && total > 0),
      out_(out),
      started_(std::chrono::steady_clock::now()),
      last_render_(started_ - kRenderInterval) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::job_finished() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (done_ < total_) ++done_;
  if (!enabled_) return;
  const auto now = std::chrono::steady_clock::now();
  if (done_ < total_ && now - last_render_ < kRenderInterval) return;
  last_render_ = now;
  render(done_);
}

void ProgressMeter::render(std::size_t done) {
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started_)
                           .count();
  const double eta =
      done == 0 ? 0.0
                : elapsed * static_cast<double>(total_ - done) /
                      static_cast<double>(done);
  char buffer[96];
  const int written = std::snprintf(
      buffer, sizeof buffer, "  %zu/%zu cells (%3.0f%%) ETA %.1fs", done,
      total_, 100.0 * static_cast<double>(done) / static_cast<double>(total_),
      eta);
  std::string line(buffer, written > 0 ? static_cast<std::size_t>(written) : 0);
  // Pad with spaces so a shrinking line fully overwrites the previous one.
  while (line.size() < rendered_chars_) line += ' ';
  rendered_chars_ = line.size();
  out_ << '\r' << line << std::flush;
}

void ProgressMeter::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  enabled_ = false;
  if (rendered_chars_ == 0) return;
  out_ << '\r' << std::string(rendered_chars_, ' ') << '\r' << std::flush;
  rendered_chars_ = 0;
}

}  // namespace pwcet::obs
