#include "obs/progress.hpp"

#include <cstdio>
#include <ostream>
#include <string>

namespace pwcet::obs {

namespace {
constexpr auto kRenderInterval = std::chrono::milliseconds(100);
}  // namespace

ProgressMeter::ProgressMeter(std::size_t total, std::ostream& out,
                             bool enabled)
    : total_(total),
      enabled_(enabled && total > 0),
      out_(out),
      started_(std::chrono::steady_clock::now()),
      last_render_(started_ - kRenderInterval) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::job_finished() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (done_ < total_) ++done_;
  if (done_ == 1) first_done_ = std::chrono::steady_clock::now();
  if (!enabled_) return;
  const auto now = std::chrono::steady_clock::now();
  if (done_ < total_ && now - last_render_ < kRenderInterval) return;
  last_render_ = now;
  render(done_);
}

void ProgressMeter::render(std::size_t done) {
  // ETA from the completion rate *after* the first finished job: elapsed
  // startup time (spec load, pool spin-up) would otherwise inflate every
  // early estimate, and a warm sub-millisecond run could render garbage
  // from a near-zero elapsed divided into a large remainder. Until a
  // second job lands there is no rate to extrapolate — show "--".
  char eta_text[32] = "--";
  if (done >= total_) {
    std::snprintf(eta_text, sizeof eta_text, "%.1fs", 0.0);
  } else if (done > 1) {
    const double since_first = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   first_done_)
                                   .count();
    double eta = since_first * static_cast<double>(total_ - done) /
                 static_cast<double>(done - 1);
    if (eta < 0.0) eta = 0.0;
    std::snprintf(eta_text, sizeof eta_text, "%.1fs", eta);
  }
  char buffer[96];
  const int written = std::snprintf(
      buffer, sizeof buffer, "  %zu/%zu cells (%3.0f%%) ETA %s", done,
      total_, 100.0 * static_cast<double>(done) / static_cast<double>(total_),
      eta_text);
  std::string line(buffer, written > 0 ? static_cast<std::size_t>(written) : 0);
  // Pad with spaces so a shrinking line fully overwrites the previous one.
  while (line.size() < rendered_chars_) line += ' ';
  rendered_chars_ = line.size();
  out_ << '\r' << line << std::flush;
}

void ProgressMeter::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  enabled_ = false;
  if (rendered_chars_ == 0) return;
  out_ << '\r' << std::string(rendered_chars_, ' ') << '\r' << std::flush;
  rendered_chars_ = 0;
}

}  // namespace pwcet::obs
