/// \file
/// Low-overhead tracing for the analysis pipeline, campaign engine and
/// store: RAII spans collected into per-thread buffers and exported in the
/// Chrome trace-event JSON format (loadable in Perfetto / about:tracing).
///
/// Contracts (the whole point of this subsystem, enforced by
/// tests/obs_test.cpp):
///
///  * *Off by default, free when off.* The process-wide tracer starts
///    disabled; a disabled span is one relaxed atomic load in its
///    constructor and one in its destructor — no clock reads, no
///    allocation, no locks. Instrumentation can therefore stay compiled
///    into release builds permanently.
///
///  * *Observation only.* Recording never feeds back into the analysis:
///    spans carry wall-clock timestamps and labels, nothing downstream
///    reads them, and every campaign report stays byte-identical with
///    tracing on or off, at any thread count, store on/off, cold or warm.
///
///  * *Thread-safe and contention-free.* Each thread appends to its own
///    buffer (one uncontended mutex acquisition per finished span); the
///    exporter merges buffers under the same per-buffer locks. Buffers
///    outlive their threads (the tracer keeps them alive), so spans from
///    pool workers survive pool destruction and appear in the export.
///
/// Span timestamps are nanoseconds on std::chrono::steady_clock, rebased
/// to a process-wide epoch; the export converts to the trace-event
/// format's microseconds. Thread ids are small sequential integers in
/// first-use order (the OS tid would leak across runs and mean nothing in
/// a viewer); threads can carry a human name ("worker-3") emitted as
/// trace metadata.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pwcet::obs {

/// Nanoseconds since the process-wide monotonic epoch (first use).
std::uint64_t monotonic_ns();

/// One finished span. `name` and `categories` must be string literals (or
/// otherwise outlive the tracer) — every instrumentation site uses
/// literals, and not copying them keeps recording allocation-free unless
/// args are attached.
struct TraceEvent {
  const char* name = "";
  const char* categories = "";
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Pre-rendered JSON object *body* ("\"k\":1,\"s\":\"v\"", no braces);
  /// empty for most spans. Values must already be JSON-escaped.
  std::string args;
};

class Tracer {
 public:
  /// The process-wide tracer every instrumentation site records into.
  static Tracer& instance();

  /// Starts collecting. Spans opened while disabled are dropped (a span
  /// straddling enable() records only if its *constructor* saw the tracer
  /// enabled — the check is made once, on open).
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a finished span on the calling thread's buffer.
  void record(TraceEvent event);

  /// Sequential id of the calling thread (assigned on first use).
  std::uint32_t current_thread_id();

  /// Human name for the calling thread, emitted as thread_name metadata.
  void name_current_thread(const std::string& name);

  /// The collected trace as one Chrome trace-event JSON document:
  /// `{"displayTimeUnit":"ms","traceEvents":[...]}` with one complete
  /// ("ph":"X") event per span plus process/thread-name metadata events.
  /// Threads are emitted in id order, each thread's spans in record order.
  std::string trace_json() const;

  /// Writes trace_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Drops all collected spans (thread registrations and names survive).
  void clear();

  /// Spans currently buffered across all threads (test/diagnostic aid).
  std::size_t event_count() const;

 private:
  struct ThreadLog;

  Tracer() = default;
  ThreadLog& thread_log();

  std::atomic<bool> enabled_{false};
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadLog>> logs_;
};

/// RAII span: opens on construction (if the tracer is enabled), records on
/// destruction. Nesting is by construction order on the same thread; the
/// viewer reconstructs the stack from the containment of time intervals.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* categories = "pwcet") {
    if (Tracer::instance().enabled()) {
      name_ = name;
      categories_ = categories;
      start_ns_ = monotonic_ns();
      active_ = true;
    }
  }

  ~TraceSpan() {
    if (!active_) return;
    Tracer::instance().record({name_, categories_, start_ns_,
                               monotonic_ns() - start_ns_,
                               std::move(args_)});
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches pre-rendered JSON members ("\"k\":1"); no-op when inactive,
  /// so callers can skip building the string: `if (span.active())`.
  void annotate(std::string args_json) {
    if (active_) args_ = std::move(args_json);
  }

  bool active() const { return active_; }

 private:
  const char* name_ = nullptr;
  const char* categories_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::string args_;
  bool active_ = false;
};

}  // namespace pwcet::obs
