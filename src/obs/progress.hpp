/// \file
/// Live campaign progress on stderr: a completed/total cell counter with
/// ETA, fed by the runner's per-job completion events (the same events
/// the tracer and metrics see).
///
/// The meter is carriage-return animated and therefore only renders when
/// explicitly enabled — the CLI enables it for `pwcet run --progress`
/// when stderr is a TTY, so piped/redirected runs (and every test) stay
/// byte-clean. finish() erases the line, leaving nothing behind; the
/// run's summary line follows on clean ground.
///
/// Thread-safety: job_finished() is called from pool workers; the meter
/// serializes rendering behind a mutex and rate-limits to one render per
/// ~100 ms so a fast campaign is not dominated by terminal writes.
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>

namespace pwcet::obs {

class ProgressMeter {
 public:
  /// A disabled meter ignores every event and writes nothing.
  ProgressMeter(std::size_t total, std::ostream& out, bool enabled);

  /// Destruction finishes implicitly, so an exception unwinding past the
  /// meter still erases the animation line.
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// One cell done. Renders "  done/total cells (pct%) ETA x.xs" in
  /// place, at most every ~100 ms (the final cell always renders).
  /// The ETA shows "--" until a second job has completed: the completion
  /// *rate* is seeded from the gap after the first finished job, so
  /// startup cost (spec load, pool spin-up) cannot poison the estimate,
  /// and it is clamped to zero once done == total.
  void job_finished();

  /// Erases the animation line (idempotent).
  void finish();

 private:
  void render(std::size_t done);  // caller holds mutex_

  std::mutex mutex_;
  const std::size_t total_;
  std::size_t done_ = 0;
  std::size_t rendered_chars_ = 0;
  bool enabled_;
  std::ostream& out_;
  std::chrono::steady_clock::time_point started_;
  std::chrono::steady_clock::time_point last_render_;
  /// When the first job completed; the rate estimate covers the
  /// (done_ - 1) jobs finished after this instant.
  std::chrono::steady_clock::time_point first_done_;
};

}  // namespace pwcet::obs
