#include "obs/tracer.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "support/json.hpp"

namespace pwcet::obs {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t monotonic_ns() {
  // First call pins the epoch; thread-safe since C++11 static init. Spans
  // therefore carry small, process-relative timestamps that survive the
  // %.3f microsecond formatting of the export without precision loss.
  static const std::uint64_t epoch = steady_now_ns();
  return steady_now_ns() - epoch;
}

/// Per-thread span buffer. Owned jointly by the registering thread (via a
/// thread_local shared_ptr) and the tracer registry, so worker spans
/// survive the worker's exit and are still there to export.
struct Tracer::ThreadLog {
  mutable std::mutex mutex;
  std::uint32_t tid = 0;
  std::string name;
  std::vector<TraceEvent> events;
};

Tracer& Tracer::instance() {
  // Leaked on purpose: spans can be recorded from detached/static-destruct
  // contexts and a destructed registry would be a use-after-free trap.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadLog& Tracer::thread_log() {
  thread_local std::shared_ptr<ThreadLog> log;
  if (!log) {
    log = std::make_shared<ThreadLog>();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    log->tid = static_cast<std::uint32_t>(logs_.size());
    logs_.push_back(log);
  }
  return *log;
}

void Tracer::record(TraceEvent event) {
  ThreadLog& log = thread_log();
  std::lock_guard<std::mutex> lock(log.mutex);
  log.events.push_back(std::move(event));
}

std::uint32_t Tracer::current_thread_id() { return thread_log().tid; }

void Tracer::name_current_thread(const std::string& name) {
  ThreadLog& log = thread_log();
  std::lock_guard<std::mutex> lock(log.mutex);
  log.name = name;
}

std::string Tracer::trace_json() const {
  // Snapshot the registry first, then walk each buffer under its own
  // lock. Threads still recording concurrently are caught mid-flight;
  // exporters are expected to run after the traced work finished.
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    logs = logs_;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out +=
      "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"pwcet\"}}";
  char buffer[160];
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> lock(log->mutex);
    if (!log->name.empty()) {
      std::snprintf(buffer, sizeof buffer,
                    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":%" PRIu32 ",\"args\":{\"name\":",
                    log->tid);
      out += buffer;
      out += json_quote(log->name);
      out += "}}";
    }
    for (const TraceEvent& event : log->events) {
      // Complete events; ts/dur are microseconds (trace-event format),
      // kept to nanosecond precision via the fractional part.
      out += ",\n{\"name\":";
      out += json_quote(event.name);
      out += ",\"cat\":";
      out += json_quote(event.categories);
      std::snprintf(buffer, sizeof buffer,
                    ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                    "\"tid\":%" PRIu32,
                    static_cast<double>(event.start_ns) / 1e3,
                    static_cast<double>(event.duration_ns) / 1e3, log->tid);
      out += buffer;
      if (!event.args.empty()) {
        out += ",\"args\":{";
        out += event.args;
        out += '}';
      }
      out += '}';
    }
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << trace_json();
  out.close();
  return !out.fail();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    log->events.clear();
  }
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t count = 0;
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    count += log->events.size();
  }
  return count;
}

}  // namespace pwcet::obs
