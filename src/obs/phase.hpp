/// \file
/// The span/metric taxonomy of the analysis pipeline and campaign engine,
/// plus ScopedPhase — the one-line probe instrumentation sites use.
///
/// Names are defined centrally so the pipeline, the CLI's `--profile`
/// table, the perf bench's per-phase breakdown, the tests and the CI
/// validator all agree on the exact strings; see docs/observability.md
/// for what each one measures.
#pragma once

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace pwcet::obs {

/// Span + histogram names of the pWCET pipeline phases
/// (analysis/pipeline.cpp), in execution order.
namespace phase_name {
/// Whole pipeline core (memo-miss path): extract..fmm under one span.
inline constexpr const char* kCore = "pipeline.core";
/// Per-domain reference extraction against the cache geometry.
inline constexpr const char* kExtract = "phase.extract";
/// Fault-free CHMC classification + per-domain time cost models.
inline constexpr const char* kClassify = "phase.classify";
/// Phase-1 maximization of the summed model (IPET or loop tree).
inline constexpr const char* kMaximize = "phase.maximize";
/// Per-set FMM bundles (delta maximizations), all domains.
inline constexpr const char* kFmm = "phase.fmm";
/// One mechanisms x pfail analysis (memo-miss path of analyze()).
inline constexpr const char* kAnalyze = "pipeline.analyze";
/// pwf weighting vectors (Eq. 2/3) for every domain.
inline constexpr const char* kPwf = "phase.pwf";
/// Pfail-independent penalty scaffold (bundle) build / fetch.
inline constexpr const char* kBundle = "phase.bundle";
/// Per-set penalty distributions + their cross-set convolution.
inline constexpr const char* kPenalty = "phase.penalty";
/// The fixed-shape pairwise convolution tree inside kPenalty.
inline constexpr const char* kConvolve = "phase.convolve";
}  // namespace phase_name

/// Span names of the campaign engine (engine/runner.cpp).
namespace engine_name {
inline constexpr const char* kCampaign = "campaign.run";
/// Whole-campaign answer reconstructed from a persisted report artifact.
inline constexpr const char* kWarmLoad = "campaign.warm_load";
/// One analyzer group (jobs sharing task/geometry/engine/dcache).
inline constexpr const char* kGroup = "engine.group";
/// One campaign job; the kind is attached as a span arg.
inline constexpr const char* kJob = "engine.job";
/// One queued pool task, as executed by a worker or a helping waiter.
inline constexpr const char* kPoolTask = "pool.task";
}  // namespace engine_name

/// RAII phase probe: one Chrome-trace span plus one duration-histogram
/// sample under the same name. Both sinks are independently gated; with
/// both disabled the probe costs two relaxed loads and never reads the
/// clock.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name, const char* categories = "phase")
      : name_(name), categories_(categories) {
    tracing_ = Tracer::instance().enabled();
    metrics_ = MetricsRegistry::instance().enabled();
    if (tracing_ || metrics_) start_ns_ = monotonic_ns();
  }

  ~ScopedPhase() {
    if (!tracing_ && !metrics_) return;
    const std::uint64_t end_ns = monotonic_ns();
    if (tracing_)
      Tracer::instance().record(
          {name_, categories_, start_ns_, end_ns - start_ns_, {}});
    if (metrics_)
      MetricsRegistry::instance().observe_ns(name_, end_ns - start_ns_);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  const char* categories_;
  std::uint64_t start_ns_ = 0;
  bool tracing_ = false;
  bool metrics_ = false;
};

}  // namespace pwcet::obs
