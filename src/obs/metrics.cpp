#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "support/json.hpp"

namespace pwcet::obs {

void DurationHistogram::observe_ns(std::uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  // CAS loops for min/max: uncontended in practice (phases are coarse),
  // and exact under contention.
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  // bit_width(ns) is 0..64; clamp the (physically impossible) top value
  // into the last bucket instead of indexing out of range.
  const std::size_t bucket =
      std::min<std::size_t>(std::bit_width(ns), kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double DurationHistogram::Snapshot::quantile_ns(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double reach = static_cast<double>(cumulative + buckets[i]);
    if (reach < target) {
      cumulative += buckets[i];
      continue;
    }
    // Bucket i holds samples with bit_width(ns) == i: [2^(i-1), 2^i - 1]
    // (bucket 0 is the single value 0). Interpolate by rank within it.
    const double lo =
        i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
    const double hi =
        i >= 64 ? static_cast<double>(~std::uint64_t{0})
                : static_cast<double>((std::uint64_t{1} << i) - 1);
    const double within = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(buckets[i]);
    double value = lo + within * (hi - lo);
    value = std::max(value, static_cast<double>(min_ns));
    value = std::min(value, static_cast<double>(max_ns));
    return value;
  }
  return static_cast<double>(max_ns);
}

DurationHistogram::Snapshot DurationHistogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ns = sum_.load(std::memory_order_relaxed);
  snap.max_ns = max_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min_ns = snap.count == 0 ? 0 : min;
  for (std::size_t i = 0; i < kBuckets; ++i)
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return snap;
}

void DurationHistogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked like the tracer's: instrumentation may fire during static
  // destruction and must never touch a destructed registry.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

DurationHistogram& MetricsRegistry::histogram(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<DurationHistogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)  // std::map: sorted
    out.emplace_back(name, counter->value());
  return out;
}

std::vector<MetricsRegistry::NamedHistogram> MetricsRegistry::histograms()
    const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<NamedHistogram> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    out.push_back({name, histogram->snapshot()});
  return out;
}

std::string MetricsRegistry::json_snapshot() const {
  char buffer[320];
  std::string out = "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters()) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    out += json_quote(name);
    std::snprintf(buffer, sizeof buffer, ":%" PRIu64, value);
    out += buffer;
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : histograms()) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    out += json_quote(name);
    const double mean =
        snap.count == 0
            ? 0.0
            : static_cast<double>(snap.sum_ns) /
                  static_cast<double>(snap.count);
    std::snprintf(buffer, sizeof buffer,
                  ":{\"count\":%" PRIu64 ",\"sum_ns\":%" PRIu64
                  ",\"min_ns\":%" PRIu64 ",\"max_ns\":%" PRIu64
                  ",\"mean_ns\":%.1f,\"p50_ns\":%.1f,\"p90_ns\":%.1f,"
                  "\"p99_ns\":%.1f,\"buckets\":[",
                  snap.count, snap.sum_ns, snap.min_ns, snap.max_ns, mean,
                  snap.quantile_ns(0.5), snap.quantile_ns(0.9),
                  snap.quantile_ns(0.99));
    out += buffer;
    bool first_bucket = true;
    for (std::size_t i = 0; i < DurationHistogram::kBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      // Bucket i holds samples with bit_width(ns) == i: ns <= 2^i - 1.
      const std::uint64_t le =
          i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
      if (!first_bucket) out += ',';
      first_bucket = false;
      std::snprintf(buffer, sizeof buffer,
                    "{\"le_ns\":%" PRIu64 ",\"count\":%" PRIu64 "}", le,
                    snap.buckets[i]);
      out += buffer;
    }
    out += "]}";
  }
  out += "\n}\n}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << json_snapshot();
  out.close();
  return !out.fail();
}

void MetricsRegistry::clear() {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    (void)name;
    counter->reset();
  }
  for (const auto& [name, histogram] : histograms_) {
    (void)name;
    histogram->reset();
  }
}

void count_store(std::string_view tier, std::string_view layer,
                 std::string_view event, std::uint64_t delta) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  if (!registry.enabled()) return;
  std::string name = "store.";
  name += tier;
  name += '.';
  name += layer;
  name += '.';
  name += event;
  registry.counter(name).add(delta);
}

}  // namespace pwcet::obs
