// Cache Hit/Miss Classifications (paper §II-B.1).
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/basic_block.hpp"

namespace pwcet {

/// Worst-case behaviour of one line reference.
enum class Chmc : std::uint8_t {
  kAlwaysHit,      ///< guaranteed hit on every execution (Must analysis)
  kFirstMiss,      ///< at most one miss per entry of its scope (Persistence)
  kAlwaysMiss,     ///< guaranteed absent (May analysis)
  kNotClassified,  ///< none of the above; costed as always-miss (§IV-A)
};

/// Classification of one reference. For kFirstMiss, `scope` is the
/// *outermost* loop in which the line is persistent; kNoLoop means the whole
/// program (at most one miss over the entire execution).
struct RefClass {
  Chmc chmc = Chmc::kNotClassified;
  LoopId scope = kNoLoop;

  friend bool operator==(const RefClass&, const RefClass&) = default;
};

/// Per block, per line-reference classification (parallel to ReferenceMap).
using ClassificationMap = std::vector<std::vector<RefClass>>;

}  // namespace pwcet
