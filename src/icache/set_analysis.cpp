#include "icache/set_analysis.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "icache/abstract_set.hpp"
#include "support/contracts.hpp"

namespace pwcet {

SetAnalysis::SetAnalysis(const ControlFlowGraph& cfg, const ReferenceMap& refs,
                         SetIndex set, std::uint32_t associativity)
    : set_(set), associativity_(associativity) {
  const std::size_t n = cfg.block_count();
  must_hit_.resize(n);
  may_present_.resize(n);
  persistent_scope_.resize(n);
  result_.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    const std::size_t r = refs[b].size();
    must_hit_[b].assign(r, 0);
    may_present_[b].assign(r, 1);
    persistent_scope_[b].assign(r, kNoScope);
    result_[b].assign(r, RefClass{});
  }
  if (associativity_ > 0) {
    run_fixpoints(cfg, refs);
    run_persistence(cfg, refs);
  } else {
    // A disabled set caches nothing; scope bookkeeping is still collected
    // for diagnostics.
    run_persistence(cfg, refs);
    for (auto& scopes : persistent_scope_)
      std::fill(scopes.begin(), scopes.end(), kNoScope);
  }
  classify(cfg, refs);
}

void SetAnalysis::run_fixpoints(const ControlFlowGraph& cfg,
                                const ReferenceMap& refs) {
  const std::size_t n = cfg.block_count();
  // std::optional distinguishes "not yet reached" (join identity) from the
  // reachable empty-cache state.
  std::vector<std::optional<MustState>> must_in(n), must_out(n);
  std::vector<std::optional<MayState>> may_in(n), may_out(n);

  const auto order = cfg.reverse_post_order();

  auto transfer_must = [&](BlockId b, MustState state) {
    for (const LineRef& r : refs[size_t(b)])
      if (r.set == set_) state.access(r.line, associativity_);
    return state;
  };
  auto transfer_may = [&](BlockId b, MayState state) {
    for (const LineRef& r : refs[size_t(b)])
      if (r.set == set_) state.access(r.line, associativity_);
    return state;
  };

  must_in[size_t(cfg.entry())] = MustState{};  // cold cache
  may_in[size_t(cfg.entry())] = MayState{};

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : order) {
      // Join predecessors (entry keeps its cold-start state as a baseline;
      // a back edge into the entry is impossible by construction).
      if (b != cfg.entry()) {
        std::optional<MustState> must_join;
        std::optional<MayState> may_join;
        for (EdgeId e : cfg.block(b).in_edges) {
          const BlockId pred = cfg.edge(e).source;
          if (must_out[size_t(pred)]) {
            must_join = must_join ? MustState::join(*must_join,
                                                    *must_out[size_t(pred)])
                                  : *must_out[size_t(pred)];
          }
          if (may_out[size_t(pred)]) {
            may_join = may_join
                           ? MayState::join(*may_join, *may_out[size_t(pred)])
                           : *may_out[size_t(pred)];
          }
        }
        must_in[size_t(b)] = std::move(must_join);
        may_in[size_t(b)] = std::move(may_join);
      }
      if (!must_in[size_t(b)]) continue;  // unreachable this round

      auto new_must_out = transfer_must(b, *must_in[size_t(b)]);
      auto new_may_out = transfer_may(b, *may_in[size_t(b)]);
      if (!must_out[size_t(b)] || !(*must_out[size_t(b)] == new_must_out) ||
          !may_out[size_t(b)] || !(*may_out[size_t(b)] == new_may_out)) {
        must_out[size_t(b)] = std::move(new_must_out);
        may_out[size_t(b)] = std::move(new_may_out);
        changed = true;
      }
    }
  }

  // Final pass: per-reference facts from the stabilized IN states.
  for (BlockId b = 0; static_cast<std::size_t>(b) < n; ++b) {
    if (!must_in[size_t(b)]) continue;
    MustState must = *must_in[size_t(b)];
    MayState may = *may_in[size_t(b)];
    const auto& block_refs = refs[size_t(b)];
    for (std::size_t i = 0; i < block_refs.size(); ++i) {
      const LineRef& r = block_refs[i];
      if (r.set != set_) continue;
      must_hit_[size_t(b)][i] = must.contains(r.line) ? 1 : 0;
      may_present_[size_t(b)][i] = may.contains(r.line) ? 1 : 0;
      must.access(r.line, associativity_);
      may.access(r.line, associativity_);
    }
  }
}

void SetAnalysis::run_persistence(const ControlFlowGraph& cfg,
                                  const ReferenceMap& refs) {
  // Distinct lines of this set per scope. Scope index 0 is the whole
  // program; scope 1 + l is loop l.
  const auto& loops = cfg.loops();
  std::vector<std::set<LineAddress>> scope_lines(1 + loops.size());

  for (const BasicBlock& block : cfg.blocks()) {
    for (const LineRef& r : refs[size_t(block.id)]) {
      if (r.set != set_) continue;
      scope_lines[0].insert(r.line);
      for (LoopId l = cfg.innermost_loop(block.id); l != kNoLoop;
           l = loops[size_t(l)].parent) {
        scope_lines[1 + size_t(l)].insert(r.line);
      }
    }
  }

  scope_distinct_lines_.resize(scope_lines.size());
  for (std::size_t i = 0; i < scope_lines.size(); ++i)
    scope_distinct_lines_[i] = scope_lines[i].size();

  if (associativity_ == 0) return;

  // A line is persistent in a scope iff all set-mapped lines referenced in
  // that scope fit in the (possibly degraded) associativity: once loaded it
  // can never be evicted within the scope. Pick the *outermost* such scope.
  for (const BasicBlock& block : cfg.blocks()) {
    // Scope chain from outermost: whole program, then loops outer->inner.
    std::vector<LoopId> chain{kNoLoop};
    {
      std::vector<LoopId> inner_to_outer;
      for (LoopId l = cfg.innermost_loop(block.id); l != kNoLoop;
           l = loops[size_t(l)].parent)
        inner_to_outer.push_back(l);
      chain.insert(chain.end(), inner_to_outer.rbegin(),
                   inner_to_outer.rend());
    }
    for (std::size_t i = 0; i < refs[size_t(block.id)].size(); ++i) {
      if (refs[size_t(block.id)][i].set != set_) continue;
      for (LoopId scope : chain) {
        const std::size_t idx = (scope == kNoLoop) ? 0 : 1 + size_t(scope);
        if (scope_distinct_lines_[idx] <= associativity_) {
          persistent_scope_[size_t(block.id)][i] = scope;
          break;
        }
      }
    }
  }
}

void SetAnalysis::classify(const ControlFlowGraph& cfg,
                           const ReferenceMap& refs) {
  for (const BasicBlock& block : cfg.blocks()) {
    for (std::size_t i = 0; i < refs[size_t(block.id)].size(); ++i) {
      if (refs[size_t(block.id)][i].set != set_) continue;
      RefClass& out = result_[size_t(block.id)][i];
      if (associativity_ > 0 && must_hit_[size_t(block.id)][i]) {
        out = {Chmc::kAlwaysHit, kNoLoop};
      } else if (associativity_ > 0 &&
                 persistent_scope_[size_t(block.id)][i] != kNoScope) {
        out = {Chmc::kFirstMiss, persistent_scope_[size_t(block.id)][i]};
      } else if (associativity_ == 0 ||
                 !may_present_[size_t(block.id)][i]) {
        out = {Chmc::kAlwaysMiss, kNoLoop};
      } else {
        out = {Chmc::kNotClassified, kNoLoop};
      }
    }
  }
}

RefClass SetAnalysis::classification(BlockId b, std::size_t ref_index) const {
  return result_[size_t(b)][ref_index];
}

std::size_t SetAnalysis::distinct_lines_in_scope(LoopId l) const {
  const std::size_t idx = (l == kNoLoop) ? 0 : 1 + size_t(l);
  PWCET_EXPECTS(idx < scope_distinct_lines_.size());
  return scope_distinct_lines_[idx];
}

}  // namespace pwcet
