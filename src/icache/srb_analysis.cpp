#include "icache/srb_analysis.hpp"

#include "support/contracts.hpp"

namespace pwcet {
namespace {

/// Lattice over "line held by the SRB before a program point":
/// kBottom (unreached) < one concrete line < kTop (unknown / any).
struct SrbState {
  enum class Kind : std::uint8_t { kBottom, kLine, kTop };
  Kind kind = Kind::kBottom;
  LineAddress line = 0;

  static SrbState bottom() { return {}; }
  static SrbState top() { return {Kind::kTop, 0}; }
  static SrbState of(LineAddress l) { return {Kind::kLine, l}; }

  friend bool operator==(const SrbState&, const SrbState&) = default;
};

SrbState join(const SrbState& a, const SrbState& b) {
  if (a.kind == SrbState::Kind::kBottom) return b;
  if (b.kind == SrbState::Kind::kBottom) return a;
  if (a.kind == SrbState::Kind::kLine && b.kind == SrbState::Kind::kLine &&
      a.line == b.line)
    return a;
  return SrbState::top();
}

}  // namespace

SrbHitMap analyze_srb(const ControlFlowGraph& cfg, const ReferenceMap& refs) {
  const std::size_t n = cfg.block_count();
  std::vector<SrbState> in(n), out(n);
  // The SRB is invalid at task start: model as Top (no hit provable).
  in[size_t(cfg.entry())] = SrbState::top();

  auto transfer = [&](BlockId b, SrbState state) {
    for (const LineRef& r : refs[size_t(b)]) state = SrbState::of(r.line);
    return state;
  };

  const auto order = cfg.reverse_post_order();
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : order) {
      if (b != cfg.entry()) {
        SrbState j = SrbState::bottom();
        for (EdgeId e : cfg.block(b).in_edges)
          j = join(j, out[size_t(cfg.edge(e).source)]);
        in[size_t(b)] = j;
      }
      SrbState new_out = transfer(b, in[size_t(b)]);
      if (!(new_out == out[size_t(b)])) {
        out[size_t(b)] = new_out;
        changed = true;
      }
    }
  }

  SrbHitMap hits(n);
  for (BlockId b = 0; static_cast<std::size_t>(b) < n; ++b) {
    hits[size_t(b)].assign(refs[size_t(b)].size(), 0);
    SrbState state = in[size_t(b)];
    for (std::size_t i = 0; i < refs[size_t(b)].size(); ++i) {
      const LineRef& r = refs[size_t(b)][i];
      hits[size_t(b)][i] =
          (state == SrbState::of(r.line)) ? 1 : 0;
      state = SrbState::of(r.line);
    }
  }
  return hits;
}

}  // namespace pwcet
