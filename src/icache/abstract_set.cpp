#include "icache/abstract_set.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace pwcet {
namespace {

std::vector<AgedLine>::const_iterator find_line(
    const std::vector<AgedLine>& lines, LineAddress line) {
  return std::lower_bound(lines.begin(), lines.end(), line,
                          [](const AgedLine& e, LineAddress l) {
                            return e.line < l;
                          });
}

}  // namespace

std::uint32_t MustState::age_of(LineAddress line, std::uint32_t absent) const {
  const auto it = find_line(lines_, line);
  return (it != lines_.end() && it->line == line) ? it->age : absent;
}

void MustState::access(LineAddress line, std::uint32_t associativity) {
  PWCET_EXPECTS(associativity > 0);
  // Maximum age the accessed line could have had; if untracked, it may have
  // been anywhere (or absent), which ages every tracked line.
  const std::uint32_t old_age = age_of(line, associativity);
  std::vector<AgedLine> next;
  next.reserve(lines_.size() + 1);
  for (const AgedLine& e : lines_) {
    if (e.line == line) continue;
    // Lines guaranteed younger than the accessed line's worst position age
    // by one; lines at or beyond it keep their bound.
    const std::uint32_t age = (e.age < old_age) ? e.age + 1 : e.age;
    if (age < associativity) next.push_back({e.line, age});
  }
  next.push_back({line, 0});
  std::sort(next.begin(), next.end(),
            [](const AgedLine& a, const AgedLine& b) {
              return a.line < b.line;
            });
  lines_ = std::move(next);
}

bool MustState::contains(LineAddress line) const {
  const auto it = find_line(lines_, line);
  return it != lines_.end() && it->line == line;
}

MustState MustState::join(const MustState& a, const MustState& b) {
  MustState out;
  out.lines_.reserve(std::min(a.lines_.size(), b.lines_.size()));
  // Sorted intersection with max age.
  auto ia = a.lines_.begin();
  auto ib = b.lines_.begin();
  while (ia != a.lines_.end() && ib != b.lines_.end()) {
    if (ia->line < ib->line) {
      ++ia;
    } else if (ib->line < ia->line) {
      ++ib;
    } else {
      out.lines_.push_back({ia->line, std::max(ia->age, ib->age)});
      ++ia;
      ++ib;
    }
  }
  return out;
}

std::uint32_t MayState::age_of(LineAddress line, std::uint32_t absent) const {
  const auto it = find_line(lines_, line);
  return (it != lines_.end() && it->line == line) ? it->age : absent;
}

void MayState::access(LineAddress line, std::uint32_t associativity) {
  PWCET_EXPECTS(associativity > 0);
  // Minimum age the accessed line could have had; `associativity` encodes
  // "may have been absent", in which case every resident line must age.
  const std::uint32_t old_age = age_of(line, associativity);
  std::vector<AgedLine> next;
  next.reserve(lines_.size() + 1);
  for (const AgedLine& e : lines_) {
    if (e.line == line) continue;
    // A line with min age <= the accessed line's min age cannot be proven
    // older than the accessed line in every concretization, so its minimum
    // age increases; strictly older lines keep their bound.
    const std::uint32_t age = (e.age <= old_age) ? e.age + 1 : e.age;
    if (age < associativity) next.push_back({e.line, age});
  }
  next.push_back({line, 0});
  std::sort(next.begin(), next.end(),
            [](const AgedLine& a, const AgedLine& b) {
              return a.line < b.line;
            });
  lines_ = std::move(next);
}

bool MayState::contains(LineAddress line) const {
  const auto it = find_line(lines_, line);
  return it != lines_.end() && it->line == line;
}

MayState MayState::join(const MayState& a, const MayState& b) {
  MayState out;
  out.lines_.reserve(a.lines_.size() + b.lines_.size());
  // Sorted union with min age.
  auto ia = a.lines_.begin();
  auto ib = b.lines_.begin();
  while (ia != a.lines_.end() || ib != b.lines_.end()) {
    if (ib == b.lines_.end() || (ia != a.lines_.end() && ia->line < ib->line)) {
      out.lines_.push_back(*ia);
      ++ia;
    } else if (ia == a.lines_.end() || ib->line < ia->line) {
      out.lines_.push_back(*ib);
      ++ib;
    } else {
      out.lines_.push_back({ia->line, std::min(ia->age, ib->age)});
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace pwcet
