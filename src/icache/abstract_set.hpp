// Abstract cache-set states for the Must and May analyses (paper §II-B.1,
// Ferdinand-style abstract interpretation restricted to one cache set —
// LRU sets age independently, so the whole-cache analysis decomposes into
// per-set analyses with a per-set effective associativity; this is what
// makes the FMM computation cheap: degrading set s only re-analyzes set s).
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace pwcet {

/// Age bound of one line in an abstract set state. Ages range over
/// [0, associativity); a line absent from the state is unbounded (Must) or
/// definitely absent (May).
struct AgedLine {
  LineAddress line = 0;
  std::uint32_t age = 0;

  friend bool operator==(const AgedLine&, const AgedLine&) = default;
};

/// Must abstract state: lines *guaranteed* resident, with the maximum age
/// they can have. A referenced line present here is always-hit.
class MustState {
 public:
  /// Empty cache (task cold start — sound also for unknown initial content,
  /// since never-referenced lines can only age tracked lines as counted).
  MustState() = default;

  /// LRU update for an access to `line` with the given associativity.
  void access(LineAddress line, std::uint32_t associativity);

  /// True if the line is guaranteed resident.
  bool contains(LineAddress line) const;

  /// Greatest lower bound: lines present in both, with the max age.
  static MustState join(const MustState& a, const MustState& b);

  const std::vector<AgedLine>& lines() const { return lines_; }
  friend bool operator==(const MustState&, const MustState&) = default;

 private:
  std::uint32_t age_of(LineAddress line, std::uint32_t absent) const;
  std::vector<AgedLine> lines_;  // sorted by line address
};

/// May abstract state: lines that *may* be resident, with the minimum age
/// they can have. A referenced line absent here is always-miss.
class MayState {
 public:
  MayState() = default;

  void access(LineAddress line, std::uint32_t associativity);
  bool contains(LineAddress line) const;

  /// Least upper bound: union of lines, with the min age.
  static MayState join(const MayState& a, const MayState& b);

  const std::vector<AgedLine>& lines() const { return lines_; }
  friend bool operator==(const MayState&, const MayState&) = default;

 private:
  std::uint32_t age_of(LineAddress line, std::uint32_t absent) const;
  std::vector<AgedLine> lines_;  // sorted by line address
};

}  // namespace pwcet
