// Static analysis of the Shared Reliable Buffer (paper §III-B.2).
//
// The SRB is analyzed "as if it was the only cache in the system": a
// one-line fully-associative cache through which *every* reference (any
// set) is conservatively assumed to pass. A reference is SRB-always-hit iff
// on every path the immediately preceding line reference is to the same
// line — exactly the paper's conservative reload assumption (in the stream
// a1 a2 b1 b2 a1 a2, the second a1 is not classified because b2 may have
// reloaded the SRB). This captures the spatial locality the SRB preserves
// when an entire cache set is faulty, and is sound in the presence of
// multiple fully faulty sets sharing the single buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/references.hpp"
#include "cfg/cfg.hpp"

namespace pwcet {

/// Per block/ref: 1 iff the reference is guaranteed to hit in the SRB
/// whenever it is served by the SRB.
using SrbHitMap = std::vector<std::vector<std::uint8_t>>;

SrbHitMap analyze_srb(const ControlFlowGraph& cfg, const ReferenceMap& refs);

}  // namespace pwcet
