// Per-set cache analysis with parametric effective associativity.
//
// Runs the Must and May fixpoints for the references mapping to a single
// cache set, plus the scope-based persistence test, and combines them into
// CHMCs. The effective associativity parameter models disabled (faulty)
// blocks: a set with f faulty ways behaves as an LRU set of associativity
// W - f (paper §II-A); associativity 0 means the set caches nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/references.hpp"
#include "cfg/cfg.hpp"
#include "icache/chmc.hpp"

namespace pwcet {

/// Classification of every reference to `set` under the given effective
/// associativity. Entries of other sets are left value-initialized
/// (kNotClassified) and must not be consulted.
class SetAnalysis {
 public:
  SetAnalysis(const ControlFlowGraph& cfg, const ReferenceMap& refs,
              SetIndex set, std::uint32_t associativity);

  /// Classification for reference `ref_index` of block `b` (must map to
  /// this set).
  RefClass classification(BlockId b, std::size_t ref_index) const;

  SetIndex set() const { return set_; }
  std::uint32_t associativity() const { return associativity_; }

  /// Distinct lines of this set referenced in loop `l` (kNoLoop = whole
  /// program). Exposed for tests and diagnostics.
  std::size_t distinct_lines_in_scope(LoopId l) const;

 private:
  void run_fixpoints(const ControlFlowGraph& cfg, const ReferenceMap& refs);
  void run_persistence(const ControlFlowGraph& cfg, const ReferenceMap& refs);
  void classify(const ControlFlowGraph& cfg, const ReferenceMap& refs);

  SetIndex set_;
  std::uint32_t associativity_;
  // Per block/ref: guaranteed hit before the reference (Must) and possible
  // presence before the reference (May).
  std::vector<std::vector<std::uint8_t>> must_hit_;
  std::vector<std::vector<std::uint8_t>> may_present_;
  // Per block/ref: outermost persistent scope, or sentinel "none".
  static constexpr LoopId kNoScope = -3;
  std::vector<std::vector<LoopId>> persistent_scope_;
  std::vector<std::vector<RefClass>> result_;
  // Distinct line counts per scope: index 0 = whole program, 1 + loop id.
  std::vector<std::size_t> scope_distinct_lines_;
};

}  // namespace pwcet
