// Structured task representation.
//
// Workloads are written against a structured-program builder (sequences,
// if/else, bounded loops, calls). `ProgramBuilder::build` then
//   1. lays out code addresses per function (contiguous, 4-byte
//      instructions, functions in declaration order) — the moral equivalent
//      of the paper's "gcc 4.1, default linker memory layout";
//   2. inlines every call site (virtual inlining, the standard WCET
//      treatment that distinguishes calling contexts while *sharing* the
//      callee's instruction addresses across call sites — which is what
//      makes instruction-cache reuse across calls visible);
//   3. produces a single-entry/single-exit `ControlFlowGraph` with exact
//      natural-loop metadata and a parallel *structure tree* used by the
//      loop-tree WCET engine and the worst-path extractor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/cfg.hpp"
#include "support/types.hpp"

namespace pwcet {

using StmtId = std::int32_t;
using FunctionId = std::int32_t;
using TreeId = std::int32_t;

inline constexpr TreeId kNoTree = -1;

/// Structure-tree node kinds (post-inlining view of the program).
enum class TreeKind : std::uint8_t {
  kLeaf,  ///< one basic block
  kSeq,   ///< children execute in order
  kAlt,   ///< exactly one child executes (if/else arms)
  kLoop,  ///< children = {header leaf, body}; body runs <= bound times
};

struct TreeNode {
  TreeKind kind = TreeKind::kSeq;
  BlockId block = kNoBlock;        ///< kLeaf only
  std::vector<TreeId> children;
  std::int64_t bound = 0;          ///< kLoop only
  LoopId loop = kNoLoop;           ///< kLoop only
};

/// A fully built task: CFG + loops + structure tree + layout metadata.
class Program {
 public:
  const std::string& name() const { return name_; }
  const ControlFlowGraph& cfg() const { return cfg_; }
  const std::vector<TreeNode>& tree() const { return tree_; }
  TreeId tree_root() const { return tree_root_; }
  const TreeNode& tree_node(TreeId t) const { return tree_[size_t(t)]; }

  /// Code size in bytes over all functions (before inlining; inlining does
  /// not duplicate code, only CFG nodes).
  Address code_size_bytes() const { return code_size_bytes_; }

 private:
  friend class ProgramBuilder;
  std::string name_;
  ControlFlowGraph cfg_;
  std::vector<TreeNode> tree_;
  TreeId tree_root_ = kNoTree;
  Address code_size_bytes_ = 0;
};

/// Builder for structured tasks. Statement handles are plain ids into an
/// internal arena; functions own a body statement and are laid out in
/// declaration order.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string program_name);

  /// `n` straight-line instructions.
  StmtId code(std::uint32_t n);

  /// `n` straight-line instructions that additionally load from the given
  /// statically known data addresses (in order). Feeds the data-cache
  /// extension; code-only analyses ignore the loads.
  StmtId code_with_loads(std::uint32_t n, std::vector<Address> loads);

  /// `n` straight-line instructions with statically known loads followed by
  /// statically known stores. Stores feed the write-back D-cache domain
  /// (dirty-line state) and the unified TLB/L2 reference streams.
  StmtId code_with_accesses(std::uint32_t n, std::vector<Address> loads,
                            std::vector<Address> stores);

  /// Sequential composition.
  StmtId seq(std::vector<StmtId> stmts);

  /// Two-way branch; the condition evaluates `cond_instructions` fetches.
  StmtId if_else(std::uint32_t cond_instructions, StmtId then_stmt,
                 StmtId else_stmt);

  /// One-armed branch (empty else).
  StmtId if_then(std::uint32_t cond_instructions, StmtId then_stmt);

  /// While-style loop: the header (test, `header_instructions` fetches)
  /// executes bound+1 times per entry, the body at most `bound` times.
  StmtId loop(std::uint32_t header_instructions, std::int64_t bound,
              StmtId body);

  /// Call to a previously declared function; inlined at build time.
  /// Recursion is rejected.
  StmtId call(FunctionId callee);

  /// Declares a function with its body. Functions must be declared before
  /// being called (enforces acyclic call structure by construction).
  FunctionId add_function(std::string function_name, StmtId body);

  /// Finalizes the task. `base_address` is where the code image starts.
  Program build(FunctionId entry, Address base_address = 0);

 private:
  enum class Kind : std::uint8_t { kCode, kSeq, kIfElse, kLoop, kCall };

  struct Stmt {
    Kind kind = Kind::kCode;
    std::uint32_t instructions = 0;  // kCode size / cond size / header size
    std::vector<Address> loads;      // kCode only: data addresses loaded
    std::vector<Address> stores;     // kCode only: data addresses stored to
    std::vector<StmtId> children;
    std::int64_t bound = 0;
    FunctionId callee = -1;
    Address chunk_address = 0;  // assigned by layout (code/cond/header)
  };

  struct Function {
    std::string name;
    StmtId body = -1;
    Address first_address = 0;
  };

  struct BuildState;  // defined in program.cpp

  StmtId add_stmt(Stmt s);
  Address layout_stmt(StmtId s, Address at);

  /// Instantiates `s` into the CFG; returns {entry block, exit block,
  /// subtree id}. Defined in program.cpp.
  struct Region;
  Region instantiate(StmtId s, BuildState& st) const;

  std::string name_;
  std::vector<Stmt> stmts_;
  std::vector<Function> functions_;
  bool built_ = false;
};

}  // namespace pwcet
