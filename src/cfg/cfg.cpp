#include "cfg/cfg.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace pwcet {

BlockId ControlFlowGraph::add_block(Address first_address,
                                    std::uint32_t instruction_count) {
  const BlockId id = static_cast<BlockId>(blocks_.size());
  BasicBlock b;
  b.id = id;
  b.first_address = first_address;
  b.instruction_count = instruction_count;
  blocks_.push_back(std::move(b));
  innermost_cache_.clear();
  return id;
}

EdgeId ControlFlowGraph::add_edge(BlockId source, BlockId target) {
  PWCET_EXPECTS(source >= 0 && static_cast<size_t>(source) < blocks_.size());
  PWCET_EXPECTS(target >= 0 && static_cast<size_t>(target) < blocks_.size());
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({id, source, target});
  blocks_[size_t(source)].out_edges.push_back(id);
  blocks_[size_t(target)].in_edges.push_back(id);
  return id;
}

void ControlFlowGraph::set_data_addresses(BlockId b,
                                           std::vector<Address> addresses) {
  PWCET_EXPECTS(b >= 0 && static_cast<size_t>(b) < blocks_.size());
  blocks_[size_t(b)].data_addresses = std::move(addresses);
}

void ControlFlowGraph::set_store_addresses(BlockId b,
                                           std::vector<Address> addresses) {
  PWCET_EXPECTS(b >= 0 && static_cast<size_t>(b) < blocks_.size());
  blocks_[size_t(b)].store_addresses = std::move(addresses);
}

LoopId ControlFlowGraph::add_loop(LoopInfo info) {
  const LoopId id = static_cast<LoopId>(loops_.size());
  info.id = id;
  loops_.push_back(std::move(info));
  innermost_cache_.clear();
  return id;
}

void ControlFlowGraph::build_innermost_cache() const {
  innermost_cache_.assign(blocks_.size(), kNoLoop);
  // Loops are registered outermost-first by the builder; overwriting in
  // registration order leaves the innermost loop id per block. For detected
  // loops the same property holds because detection emits parents first.
  for (const LoopInfo& loop : loops_)
    for (BlockId b : loop.blocks) innermost_cache_[size_t(b)] = loop.id;
}

LoopId ControlFlowGraph::innermost_loop(BlockId b) const {
  if (innermost_cache_.size() != blocks_.size()) build_innermost_cache();
  return innermost_cache_[size_t(b)];
}

bool ControlFlowGraph::loop_contains(LoopId outer, LoopId inner) const {
  for (LoopId l = inner; l != kNoLoop; l = loops_[size_t(l)].parent)
    if (l == outer) return true;
  return false;
}

std::vector<BlockId> ControlFlowGraph::reverse_post_order() const {
  std::vector<BlockId> order;
  order.reserve(blocks_.size());
  std::vector<std::uint8_t> state(blocks_.size(), 0);  // 0=new 1=open 2=done
  // Iterative DFS with explicit stack of (block, next-out-edge index).
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(entry_, 0);
  state[size_t(entry_)] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto& out = blocks_[size_t(b)].out_edges;
    if (next < out.size()) {
      const BlockId succ = edges_[size_t(out[next])].target;
      ++next;
      if (state[size_t(succ)] == 0) {
        state[size_t(succ)] = 1;
        stack.emplace_back(succ, 0);
      }
    } else {
      state[size_t(b)] = 2;
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

void ControlFlowGraph::validate() const {
  PWCET_ASSERT(entry_ != kNoBlock && exit_ != kNoBlock);
  const auto order = reverse_post_order();
  PWCET_ASSERT(order.size() == blocks_.size());  // all blocks reachable

  // Every block must reach the exit (otherwise IPET flow is ill-formed).
  std::vector<std::uint8_t> reaches_exit(blocks_.size(), 0);
  reaches_exit[size_t(exit_)] = 1;
  // Reverse BFS over predecessors.
  std::vector<BlockId> work{exit_};
  while (!work.empty()) {
    const BlockId b = work.back();
    work.pop_back();
    for (EdgeId e : blocks_[size_t(b)].in_edges) {
      const BlockId pred = edges_[size_t(e)].source;
      if (!reaches_exit[size_t(pred)]) {
        reaches_exit[size_t(pred)] = 1;
        work.push_back(pred);
      }
    }
  }
  for (const BasicBlock& b : blocks_) PWCET_ASSERT(reaches_exit[size_t(b.id)]);

  // Loop metadata consistency.
  for (const LoopInfo& loop : loops_) {
    PWCET_ASSERT(loop.bound >= 0);
    PWCET_ASSERT(!loop.blocks.empty());
    PWCET_ASSERT(std::find(loop.blocks.begin(), loop.blocks.end(),
                           loop.header) != loop.blocks.end());
    for (EdgeId e : loop.back_edges) {
      PWCET_ASSERT(edges_[size_t(e)].target == loop.header);
    }
    for (EdgeId e : loop.entry_edges) {
      PWCET_ASSERT(edges_[size_t(e)].target == loop.header);
    }
    if (loop.parent != kNoLoop) {
      // Parent must contain all of this loop's blocks.
      const LoopInfo& parent = loops_[size_t(loop.parent)];
      for (BlockId b : loop.blocks) {
        PWCET_ASSERT(std::find(parent.blocks.begin(), parent.blocks.end(),
                               b) != parent.blocks.end());
      }
    }
  }
}

std::uint64_t ControlFlowGraph::total_instructions() const {
  std::uint64_t total = 0;
  for (const BasicBlock& b : blocks_) total += b.instruction_count;
  return total;
}

}  // namespace pwcet
