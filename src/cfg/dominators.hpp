// Dominator tree and natural-loop detection.
//
// The program builder registers exact loop metadata, so the analyses never
// *need* loop recovery; this module exists to cross-validate that metadata
// (tests assert that detected natural loops match the registered ones) and
// to support externally supplied CFGs.
#pragma once

#include <vector>

#include "cfg/cfg.hpp"

namespace pwcet {

/// Immediate-dominator tree (Cooper-Harvey-Kennedy iterative algorithm).
class DominatorTree {
 public:
  explicit DominatorTree(const ControlFlowGraph& cfg);

  /// Immediate dominator; the entry block is its own idom.
  BlockId idom(BlockId b) const { return idom_[size_t(b)]; }

  /// True if `a` dominates `b` (reflexive).
  bool dominates(BlockId a, BlockId b) const;

 private:
  std::vector<BlockId> idom_;
  std::vector<std::int32_t> rpo_index_;
};

/// A natural loop discovered from a back edge (target dominates source).
struct DetectedLoop {
  BlockId header = kNoBlock;
  std::vector<EdgeId> back_edges;
  std::vector<BlockId> blocks;  ///< sorted, includes header
};

/// Finds all natural loops; back edges sharing a header are merged into one
/// loop. Loops are returned sorted by header id.
std::vector<DetectedLoop> detect_natural_loops(const ControlFlowGraph& cfg);

}  // namespace pwcet
