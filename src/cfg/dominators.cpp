#include "cfg/dominators.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace pwcet {

DominatorTree::DominatorTree(const ControlFlowGraph& cfg) {
  const auto order = cfg.reverse_post_order();
  rpo_index_.assign(cfg.block_count(), -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    rpo_index_[size_t(order[i])] = static_cast<std::int32_t>(i);

  idom_.assign(cfg.block_count(), kNoBlock);
  idom_[size_t(cfg.entry())] = cfg.entry();

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index_[size_t(a)] > rpo_index_[size_t(b)])
        a = idom_[size_t(a)];
      while (rpo_index_[size_t(b)] > rpo_index_[size_t(a)])
        b = idom_[size_t(b)];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : order) {
      if (b == cfg.entry()) continue;
      BlockId new_idom = kNoBlock;
      for (EdgeId e : cfg.block(b).in_edges) {
        const BlockId pred = cfg.edge(e).source;
        if (idom_[size_t(pred)] == kNoBlock) continue;  // not yet processed
        new_idom = (new_idom == kNoBlock) ? pred : intersect(new_idom, pred);
      }
      PWCET_ASSERT(new_idom != kNoBlock);  // cfg is connected from entry
      if (idom_[size_t(b)] != new_idom) {
        idom_[size_t(b)] = new_idom;
        changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(BlockId a, BlockId b) const {
  for (;;) {
    if (a == b) return true;
    const BlockId up = idom_[size_t(b)];
    if (up == b) return false;  // reached entry without meeting a
    b = up;
  }
}

std::vector<DetectedLoop> detect_natural_loops(const ControlFlowGraph& cfg) {
  const DominatorTree dom(cfg);

  // Group back edges by header.
  std::vector<DetectedLoop> loops;
  auto loop_for_header = [&](BlockId header) -> DetectedLoop& {
    for (auto& l : loops)
      if (l.header == header) return l;
    loops.push_back({header, {}, {}});
    return loops.back();
  };

  for (const CfgEdge& e : cfg.edges()) {
    if (!dom.dominates(e.target, e.source)) continue;
    loop_for_header(e.target).back_edges.push_back(e.id);
  }

  // Natural loop body: header plus all blocks that reach a back-edge source
  // without passing through the header (reverse reachability).
  for (DetectedLoop& loop : loops) {
    std::vector<std::uint8_t> in_loop(cfg.block_count(), 0);
    in_loop[size_t(loop.header)] = 1;
    std::vector<BlockId> work;
    for (EdgeId e : loop.back_edges) {
      const BlockId src = cfg.edge(e).source;
      if (!in_loop[size_t(src)]) {
        in_loop[size_t(src)] = 1;
        work.push_back(src);
      }
    }
    while (!work.empty()) {
      const BlockId b = work.back();
      work.pop_back();
      for (EdgeId e : cfg.block(b).in_edges) {
        const BlockId pred = cfg.edge(e).source;
        if (!in_loop[size_t(pred)]) {
          in_loop[size_t(pred)] = 1;
          work.push_back(pred);
        }
      }
    }
    for (BlockId b = 0; static_cast<size_t>(b) < cfg.block_count(); ++b)
      if (in_loop[size_t(b)]) loop.blocks.push_back(b);
  }

  std::sort(loops.begin(), loops.end(),
            [](const DetectedLoop& a, const DetectedLoop& b) {
              return a.header < b.header;
            });
  return loops;
}

}  // namespace pwcet
