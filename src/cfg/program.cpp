#include "cfg/program.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace pwcet {

ProgramBuilder::ProgramBuilder(std::string program_name)
    : name_(std::move(program_name)) {}

StmtId ProgramBuilder::add_stmt(Stmt s) {
  const StmtId id = static_cast<StmtId>(stmts_.size());
  stmts_.push_back(std::move(s));
  return id;
}

StmtId ProgramBuilder::code(std::uint32_t n) {
  PWCET_EXPECTS(n > 0);
  Stmt s;
  s.kind = Kind::kCode;
  s.instructions = n;
  return add_stmt(std::move(s));
}

StmtId ProgramBuilder::code_with_loads(std::uint32_t n,
                                       std::vector<Address> loads) {
  PWCET_EXPECTS(n > 0);
  Stmt s;
  s.kind = Kind::kCode;
  s.instructions = n;
  s.loads = std::move(loads);
  return add_stmt(std::move(s));
}

StmtId ProgramBuilder::code_with_accesses(std::uint32_t n,
                                          std::vector<Address> loads,
                                          std::vector<Address> stores) {
  PWCET_EXPECTS(n > 0);
  Stmt s;
  s.kind = Kind::kCode;
  s.instructions = n;
  s.loads = std::move(loads);
  s.stores = std::move(stores);
  return add_stmt(std::move(s));
}

StmtId ProgramBuilder::seq(std::vector<StmtId> stmts) {
  Stmt s;
  s.kind = Kind::kSeq;
  s.children = std::move(stmts);
  return add_stmt(std::move(s));
}

StmtId ProgramBuilder::if_else(std::uint32_t cond_instructions,
                               StmtId then_stmt, StmtId else_stmt) {
  PWCET_EXPECTS(cond_instructions > 0);
  Stmt s;
  s.kind = Kind::kIfElse;
  s.instructions = cond_instructions;
  s.children = {then_stmt, else_stmt};
  return add_stmt(std::move(s));
}

StmtId ProgramBuilder::if_then(std::uint32_t cond_instructions,
                               StmtId then_stmt) {
  return if_else(cond_instructions, then_stmt, seq({}));
}

StmtId ProgramBuilder::loop(std::uint32_t header_instructions,
                            std::int64_t bound, StmtId body) {
  PWCET_EXPECTS(header_instructions > 0);
  PWCET_EXPECTS(bound >= 0);
  Stmt s;
  s.kind = Kind::kLoop;
  s.instructions = header_instructions;
  s.bound = bound;
  s.children = {body};
  return add_stmt(std::move(s));
}

StmtId ProgramBuilder::call(FunctionId callee) {
  PWCET_EXPECTS(callee >= 0 &&
                static_cast<size_t>(callee) < functions_.size());
  Stmt s;
  s.kind = Kind::kCall;
  s.callee = callee;
  return add_stmt(std::move(s));
}

FunctionId ProgramBuilder::add_function(std::string function_name,
                                        StmtId body) {
  PWCET_EXPECTS(body >= 0 && static_cast<size_t>(body) < stmts_.size());
  const FunctionId id = static_cast<FunctionId>(functions_.size());
  functions_.push_back({std::move(function_name), body, 0});
  return id;
}

Address ProgramBuilder::layout_stmt(StmtId sid, Address at) {
  Stmt& s = stmts_[size_t(sid)];
  switch (s.kind) {
    case Kind::kCode:
      s.chunk_address = at;
      return at + s.instructions * kInstructionBytes;
    case Kind::kSeq: {
      for (StmtId c : s.children) at = layout_stmt(c, at);
      return at;
    }
    case Kind::kIfElse: {
      s.chunk_address = at;  // condition code
      at += s.instructions * kInstructionBytes;
      at = layout_stmt(s.children[0], at);  // then arm
      at = layout_stmt(s.children[1], at);  // else arm
      return at;
    }
    case Kind::kLoop: {
      s.chunk_address = at;  // header (test) code
      at += s.instructions * kInstructionBytes;
      return layout_stmt(s.children[0], at);
    }
    case Kind::kCall:
      return at;  // callee laid out at declaration; call transfers control
  }
  PWCET_ASSERT(false);
  return at;
}

struct ProgramBuilder::BuildState {
  Program* program = nullptr;
  // Loops being built: index == final LoopId.
  std::vector<LoopInfo> loops;
  std::vector<LoopId> loop_stack;  // enclosing loops, outermost first
  std::vector<FunctionId> call_stack;  // recursion guard

  BlockId new_block(Address addr, std::uint32_t n) {
    const BlockId b = program->cfg_.add_block(addr, n);
    for (LoopId l : loop_stack) loops[size_t(l)].blocks.push_back(b);
    return b;
  }

  TreeId new_tree(TreeNode node) {
    const TreeId t = static_cast<TreeId>(program->tree_.size());
    program->tree_.push_back(std::move(node));
    return t;
  }

  TreeId leaf(BlockId b) {
    TreeNode n;
    n.kind = TreeKind::kLeaf;
    n.block = b;
    return new_tree(std::move(n));
  }
};

struct ProgramBuilder::Region {
  BlockId entry = kNoBlock;
  BlockId exit = kNoBlock;
  TreeId tree = kNoTree;
};

ProgramBuilder::Region ProgramBuilder::instantiate(StmtId sid,
                                                   BuildState& st) const {
  const Stmt& s = stmts_[size_t(sid)];
  ControlFlowGraph& cfg = st.program->cfg_;
  switch (s.kind) {
    case Kind::kCode: {
      const BlockId b = st.new_block(s.chunk_address, s.instructions);
      if (!s.loads.empty())
        cfg.set_data_addresses(b, s.loads);  // shared across call sites
      if (!s.stores.empty()) cfg.set_store_addresses(b, s.stores);
      return {b, b, st.leaf(b)};
    }
    case Kind::kSeq: {
      if (s.children.empty()) {
        // Empty region: a zero-instruction pass-through block.
        const BlockId b = st.new_block(0, 0);
        return {b, b, st.leaf(b)};
      }
      Region first = instantiate(s.children[0], st);
      TreeNode seq_node;
      seq_node.kind = TreeKind::kSeq;
      seq_node.children.push_back(first.tree);
      BlockId entry = first.entry;
      BlockId exit = first.exit;
      for (std::size_t i = 1; i < s.children.size(); ++i) {
        Region next = instantiate(s.children[i], st);
        cfg.add_edge(exit, next.entry);
        exit = next.exit;
        seq_node.children.push_back(next.tree);
      }
      return {entry, exit, st.new_tree(std::move(seq_node))};
    }
    case Kind::kIfElse: {
      const BlockId cond = st.new_block(s.chunk_address, s.instructions);
      const Region then_r = instantiate(s.children[0], st);
      const Region else_r = instantiate(s.children[1], st);
      const BlockId join = st.new_block(0, 0);
      cfg.add_edge(cond, then_r.entry);
      cfg.add_edge(cond, else_r.entry);
      cfg.add_edge(then_r.exit, join);
      cfg.add_edge(else_r.exit, join);
      TreeNode alt;
      alt.kind = TreeKind::kAlt;
      alt.children = {then_r.tree, else_r.tree};
      const TreeId alt_tree = st.new_tree(std::move(alt));
      TreeNode seq_node;
      seq_node.kind = TreeKind::kSeq;
      seq_node.children = {st.leaf(cond), alt_tree, st.leaf(join)};
      return {cond, join, st.new_tree(std::move(seq_node))};
    }
    case Kind::kLoop: {
      // Preheader gives the loop a locally known entry edge; exit block
      // keeps the region single-exit.
      const BlockId preheader = st.new_block(0, 0);

      const LoopId loop_id = static_cast<LoopId>(st.loops.size());
      LoopInfo info;
      info.id = loop_id;
      info.parent = st.loop_stack.empty() ? kNoLoop : st.loop_stack.back();
      info.bound = s.bound;
      st.loops.push_back(std::move(info));
      st.loop_stack.push_back(loop_id);

      const BlockId header = st.new_block(s.chunk_address, s.instructions);
      const Region body = instantiate(s.children[0], st);

      st.loop_stack.pop_back();
      const BlockId loop_exit = st.new_block(0, 0);

      const EdgeId entry_edge = cfg.add_edge(preheader, header);
      cfg.add_edge(header, body.entry);
      const EdgeId back_edge = cfg.add_edge(body.exit, header);
      cfg.add_edge(header, loop_exit);

      LoopInfo& built = st.loops[size_t(loop_id)];
      built.header = header;
      built.entry_edges = {entry_edge};
      built.back_edges = {back_edge};

      TreeNode loop_node;
      loop_node.kind = TreeKind::kLoop;
      loop_node.bound = s.bound;
      loop_node.loop = loop_id;
      loop_node.children = {st.leaf(header), body.tree};
      const TreeId loop_tree = st.new_tree(std::move(loop_node));
      TreeNode seq_node;
      seq_node.kind = TreeKind::kSeq;
      seq_node.children = {st.leaf(preheader), loop_tree,
                           st.leaf(loop_exit)};
      return {preheader, loop_exit, st.new_tree(std::move(seq_node))};
    }
    case Kind::kCall: {
      PWCET_EXPECTS(std::find(st.call_stack.begin(), st.call_stack.end(),
                              s.callee) == st.call_stack.end());
      st.call_stack.push_back(s.callee);
      const Region r = instantiate(functions_[size_t(s.callee)].body, st);
      st.call_stack.pop_back();
      return r;
    }
  }
  PWCET_ASSERT(false);
  return {};
}

Program ProgramBuilder::build(FunctionId entry, Address base_address) {
  PWCET_EXPECTS(!built_);
  PWCET_EXPECTS(entry >= 0 && static_cast<size_t>(entry) < functions_.size());
  built_ = true;

  // Code layout: functions in declaration order.
  Address at = base_address;
  for (Function& f : functions_) {
    f.first_address = at;
    at = layout_stmt(f.body, at);
  }

  Program program;
  program.name_ = name_;
  program.code_size_bytes_ = at - base_address;

  BuildState st;
  st.program = &program;
  st.call_stack.push_back(entry);
  const Region body = instantiate(functions_[size_t(entry)].body, st);
  st.call_stack.pop_back();

  program.cfg_.set_entry(body.entry);
  program.cfg_.set_exit(body.exit);
  program.tree_root_ = body.tree;

  for (LoopInfo& loop : st.loops) program.cfg_.add_loop(std::move(loop));
  program.cfg_.validate();
  return program;
}

}  // namespace pwcet
