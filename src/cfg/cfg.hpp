// Control-flow graph with natural-loop metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/basic_block.hpp"
#include "support/types.hpp"

namespace pwcet {

/// A natural loop with a user-supplied iteration bound.
///
/// Bound semantics: per entry of the loop, the body executes at most
/// `bound` times; the header (loop test) executes at most `bound + 1` times.
/// In IPET this is expressed as  sum(back edges) <= bound * sum(entry edges).
struct LoopInfo {
  LoopId id = kNoLoop;
  LoopId parent = kNoLoop;       ///< enclosing loop, kNoLoop if top level
  BlockId header = kNoBlock;
  std::int64_t bound = 0;        ///< max body iterations per loop entry
  std::vector<BlockId> blocks;   ///< all blocks of the loop, incl. header
  std::vector<EdgeId> back_edges;   ///< edges latch -> header
  std::vector<EdgeId> entry_edges;  ///< edges from outside into the header
};

/// CFG of a fully inlined task. Single entry, single exit.
class ControlFlowGraph {
 public:
  ControlFlowGraph() = default;

  BlockId add_block(Address first_address, std::uint32_t instruction_count);
  EdgeId add_edge(BlockId source, BlockId target);

  /// Records the statically known data addresses block `b` loads.
  void set_data_addresses(BlockId b, std::vector<Address> addresses);

  /// Records the statically known data addresses block `b` stores to.
  void set_store_addresses(BlockId b, std::vector<Address> addresses);

  void set_entry(BlockId b) { entry_ = b; }
  void set_exit(BlockId b) { exit_ = b; }
  BlockId entry() const { return entry_; }
  BlockId exit() const { return exit_; }

  std::size_t block_count() const { return blocks_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  const BasicBlock& block(BlockId b) const { return blocks_[size_t(b)]; }
  const CfgEdge& edge(EdgeId e) const { return edges_[size_t(e)]; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const std::vector<CfgEdge>& edges() const { return edges_; }

  /// Loop metadata. Loops are registered by the program builder (exact) or
  /// recovered by `detect_natural_loops` (validation path).
  LoopId add_loop(LoopInfo info);
  const std::vector<LoopInfo>& loops() const { return loops_; }
  const LoopInfo& loop(LoopId l) const { return loops_[size_t(l)]; }

  /// Innermost loop containing the block, kNoLoop if none.
  LoopId innermost_loop(BlockId b) const;

  /// True if loop `outer` (or outer == inner) contains loop `inner`.
  bool loop_contains(LoopId outer, LoopId inner) const;

  /// Blocks in reverse post-order from the entry (ignoring back edges this
  /// is a topological order; used by the data-flow fixpoints for fast
  /// convergence).
  std::vector<BlockId> reverse_post_order() const;

  /// Basic structural sanity: entry/exit set, entry has no predecessors
  /// via non-loop paths requirement relaxed; all blocks reachable; every
  /// block reaches exit. Aborts on violation (programming error).
  void validate() const;

  /// Total number of instruction fetches if every block ran once.
  std::uint64_t total_instructions() const;

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<CfgEdge> edges_;
  std::vector<LoopInfo> loops_;
  mutable std::vector<LoopId> innermost_cache_;  // lazily built
  BlockId entry_ = kNoBlock;
  BlockId exit_ = kNoBlock;

  void build_innermost_cache() const;
};

}  // namespace pwcet
