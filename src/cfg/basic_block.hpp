// Basic blocks and control-flow edges of the analyzed task.
//
// The instruction-cache analysis only needs, per basic block, the contiguous
// range of instruction addresses it fetches; individual opcodes are
// irrelevant. This mirrors what a binary decoder (the paper uses MIPS
// R2000/R3000 binaries) would hand to the timing analyzer.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace pwcet {

/// Fixed instruction width (MIPS-style RISC encoding).
inline constexpr Address kInstructionBytes = 4;

using BlockId = std::int32_t;
using EdgeId = std::int32_t;
using LoopId = std::int32_t;

inline constexpr BlockId kNoBlock = -1;
inline constexpr LoopId kNoLoop = -1;

/// A maximal straight-line fetch sequence.
struct BasicBlock {
  BlockId id = kNoBlock;
  Address first_address = 0;        ///< address of the first instruction
  std::uint32_t instruction_count = 0;  ///< 0 allowed (synthetic join blocks)
  /// Data addresses this block loads, in program order (the data-cache
  /// extension of the paper's future work, §VI). Restricted to statically
  /// known addresses — scalars and lookup tables; input-dependent accesses
  /// are out of scope and must not be recorded here.
  std::vector<Address> data_addresses;
  /// Data addresses this block stores to, in program order. Same static
  /// restriction as `data_addresses`; consumed by the write-back D-cache
  /// domain (dirty-line state) and by the unified TLB/L2 streams.
  std::vector<Address> store_addresses;
  std::vector<EdgeId> out_edges;
  std::vector<EdgeId> in_edges;

  /// One-past-the-end fetch address.
  Address end_address() const {
    return first_address + instruction_count * kInstructionBytes;
  }
};

/// A directed control-flow edge.
struct CfgEdge {
  EdgeId id = -1;
  BlockId source = kNoBlock;
  BlockId target = kNoBlock;
};

}  // namespace pwcet
