// Execution-path generation over the structure tree.
//
// The validation tests and the MBPTA module need concrete, semantically
// valid executions: every generated block path respects branch structure
// and loop bounds, so any simulated time is a *real* execution time the
// static bounds must dominate.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/program.hpp"
#include "support/rng.hpp"

namespace pwcet {

/// A concrete execution as a sequence of basic blocks, entry to exit.
using BlockPath = std::vector<BlockId>;

/// Uniformly random structural walk: each if/else arm is a coin flip, each
/// loop iterates a uniform number of times in [0, bound].
BlockPath random_walk(const Program& program, Rng& rng);

/// Adversarial walk: every loop runs to its bound and every branch picks
/// the arm with the larger fetch weight (a heavy, though not necessarily
/// time-maximal, path).
BlockPath heavy_walk(const Program& program);

/// Walk with loops at their bound and branch arms chosen by `rng` — useful
/// to explore many maximal-iteration paths.
BlockPath full_iteration_walk(const Program& program, Rng& rng);

/// Expands a block path into the instruction-fetch address trace.
std::vector<Address> fetch_trace(const ControlFlowGraph& cfg,
                                 const BlockPath& path);

/// Number of fetches the heavy walk would produce (guards trace sizes).
std::uint64_t heavy_walk_fetch_count(const Program& program);

}  // namespace pwcet
