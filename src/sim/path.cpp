#include "sim/path.hpp"

#include "support/contracts.hpp"

namespace pwcet {
namespace {

/// Branch / iteration policy for one walk.
struct WalkPolicy {
  Rng* rng = nullptr;       // null => deterministic choices
  bool full_loops = false;  // loops run to bound
  bool heavy_alts = false;  // pick the fetch-heavier arm
  const std::vector<std::uint64_t>* weights = nullptr;  // memoized by heavy_walk
};

std::uint64_t subtree_fetch_weight(const Program& p, TreeId t) {
  const TreeNode& n = p.tree_node(t);
  switch (n.kind) {
    case TreeKind::kLeaf:
      return p.cfg().block(n.block).instruction_count;
    case TreeKind::kSeq: {
      std::uint64_t sum = 0;
      for (TreeId c : n.children) sum += subtree_fetch_weight(p, c);
      return sum;
    }
    case TreeKind::kAlt: {
      std::uint64_t best = 0;
      for (TreeId c : n.children)
        best = std::max(best, subtree_fetch_weight(p, c));
      return best;
    }
    case TreeKind::kLoop: {
      const std::uint64_t header = subtree_fetch_weight(p, n.children[0]);
      const std::uint64_t body = subtree_fetch_weight(p, n.children[1]);
      const auto b = static_cast<std::uint64_t>(n.bound);
      return (b + 1) * header + b * body;
    }
  }
  PWCET_ASSERT(false);
  return 0;
}

void walk(const Program& p, TreeId t, const WalkPolicy& policy,
          BlockPath& out) {
  const TreeNode& n = p.tree_node(t);
  switch (n.kind) {
    case TreeKind::kLeaf:
      out.push_back(n.block);
      return;
    case TreeKind::kSeq:
      for (TreeId c : n.children) walk(p, c, policy, out);
      return;
    case TreeKind::kAlt: {
      std::size_t pick = 0;
      if (policy.heavy_alts) {
        PWCET_ASSERT(policy.weights != nullptr);
        std::uint64_t best = 0;
        for (std::size_t i = 0; i < n.children.size(); ++i) {
          const std::uint64_t w = (*policy.weights)[size_t(n.children[i])];
          if (w > best) {
            best = w;
            pick = i;
          }
        }
      } else {
        PWCET_ASSERT(policy.rng != nullptr);
        pick = policy.rng->next_below(n.children.size());
      }
      walk(p, n.children[pick], policy, out);
      return;
    }
    case TreeKind::kLoop: {
      std::uint64_t iterations;
      if (policy.full_loops) {
        iterations = static_cast<std::uint64_t>(n.bound);
      } else {
        PWCET_ASSERT(policy.rng != nullptr);
        iterations =
            policy.rng->next_below(static_cast<std::uint64_t>(n.bound) + 1);
      }
      // Execution shape: header, then (body, header) per iteration.
      walk(p, n.children[0], policy, out);
      for (std::uint64_t i = 0; i < iterations; ++i) {
        walk(p, n.children[1], policy, out);
        walk(p, n.children[0], policy, out);
      }
      return;
    }
  }
  PWCET_ASSERT(false);
}

}  // namespace

BlockPath random_walk(const Program& program, Rng& rng) {
  WalkPolicy policy;
  policy.rng = &rng;
  BlockPath path;
  walk(program, program.tree_root(), policy, path);
  return path;
}

BlockPath heavy_walk(const Program& program) {
  // Memoize subtree weights so repeated Alt visits inside loops stay O(1).
  std::vector<std::uint64_t> weights(program.tree().size());
  for (std::size_t t = 0; t < program.tree().size(); ++t)
    weights[t] = subtree_fetch_weight(program, static_cast<TreeId>(t));
  WalkPolicy policy;
  policy.full_loops = true;
  policy.heavy_alts = true;
  policy.weights = &weights;
  BlockPath path;
  walk(program, program.tree_root(), policy, path);
  return path;
}

BlockPath full_iteration_walk(const Program& program, Rng& rng) {
  WalkPolicy policy;
  policy.rng = &rng;
  policy.full_loops = true;
  BlockPath path;
  walk(program, program.tree_root(), policy, path);
  return path;
}

std::vector<Address> fetch_trace(const ControlFlowGraph& cfg,
                                 const BlockPath& path) {
  std::vector<Address> trace;
  std::uint64_t total = 0;
  for (BlockId b : path) total += cfg.block(b).instruction_count;
  trace.reserve(total);
  for (BlockId b : path) {
    const BasicBlock& block = cfg.block(b);
    for (std::uint32_t i = 0; i < block.instruction_count; ++i)
      trace.push_back(block.first_address + i * kInstructionBytes);
  }
  return trace;
}

std::uint64_t heavy_walk_fetch_count(const Program& program) {
  return subtree_fetch_weight(program, program.tree_root());
}

}  // namespace pwcet
