#include "sim/cache_sim.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace pwcet {

CacheSimulator::CacheSimulator(const CacheConfig& config, FaultMap faults,
                               Mechanism mechanism)
    : config_(config),
      faults_(std::move(faults)),
      mechanism_(mechanism),
      lru_(config.sets) {
  config_.validate();
  PWCET_EXPECTS(faults_.sets() == config.sets &&
                faults_.ways() == config.ways);
  stats_.misses_per_set.assign(config.sets, 0);
}

std::uint32_t CacheSimulator::usable_ways(SetIndex s) const {
  std::uint32_t usable = 0;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    const bool masked_by_rw =
        mechanism_ == Mechanism::kReliableWay && w == 0;
    if (masked_by_rw || !faults_.is_faulty(s, w)) ++usable;
  }
  return usable;
}

bool CacheSimulator::lookup_lru(SetIndex s, LineAddress line) {
  auto& stack = lru_[s];
  const auto it = std::find(stack.begin(), stack.end(), line);
  if (it != stack.end()) {
    // Hit: move to MRU position.
    stack.erase(it);
    stack.insert(stack.begin(), line);
    return true;
  }
  // Miss: insert at MRU, evict LRU if the usable capacity is exceeded.
  stack.insert(stack.begin(), line);
  if (stack.size() > usable_ways(s)) stack.pop_back();
  return false;
}

bool CacheSimulator::fetch(Address address) {
  const LineAddress line = config_.line_of(address);
  const SetIndex s = config_.set_of_line(line);
  const std::uint32_t usable = usable_ways(s);

  bool hit = false;
  if (usable > 0) {
    hit = lookup_lru(s, line);
  } else if (mechanism_ == Mechanism::kSharedReliableBuffer) {
    // Set fully faulty: the SRB is consulted and refilled on miss.
    hit = srb_valid_ && srb_line_ == line;
    if (hit) {
      ++stats_.srb_hits;
    } else {
      srb_valid_ = true;
      srb_line_ = line;
    }
  }
  // kNone with a fully faulty set: unconditional miss (hit stays false).

  ++stats_.fetches;
  stats_.cycles += config_.hit_latency;
  if (!hit) {
    ++stats_.misses;
    ++stats_.misses_per_set[s];
    stats_.cycles += config_.miss_penalty;
  }
  return hit;
}

void CacheSimulator::run(const std::vector<Address>& trace) {
  for (Address a : trace) fetch(a);
}

SimStats simulate_trace(const CacheConfig& config, const FaultMap& faults,
                        Mechanism mechanism,
                        const std::vector<Address>& trace) {
  CacheSimulator sim(config, faults, mechanism);
  sim.run(trace);
  return sim.stats();
}

WritebackCacheSimulator::WritebackCacheSimulator(const CacheConfig& config,
                                                 FaultMap faults,
                                                 Mechanism mechanism)
    : config_(config),
      faults_(std::move(faults)),
      mechanism_(mechanism),
      lru_(config.sets) {
  config_.validate();
  PWCET_EXPECTS(faults_.sets() == config.sets &&
                faults_.ways() == config.ways);
}

std::uint32_t WritebackCacheSimulator::usable_ways(SetIndex s) const {
  std::uint32_t usable = 0;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    const bool masked_by_rw =
        mechanism_ == Mechanism::kReliableWay && w == 0;
    if (masked_by_rw || !faults_.is_faulty(s, w)) ++usable;
  }
  return usable;
}

bool WritebackCacheSimulator::access(Address address, bool is_store) {
  const LineAddress line = config_.line_of(address);
  const SetIndex s = config_.set_of_line(line);
  const std::uint32_t usable = usable_ways(s);

  bool hit = false;
  if (usable > 0) {
    auto& stack = lru_[s];
    const auto it = std::find_if(
        stack.begin(), stack.end(),
        [line](const Way& w) { return w.line == line; });
    if (it != stack.end()) {
      Way way = *it;
      way.dirty = way.dirty || is_store;
      stack.erase(it);
      stack.insert(stack.begin(), way);
      hit = true;
    } else {
      // Write-allocate: stores insert their line dirty.
      stack.insert(stack.begin(), {line, is_store});
      if (stack.size() > usable) {
        if (stack.back().dirty) ++stats_.writebacks;
        stack.pop_back();
      }
    }
  } else if (mechanism_ == Mechanism::kSharedReliableBuffer) {
    hit = srb_valid_ && srb_line_ == line;
    if (hit) {
      srb_dirty_ = srb_dirty_ || is_store;
    } else {
      if (srb_valid_ && srb_dirty_) ++stats_.writebacks;
      srb_valid_ = true;
      srb_line_ = line;
      srb_dirty_ = is_store;
    }
  }
  // kNone with a fully faulty set caches nothing: unconditional miss, and
  // no line ever becomes dirty there, so no write-backs either.

  ++stats_.accesses;
  if (!hit) ++stats_.misses;
  return hit;
}

}  // namespace pwcet
