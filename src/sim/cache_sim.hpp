// Cycle-accurate instruction-cache simulator with permanent faults and the
// two reliability mechanisms of the paper (§III-A).
//
// Semantics:
//  * kNone — faulty blocks are disabled; the LRU stack of a set shrinks by
//    its number of faulty blocks (§II-A). A fully faulty set caches nothing:
//    every fetch mapping there misses.
//  * kReliableWay — way 0 is hardened; a fault recorded there is masked, so
//    every set keeps at least one usable way.
//  * kSharedReliableBuffer — one hardened line-sized buffer shared by all
//    sets, looked up only when the referenced set is fully faulty; on an SRB
//    miss the missing line is loaded into the SRB (§III-A.2).
//
// This is the validation oracle for the static analysis: simulated times
// must never exceed the static bounds.
#pragma once

#include <vector>

#include "cache/cache_config.hpp"
#include "fault/fault_map.hpp"
#include "fault/fault_model.hpp"
#include "support/types.hpp"

namespace pwcet {

/// Aggregate statistics of one simulated run.
struct SimStats {
  Cycles cycles = 0;
  std::uint64_t fetches = 0;
  std::uint64_t misses = 0;
  std::uint64_t srb_hits = 0;
  std::vector<std::uint64_t> misses_per_set;
};

/// Stateful simulator; create one per run (starts with a cold cache).
class CacheSimulator {
 public:
  CacheSimulator(const CacheConfig& config, FaultMap faults,
                 Mechanism mechanism);

  /// Simulates one instruction fetch; returns true on hit (cache or SRB).
  bool fetch(Address address);

  /// Runs a whole fetch trace through `this`.
  void run(const std::vector<Address>& trace);

  const SimStats& stats() const { return stats_; }

  /// Usable LRU depth of a set under the configured mechanism.
  std::uint32_t usable_ways(SetIndex s) const;

 private:
  bool lookup_lru(SetIndex s, LineAddress line);

  CacheConfig config_;
  FaultMap faults_;
  Mechanism mechanism_;
  // Per set: MRU-first stack of resident lines (size <= usable ways).
  std::vector<std::vector<LineAddress>> lru_;
  bool srb_valid_ = false;
  LineAddress srb_line_ = 0;
  SimStats stats_;
};

/// Convenience wrapper: cold-start simulation of a trace.
SimStats simulate_trace(const CacheConfig& config, const FaultMap& faults,
                        Mechanism mechanism,
                        const std::vector<Address>& trace);

/// Statistics of one write-back simulation. `writebacks` counts dirty
/// evictions (normal sets and the SRB alike); residual dirty lines at the
/// end of the run are not flushed and not counted.
struct WritebackSimStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
};

/// Write-back, write-allocate variant of CacheSimulator — the exhaustive
/// oracle for WritebackDcacheDomain. Replacement (LRU over the usable
/// ways, SRB for fully faulty sets) is identical to CacheSimulator; the
/// additions are the per-line dirty bit set by store hits and allocating
/// stores, and the write-back count bumped whenever a dirty victim is
/// evicted (including a dirty SRB line displaced by an SRB refill).
class WritebackCacheSimulator {
 public:
  WritebackCacheSimulator(const CacheConfig& config, FaultMap faults,
                          Mechanism mechanism);

  /// Simulates one data access; returns true on hit (cache or SRB).
  bool access(Address address, bool is_store);

  const WritebackSimStats& stats() const { return stats_; }

 private:
  std::uint32_t usable_ways(SetIndex s) const;

  CacheConfig config_;
  FaultMap faults_;
  Mechanism mechanism_;
  struct Way {
    LineAddress line = 0;
    bool dirty = false;
  };
  // Per set: MRU-first stack of resident lines (size <= usable ways).
  std::vector<std::vector<Way>> lru_;
  bool srb_valid_ = false;
  bool srb_dirty_ = false;
  LineAddress srb_line_ = 0;
  WritebackSimStats stats_;
};

}  // namespace pwcet
