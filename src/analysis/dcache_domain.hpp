/// \file
/// DcacheDomain — the data-cache plugin of the pWCET pipeline.
///
/// Scope (paper §VI future work): loads from *statically known* addresses
/// — scalars, constant tables, spill slots — recorded per basic block by
/// the program builder. Input-dependent accesses are outside this
/// extension's scope (sound treatment would classify them not-classified;
/// they simply cannot be expressed). Stores are not modeled (read-only
/// data, or write-through / no-allocate semantics).
///
/// Under these restrictions the data cache is formally identical to the
/// instruction cache — an address stream per block — so the Must/May/
/// persistence analyses, the FMM delta machinery and the penalty pipeline
/// apply verbatim to the *data* reference map; only three things are the
/// domain's own: the reference extraction (data addresses, not fetches),
/// the time-model contribution (miss penalties only — the load
/// instruction's execution cycle is already charged as an instruction
/// fetch by the primary domain), and the store-key sub-domain
/// ("pwcet-dcache-rows-v1": a data reference map must never alias an
/// instruction one, even when the two cache configs coincide).
///
/// A secondary domain (standalone() == false): it must be composed after
/// a primary domain that charges the execution-time base costs.
#pragma once

#include <cstdint>

#include "analysis/cache_domain.hpp"

namespace pwcet {

/// Extracts the per-block *data* line references (analogue of
/// extract_references for instruction fetches). Consecutive same-line
/// loads within a block merge, mirroring spatial locality.
ReferenceMap extract_data_references(const ControlFlowGraph& cfg,
                                     const CacheConfig& dcache);

/// Total data accesses recorded for a block.
std::uint64_t block_loads(const ControlFlowGraph& cfg, BlockId b);

class DcacheDomain final : public CacheDomain {
 public:
  explicit DcacheDomain(const CacheConfig& config) : config_(config) {
    config_.validate();
  }

  std::string_view name() const override { return "dcache"; }
  const CacheConfig& config() const override { return config_; }
  bool standalone() const override { return false; }

  StoreKey row_key_prefix(const Program& program,
                          WcetEngine engine) const override;

  ReferenceMap extract(const Program& program) const override {
    return extract_data_references(program.cfg(), config_);
  }

  CostModel time_cost_model(const Program& program, const ReferenceMap& refs,
                            const ClassificationMap& cls) const override;

 private:
  CacheConfig config_;
};

}  // namespace pwcet
