/// \file
/// L2Domain — shared second-level cache plugin.
///
/// Models a lookup-through unified L2 behind the L1 domains: every
/// reference the core issues — instruction fetch, load, store — probes
/// the L2 in parallel with (or immediately after) its L1 access, and an
/// L2 miss adds `miss_penalty` cycles for the memory refill. The stream
/// is therefore the block's unified access sequence at L2 line
/// granularity (extract_unified_references), independent of the L1s'
/// hit/miss outcomes.
///
/// That independence is what keeps the composition sound: filtering the
/// L2 stream by L1 misses would couple the L2 classification to the L1
/// *fault state*, breaking the pipeline's per-domain independence (the
/// fixed-shape cross-domain convolution multiplies per-domain atom
/// probabilities, which requires each domain's miss bound to hold for
/// every fault map of the others). In the lookup-through model the L2
/// reference stream is fault-invariant, so the standard classification /
/// FMM / pwf machinery applies verbatim and the per-domain penalties
/// compose by plain addition — exactly the shape the convolution expects.
///
/// The domain charges incremental L2 miss penalties only; L2 hit latency
/// is folded into the L1 costs the primary domain charges. A secondary
/// domain (standalone() == false); rows live under "pwcet-l2-rows-v1",
/// and its core-key contribution rides the "pwcet-ncore-v1" chaining
/// recipe.
#pragma once

#include "analysis/cache_domain.hpp"
#include "analysis/domain_support.hpp"

namespace pwcet {

class L2Domain final : public CacheDomain {
 public:
  explicit L2Domain(const CacheConfig& geometry) : config_(geometry) {
    config_.validate();
  }

  std::string_view name() const override { return "l2"; }
  const CacheConfig& config() const override { return config_; }
  bool standalone() const override { return false; }

  StoreKey row_key_prefix(const Program& program,
                          WcetEngine engine) const override;

  ReferenceMap extract(const Program& program) const override {
    return extract_unified_references(program.cfg(), config_);
  }

  CostModel time_cost_model(const Program& program, const ReferenceMap& refs,
                            const ClassificationMap& cls) const override {
    return secondary_miss_cost_model(program.cfg(), refs, cls,
                                     config_.miss_penalty);
  }

 private:
  CacheConfig config_;
};

}  // namespace pwcet
