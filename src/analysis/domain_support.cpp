#include "analysis/domain_support.hpp"

#include "cfg/basic_block.hpp"

namespace pwcet {

namespace {

void append_line(std::vector<LineRef>& seq, const CacheConfig& config,
                 Address a) {
  const LineAddress line = config.line_of(a);
  if (!seq.empty() && seq.back().line == line) {
    ++seq.back().fetches;
  } else {
    seq.push_back({line, config.set_of_line(line), 1});
  }
}

}  // namespace

ReferenceMap extract_unified_references(const ControlFlowGraph& cfg,
                                        const CacheConfig& config) {
  config.validate();
  ReferenceMap refs(cfg.block_count());
  for (const BasicBlock& b : cfg.blocks()) {
    auto& seq = refs[size_t(b.id)];
    for (std::uint32_t i = 0; i < b.instruction_count; ++i)
      append_line(seq, config, b.first_address + i * kInstructionBytes);
    for (Address a : b.data_addresses) append_line(seq, config, a);
    for (Address a : b.store_addresses) append_line(seq, config, a);
  }
  return refs;
}

ReferenceMap extract_data_access_references(const ControlFlowGraph& cfg,
                                            const CacheConfig& config) {
  config.validate();
  ReferenceMap refs(cfg.block_count());
  for (const BasicBlock& b : cfg.blocks()) {
    auto& seq = refs[size_t(b.id)];
    for (Address a : b.data_addresses) append_line(seq, config, a);
    for (Address a : b.store_addresses) append_line(seq, config, a);
  }
  return refs;
}

CostModel secondary_miss_cost_model(const ControlFlowGraph& cfg,
                                    const ReferenceMap& refs,
                                    const ClassificationMap& cls,
                                    Cycles miss_penalty) {
  CostModel model = CostModel::zero(cfg);
  const auto miss = static_cast<double>(miss_penalty);
  for (const BasicBlock& block : cfg.blocks()) {
    for (std::size_t i = 0; i < refs[size_t(block.id)].size(); ++i) {
      const RefClass& ref_class = cls[size_t(block.id)][i];
      switch (ref_class.chmc) {
        case Chmc::kAlwaysHit:
          break;
        case Chmc::kAlwaysMiss:
        case Chmc::kNotClassified:
          model.block_cost[size_t(block.id)] += miss;
          break;
        case Chmc::kFirstMiss:
          if (ref_class.scope == kNoLoop)
            model.root_entry_cost += miss;
          else
            model.loop_entry_cost[size_t(ref_class.scope)] += miss;
          break;
      }
    }
  }
  return model;
}

}  // namespace pwcet
