/// \file
/// TlbDomain — the translation-lookaside-buffer plugin of the pWCET
/// pipeline.
///
/// The TLB is a cache of page translations: set-associative over the
/// *page number*, so it is expressed here as a CacheConfig whose
/// `line_bytes` is the page size and whose sets x ways product is the
/// entry count (geometry axis: entries / ways / page_bytes). A TLB entry
/// covers every instruction fetch, load and store to its page, so the
/// domain's reference stream is the block's *unified* access sequence —
/// fetches, then loads, then stores — at page granularity
/// (extract_unified_references); consecutive same-page accesses merge
/// into one reference whose `fetches` count prices the catastrophic
/// fully-faulty case exactly like the instruction cache's.
///
/// With the stream fixed, the Must/May/persistence classification, the
/// FMM delta machinery and the fault model's faulty-way weighting apply
/// verbatim — translation entries fault like cache lines (the paper's
/// fabrication-fault model is structure-agnostic SRAM bit failure). The
/// domain charges only incremental TLB miss penalties: a translation hit
/// is folded into the fetch latency the primary domain already charges.
///
/// A secondary domain (standalone() == false); its FMM rows live under
/// the "pwcet-tlb-rows-v1" sub-domain so a page-granular stream can never
/// alias an instruction- or data-line stream, and its core-key
/// contribution rides the "pwcet-ncore-v1" chaining recipe (the pipeline
/// mixes the domain *name*, so no shipped two-domain key can collide).
#pragma once

#include "analysis/cache_domain.hpp"
#include "analysis/domain_support.hpp"

namespace pwcet {

class TlbDomain final : public CacheDomain {
 public:
  /// `geometry.line_bytes` is the page size; `geometry.sets * ways` the
  /// TLB entry count; `geometry.miss_penalty` the page-walk cost.
  explicit TlbDomain(const CacheConfig& geometry) : config_(geometry) {
    config_.validate();
  }

  std::string_view name() const override { return "tlb"; }
  const CacheConfig& config() const override { return config_; }
  bool standalone() const override { return false; }

  StoreKey row_key_prefix(const Program& program,
                          WcetEngine engine) const override;

  ReferenceMap extract(const Program& program) const override {
    return extract_unified_references(program.cfg(), config_);
  }

  CostModel time_cost_model(const Program& program, const ReferenceMap& refs,
                            const ClassificationMap& cls) const override {
    return secondary_miss_cost_model(program.cfg(), refs, cls,
                                     config_.miss_penalty);
  }

 private:
  CacheConfig config_;
};

}  // namespace pwcet
