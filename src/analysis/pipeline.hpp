/// \file
/// PwcetPipeline — the single pWCET analysis flow, composing N >= 1
/// CacheDomains (the paper's contribution, §II-B/C and §III-B).
///
/// Given a task, a list of cache domains (analysis/cache_domain.hpp), a
/// cell failure probability and per-domain reliability mechanisms,
/// produces the pWCET distribution:
///
///   1. fault-free WCET: each domain's reference stream is classified
///      against its geometry, the per-domain time models are summed, and a
///      single static maximization (IPET §II-B or the loop-tree engine)
///      bounds the whole program;
///   2. per-domain FMM via per-(set, fault-count) delta maximization
///      (§II-C, §III-B);
///   3. per-set penalty distributions {(miss_penalty * FMM[s][f], pwf(f))}
///      with pwf from Eq. (2) (none/SRB) or Eq. (3) (RW);
///   4. convolution across independent sets (Fig. 1.b), then across
///      domains (physically disjoint SRAM arrays fail independently), both
///      with conservative support coalescing and a fixed reduction shape;
///   5. pWCET(p) = fault-free WCET + penalty quantile at exceedance p.
///
/// One domain gives the paper's instruction-cache analysis; [icache,
/// dcache] gives the combined I+D extension; any further domain composes
/// the same way. The legacy analyzer classes (core/pwcet_analyzer.hpp,
/// dcache/dcache_analysis.hpp) are thin facades over this pipeline.
///
/// Store-key compatibility contract: the pipeline core key of a
/// single-IcacheDomain composition is the historical "pwcet-core-v1"
/// recipe (pwcet_core_key), that of the [IcacheDomain, DcacheDomain] pair
/// is the historical "pwcet-dcore-v1" recipe, and the per-result /
/// per-set-penalty / per-row keys reproduce the pre-pipeline analyzers'
/// keys bit for bit — so memo and artifact stores written before this
/// refactor keep hitting after it (pinned by
/// tests/analysis_pipeline_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "analysis/cache_domain.hpp"
#include "prob/discrete_distribution.hpp"
#include "store/key.hpp"

namespace pwcet {

class AnalysisStore;
class ThreadPool;
struct PenaltyBundle;

struct PwcetOptions {
  /// Engine for the fault-free WCET and the FMM delta maximizations.
  WcetEngine engine = WcetEngine::kIlp;
  /// Max support points kept between convolutions (conservative
  /// coalescing; larger = tighter, slower).
  std::size_t max_distribution_points = 2048;
  /// Optional worker pool (engine/thread_pool.hpp). When set, the
  /// independent per-set work — penalty-distribution construction, the
  /// pairwise convolution rounds, and (tree engine only) the FMM rows —
  /// fans out across the pool. Results are identical with and without a
  /// pool, at any thread count: work is partitioned by set index and the
  /// convolution tree has a fixed shape. The pool must outlive the
  /// pipeline; nullptr runs everything on the calling thread.
  ThreadPool* pool = nullptr;
  /// Optional content-addressed store (store/analysis_store.hpp), which
  /// memoizes three layers: the pipeline core (fault-free WCET + all
  /// domains' FMM bundles, including the tree engine's per-set rows),
  /// per-set penalty distributions (content-addressed on the FMM row
  /// itself, so identical rows share across sets, mechanisms, domains and
  /// even tasks), and whole per-(mechanisms, pfail) results — the latter
  /// also persisted to disk when the store has an artifact tier. Every key
  /// captures all inputs of the computation it names and every computation
  /// is deterministic, so results with a store are byte-identical to cold
  /// recomputation at any thread count (asserted by tests/store_test.cpp).
  /// The store must outlive the pipeline; nullptr computes from scratch.
  AnalysisStore* store = nullptr;
};

/// One (exceedance probability, pWCET) point of the CCDF.
struct CcdfPoint {
  Cycles wcet = 0;
  Probability exceedance = 0.0;
};

/// Full result of one mechanism assignment.
struct PwcetResult {
  Mechanism mechanism = Mechanism::kNone;  ///< primary domain's mechanism
  Cycles fault_free_wcet = 0;
  DiscreteDistribution penalty;  ///< fault-induced penalty (cycles)
  FaultMissMap fmm;              ///< primary domain's FMM for `mechanism`

  /// pWCET at exceedance probability p: the value the WCET random variable
  /// exceeds with probability at most p (e.g. p = 1e-15 for Fig. 4).
  Cycles pwcet(Probability p) const {
    return fault_free_wcet + penalty.quantile_exceedance(p);
  }

  /// Exceedance probability of a given WCET value (Fig. 3 y-axis).
  Probability exceedance(Cycles wcet) const {
    return penalty.exceedance(wcet - fault_free_wcet);
  }

  /// The CCDF as explicit points (one per penalty support atom).
  std::vector<CcdfPoint> ccdf() const;
};

/// Per-set penalty-distribution pipeline shared by every domain: builds
/// one distribution per set (atom value = miss_penalty * ceil(FMM[s][f]),
/// probability pwf[f]) and combines the independent sets with the
/// fixed-shape pairwise convolution tree. With a store, each set's
/// distribution is memoized under a content key (FMM row, pwf, miss
/// penalty) so identical rows share across sets, mechanisms, domains and
/// even tasks. Deterministic: identical bits at any thread count, store
/// on or off.
DiscreteDistribution build_penalty_distribution(
    const FaultMissMap& fmm, const CacheConfig& config,
    const std::vector<Probability>& pwf, std::size_t max_points,
    ThreadPool* pool, AnalysisStore* store);

/// Pipeline bound to one (program, domain list) pair. The expensive
/// shared work (reference extraction, fault-free classification, the
/// single IPET/tree phase-1 maximization, all FMM bundles) is done once
/// in the constructor — memoized all-or-nothing under the core key — and
/// reused across mechanisms and pfail values.
class PwcetPipeline {
 public:
  /// `domains` must be non-empty and its first entry standalone()
  /// (secondary domains charge incremental penalties only and cannot lead
  /// a composition). The program must outlive the pipeline; domains are
  /// shared (immutable) and kept alive by the pipeline.
  PwcetPipeline(const Program& program,
                std::vector<std::shared_ptr<const CacheDomain>> domains,
                const PwcetOptions& options = {});

  /// Fault-free (deterministic) WCET in cycles, all domains included.
  Cycles fault_free_wcet() const { return fault_free_wcet_; }

  /// pWCET analysis with one mechanism per domain (same order as the
  /// domain list; must match its length).
  PwcetResult analyze(const FaultModel& faults,
                      const std::vector<Mechanism>& mechanisms) const;

  /// pWCET analysis with the same mechanism deployed on every domain.
  PwcetResult analyze(const FaultModel& faults, Mechanism mechanism) const;

  const Program& program() const { return program_; }
  std::size_t domain_count() const { return domains_.size(); }
  const CacheDomain& domain(std::size_t i) const { return *domains_[i]; }

  /// FMM bundle of domain i (same order as the domain list).
  const FmmBundle& fmm(std::size_t i) const { return fmms_[i]; }

  /// Store key of the pipeline core: program content x every domain's
  /// chained contribution x engine — the prefix every per-result key
  /// chains from. See the header comment for the compatibility contract.
  const StoreKey& core_key() const { return core_key_; }

 private:
  /// The pfail-independent re-weighting bundle of one mechanism
  /// assignment: per-domain penalty scaffolding ("pwcet-bundle-v1",
  /// store/key.hpp) shared by every pfail point that analyze() sees.
  /// Cached per instance (so store-less runs share too) and, with a
  /// store, memoized across pipelines under the bundle key.
  std::shared_ptr<const PenaltyBundle> acquire_bundle(
      const std::vector<Mechanism>& mechanisms) const;

  const Program& program_;
  std::vector<std::shared_ptr<const CacheDomain>> domains_;
  PwcetOptions options_;
  Cycles fault_free_wcet_ = 0;
  std::vector<FmmBundle> fmms_;
  StoreKey core_key_;
  mutable std::mutex bundle_mutex_;
  mutable std::map<std::vector<Mechanism>,
                   std::shared_ptr<const PenaltyBundle>>
      bundle_cache_;
};

}  // namespace pwcet
