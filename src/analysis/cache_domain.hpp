/// \file
/// CacheDomain — the pluggable unit of the pWCET analysis pipeline.
///
/// The paper's analysis is one pipeline: classify a reference stream
/// against a cache geometry, bound the fault-induced misses per (set,
/// fault-count) cell (the FMM), weight the rows by the fault model's
/// faulty-way distribution, and convolve the independent sets into a
/// penalty distribution. Everything that varies between "the instruction
/// cache" and "the data cache" — and between those and any future
/// cache-like structure (shared L2, TLB, scratchpad, per-core split) — is
/// *which references* are analyzed, *how they cost* into the fault-free
/// time model, and *which store-key sub-domain* names the memoized
/// results. A CacheDomain owns exactly those choices; PwcetPipeline
/// (analysis/pipeline.hpp) owns everything they share.
///
/// A domain therefore provides:
///   * its reference stream (`extract`) and cache geometry (`config`);
///   * its fault-free classification (`classify`; defaults to the Must/
///     May/persistence analyses, which apply verbatim to any per-block
///     ordered line-address stream);
///   * its contribution to the fault-free time model (`time_cost_model`);
///   * its FMM bundle (`fmm_bundle`; defaults to the shared per-set delta
///     maximization of wcet/fmm.hpp);
///   * its faulty-way weighting (`pwf`; defaults to the fault model's
///     Eq. 2/3 pmf for its geometry);
///   * its store-key sub-domain: the contribution it chains into the
///     pipeline core key (`mix_core_key`) and the prefix under which its
///     per-set FMM rows are memoized (`row_key_prefix`). Two domains whose
///     reference streams differ for the same (program, config, engine)
///     MUST NOT share either — see dcache_domain.hpp for how the shipped
///     data-cache domain keeps its rows from aliasing instruction rows.
///
/// The two shipped plugins are IcacheDomain (analysis/icache_domain.hpp)
/// and DcacheDomain (analysis/dcache_domain.hpp); a ~100-line subclass is
/// all a new cache-like scenario needs (tests/analysis_pipeline_test.cpp
/// registers a synthetic third domain to prove the composition).
#pragma once

#include <string_view>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/references.hpp"
#include "cfg/program.hpp"
#include "fault/fault_model.hpp"
#include "icache/chmc.hpp"
#include "store/key.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/fmm.hpp"

namespace pwcet {

class AnalysisStore;
class ThreadPool;

/// One cache-like structure analyzed by the pipeline. Implementations must
/// be immutable after construction and callable from multiple pool threads
/// concurrently (every method is a pure function of its arguments and the
/// construction-time configuration).
class CacheDomain {
 public:
  virtual ~CacheDomain() = default;

  /// Short stable identifier ("icache", "dcache", ...). Used in
  /// diagnostics and, for compositions beyond the two shipped recipes, in
  /// the pipeline's chained core key (pipeline.cpp) — so the name must
  /// never change once results are persisted under it.
  virtual std::string_view name() const = 0;

  /// The cache geometry this domain analyzes: sets/ways shape the FMM and
  /// the pwf, miss_penalty prices the per-set penalty atoms.
  virtual const CacheConfig& config() const = 0;

  /// Whether the domain may *lead* a pipeline (be its first — or only —
  /// domain). Secondary domains (DcacheDomain) charge only incremental
  /// miss penalties and rely on a primary domain for the execution-time
  /// base costs, so composing them alone would be meaningless — and their
  /// plain-config core-key contribution could alias a primary domain's.
  virtual bool standalone() const { return true; }

  /// Chains this domain's configuration into the pipeline core key.
  /// The default mixes the full cache-config hash, which is what both
  /// shipped recipes ("pwcet-core-v1", "pwcet-dcore-v1") expect — override
  /// only to mix *additional* distinguishing content (a synthetic domain's
  /// name, a partition mask, ...), never less.
  virtual void mix_core_key(KeyHasher& hasher) const;

  /// Store-key prefix under which this domain's per-set FMM rows are
  /// memoized (chained with the set index; see compute_fmm_bundle). Must
  /// cover program, config and engine, and must be unique to the domain's
  /// reference-stream semantics: the shipped instruction domain uses the
  /// single-cache analyzer-core recipe so both analyzer flavours share
  /// rows, while the data domain owns a distinct "pwcet-dcache-rows-v1"
  /// sub-domain (a data reference map must never alias an instruction one
  /// even when the two cache configs coincide).
  virtual StoreKey row_key_prefix(const Program& program,
                                  WcetEngine engine) const = 0;

  /// The domain's reference stream: per-block ordered line references.
  virtual ReferenceMap extract(const Program& program) const = 0;

  /// Fault-free classification of the domain's references. Default: the
  /// Must/May/persistence analyses over `config()` (classify_fault_free),
  /// which are stream-agnostic — they see only lines, sets and order.
  virtual ClassificationMap classify(const Program& program,
                                     const ReferenceMap& refs) const;

  /// The domain's contribution to the fault-free time model. Contributions
  /// of all domains are summed and maximized once (a single IPET/tree pass
  /// bounds the whole program), so each domain must charge only the cycles
  /// it owns: the primary domain charges fetch latencies plus its miss
  /// penalties; secondary domains charge incremental miss penalties only.
  virtual CostModel time_cost_model(const Program& program,
                                    const ReferenceMap& refs,
                                    const ClassificationMap& cls) const = 0;

  /// Per-set fault-miss-map bundle (all three mechanisms). Default: the
  /// shared delta-maximization machinery (compute_fmm_bundle) with this
  /// domain's rows memoized under `row_prefix`.
  virtual FmmBundle fmm_bundle(const Program& program,
                               const ReferenceMap& refs, WcetEngine engine,
                               IpetCalculator* ipet, ThreadPool* pool,
                               AnalysisStore* store,
                               const StoreKey* row_prefix) const;

  /// Faulty-way weighting pwf(f) for one mechanism deployed on this
  /// domain. Default: the fault model's per-set pmf over `config()`
  /// (Eq. 2 for none/SRB, Eq. 3 for RW).
  virtual std::vector<Probability> pwf(const FaultModel& faults,
                                       Mechanism mechanism) const;
};

}  // namespace pwcet
