#include "analysis/pipeline.hpp"

#include <cmath>
#include <cstdlib>
#include <optional>
#include <string_view>
#include <utility>

#include "analysis/icache_domain.hpp"
#include "engine/thread_pool.hpp"
#include "obs/phase.hpp"
#include "store/analysis_store.hpp"
#include "support/contracts.hpp"
#include "wcet/ipet.hpp"
#include "wcet/tree_engine.hpp"

namespace pwcet {

/// Pfail-independent penalty scaffolding of one (pipeline core, per-domain
/// mechanism assignment) pair — everything analyze() needs below the pwf
/// weighting. A pfail sweep resolves every point to the same bundle
/// ("pwcet-bundle-v1" deliberately omits the fault probability) and pays
/// only the re-weighting and the final convolution fold per point.
struct PenaltyBundle {
  struct Domain {
    /// Distinct FMM rows, numbered in first-set order; `row_of_set` maps
    /// each cache set to its row. Sets sharing a row (untouched sets,
    /// symmetric layouts) share one penalty distribution per pfail and
    /// one subtree per convolution round.
    std::vector<std::uint32_t> row_of_set;
    /// Raw per-row miss counts — kept verbatim because they are the
    /// "set-penalty-v1" key material (re-weighted and from-scratch runs
    /// must share that memo layer bit for bit).
    std::vector<std::vector<double>> rows;
    /// Precomputed atom values per row: ceil(misses) * miss_penalty, the
    /// same arithmetic build_penalty_distribution applies per set.
    std::vector<std::vector<Cycles>> penalties;
  };
  std::vector<Domain> domains;  ///< one per pipeline domain, in order
};

namespace {

/// Escape hatch for the re-weighting layer (PWCET_REWEIGHT=0 restores the
/// per-cell from-scratch path). Both paths are bit-identical — CI diffs
/// them — so this exists only to prove that claim and to bisect.
bool reweight_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("PWCET_REWEIGHT");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return enabled;
}

PenaltyBundle::Domain build_domain_scaffold(const FaultMissMap& fmm,
                                            const CacheConfig& config) {
  PenaltyBundle::Domain domain;
  domain.row_of_set.resize(fmm.misses.size());
  std::map<std::vector<double>, std::uint32_t> seen;
  for (std::size_t s = 0; s < fmm.misses.size(); ++s) {
    const auto [it, inserted] = seen.emplace(
        fmm.misses[s], static_cast<std::uint32_t>(domain.rows.size()));
    if (inserted) {
      domain.rows.push_back(fmm.misses[s]);
      std::vector<Cycles> penalties;
      penalties.reserve(fmm.misses[s].size());
      for (const double misses : fmm.misses[s])
        penalties.push_back(static_cast<Cycles>(
            std::ceil(misses - 1e-6) *
            static_cast<double>(config.miss_penalty)));
      domain.penalties.push_back(std::move(penalties));
    }
    domain.row_of_set[s] = it->second;
  }
  return domain;
}

/// The re-weighted counterpart of build_penalty_distribution: one penalty
/// distribution per *distinct* FMM row under the given pwf, combined with
/// the deduplicating convolution tree. Bit-identical to the from-scratch
/// build — the per-row atoms are the same (penalties precomputed with the
/// same arithmetic), the per-row memo key is the same "set-penalty-v1"
/// recipe, and convolve_all_tree_shared reproduces the fixed tree shape.
DiscreteDistribution build_reweighted_penalty(
    const PenaltyBundle::Domain& domain, const CacheConfig& config,
    const std::vector<Probability>& pwf, std::size_t max_points,
    ThreadPool* pool, AnalysisStore* store) {
  obs::ScopedPhase penalty_phase(obs::phase_name::kPenalty);
  auto build_row_cold = [&](std::size_t r) {
    PWCET_EXPECTS(pwf.size() <= domain.penalties[r].size());
    std::vector<ProbabilityAtom> atoms;
    atoms.reserve(pwf.size());
    for (std::size_t f = 0; f < pwf.size(); ++f)
      atoms.push_back({domain.penalties[r][f], pwf[f]});
    return DiscreteDistribution::from_atoms(std::move(atoms));
  };
  auto build_row = [&](std::size_t r) {
    if (store == nullptr) return build_row_cold(r);
    const StoreKey key = KeyHasher("set-penalty-v1")
                             .mix_i64(config.miss_penalty)
                             .mix_doubles(pwf)
                             .mix_doubles(domain.rows[r])
                             .finish();
    return *store->memo().get_or_compute<DiscreteDistribution>(
        key, [&] { return build_row_cold(r); }, "set-penalty");
  };
  std::vector<DiscreteDistribution> distinct;
  if (pool != nullptr) {
    distinct = pool->map_indexed(domain.rows.size(), build_row);
  } else {
    distinct.reserve(domain.rows.size());
    for (std::size_t r = 0; r < domain.rows.size(); ++r)
      distinct.push_back(build_row(r));
  }
  obs::ScopedPhase convolve_phase(obs::phase_name::kConvolve);
  return convolve_all_tree_shared(distinct, domain.row_of_set, max_points,
                                  pool);
}

/// Memo value of the pipeline-core layer: everything expensive the
/// constructor produces. Cached all-or-nothing so the ILP engine's shared
/// simplex sees the exact same maximize() sequence on every miss (partial
/// reuse would perturb LP round-off; see wcet/fmm.hpp).
struct PipelineCore {
  Cycles fault_free_wcet = 0;
  std::vector<FmmBundle> fmms;
};

/// Adds `other` into `total` term by term. Folding the domains' models
/// this way reproduces the historical arithmetic exactly: a single-domain
/// pipeline maximizes the primary model untouched, and a two-domain one
/// sees the same sums the combined analyzer's sum_models produced.
void add_cost_model(CostModel& total, const CostModel& other) {
  for (std::size_t i = 0; i < total.block_cost.size(); ++i)
    total.block_cost[i] += other.block_cost[i];
  for (std::size_t i = 0; i < total.loop_entry_cost.size(); ++i)
    total.loop_entry_cost[i] += other.loop_entry_cost[i];
  total.root_entry_cost += other.root_entry_cost;
}

/// The chained core key. Compatibility contract (pipeline.hpp): the two
/// shipped compositions reproduce the pre-pipeline analyzer recipes bit
/// for bit so existing memo entries and disk artifacts keep resolving;
/// any other composition gets its own sub-domain that additionally chains
/// the domain count and names (two differently-shaped compositions whose
/// config streams coincide must never alias).
StoreKey pipeline_core_key(
    const Program& program,
    const std::vector<std::shared_ptr<const CacheDomain>>& domains,
    WcetEngine engine) {
  // Single icache composition: delegate to the one definition of the
  // historical "pwcet-core-v1" recipe (analysis/icache_domain.cpp) so
  // there is no second copy to drift.
  if (domains.size() == 1 && domains[0]->name() == "icache")
    return pwcet_core_key(program, domains[0]->config(), engine);
  const bool legacy_pair = domains.size() == 2 &&
                           domains[0]->name() == "icache" &&
                           domains[1]->name() == "dcache";
  KeyHasher hasher(legacy_pair ? "pwcet-dcore-v1" : "pwcet-ncore-v1");
  hasher.mix_key(hash_program(program));
  if (!legacy_pair) {
    hasher.mix_u64(domains.size());
    for (const auto& domain : domains) hasher.mix_string(domain->name());
  }
  for (const auto& domain : domains) domain->mix_core_key(hasher);
  hasher.mix_u64(static_cast<std::uint64_t>(engine));
  return hasher.finish();
}

}  // namespace

DiscreteDistribution build_penalty_distribution(
    const FaultMissMap& fmm, const CacheConfig& config,
    const std::vector<Probability>& pwf, std::size_t max_points,
    ThreadPool* pool, AnalysisStore* store) {
  obs::ScopedPhase penalty_phase(obs::phase_name::kPenalty);
  // Per-set penalty distribution: one atom per possible fault count
  // (paper Fig. 1.b), value = miss_penalty * FMM[s][f].
  auto build_set_cold = [&](std::size_t s) {
    std::vector<ProbabilityAtom> atoms;
    atoms.reserve(pwf.size());
    for (std::size_t f = 0; f < pwf.size(); ++f) {
      const double misses = fmm.at(static_cast<SetIndex>(s),
                                   static_cast<std::uint32_t>(f));
      const auto penalty = static_cast<Cycles>(
          std::ceil(misses - 1e-6) * static_cast<double>(config.miss_penalty));
      atoms.push_back({penalty, pwf[f]});
    }
    return DiscreteDistribution::from_atoms(std::move(atoms));
  };

  // Per-set layer: keyed by the *content* the atoms are built from (FMM
  // row, pwf, miss penalty), not by set index or task — so the many sets
  // that share a row (untouched sets, symmetric layouts) build it once,
  // across mechanisms, geometries with equal rows, domains and tasks.
  auto build_set = [&](std::size_t s) {
    if (store == nullptr) return build_set_cold(s);
    const StoreKey key = KeyHasher("set-penalty-v1")
                             .mix_i64(config.miss_penalty)
                             .mix_doubles(pwf)
                             .mix_doubles(fmm.misses[s])
                             .finish();
    return *store->memo().get_or_compute<DiscreteDistribution>(
        key, [&] { return build_set_cold(s); }, "set-penalty");
  };

  // Sets are independent (Fig. 1.b): combine by convolution, pairwise so
  // the rounds parallelize and the coalescing error stacks O(log S) deep
  // instead of O(S). Pooled and serial paths produce identical bits.
  std::vector<DiscreteDistribution> per_set;
  if (pool != nullptr) {
    per_set = pool->map_indexed(config.sets, build_set);
  } else {
    per_set.reserve(config.sets);
    for (SetIndex s = 0; s < config.sets; ++s)
      per_set.push_back(build_set(s));
  }
  obs::ScopedPhase convolve_phase(obs::phase_name::kConvolve);
  return convolve_all_tree(per_set, max_points, pool);
}

PwcetPipeline::PwcetPipeline(
    const Program& program,
    std::vector<std::shared_ptr<const CacheDomain>> domains,
    const PwcetOptions& options)
    : program_(program), domains_(std::move(domains)), options_(options) {
  PWCET_EXPECTS(!domains_.empty());
  for (const auto& domain : domains_) PWCET_EXPECTS(domain != nullptr);
  PWCET_EXPECTS(domains_.front()->standalone());
  core_key_ = pipeline_core_key(program_, domains_, options_.engine);

  // Everything below lives inside the compute path on purpose: on a core
  // memo hit the constructor does no analysis work at all — not even the
  // reference extraction — just the structural hashes above.
  auto compute_core = [&] {
    obs::ScopedPhase core_phase(obs::phase_name::kCore);
    std::vector<ReferenceMap> refs;
    {
      obs::ScopedPhase phase(obs::phase_name::kExtract);
      refs.reserve(domains_.size());
      for (const auto& domain : domains_)
        refs.push_back(domain->extract(program_));
    }

    std::unique_ptr<IpetCalculator> ipet;
    if (options_.engine == WcetEngine::kIlp)
      ipet = std::make_unique<IpetCalculator>(program_);

    // One classification per domain, one summed time model, one phase-1
    // maximization bounding the whole program.
    CostModel total;
    {
      obs::ScopedPhase phase(obs::phase_name::kClassify);
      for (std::size_t i = 0; i < domains_.size(); ++i) {
        const ClassificationMap cls =
            domains_[i]->classify(program_, refs[i]);
        CostModel contribution =
            domains_[i]->time_cost_model(program_, refs[i], cls);
        if (i == 0)
          total = std::move(contribution);
        else
          add_cost_model(total, contribution);
      }
    }

    double wcet = 0.0;
    {
      obs::ScopedPhase phase(obs::phase_name::kMaximize);
      if (options_.engine == WcetEngine::kIlp)
        wcet = ipet->maximize(total).objective;
      else
        wcet = tree_maximize(program_, total);
    }

    PipelineCore core;
    // The time model is integral; ceil absorbs LP round-off soundly.
    core.fault_free_wcet = static_cast<Cycles>(std::ceil(wcet - 1e-6));
    {
      obs::ScopedPhase phase(obs::phase_name::kFmm);
      core.fmms.reserve(domains_.size());
      for (std::size_t i = 0; i < domains_.size(); ++i) {
        const StoreKey row_prefix =
            domains_[i]->row_key_prefix(program_, options_.engine);
        core.fmms.push_back(domains_[i]->fmm_bundle(
            program_, refs[i], options_.engine, ipet.get(), options_.pool,
            options_.store, &row_prefix));
      }
    }
    return core;
  };

  if (options_.store != nullptr) {
    const std::shared_ptr<const PipelineCore> core =
        options_.store->memo().get_or_compute<PipelineCore>(
            core_key_, compute_core, "core");
    fault_free_wcet_ = core->fault_free_wcet;
    fmms_ = core->fmms;
  } else {
    PipelineCore core = compute_core();
    fault_free_wcet_ = core.fault_free_wcet;
    fmms_ = std::move(core.fmms);
  }
}

PwcetResult PwcetPipeline::analyze(const FaultModel& faults,
                                   Mechanism mechanism) const {
  return analyze(faults,
                 std::vector<Mechanism>(domains_.size(), mechanism));
}

std::shared_ptr<const PenaltyBundle> PwcetPipeline::acquire_bundle(
    const std::vector<Mechanism>& mechanisms) const {
  std::lock_guard<std::mutex> lock(bundle_mutex_);
  std::shared_ptr<const PenaltyBundle>& slot = bundle_cache_[mechanisms];
  if (slot != nullptr) return slot;
  auto compute = [&] {
    PenaltyBundle bundle;
    bundle.domains.reserve(domains_.size());
    for (std::size_t i = 0; i < domains_.size(); ++i)
      bundle.domains.push_back(build_domain_scaffold(
          fmms_[i].of(mechanisms[i]), domains_[i]->config()));
    return bundle;
  };
  if (options_.store != nullptr) {
    // Memo layer: pipelines with the same core (same program, domains,
    // engine — e.g. every group of a pfail sweep sharing a geometry) share
    // one bundle per mechanism assignment, across instances.
    std::vector<std::uint64_t> mechanism_ids;
    mechanism_ids.reserve(mechanisms.size());
    for (const Mechanism mechanism : mechanisms)
      mechanism_ids.push_back(static_cast<std::uint64_t>(mechanism));
    slot = options_.store->memo().get_or_compute<PenaltyBundle>(
        pwcet_bundle_key(core_key_, mechanism_ids), compute, "bundle");
  } else {
    slot = std::make_shared<const PenaltyBundle>(compute());
  }
  return slot;
}

PwcetResult PwcetPipeline::analyze(
    const FaultModel& faults, const std::vector<Mechanism>& mechanisms) const {
  PWCET_EXPECTS(mechanisms.size() == domains_.size());
  AnalysisStore* store = options_.store;

  // Whole-analysis layer: one key per (core, mechanisms, pfail, coalescing
  // budget) — everything this function reads. The single-domain tag is the
  // historical per-mechanism result key, the multi-domain tag the combined
  // analyzer's; compositions of different shapes cannot alias because the
  // chained core key already separates them.
  StoreKey result_key;
  if (store != nullptr) {
    KeyHasher hasher(domains_.size() == 1 ? "pwcet-result-v1"
                                          : "pwcet-dresult-v1");
    hasher.mix_key(core_key_);
    for (const Mechanism mechanism : mechanisms)
      hasher.mix_u64(static_cast<std::uint64_t>(mechanism));
    result_key = hasher.mix_double(faults.pfail())
                     .mix_u64(options_.max_distribution_points)
                     .finish();
    if (const std::shared_ptr<const void> hit =
            store->memo().get(result_key, "result"))
      return *std::static_pointer_cast<const PwcetResult>(hit);
  }

  // The span covers the memo-miss path only: a memo hit does no analysis
  // work worth a sample, and the artifact-load escape below is disk time
  // the store counters already attribute.
  obs::ScopedPhase analyze_phase(obs::phase_name::kAnalyze);
  PwcetResult result;
  result.mechanism = mechanisms.front();
  result.fault_free_wcet = fault_free_wcet_;
  result.fmm = fmms_.front().of(mechanisms.front());

  // Artifact tier: the penalty distribution (the only expensive part of
  // the result — the FMM and the fault-free WCET come from the core
  // layer) may survive from an earlier process.
  if (store != nullptr && store->artifacts() != nullptr) {
    if (std::optional<DiscreteDistribution> penalty =
            store->artifacts()->load_distribution(result_key)) {
      result.penalty = *std::move(penalty);
      store->memo().put(result_key,
                        std::make_shared<const PwcetResult>(result), "result");
      return result;
    }
  }

  // The pwf weighting vectors (Eq. 2/3) for every domain, hoisted ahead of
  // the penalty builds so the phase is visible on its own. pwf is a pure
  // function of (faults, mechanism), so hoisting cannot change the bits.
  std::vector<std::vector<Probability>> pwfs;
  {
    obs::ScopedPhase phase(obs::phase_name::kPwf);
    pwfs.reserve(domains_.size());
    for (std::size_t i = 0; i < domains_.size(); ++i)
      pwfs.push_back(domains_[i]->pwf(faults, mechanisms[i]));
  }

  // Each domain's penalty runs through the shared per-set pipeline
  // (content-addressed set distributions, fixed-shape convolution tree).
  // Domains are physically disjoint SRAM arrays — their fault counts are
  // independent — so the cross-domain penalty is the convolution, folded
  // in domain order with the same coalescing budget.
  //
  // Default path: re-weight the shared pfail-independent bundle — the
  // scaffold is fetched (or built once) under its pfail-free key, and
  // only the per-row weighting + the convolution fold run per pfail.
  // PWCET_REWEIGHT=0 takes the historical from-scratch build instead;
  // both are bit-identical (enforced by tests and a CI diff step).
  std::shared_ptr<const PenaltyBundle> bundle;
  if (reweight_enabled()) {
    obs::ScopedPhase bundle_phase(obs::phase_name::kBundle);
    bundle = acquire_bundle(mechanisms);
  }
  auto domain_penalty = [&](std::size_t i) {
    if (bundle != nullptr)
      return build_reweighted_penalty(
          bundle->domains[i], domains_[i]->config(), pwfs[i],
          options_.max_distribution_points, options_.pool, store);
    return build_penalty_distribution(
        fmms_[i].of(mechanisms[i]), domains_[i]->config(), pwfs[i],
        options_.max_distribution_points, options_.pool, store);
  };
  DiscreteDistribution penalty = domain_penalty(0);
  for (std::size_t i = 1; i < domains_.size(); ++i)
    penalty = penalty.convolve(domain_penalty(i))
                  .coalesce_up(options_.max_distribution_points);
  result.penalty = std::move(penalty);

  if (store != nullptr) {
    if (store->artifacts() != nullptr)
      store->artifacts()->store_distribution(result_key, result.penalty);
    store->memo().put(result_key,
                      std::make_shared<const PwcetResult>(result), "result");
  }
  return result;
}

std::vector<CcdfPoint> PwcetResult::ccdf() const {
  std::vector<CcdfPoint> points;
  points.reserve(penalty.size());
  for (const ProbabilityAtom& atom : penalty.atoms()) {
    // P[WCET > fault_free + value] is the tail strictly above the atom;
    // report the exceedance just below it, i.e. including the atom itself.
    points.push_back({fault_free_wcet + atom.value,
                      penalty.exceedance(atom.value - 1)});
  }
  return points;
}

}  // namespace pwcet
