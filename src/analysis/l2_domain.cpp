#include "analysis/l2_domain.hpp"

namespace pwcet {

StoreKey L2Domain::row_key_prefix(const Program& program,
                                  WcetEngine engine) const {
  return KeyHasher("pwcet-l2-rows-v1")
      .mix_key(hash_program(program))
      .mix_key(hash_cache_config(config_))
      .mix_u64(static_cast<std::uint64_t>(engine))
      .finish();
}

}  // namespace pwcet
