#include "analysis/cache_domain.hpp"

namespace pwcet {

void CacheDomain::mix_core_key(KeyHasher& hasher) const {
  hasher.mix_key(hash_cache_config(config()));
}

ClassificationMap CacheDomain::classify(const Program& program,
                                        const ReferenceMap& refs) const {
  return classify_fault_free(program.cfg(), refs, config());
}

FmmBundle CacheDomain::fmm_bundle(const Program& program,
                                  const ReferenceMap& refs,
                                  WcetEngine engine, IpetCalculator* ipet,
                                  ThreadPool* pool, AnalysisStore* store,
                                  const StoreKey* row_prefix) const {
  return compute_fmm_bundle(program, config(), refs, engine, ipet, pool,
                            store, row_prefix);
}

std::vector<Probability> CacheDomain::pwf(const FaultModel& faults,
                                          Mechanism mechanism) const {
  return faults.way_failure_pmf(config(), mechanism);
}

}  // namespace pwcet
