#include "analysis/tlb_domain.hpp"

namespace pwcet {

StoreKey TlbDomain::row_key_prefix(const Program& program,
                                   WcetEngine engine) const {
  return KeyHasher("pwcet-tlb-rows-v1")
      .mix_key(hash_program(program))
      .mix_key(hash_cache_config(config_))
      .mix_u64(static_cast<std::uint64_t>(engine))
      .finish();
}

}  // namespace pwcet
