#include "analysis/icache_domain.hpp"

namespace pwcet {

StoreKey pwcet_core_key(const Program& program, const CacheConfig& config,
                        WcetEngine engine) {
  return KeyHasher("pwcet-core-v1")
      .mix_key(hash_program(program))
      .mix_key(hash_cache_config(config))
      .mix_u64(static_cast<std::uint64_t>(engine))
      .finish();
}

ReferenceMap IcacheDomain::extract(const Program& program) const {
  return extract_references(program.cfg(), config_);
}

CostModel IcacheDomain::time_cost_model(const Program& program,
                                        const ReferenceMap& refs,
                                        const ClassificationMap& cls) const {
  return build_time_cost_model(program.cfg(), refs, cls, config_);
}

}  // namespace pwcet
