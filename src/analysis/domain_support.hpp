/// \file
/// Shared helpers for the secondary CacheDomain plugins.
///
/// The TLB and shared-L2 domains both analyze the *unified* access stream
/// of a block — instruction fetches, then data loads, then stores — just
/// at different granularities (page vs L2 line); the write-back D-cache
/// domain analyzes loads-then-stores at D-cache line granularity. All
/// three charge only incremental miss penalties into the summed fault-free
/// time model (the primary domain owns the execution-time base costs), so
/// the Chmc-driven cost accumulation is shared here too.
#pragma once

#include "cache/cache_config.hpp"
#include "cache/references.hpp"
#include "cfg/cfg.hpp"
#include "icache/chmc.hpp"
#include "support/types.hpp"
#include "wcet/cost_model.hpp"

namespace pwcet {

/// Per-block unified reference stream: the block's instruction fetch
/// addresses, then its data loads, then its stores, mapped to `config`
/// lines (pages, for the TLB). Consecutive same-line accesses merge with
/// their fetch counts summed, mirroring extract_references.
ReferenceMap extract_unified_references(const ControlFlowGraph& cfg,
                                        const CacheConfig& config);

/// Per-block data access stream: loads, then stores, at `config` line
/// granularity. The write-back D-cache analogue of
/// extract_data_references (which is load-only).
ReferenceMap extract_data_access_references(const ControlFlowGraph& cfg,
                                            const CacheConfig& config);

/// Secondary-domain time model: `miss_penalty` cycles per reference that
/// is not provably a fault-free hit, placed at the block / loop-entry /
/// root-entry position its CHMC dictates. Charges no hit latencies — the
/// access instruction's execution cycle is already charged by the primary
/// domain.
CostModel secondary_miss_cost_model(const ControlFlowGraph& cfg,
                                    const ReferenceMap& refs,
                                    const ClassificationMap& cls,
                                    Cycles miss_penalty);

}  // namespace pwcet
