/// \file
/// WritebackDcacheDomain — write-back, write-allocate data cache plugin.
///
/// The shipped DcacheDomain models a write-through/no-allocate data cache:
/// stores never touch it, so only loads appear in its stream. This domain
/// models the other common policy: stores allocate into the cache and mark
/// their line dirty; evicting a dirty line costs an extra write-back of
/// `writeback_penalty` cycles on top of the refill.
///
/// Dirty state does not change *which* accesses hit — write-allocate LRU
/// replacement is identical for loads and stores — so the fault-free
/// classification and the FMM miss bounds are exactly the write-through
/// machinery run over the loads-then-stores stream
/// (extract_data_access_references). What changes is the *price* of a
/// miss. The domain folds the write-back cost into an effective geometry:
///
///     effective miss_penalty = refill miss_penalty + writeback_penalty
///
/// which `config()` exposes to the whole pipeline, so the time model, the
/// per-set penalty atoms and the cross-domain convolution automatically
/// price every miss at refill + write-back. This is sound: write-backs
/// are caused by evictions, each miss evicts at most one line, and only
/// dirty evictions write back, so on every path and under every fault map
///
///     true cost = misses x refill + writebacks x wb
///               <= misses x (refill + wb)  [writebacks <= misses]
///
/// i.e. the analytic bound dominates the true worst case per atom (the
/// exhaustive-oracle suite enumerates this against a cycle-accurate
/// write-back simulator). Residual dirty lines at end of run are not
/// flushed — the task's deadline covers its own accesses only.
///
/// A secondary domain (standalone() == false); rows live under
/// "pwcet-wbdcache-rows-v1" (a loads+stores stream must never alias the
/// load-only "pwcet-dcache-rows-v1" rows, even for equal geometries), and
/// its core-key contribution rides the "pwcet-ncore-v1" chaining recipe.
#pragma once

#include "analysis/cache_domain.hpp"
#include "analysis/domain_support.hpp"

namespace pwcet {

class WritebackDcacheDomain final : public CacheDomain {
 public:
  /// `geometry.miss_penalty` is the refill cost; `writeback_penalty` the
  /// extra cost of writing a dirty victim back to memory.
  WritebackDcacheDomain(const CacheConfig& geometry, Cycles writeback_penalty)
      : effective_(geometry), writeback_penalty_(writeback_penalty) {
    PWCET_EXPECTS(writeback_penalty >= 0);
    effective_.miss_penalty += writeback_penalty;
    effective_.validate();
  }

  std::string_view name() const override { return "wb-dcache"; }
  /// Effective geometry: miss_penalty already includes writeback_penalty.
  const CacheConfig& config() const override { return effective_; }
  bool standalone() const override { return false; }

  Cycles writeback_penalty() const { return writeback_penalty_; }

  StoreKey row_key_prefix(const Program& program,
                          WcetEngine engine) const override;

  ReferenceMap extract(const Program& program) const override {
    return extract_data_access_references(program.cfg(), effective_);
  }

  CostModel time_cost_model(const Program& program, const ReferenceMap& refs,
                            const ClassificationMap& cls) const override {
    return secondary_miss_cost_model(program.cfg(), refs, cls,
                                     effective_.miss_penalty);
  }

 private:
  CacheConfig effective_;
  Cycles writeback_penalty_;
};

}  // namespace pwcet
