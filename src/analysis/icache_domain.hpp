/// \file
/// IcacheDomain — the instruction-cache plugin of the pWCET pipeline.
///
/// The paper's primary subject: the per-block instruction-fetch line
/// stream analyzed against one cache geometry. As the pipeline's primary
/// domain it charges the full time model (fetch latencies plus miss
/// penalties); its per-set FMM rows are memoized under the single-cache
/// analyzer-core key so a standalone instruction analysis and a combined
/// I+D analysis of the same (program, config, engine) share every cached
/// row — one recipe, defined once, no silent drift.
#pragma once

#include "analysis/cache_domain.hpp"

namespace pwcet {

/// Store key of a single-cache analyzer core: program content x cache
/// config x engine. This is both the pipeline core key of an
/// instruction-only analysis and the prefix under which icache FMM rows
/// are memoized — shared bit-for-bit by every composition that includes an
/// IcacheDomain of the same inputs.
StoreKey pwcet_core_key(const Program& program, const CacheConfig& config,
                        WcetEngine engine);

class IcacheDomain final : public CacheDomain {
 public:
  explicit IcacheDomain(const CacheConfig& config) : config_(config) {
    config_.validate();
  }

  std::string_view name() const override { return "icache"; }
  const CacheConfig& config() const override { return config_; }

  StoreKey row_key_prefix(const Program& program,
                          WcetEngine engine) const override {
    return pwcet_core_key(program, config_, engine);
  }

  ReferenceMap extract(const Program& program) const override;

  CostModel time_cost_model(const Program& program, const ReferenceMap& refs,
                            const ClassificationMap& cls) const override;

 private:
  CacheConfig config_;
};

}  // namespace pwcet
