#include "analysis/writeback_dcache_domain.hpp"

namespace pwcet {

StoreKey WritebackDcacheDomain::row_key_prefix(const Program& program,
                                               WcetEngine engine) const {
  return KeyHasher("pwcet-wbdcache-rows-v1")
      .mix_key(hash_program(program))
      .mix_key(hash_cache_config(effective_))
      .mix_u64(static_cast<std::uint64_t>(engine))
      .finish();
}

}  // namespace pwcet
