#include "analysis/dcache_domain.hpp"

namespace pwcet {

ReferenceMap extract_data_references(const ControlFlowGraph& cfg,
                                     const CacheConfig& dcache) {
  dcache.validate();
  ReferenceMap refs(cfg.block_count());
  for (const BasicBlock& b : cfg.blocks()) {
    auto& seq = refs[size_t(b.id)];
    for (Address a : b.data_addresses) {
      const LineAddress line = dcache.line_of(a);
      if (!seq.empty() && seq.back().line == line) {
        ++seq.back().fetches;
      } else {
        seq.push_back({line, dcache.set_of_line(line), 1});
      }
    }
  }
  return refs;
}

std::uint64_t block_loads(const ControlFlowGraph& cfg, BlockId b) {
  return cfg.block(b).data_addresses.size();
}

StoreKey DcacheDomain::row_key_prefix(const Program& program,
                                      WcetEngine engine) const {
  return KeyHasher("pwcet-dcache-rows-v1")
      .mix_key(hash_program(program))
      .mix_key(hash_cache_config(config_))
      .mix_u64(static_cast<std::uint64_t>(engine))
      .finish();
}

CostModel DcacheDomain::time_cost_model(const Program& program,
                                        const ReferenceMap& refs,
                                        const ClassificationMap& cls) const {
  // Loads contribute miss penalties only: the load instruction's execution
  // cycle is already charged as an instruction fetch by the primary domain.
  const ControlFlowGraph& cfg = program.cfg();
  CostModel model = CostModel::zero(cfg);
  const auto miss = static_cast<double>(config_.miss_penalty);
  for (const BasicBlock& block : cfg.blocks()) {
    for (std::size_t i = 0; i < refs[size_t(block.id)].size(); ++i) {
      const RefClass& ref_class = cls[size_t(block.id)][i];
      switch (ref_class.chmc) {
        case Chmc::kAlwaysHit:
          break;
        case Chmc::kAlwaysMiss:
        case Chmc::kNotClassified:
          model.block_cost[size_t(block.id)] += miss;
          break;
        case Chmc::kFirstMiss:
          if (ref_class.scope == kNoLoop)
            model.root_entry_cost += miss;
          else
            model.loop_entry_cost[size_t(ref_class.scope)] += miss;
          break;
      }
    }
  }
  return model;
}

}  // namespace pwcet
