/// \file
/// Single source of truth for campaign axis-value names.
///
/// Every enum that appears in a spec file, a report column or the CLI
/// (`Mechanism`, `WcetEngine`, `AnalysisKind`, `DcacheMechanism`) has
/// exactly one table here pairing each enumerator with its canonical
/// spelling and the one-line description `pwcet list` prints. The
/// `*_name()` helpers (declared next to their enums), the spec loader's
/// enum parsing and the CLI listing all read these tables, so a new axis
/// value added here is automatically parseable, printable and listed —
/// and cannot be added inconsistently across those three surfaces.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "engine/campaign.hpp"

namespace pwcet {

/// One row of an axis-value table.
template <typename Enum>
struct AxisName {
  Enum value;
  const char* name;         ///< canonical spelling (specs, reports, CLI)
  const char* description;  ///< one-liner for `pwcet list`
};

/// The registry rows, in canonical listing order.
const std::vector<AxisName<Mechanism>>& mechanism_names();
const std::vector<AxisName<WcetEngine>>& engine_names();
const std::vector<AxisName<AnalysisKind>>& analysis_kind_names();
const std::vector<AxisName<DcacheMechanism>>& dcache_mechanism_names();
const std::vector<AxisName<WritePolicy>>& write_policy_names();

/// One registered CacheDomain plugin (not an enum axis — domains are
/// selected through the dcache/tlb/l2 spec axes — but `pwcet list` prints
/// them from the same registry spirit: one table, one source of truth).
struct DomainListing {
  const char* name;         ///< CacheDomain::name()
  const char* description;  ///< one-liner for `pwcet list`
};

/// The shipped CacheDomain plugins, in pipeline composition order.
const std::vector<DomainListing>& cache_domain_listings();

/// (name, value) pairs in registry order — the shape the spec loader's
/// enum parser consumes.
template <typename Enum>
std::vector<std::pair<std::string, Enum>> axis_name_table(
    const std::vector<AxisName<Enum>>& names) {
  std::vector<std::pair<std::string, Enum>> out;
  out.reserve(names.size());
  for (const AxisName<Enum>& entry : names)
    out.emplace_back(entry.name, entry.value);
  return out;
}

}  // namespace pwcet
