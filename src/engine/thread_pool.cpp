#include "engine/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/phase.hpp"

namespace pwcet {

std::size_t ThreadPool::resolve_thread_count(std::size_t threads) {
  if (threads == 0)
    return std::max(1u, std::thread::hardware_concurrency());
  return threads;
}

ThreadPool::ThreadPool(std::size_t threads) {
  threads = resolve_thread_count(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      if (obs::Tracer::instance().enabled())
        obs::Tracer::instance().name_current_thread("worker-" +
                                                    std::to_string(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    // Helpers pop LIFO (workers pop FIFO): a thread waiting inside a
    // nested fan-out then prefers the freshly submitted subtasks — its
    // own, usually — over older top-level jobs. Popping FIFO here would
    // let a helper recursively execute whole unrelated top-level tasks,
    // nesting a stack frame per job in the worst case.
    task = std::move(queue_.back());
    queue_.pop_back();
  }
  // A task executed here was *stolen* by a waiting thread (help-while-
  // waiting), as opposed to drained by a worker's loop.
  obs::MetricsRegistry::instance().add("engine.pool.steals");
  {
    obs::TraceSpan task_span(obs::engine_name::kPoolTask, "engine");
    task();
  }
  done_.notify_all();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const bool metrics = obs::MetricsRegistry::instance().enabled();
    const std::uint64_t start_ns = metrics ? obs::monotonic_ns() : 0;
    {
      obs::TraceSpan task_span(obs::engine_name::kPoolTask, "engine");
      task();
    }
    if (metrics) {
      obs::MetricsRegistry::instance()
          .counter("engine.pool.busy_ns")
          .add(obs::monotonic_ns() - start_ns);
      obs::MetricsRegistry::instance().add("engine.pool.tasks");
    }
    done_.notify_all();
  }
}

void ThreadPool::wait_for_work_or_completion() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!queue_.empty()) return;
  // Plain (non-predicate) wait: any task completion must wake us so the
  // caller can re-check its future; the timeout only guards against the
  // completion slipping in between our queue check and the wait.
  done_.wait_for(lock, std::chrono::milliseconds(1));
}

}  // namespace pwcet
