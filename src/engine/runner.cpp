#include "engine/runner.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <tuple>
#include <utility>

#include "core/pwcet_analyzer.hpp"
#include "engine/report.hpp"
#include "engine/thread_pool.hpp"
#include "fault/fault_map.hpp"
#include "mbpta/mbpta.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

JobResult run_spta(const CampaignJob& job, const PwcetAnalyzer& analyzer,
                   const CampaignSpec& spec) {
  JobResult r;
  r.job = job;
  const PwcetResult res =
      analyzer.analyze(FaultModel(job.pfail), job.mechanism);
  r.fault_free_wcet = analyzer.fault_free_wcet();
  r.pwcet = static_cast<double>(res.pwcet(spec.target_exceedance));
  r.penalty_mean = res.penalty.mean();
  r.penalty_points = res.penalty.size();
  return r;
}

JobResult run_mbpta_job(const CampaignJob& job, const Program& program,
                        const CampaignSpec& spec) {
  JobResult r;
  r.job = job;
  MbptaOptions options = spec.mbpta;
  options.seed = job.seed;  // per-job stream, not the spec-wide default
  const MbptaResult res = run_mbpta(program, job.geometry,
                                    FaultModel(job.pfail), job.mechanism,
                                    options);
  r.pwcet = res.pwcet(spec.target_exceedance);
  r.observed_max = res.observed_max;
  return r;
}

JobResult run_simulation_job(const CampaignJob& job, const Program& program,
                             const CampaignSpec& spec) {
  // Monte-Carlo fault injection: sample a chip population, run the heavy
  // structural path on each, report the empirical tail. No extrapolation:
  // at certification-grade targets the empirical quantile is the observed
  // maximum — the point of this kind is cross-validating the static bound.
  JobResult r;
  r.job = job;
  const FaultModel faults(job.pfail);
  const Probability pbf = faults.block_failure_probability(job.geometry);
  const std::vector<Address> trace =
      fetch_trace(program.cfg(), heavy_walk(program));

  Rng rng(job.seed);
  std::vector<double> times;
  times.reserve(spec.simulation_chips);
  for (std::size_t chip = 0; chip < spec.simulation_chips; ++chip) {
    const FaultMap map = FaultMap::sample(job.geometry, pbf, rng);
    const SimStats stats = simulate_trace(job.geometry, map, job.mechanism,
                                          trace);
    times.push_back(static_cast<double>(stats.cycles));
  }
  r.observed_max = *std::max_element(times.begin(), times.end());
  r.pwcet = empirical_quantile(times, 1.0 - spec.target_exceedance);
  return r;
}

/// Rebuilds the per-job numeric results from a persisted campaign-report
/// JSONL payload (engine/report.cpp's fixed column layout — kColumns
/// there cross-references this parser; drift is caught by store_test's
/// warm-run zero-recompute assertion). The job metadata columns need no
/// parsing — expand_campaign reproduces them exactly — and the numeric
/// fields were printed with round-tripping conversions ("%.17g" /
/// decimal integers), so the reconstructed results render byte-
/// identically to the originals. Returns false on any mismatch (row
/// count, missing fields), in which case the caller recomputes.
bool parse_campaign_report(const std::string& payload,
                           const std::vector<CampaignJob>& jobs,
                           std::vector<JobResult>& results) {
  std::istringstream lines(payload);
  std::string line;
  std::size_t row = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (row >= jobs.size()) return false;
    const char* at = std::strstr(line.c_str(), "\"wcet_ff\":");
    if (at == nullptr) return false;
    long long wcet_ff = 0;
    double pwcet = 0.0, observed_max = 0.0, penalty_mean = 0.0;
    unsigned long long penalty_points = 0;
    if (std::sscanf(at,
                    "\"wcet_ff\":%lld,\"pwcet\":%lf,\"observed_max\":%lf,"
                    "\"penalty_mean\":%lf,\"penalty_points\":%llu}",
                    &wcet_ff, &pwcet, &observed_max, &penalty_mean,
                    &penalty_points) != 5)
      return false;
    JobResult& result = results[row];
    result.job = jobs[row];
    result.fault_free_wcet = static_cast<Cycles>(wcet_ff);
    result.pwcet = pwcet;
    result.observed_max = observed_max;
    result.penalty_mean = penalty_mean;
    result.penalty_points = static_cast<std::size_t>(penalty_points);
    ++row;
  }
  return row == jobs.size();
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunnerOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  const std::vector<CampaignJob> jobs = expand_campaign(spec);

  // One store serves the whole campaign (callers can pass a longer-lived
  // one for warm reuse). Pool workers share it concurrently.
  std::unique_ptr<AnalysisStore> owned_store;
  AnalysisStore* store = options.shared_store;
  if (store == nullptr) {
    const StoreOptions store_options = store_options_from_env(options.store);
    if (store_options.enabled) {
      owned_store = std::make_unique<AnalysisStore>(store_options);
      store = owned_store.get();
    }
  }
  const StoreStats stats_before =
      store != nullptr ? store->stats() : StoreStats{};
  const bool disk = store != nullptr && store->artifacts() != nullptr;
  // Hashing the spec builds every workload once; do it once and only when
  // the disk tier that needs it (load below, persist at the end) exists.
  const StoreKey spec_key = disk ? campaign_spec_key(spec) : StoreKey{};

  CampaignResult campaign;
  campaign.spec = spec;
  campaign.results.resize(jobs.size());
  campaign.threads_used = ThreadPool::resolve_thread_count(options.threads);

  // Whole-campaign load-or-compute, checked before the pool is spawned so
  // the "near-instant" warm path starts no threads: an identical spec
  // already answered by any process sharing this cache dir is served from
  // its persisted report artifact — the reconstruction renders
  // byte-identically, so consumers cannot tell (except by the wall
  // clock). Stale-cache safety: artifacts carry
  // ArtifactStore::kFormatVersion, which must be bumped whenever analysis
  // semantics change; workload content is hashed into the key.
  if (disk) {
    const std::optional<std::string> cached =
        store->artifacts()->load_text("campaign-report", spec_key);
    if (cached && parse_campaign_report(*cached, jobs, campaign.results)) {
      campaign.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      campaign.store_stats = store->stats().since(stats_before);
      return campaign;
    }
  }

  ThreadPool pool(options.threads);

  // Group jobs that can share one analyzer / one program build. std::map
  // keeps submission order deterministic.
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>,
           std::vector<std::size_t>>
      groups;
  for (const CampaignJob& job : jobs)
    groups[{job.task_i, job.geometry_i, job.engine_i}].push_back(job.index);

  // Cache-aware submission order: sort groups by their shared store-key
  // prefix so groups that reuse the same memo entries (duplicate axis
  // values, content-equal geometries) run adjacently and stay hot in the
  // bounded LRU. The axis tuple breaks ties, keeping the order a pure
  // function of the spec. Output is unaffected: slots are indexed.
  std::vector<std::pair<StoreKey, const std::vector<std::size_t>*>> ordered;
  ordered.reserve(groups.size());
  for (const auto& [key, members] : groups)
    ordered.emplace_back(campaign_group_key(jobs[members.front()]), &members);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::future<void>> futures;
  futures.reserve(ordered.size());
  for (const auto& entry : ordered) {
    futures.push_back(pool.submit([&spec, &jobs, &campaign, &pool, &options,
                                   store, members = entry.second] {
      const CampaignJob& first = jobs[members->front()];
      const Program program = workloads::build(first.task);

      // Built on first SPTA cell; SRB/RW/pfail cells reuse it (the FMM
      // bundle covers all mechanisms, per core/pwcet_analyzer.hpp).
      std::optional<PwcetAnalyzer> analyzer;
      PwcetOptions popts;
      popts.engine = first.engine;
      popts.max_distribution_points = spec.max_distribution_points;
      popts.pool = options.parallel_sets ? &pool : nullptr;
      popts.store = store;

      for (const std::size_t index : *members) {
        const CampaignJob& job = jobs[index];
        switch (job.kind) {
          case AnalysisKind::kSpta:
            if (!analyzer) analyzer.emplace(program, job.geometry, popts);
            campaign.results[index] = run_spta(job, *analyzer, spec);
            break;
          case AnalysisKind::kMbpta:
            campaign.results[index] = run_mbpta_job(job, program, spec);
            break;
          case AnalysisKind::kSimulation:
            campaign.results[index] = run_simulation_job(job, program, spec);
            break;
        }
      }
    }));
  }

  // Block without helping: the submitting thread is not one of the
  // campaign's workers, and letting it steal group tasks would make a
  // "threads = 1" run execute on two threads — corrupting threads_used
  // and every wall-clock/speedup number derived from it. Helping is only
  // needed for nested waits *on* pool threads (map_indexed does that).
  //
  // Futures are iterated in cache-aware submission order, which is a
  // hash order — so the "first in expansion order" rethrow promise is
  // kept by ranking failed groups by their first job's expansion index,
  // not by submission position.
  std::exception_ptr first_error;
  std::size_t first_error_job = jobs.size();
  for (std::size_t g = 0; g < futures.size(); ++g) {
    try {
      futures[g].get();
    } catch (...) {
      const std::size_t job_index = ordered[g].second->front();
      if (!first_error || job_index < first_error_job) {
        first_error = std::current_exception();
        first_error_job = job_index;
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  campaign.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (store != nullptr) {
    campaign.store_stats = store->stats().since(stats_before);
    // Disk tier: persist the whole campaign's JSONL report under the
    // spec's content key, so an identical future campaign (any process)
    // can be answered — and cross-checked — without recomputation.
    if (disk)
      store->artifacts()->store_text("campaign-report", spec_key,
                                     report_jsonl(campaign));
  }
  return campaign;
}

bool parse_thread_count(const std::string& text, std::size_t& threads) {
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' ||
      value > kMaxCampaignThreads)
    return false;
  threads = static_cast<std::size_t>(value);
  return true;
}

std::size_t threads_from_env() {
  const char* env = std::getenv("PWCET_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  std::size_t threads = 0;
  if (!parse_thread_count(env, threads)) {
    std::fprintf(stderr,
                 "pwcet: ignoring PWCET_THREADS='%s' (want 0..%zu); using "
                 "hardware default\n",
                 env, kMaxCampaignThreads);
    return 0;
  }
  return threads;
}

}  // namespace pwcet
