#include "engine/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <map>
#include <optional>
#include <tuple>

#include "core/pwcet_analyzer.hpp"
#include "engine/thread_pool.hpp"
#include "fault/fault_map.hpp"
#include "mbpta/mbpta.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

JobResult run_spta(const CampaignJob& job, const PwcetAnalyzer& analyzer,
                   const CampaignSpec& spec) {
  JobResult r;
  r.job = job;
  const PwcetResult res =
      analyzer.analyze(FaultModel(job.pfail), job.mechanism);
  r.fault_free_wcet = analyzer.fault_free_wcet();
  r.pwcet = static_cast<double>(res.pwcet(spec.target_exceedance));
  r.penalty_mean = res.penalty.mean();
  r.penalty_points = res.penalty.size();
  return r;
}

JobResult run_mbpta_job(const CampaignJob& job, const Program& program,
                        const CampaignSpec& spec) {
  JobResult r;
  r.job = job;
  MbptaOptions options = spec.mbpta;
  options.seed = job.seed;  // per-job stream, not the spec-wide default
  const MbptaResult res = run_mbpta(program, job.geometry,
                                    FaultModel(job.pfail), job.mechanism,
                                    options);
  r.pwcet = res.pwcet(spec.target_exceedance);
  r.observed_max = res.observed_max;
  return r;
}

JobResult run_simulation_job(const CampaignJob& job, const Program& program,
                             const CampaignSpec& spec) {
  // Monte-Carlo fault injection: sample a chip population, run the heavy
  // structural path on each, report the empirical tail. No extrapolation:
  // at certification-grade targets the empirical quantile is the observed
  // maximum — the point of this kind is cross-validating the static bound.
  JobResult r;
  r.job = job;
  const FaultModel faults(job.pfail);
  const Probability pbf = faults.block_failure_probability(job.geometry);
  const std::vector<Address> trace =
      fetch_trace(program.cfg(), heavy_walk(program));

  Rng rng(job.seed);
  std::vector<double> times;
  times.reserve(spec.simulation_chips);
  for (std::size_t chip = 0; chip < spec.simulation_chips; ++chip) {
    const FaultMap map = FaultMap::sample(job.geometry, pbf, rng);
    const SimStats stats = simulate_trace(job.geometry, map, job.mechanism,
                                          trace);
    times.push_back(static_cast<double>(stats.cycles));
  }
  r.observed_max = *std::max_element(times.begin(), times.end());
  r.pwcet = empirical_quantile(times, 1.0 - spec.target_exceedance);
  return r;
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunnerOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  const std::vector<CampaignJob> jobs = expand_campaign(spec);

  ThreadPool pool(options.threads);

  CampaignResult campaign;
  campaign.spec = spec;
  campaign.results.resize(jobs.size());
  campaign.threads_used = pool.thread_count();

  // Group jobs that can share one analyzer / one program build. std::map
  // keeps submission order deterministic.
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>,
           std::vector<std::size_t>>
      groups;
  for (const CampaignJob& job : jobs)
    groups[{job.task_i, job.geometry_i, job.engine_i}].push_back(job.index);

  std::vector<std::future<void>> futures;
  futures.reserve(groups.size());
  for (const auto& [key, members] : groups) {
    futures.push_back(pool.submit([&spec, &jobs, &campaign, &pool, &options,
                                   members = &members] {
      const CampaignJob& first = jobs[members->front()];
      const Program program = workloads::build(first.task);

      // Built on first SPTA cell; SRB/RW/pfail cells reuse it (the FMM
      // bundle covers all mechanisms, per core/pwcet_analyzer.hpp).
      std::optional<PwcetAnalyzer> analyzer;
      PwcetOptions popts;
      popts.engine = first.engine;
      popts.max_distribution_points = spec.max_distribution_points;
      popts.pool = options.parallel_sets ? &pool : nullptr;

      for (const std::size_t index : *members) {
        const CampaignJob& job = jobs[index];
        switch (job.kind) {
          case AnalysisKind::kSpta:
            if (!analyzer) analyzer.emplace(program, job.geometry, popts);
            campaign.results[index] = run_spta(job, *analyzer, spec);
            break;
          case AnalysisKind::kMbpta:
            campaign.results[index] = run_mbpta_job(job, program, spec);
            break;
          case AnalysisKind::kSimulation:
            campaign.results[index] = run_simulation_job(job, program, spec);
            break;
        }
      }
    }));
  }

  // Block without helping: the submitting thread is not one of the
  // campaign's workers, and letting it steal group tasks would make a
  // "threads = 1" run execute on two threads — corrupting threads_used
  // and every wall-clock/speedup number derived from it. Helping is only
  // needed for nested waits *on* pool threads (map_indexed does that).
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  campaign.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  return campaign;
}

std::size_t threads_from_env() {
  const char* env = std::getenv("PWCET_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  // Unparsable or negative-wrapped values fall back to the default rather
  // than asking the pool for ~2^64 workers; 256 is far beyond any host.
  constexpr unsigned long kMaxThreads = 256;
  if (end == env || *end != '\0' || value > kMaxThreads) {
    std::fprintf(stderr,
                 "pwcet: ignoring PWCET_THREADS='%s' (want 0..%lu); using "
                 "hardware default\n",
                 env, kMaxThreads);
    return 0;
  }
  return static_cast<std::size_t>(value);
}

}  // namespace pwcet
