#include "engine/runner.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "analysis/dcache_domain.hpp"
#include "analysis/icache_domain.hpp"
#include "analysis/l2_domain.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/tlb_domain.hpp"
#include "analysis/writeback_dcache_domain.hpp"
#include "cache/references.hpp"
#include "core/pwcet_analyzer.hpp"
#include "dcache/dcache_analysis.hpp"
#include "engine/report.hpp"
#include "engine/shard.hpp"
#include "engine/thread_pool.hpp"
#include "fault/fault_map.hpp"
#include "icache/srb_analysis.hpp"
#include "mbpta/mbpta.hpp"
#include "obs/phase.hpp"
#include "sim/cache_sim.hpp"
#include "sim/path.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "wcet/cost_model.hpp"
#include "wcet/tree_engine.hpp"
#include "workloads/malardalen.hpp"

namespace pwcet {
namespace {

/// Maps a finished SPTA analysis into a job row — shared by the
/// single-cache and combined I+D paths so the two can never drift in how
/// a PwcetResult becomes report columns.
JobResult fill_spta_result(const CampaignJob& job, const PwcetResult& res,
                           Cycles fault_free_wcet,
                           const CampaignSpec& spec) {
  JobResult r;
  r.job = job;
  r.fault_free_wcet = fault_free_wcet;
  r.pwcet = static_cast<double>(res.pwcet(spec.target_exceedance));
  r.penalty_mean = res.penalty.mean();
  r.penalty_points = res.penalty.size();
  r.curve.reserve(spec.ccdf_exceedances.size());
  for (const Probability p : spec.ccdf_exceedances)
    r.curve.push_back(static_cast<double>(res.pwcet(p)));
  return r;
}

JobResult run_spta(const CampaignJob& job, const PwcetAnalyzer& analyzer,
                   const CampaignSpec& spec) {
  return fill_spta_result(
      job, analyzer.analyze(FaultModel(job.pfail), job.mechanism),
      analyzer.fault_free_wcet(), spec);
}

JobResult run_combined_spta(const CampaignJob& job,
                            const CombinedPwcetAnalyzer& analyzer,
                            const CampaignSpec& spec) {
  return fill_spta_result(
      job,
      analyzer.analyze_mixed(FaultModel(job.pfail), job.mechanism,
                             job.resolved_dmech()),
      analyzer.fault_free_wcet(), spec);
}

/// True when the cell's composition goes beyond the two legacy analyzer
/// facades — a write-back data cache, a TLB or a shared L2 — and must run
/// on the generic PwcetPipeline. The legacy icache-only and write-through
/// I+D shapes keep their facades (and thus their historic store keys).
bool needs_pipeline(const CampaignJob& job) {
  return job.tlb.enabled || job.l2.enabled ||
         (job.dcache.enabled &&
          job.dcache.policy == WritePolicy::kWriteBack);
}

/// Domain list of a generic-pipeline cell, in composition order:
/// icache, then the data cache (write-through or write-back), then the
/// TLB, then the shared L2. The order is part of the "pwcet-ncore-v1"
/// store-key recipe (the pipeline chains domain names), so it must never
/// change once results are persisted.
std::vector<std::shared_ptr<const CacheDomain>> pipeline_domains(
    const CampaignJob& job) {
  std::vector<std::shared_ptr<const CacheDomain>> domains;
  domains.push_back(std::make_shared<IcacheDomain>(job.geometry));
  if (job.dcache.enabled) {
    if (job.dcache.policy == WritePolicy::kWriteBack)
      domains.push_back(std::make_shared<WritebackDcacheDomain>(
          job.dcache.geometry, job.dcache.writeback_penalty));
    else
      domains.push_back(std::make_shared<DcacheDomain>(job.dcache.geometry));
  }
  if (job.tlb.enabled)
    domains.push_back(std::make_shared<TlbDomain>(job.tlb.geometry()));
  if (job.l2.enabled)
    domains.push_back(std::make_shared<L2Domain>(job.l2.geometry));
  return domains;
}

JobResult run_pipeline_spta(const CampaignJob& job,
                            const PwcetPipeline& pipeline,
                            const CampaignSpec& spec) {
  std::vector<Mechanism> mechanisms;
  mechanisms.reserve(pipeline.domain_count());
  mechanisms.push_back(job.mechanism);
  if (job.dcache.enabled) mechanisms.push_back(job.resolved_dmech());
  // The TLB and L2 domains deploy the job's instruction-cache mechanism;
  // they have no pairing axis of their own.
  if (job.tlb.enabled) mechanisms.push_back(job.mechanism);
  if (job.l2.enabled) mechanisms.push_back(job.mechanism);
  return fill_spta_result(
      job, pipeline.analyze(FaultModel(job.pfail), mechanisms),
      pipeline.fault_free_wcet(), spec);
}

JobResult run_mbpta_job(const CampaignJob& job, const Program& program,
                        const CampaignSpec& spec) {
  JobResult r;
  r.job = job;
  MbptaOptions options = spec.mbpta;
  options.seed = job.seed;  // per-job stream, not the spec-wide default
  if (job.samples != 0) options.chips = job.samples;  // sample-count axis
  const MbptaResult res = run_mbpta(program, job.geometry,
                                    FaultModel(job.pfail), job.mechanism,
                                    options);
  r.pwcet = res.pwcet(spec.target_exceedance);
  r.observed_max = res.observed_max;
  r.curve.reserve(spec.ccdf_exceedances.size());
  for (const Probability p : spec.ccdf_exceedances)
    r.curve.push_back(res.pwcet(p));
  return r;
}

JobResult run_simulation_job(const CampaignJob& job, const Program& program,
                             const CampaignSpec& spec) {
  // Monte-Carlo fault injection: sample a chip population, run the heavy
  // structural path on each, report the empirical tail. No extrapolation:
  // at certification-grade targets the empirical quantile is the observed
  // maximum — the point of this kind is cross-validating the static bound.
  JobResult r;
  r.job = job;
  const FaultModel faults(job.pfail);
  const Probability pbf = faults.block_failure_probability(job.geometry);
  const std::vector<Address> trace =
      fetch_trace(program.cfg(), heavy_walk(program));
  const std::size_t chips =
      job.samples != 0 ? job.samples : spec.simulation_chips;

  Rng rng(job.seed);
  std::vector<double> times;
  times.reserve(chips);
  for (std::size_t chip = 0; chip < chips; ++chip) {
    const FaultMap map = FaultMap::sample(job.geometry, pbf, rng);
    const SimStats stats = simulate_trace(job.geometry, map, job.mechanism,
                                          trace);
    times.push_back(static_cast<double>(stats.cycles));
  }
  r.observed_max = *std::max_element(times.begin(), times.end());
  r.pwcet = empirical_quantile(times, 1.0 - spec.target_exceedance);
  r.curve.reserve(spec.ccdf_exceedances.size());
  for (const Probability p : spec.ccdf_exceedances)
    r.curve.push_back(empirical_quantile(times, 1.0 - p));
  return r;
}

/// Numeric outcome of one slack (conservatism) measurement; memoized per
/// (program, geometry, mechanism) since the pfail axis does not enter.
struct SlackStats {
  std::uint64_t fetches = 0, srb_hits = 0;
  std::uint64_t sim_misses = 0, bound_misses = 0;
  std::uint64_t sim_misses_1 = 0, bound_misses_1 = 0;
};

/// The E5 conservatism oracle (bench/tab_srb_conservatism.cpp's two
/// regimes), generalized to the SRB-vs-RW pairing:
///
///  * SRB — with a fully faulty set every fetch goes through the SRB; the
///    static analysis bounds each executed reference by 1 miss unless it
///    is SRB-always-hit (then 0).
///  * RW — a degraded set keeps exactly the hardened way, so the static
///    side is the must-classification of the one-way cache (sound per set:
///    set-associative must analysis is per-set independent); an executed
///    reference costs at most 1 miss unless classified always-hit.
///
/// Regime A degrades every set; regime B only set 0 (references to healthy
/// sets then retain state the conservative assumption must discard — the
/// paper's a1 a2 b1 b2 a1 a2 situation, §III-B.2). The gap between the
/// static bound and the simulated misses on the worst structural path is
/// what a flow-sensitive analysis could reclaim.
SlackStats compute_slack(const Program& program, const CacheConfig& config,
                         Mechanism mechanism) {
  const ReferenceMap refs = extract_references(program.cfg(), config);
  const auto cls = classify_fault_free(program.cfg(), refs, config);
  const CostModel time_model =
      build_time_cost_model(program.cfg(), refs, cls, config);
  const BlockPath path = tree_worst_path(program, time_model);

  SrbHitMap srb_always_hit;
  ClassificationMap one_way_cls;
  if (mechanism == Mechanism::kSharedReliableBuffer) {
    srb_always_hit = analyze_srb(program.cfg(), refs);
  } else {
    CacheConfig one_way = config;
    one_way.ways = 1;
    one_way_cls = classify_fault_free(program.cfg(), refs, one_way);
  }
  // Misses charged to one executed occurrence of reference i in blk.
  auto charged = [&](BlockId blk, std::size_t i) -> std::uint64_t {
    if (mechanism == Mechanism::kSharedReliableBuffer)
      return srb_always_hit[size_t(blk)][i] ? 0 : 1;
    return one_way_cls[size_t(blk)][i].chmc == Chmc::kAlwaysHit ? 0 : 1;
  };

  SlackStats out;

  // Regime A: every set fully faulty (RW's hardened way is masked by the
  // simulator, leaving one usable way per set).
  FaultMap all_faulty(config.sets, config.ways);
  for (SetIndex s = 0; s < config.sets; ++s)
    for (std::uint32_t w = 0; w < config.ways; ++w)
      all_faulty.set_faulty(s, w, true);
  CacheSimulator sim_all(config, all_faulty, mechanism);
  for (BlockId blk : path) {
    const auto& block_refs = refs[size_t(blk)];
    for (std::size_t i = 0; i < block_refs.size(); ++i) {
      const LineRef& r = block_refs[i];
      out.bound_misses += charged(blk, i);
      for (std::uint32_t k = 0; k < r.fetches; ++k)
        sim_all.fetch(r.line * config.line_bytes + 4 * k);
    }
  }
  out.fetches = sim_all.stats().fetches;
  out.srb_hits = sim_all.stats().srb_hits;
  out.sim_misses = sim_all.stats().misses;

  // Regime B: only set 0 degraded; the bound covers set-0 references.
  FaultMap one_set(config.sets, config.ways);
  for (std::uint32_t w = 0; w < config.ways; ++w)
    one_set.set_faulty(0, w, true);
  CacheSimulator sim_one(config, one_set, mechanism);
  for (BlockId blk : path) {
    const auto& block_refs = refs[size_t(blk)];
    for (std::size_t i = 0; i < block_refs.size(); ++i) {
      const LineRef& r = block_refs[i];
      if (r.set == 0) out.bound_misses_1 += charged(blk, i);
      for (std::uint32_t k = 0; k < r.fetches; ++k)
        sim_one.fetch(r.line * config.line_bytes + 4 * k);
    }
  }
  out.sim_misses_1 = sim_one.stats().misses_per_set[0];
  return out;
}

JobResult run_slack_job(const CampaignJob& job, const Program& program,
                        const CampaignSpec& spec, AnalysisStore* store) {
  JobResult r;
  r.job = job;
  SlackStats stats;
  if (store != nullptr) {
    const StoreKey key =
        KeyHasher("slack-v1")
            .mix_key(hash_program(program))
            .mix_key(hash_cache_config(job.geometry))
            .mix_u64(static_cast<std::uint64_t>(job.mechanism))
            .finish();
    stats = *store->memo().get_or_compute<SlackStats>(
        key,
        [&] { return compute_slack(program, job.geometry, job.mechanism); },
        "slack");
  } else {
    stats = compute_slack(program, job.geometry, job.mechanism);
  }
  r.fetches = stats.fetches;
  r.srb_hits = stats.srb_hits;
  r.sim_misses = stats.sim_misses;
  r.bound_misses = stats.bound_misses;
  r.sim_misses_1 = stats.sim_misses_1;
  r.bound_misses_1 = stats.bound_misses_1;
  // Slack cells have no pWCET curve; keep the distribution sink total
  // (jobs x points) so renders and the warm-load parser stay aligned.
  r.curve.assign(spec.ccdf_exceedances.size(), 0.0);
  return r;
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunnerOptions& options) {
  obs::ScopedPhase campaign_phase(obs::engine_name::kCampaign, "engine");
  const auto started = std::chrono::steady_clock::now();
  if (options.shard.count == 0 ||
      options.shard.count > kMaxShardCount ||
      options.shard.index >= options.shard.count)
    throw std::invalid_argument(
        "run_campaign: shard selector out of range (index " +
        std::to_string(options.shard.index) + ", count " +
        std::to_string(options.shard.count) + ")");
  const bool sharded = options.shard.count > 1;
  const std::vector<CampaignJob> jobs = expand_campaign(spec);
  obs::MetricsRegistry::instance().add("engine.jobs", jobs.size());

  // The group schedule is shared with the shard partitioner
  // (engine/shard.hpp) so the two can never drift; a shard executes the
  // contiguous schedule-order range the partition rule assigns it.
  const std::vector<std::vector<std::size_t>> schedule =
      campaign_group_schedule(jobs);
  const auto [shard_begin, shard_end] =
      shard_group_range(schedule.size(), options.shard);

  // One store serves the whole campaign (callers can pass a longer-lived
  // one for warm reuse). Pool workers share it concurrently.
  std::unique_ptr<AnalysisStore> owned_store;
  AnalysisStore* store = options.shared_store;
  if (store == nullptr) {
    const StoreOptions store_options = store_options_from_env(options.store);
    if (store_options.enabled) {
      owned_store = std::make_unique<AnalysisStore>(store_options);
      store = owned_store.get();
    }
  }
  const StoreStats stats_before =
      store != nullptr ? store->stats() : StoreStats{};
  const bool disk = store != nullptr && store->artifacts() != nullptr;
  // Hashing the spec builds every workload once; do it once and only when
  // the disk tier that needs it (load below, persist at the end) exists.
  const StoreKey spec_key = disk ? campaign_spec_key(spec) : StoreKey{};
  const std::size_t curve_points = spec.ccdf_exceedances.size();

  CampaignResult campaign;
  campaign.spec = spec;
  campaign.results.resize(jobs.size());
  campaign.threads_used = ThreadPool::resolve_thread_count(options.threads);

  // Whole-campaign load-or-compute, checked before the pool is spawned so
  // the "near-instant" warm path starts no threads: an identical spec
  // already answered by any process sharing this cache dir is served from
  // its persisted report artifact(s) — the reconstruction renders
  // byte-identically, so consumers cannot tell (except by the wall
  // clock). Specs with a distribution sink additionally need the
  // campaign-dist artifact; if either is missing or stale, everything is
  // recomputed. Stale-cache safety: artifacts carry
  // ArtifactStore::kFormatVersion, which must be bumped whenever analysis
  // semantics change; workload content is hashed into the key.
  if (disk) {
    obs::ScopedPhase warm_phase(obs::engine_name::kWarmLoad, "engine");
    std::vector<std::size_t> all_slots(jobs.size());
    std::iota(all_slots.begin(), all_slots.end(), 0);
    const std::optional<std::string> cached =
        store->artifacts()->load_text("campaign-report", spec_key);
    bool complete =
        cached.has_value() &&
        parse_campaign_report_rows(*cached, jobs, all_slots,
                                   campaign.results);
    if (complete && curve_points > 0) {
      const std::optional<std::string> dist =
          store->artifacts()->load_text("campaign-dist", spec_key);
      complete = dist.has_value() &&
                 parse_campaign_dist_rows(*dist, curve_points, all_slots,
                                          campaign.results);
    }
    if (complete) {
      campaign.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      campaign.store_stats = store->stats().since(stats_before);
      obs::MetricsRegistry::instance().add("engine.warm_loads");
      // Every job is answered at once; keep progress consumers honest. A
      // shard fires only for the jobs it owns — its progress total is the
      // owned count, and the surplus rows stay filled (harmless: the
      // fragment renders owned slots only).
      if (options.on_job_finished) {
        if (!sharded) {
          for (std::size_t i = 0; i < jobs.size(); ++i)
            options.on_job_finished();
        } else {
          for (std::size_t g = shard_begin; g < shard_end; ++g)
            for (std::size_t i = 0; i < schedule[g].size(); ++i)
              options.on_job_finished();
        }
      }
      return campaign;
    }
  }

  ThreadPool pool(options.threads);

  std::vector<std::future<void>> futures;
  futures.reserve(shard_end - shard_begin);
  const bool observing = obs::Tracer::instance().enabled() ||
                         obs::MetricsRegistry::instance().enabled();
  for (std::size_t g = shard_begin; g < shard_end; ++g) {
    const std::vector<std::size_t>& entry = schedule[g];
    // Submission timestamp, taken on the submitting thread. The group's
    // queue wait is the time it sat *runnable with an idle worker*: from
    // max(its own enqueue, the executing worker's previous group finish)
    // to its first instruction. Measuring from enqueue alone counts the
    // whole backlog ahead of a bulk-enqueued group as "wait" — a 1.7s
    // serial campaign reported a 10s median — when that time is worked,
    // not waited. With the clamp, serial waits sum to scheduler overhead
    // only, so sum(queue_wait) <= wall holds (pinned by obs_test).
    const std::uint64_t submitted_ns = observing ? obs::monotonic_ns() : 0;
    futures.push_back(pool.submit([&spec, &jobs, &campaign, &pool, &options,
                                   store, submitted_ns, observing,
                                   members = &entry] {
      // Monotonic finish time of the previous group task on this worker
      // thread; zero on a fresh thread. Stale values from an earlier
      // campaign in the same process are harmless — the clock is
      // monotonic, so max() discards anything before this submission.
      thread_local std::uint64_t worker_busy_until_ns = 0;
      obs::TraceSpan group_span(obs::engine_name::kGroup, "engine");
      if (observing) {
        const std::uint64_t runnable_ns =
            std::max(submitted_ns, worker_busy_until_ns);
        const std::uint64_t wait_ns = obs::monotonic_ns() - runnable_ns;
        obs::MetricsRegistry::instance().observe_ns("engine.queue_wait",
                                                    wait_ns);
        if (group_span.active()) {
          char args[96];
          std::snprintf(args, sizeof args,
                        "\"jobs\":%zu,\"queue_wait_us\":%.1f",
                        members->size(),
                        static_cast<double>(wait_ns) / 1e3);
          group_span.annotate(args);
        }
      }
      const CampaignJob& first = jobs[members->front()];
      const Program program = workloads::build(first.task);

      // Built on the group's first SPTA cell; SRB/RW/pfail cells reuse it
      // (the FMM bundle covers all mechanisms, per core/pwcet_analyzer.hpp).
      // Groups with the data cache enabled build the combined analyzer
      // instead — the dcache geometry is part of the group key.
      std::optional<PwcetAnalyzer> analyzer;
      std::optional<CombinedPwcetAnalyzer> combined;
      std::optional<PwcetPipeline> pipeline;
      PwcetOptions popts;
      popts.engine = first.engine;
      popts.max_distribution_points = spec.max_distribution_points;
      popts.pool = options.parallel_sets ? &pool : nullptr;
      popts.store = store;

      for (const std::size_t index : *members) {
        const CampaignJob& job = jobs[index];
        obs::TraceSpan job_span(obs::engine_name::kJob, "engine");
        if (job_span.active())
          job_span.annotate("\"kind\":\"" + analysis_kind_name(job.kind) +
                            "\",\"task\":" + json_quote(job.task));
        if (observing) {
          obs::MetricsRegistry::instance().add(
              "engine.jobs." + analysis_kind_name(job.kind));
        }
        switch (job.kind) {
          case AnalysisKind::kSpta:
            if (needs_pipeline(job)) {
              if (!pipeline)
                pipeline.emplace(program, pipeline_domains(job), popts);
              campaign.results[index] = run_pipeline_spta(job, *pipeline,
                                                          spec);
            } else if (job.dcache.enabled) {
              if (!combined)
                combined.emplace(program, job.geometry, job.dcache.geometry,
                                 popts);
              campaign.results[index] = run_combined_spta(job, *combined,
                                                          spec);
            } else {
              if (!analyzer) analyzer.emplace(program, job.geometry, popts);
              campaign.results[index] = run_spta(job, *analyzer, spec);
            }
            break;
          case AnalysisKind::kMbpta:
            campaign.results[index] = run_mbpta_job(job, program, spec);
            break;
          case AnalysisKind::kSimulation:
            campaign.results[index] = run_simulation_job(job, program, spec);
            break;
          case AnalysisKind::kSlack:
            campaign.results[index] = run_slack_job(job, program, spec,
                                                    store);
            break;
        }
        if (options.on_job_finished) options.on_job_finished();
      }
      if (observing) worker_busy_until_ns = obs::monotonic_ns();
    }));
  }

  // Block without helping: the submitting thread is not one of the
  // campaign's workers, and letting it steal group tasks would make a
  // "threads = 1" run execute on two threads — corrupting threads_used
  // and every wall-clock/speedup number derived from it. Helping is only
  // needed for nested waits *on* pool threads (map_indexed does that).
  //
  // Futures are iterated in cache-aware submission order, which is a
  // hash order — and the members within a group are sibling-sorted, no
  // longer in expansion order either — so the "first in expansion order"
  // rethrow promise is kept by ranking failed groups by their *smallest*
  // job expansion index, not by submission or member position.
  std::exception_ptr first_error;
  std::size_t first_error_job = jobs.size();
  for (std::size_t g = 0; g < futures.size(); ++g) {
    try {
      futures[g].get();
    } catch (...) {
      const std::vector<std::size_t>& members = schedule[shard_begin + g];
      const std::size_t job_index =
          *std::min_element(members.begin(), members.end());
      if (!first_error || job_index < first_error_job) {
        first_error = std::current_exception();
        first_error_job = job_index;
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  campaign.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (store != nullptr) {
    campaign.store_stats = store->stats().since(stats_before);
    // Disk tier: persist the whole campaign's JSONL report (and, for
    // distribution campaigns, the sink) under the spec's content key, so
    // an identical future campaign (any process) can be answered — and
    // cross-checked — without recomputation. A shard's results are
    // incomplete by design, so it must not publish them as a whole
    // campaign; `pwcet merge` persists the merged report instead.
    if (disk && !sharded) {
      store->artifacts()->store_text("campaign-report", spec_key,
                                     report_jsonl(campaign));
      if (curve_points > 0)
        store->artifacts()->store_text("campaign-dist", spec_key,
                                       report_dist_jsonl(campaign));
    }
  }
  return campaign;
}

bool parse_thread_count(const std::string& text, std::size_t& threads) {
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' ||
      value > kMaxCampaignThreads)
    return false;
  threads = static_cast<std::size_t>(value);
  return true;
}

std::size_t threads_from_env() {
  const char* env = std::getenv("PWCET_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  std::size_t threads = 0;
  if (!parse_thread_count(env, threads)) {
    std::fprintf(stderr,
                 "pwcet: ignoring PWCET_THREADS='%s' (want 0..%zu); using "
                 "hardware default\n",
                 env, kMaxCampaignThreads);
    return 0;
  }
  return threads;
}

}  // namespace pwcet
