#include "engine/report.hpp"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "support/json.hpp"

namespace pwcet {
namespace {

/// Shortest decimal that round-trips the double exactly — deterministic
/// for identical bits, which the determinism tests rely on.
std::string fmt_exact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string fmt_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

/// Single source of truth for column names and their JSON type, so the
/// quoting decision cannot drift from the column order.
///
/// The numeric tail (wcet_ff .. penalty_points) is also parsed back by
/// engine/runner.cpp's parse_campaign_report when a persisted campaign
/// report is loaded; renaming or reordering those columns breaks that
/// parse — store_test's CampaignWarmFromDiskIsByteIdentical (which
/// asserts zero recomputation on a warm run) catches the drift.
struct Column {
  const char* name;
  bool json_string;
};

constexpr Column kColumns[] = {
    {"task", true},         {"sets", false},
    {"ways", false},        {"line_bytes", false},
    {"pfail", false},       {"mech", true},
    {"engine", true},       {"kind", true},
    // seed: a full 64-bit value would be silently rounded by double-based
    // JSON parsers (jq, JavaScript), so it travels as a string.
    {"seed", true},         {"wcet_ff", false},
    {"pwcet", false},       {"observed_max", false},
    {"penalty_mean", false}, {"penalty_points", false},
};

}  // namespace

std::vector<std::string> report_columns() {
  std::vector<std::string> names;
  names.reserve(std::size(kColumns));
  for (const Column& column : kColumns) names.push_back(column.name);
  return names;
}

std::vector<std::string> report_row(const CampaignResult& campaign,
                                    const JobResult& result) {
  (void)campaign;
  const CampaignJob& job = result.job;
  return {job.task,
          std::to_string(job.geometry.sets),
          std::to_string(job.geometry.ways),
          std::to_string(job.geometry.line_bytes),
          fmt_exact(job.pfail),
          mechanism_name(job.mechanism),
          engine_name(job.engine),
          analysis_kind_name(job.kind),
          fmt_u64(job.seed),
          std::to_string(result.fault_free_wcet),
          fmt_exact(result.pwcet),
          fmt_exact(result.observed_max),
          fmt_exact(result.penalty_mean),
          std::to_string(result.penalty_points)};
}

TextTable report_table(const CampaignResult& campaign) {
  TextTable table(report_columns());
  for (const JobResult& result : campaign.results)
    table.add_row(report_row(campaign, result));
  return table;
}

std::string report_csv(const CampaignResult& campaign) {
  return report_table(campaign).to_csv();
}

std::string report_jsonl(const CampaignResult& campaign) {
  std::string out;
  for (const JobResult& result : campaign.results) {
    const std::vector<std::string> row = report_row(campaign, result);
    out += '{';
    for (std::size_t c = 0; c < std::size(kColumns); ++c) {
      out += '"';
      out += kColumns[c].name;
      out += "\":";
      if (kColumns[c].json_string) {
        out += '"';
        out += json_escape(row[c]);
        out += '"';
      } else {
        out += row[c];
      }
      if (c + 1 < std::size(kColumns)) out += ',';
    }
    out += "}\n";
  }
  return out;
}

bool write_report_files(const CampaignResult& campaign,
                        const std::string& basename) {
  std::ofstream csv(basename + ".csv", std::ios::binary);
  csv << report_csv(campaign);
  csv.close();  // flush before checking: buffered write errors (disk
                // full, quota) only surface at flush time
  std::ofstream jsonl(basename + ".jsonl", std::ios::binary);
  jsonl << report_jsonl(campaign);
  jsonl.close();
  return !csv.fail() && !jsonl.fail();
}

}  // namespace pwcet
