#include "engine/report.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string_view>

#include "support/json.hpp"

namespace pwcet {
namespace {

/// Shortest decimal that round-trips the double exactly — deterministic
/// for identical bits, which the determinism tests rely on.
std::string fmt_exact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string fmt_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

/// Single source of truth for column names and their JSON type, so the
/// quoting decision cannot drift from the column order.
///
/// The numeric tail (wcet_ff .. bound_misses_1) is also parsed back by
/// parse_campaign_report_rows below when a persisted campaign report or a
/// shard fragment is loaded; renaming or reordering those columns breaks
/// that parse — store_test's CampaignWarmFromDiskIsByteIdentical (which
/// asserts zero recomputation on a warm run) catches the drift.
struct Column {
  const char* name;
  bool json_string;
};

constexpr Column kColumns[] = {
    {"task", true},         {"sets", false},
    {"ways", false},        {"line_bytes", false},
    // Data-cache axis: 0x0x0 when the cell's data cache is off; dmech is
    // the *resolved* data-cache mechanism ("-" when off); dpolicy is the
    // write policy ("-" when off).
    {"dsets", false},       {"dways", false},
    {"dline_bytes", false}, {"dpolicy", true},
    // TLB axis (0s when off) and shared-L2 axis (0x0x0 when off). Both
    // deploy the job's `mech`.
    {"tlb_entries", false}, {"tlb_ways", false},
    {"tlb_page_bytes", false},
    {"l2sets", false},      {"l2ways", false},
    {"l2line_bytes", false}, {"pfail", false},
    {"mech", true},         {"dmech", true},
    {"engine", true},       {"kind", true},
    // samples: the raw sample-count axis value (0 = spec-level defaults).
    {"samples", false},
    // seed: a full 64-bit value would be silently rounded by double-based
    // JSON parsers (jq, JavaScript), so it travels as a string.
    {"seed", true},         {"wcet_ff", false},
    {"pwcet", false},       {"observed_max", false},
    {"penalty_mean", false}, {"penalty_points", false},
    {"fetches", false},     {"srb_hits", false},
    {"sim_misses", false},  {"bound_misses", false},
    {"sim_misses_1", false}, {"bound_misses_1", false},
};

/// Job-identity columns shared by the scalar and dist reports: everything
/// in kColumns up to (excluding) the numeric result tail.
constexpr std::size_t kJobColumns = 21;  // task .. seed
static_assert(std::string_view(kColumns[kJobColumns].name) == "wcet_ff",
              "kJobColumns must mark where the numeric result tail starts");

/// The dist report: the job-identity prefix plus the curve point.
constexpr Column kDistTail[] = {
    {"exceedance", false},
    {"value", false},
};

std::vector<std::string> job_row(const CampaignJob& job) {
  return {job.task,
          std::to_string(job.geometry.sets),
          std::to_string(job.geometry.ways),
          std::to_string(job.geometry.line_bytes),
          std::to_string(job.dcache.enabled ? job.dcache.geometry.sets : 0),
          std::to_string(job.dcache.enabled ? job.dcache.geometry.ways : 0),
          std::to_string(job.dcache.enabled ? job.dcache.geometry.line_bytes
                                            : 0),
          job.dcache.enabled ? write_policy_name(job.dcache.policy) : "-",
          std::to_string(job.tlb.enabled ? job.tlb.entries : 0),
          std::to_string(job.tlb.enabled ? job.tlb.ways : 0),
          std::to_string(job.tlb.enabled ? job.tlb.page_bytes : 0),
          std::to_string(job.l2.enabled ? job.l2.geometry.sets : 0),
          std::to_string(job.l2.enabled ? job.l2.geometry.ways : 0),
          std::to_string(job.l2.enabled ? job.l2.geometry.line_bytes : 0),
          fmt_exact(job.pfail),
          mechanism_name(job.mechanism),
          job.dcache.enabled ? mechanism_name(job.resolved_dmech()) : "-",
          engine_name(job.engine),
          analysis_kind_name(job.kind),
          std::to_string(job.samples),
          fmt_u64(job.seed)};
}

std::string render_jsonl_row(const Column* columns, std::size_t count,
                             const std::vector<std::string>& row) {
  std::string out = "{";
  for (std::size_t c = 0; c < count; ++c) {
    out += '"';
    out += columns[c].name;
    out += "\":";
    if (columns[c].json_string) {
      out += '"';
      out += json_escape(row[c]);
      out += '"';
    } else {
      out += row[c];
    }
    if (c + 1 < count) out += ',';
  }
  out += "}\n";
  return out;
}

}  // namespace

std::vector<std::string> report_columns() {
  std::vector<std::string> names;
  names.reserve(std::size(kColumns));
  for (const Column& column : kColumns) names.push_back(column.name);
  return names;
}

std::vector<std::string> report_row(const CampaignResult& campaign,
                                    const JobResult& result) {
  (void)campaign;
  std::vector<std::string> row = job_row(result.job);
  row.push_back(std::to_string(result.fault_free_wcet));
  row.push_back(fmt_exact(result.pwcet));
  row.push_back(fmt_exact(result.observed_max));
  row.push_back(fmt_exact(result.penalty_mean));
  row.push_back(std::to_string(result.penalty_points));
  row.push_back(fmt_u64(result.fetches));
  row.push_back(fmt_u64(result.srb_hits));
  row.push_back(fmt_u64(result.sim_misses));
  row.push_back(fmt_u64(result.bound_misses));
  row.push_back(fmt_u64(result.sim_misses_1));
  row.push_back(fmt_u64(result.bound_misses_1));
  return row;
}

TextTable report_table(const CampaignResult& campaign) {
  TextTable table(report_columns());
  for (const JobResult& result : campaign.results)
    table.add_row(report_row(campaign, result));
  return table;
}

std::string report_csv(const CampaignResult& campaign) {
  return report_table(campaign).to_csv();
}

std::string report_jsonl(const CampaignResult& campaign) {
  std::string out;
  for (const JobResult& result : campaign.results)
    out += render_jsonl_row(kColumns, std::size(kColumns),
                            report_row(campaign, result));
  return out;
}

std::vector<std::string> report_dist_columns() {
  std::vector<std::string> names;
  names.reserve(kJobColumns + std::size(kDistTail));
  for (std::size_t c = 0; c < kJobColumns; ++c)
    names.push_back(kColumns[c].name);
  for (const Column& column : kDistTail) names.push_back(column.name);
  return names;
}

namespace {

/// Rows of the dist report, rendered through `emit(columns-array, row)`.
template <typename Emit>
void each_dist_row(const CampaignResult& campaign, Emit&& emit) {
  const std::vector<Probability>& points = campaign.spec.ccdf_exceedances;
  for (const JobResult& result : campaign.results) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::vector<std::string> row = job_row(result.job);
      row.push_back(fmt_exact(points[i]));
      row.push_back(fmt_exact(i < result.curve.size() ? result.curve[i]
                                                      : 0.0));
      emit(std::move(row));
    }
  }
}

constexpr auto make_dist_columns() {
  std::array<Column, kJobColumns + std::size(kDistTail)> columns{};
  for (std::size_t c = 0; c < kJobColumns; ++c) columns[c] = kColumns[c];
  for (std::size_t c = 0; c < std::size(kDistTail); ++c)
    columns[kJobColumns + c] = kDistTail[c];
  return columns;
}

}  // namespace

TextTable report_dist_table(const CampaignResult& campaign) {
  TextTable table(report_dist_columns());
  each_dist_row(campaign,
                [&](std::vector<std::string> row) { table.add_row(row); });
  return table;
}

std::string report_dist_csv(const CampaignResult& campaign) {
  return report_dist_table(campaign).to_csv();
}

std::string report_jsonl_row(const CampaignResult& campaign,
                             const JobResult& result) {
  return render_jsonl_row(kColumns, std::size(kColumns),
                          report_row(campaign, result));
}

std::string report_dist_jsonl_rows(const CampaignResult& campaign,
                                   const JobResult& result) {
  static constexpr auto kDistColumns = make_dist_columns();
  const std::vector<Probability>& points = campaign.spec.ccdf_exceedances;
  std::string out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::vector<std::string> row = job_row(result.job);
    row.push_back(fmt_exact(points[i]));
    row.push_back(fmt_exact(i < result.curve.size() ? result.curve[i]
                                                    : 0.0));
    out += render_jsonl_row(kDistColumns.data(), kDistColumns.size(), row);
  }
  return out;
}

std::string report_dist_jsonl(const CampaignResult& campaign) {
  std::string out;
  for (const JobResult& result : campaign.results)
    out += report_dist_jsonl_rows(campaign, result);
  return out;
}

bool parse_campaign_report_rows(const std::string& payload,
                                const std::vector<CampaignJob>& jobs,
                                const std::vector<std::size_t>& slots,
                                std::vector<JobResult>& results) {
  std::istringstream lines(payload);
  std::string line;
  std::size_t row = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (row >= slots.size()) return false;
    const std::size_t slot = slots[row];
    if (slot >= jobs.size() || slot >= results.size()) return false;
    const char* at = std::strstr(line.c_str(), "\"wcet_ff\":");
    if (at == nullptr) return false;
    long long wcet_ff = 0;
    double pwcet = 0.0, observed_max = 0.0, penalty_mean = 0.0;
    unsigned long long penalty_points = 0;
    unsigned long long fetches = 0, srb_hits = 0;
    unsigned long long sim_misses = 0, bound_misses = 0;
    unsigned long long sim_misses_1 = 0, bound_misses_1 = 0;
    if (std::sscanf(at,
                    "\"wcet_ff\":%lld,\"pwcet\":%lf,\"observed_max\":%lf,"
                    "\"penalty_mean\":%lf,\"penalty_points\":%llu,"
                    "\"fetches\":%llu,\"srb_hits\":%llu,"
                    "\"sim_misses\":%llu,\"bound_misses\":%llu,"
                    "\"sim_misses_1\":%llu,\"bound_misses_1\":%llu}",
                    &wcet_ff, &pwcet, &observed_max, &penalty_mean,
                    &penalty_points, &fetches, &srb_hits, &sim_misses,
                    &bound_misses, &sim_misses_1, &bound_misses_1) != 11)
      return false;
    JobResult& result = results[slot];
    result.job = jobs[slot];
    result.fault_free_wcet = static_cast<Cycles>(wcet_ff);
    result.pwcet = pwcet;
    result.observed_max = observed_max;
    result.penalty_mean = penalty_mean;
    result.penalty_points = static_cast<std::size_t>(penalty_points);
    result.fetches = fetches;
    result.srb_hits = srb_hits;
    result.sim_misses = sim_misses;
    result.bound_misses = bound_misses;
    result.sim_misses_1 = sim_misses_1;
    result.bound_misses_1 = bound_misses_1;
    ++row;
  }
  return row == slots.size();
}

bool parse_campaign_dist_rows(const std::string& payload, std::size_t points,
                              const std::vector<std::size_t>& slots,
                              std::vector<JobResult>& results) {
  if (points == 0) return payload.empty();
  std::istringstream lines(payload);
  std::string line;
  std::size_t row = 0;
  const std::size_t total = slots.size() * points;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (row >= total) return false;
    const std::size_t slot = slots[row / points];
    if (slot >= results.size()) return false;
    const char* at = std::strstr(line.c_str(), "\"exceedance\":");
    if (at == nullptr) return false;
    double exceedance = 0.0, value = 0.0;
    if (std::sscanf(at, "\"exceedance\":%lf,\"value\":%lf}", &exceedance,
                    &value) != 2)
      return false;
    JobResult& result = results[slot];
    if (result.curve.size() != points) result.curve.assign(points, 0.0);
    result.curve[row % points] = value;
    ++row;
  }
  return row == total;
}

bool write_report_files(const CampaignResult& campaign,
                        const std::string& basename) {
  std::ofstream csv(basename + ".csv", std::ios::binary);
  csv << report_csv(campaign);
  csv.close();  // flush before checking: buffered write errors (disk
                // full, quota) only surface at flush time
  std::ofstream jsonl(basename + ".jsonl", std::ios::binary);
  jsonl << report_jsonl(campaign);
  jsonl.close();
  bool ok = !csv.fail() && !jsonl.fail();
  if (!campaign.spec.ccdf_exceedances.empty()) {
    std::ofstream dist_csv(basename + ".dist.csv", std::ios::binary);
    dist_csv << report_dist_csv(campaign);
    dist_csv.close();
    std::ofstream dist_jsonl(basename + ".dist.jsonl", std::ios::binary);
    dist_jsonl << report_dist_jsonl(campaign);
    dist_jsonl.close();
    ok = ok && !dist_csv.fail() && !dist_jsonl.fail();
  }
  return ok;
}

}  // namespace pwcet
